//! # bdbms
//!
//! A from-scratch Rust reproduction of
//! *"bdbms — A Database Management System for Biological Data"*
//! (Eltabakh, Ouzzani, Aref — CIDR 2007): an extensible database engine
//! with annotation & provenance management, local dependency tracking,
//! content-based update authorization, and non-traditional access methods
//! (SP-GiST space-partitioning indexes and the SBC-tree for
//! RLE-compressed sequences).
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`core`] — the engine: catalog, A-SQL, the four managers (§2–§6);
//! * [`storage`] — pager, buffer pool, slotted pages, heap files;
//! * [`index`] — B+-tree, R-tree, SP-GiST framework + trie/kd-tree/quadtree;
//! * [`seq`] — RLE codec, String B-tree, SBC-tree (§7);
//! * [`common`] — values, schemas, bitmaps, instrumentation.
//!
//! ```
//! use bdbms::core::Database;
//!
//! let mut db = Database::new_in_memory();
//! db.execute("CREATE TABLE Gene (GID TEXT, GSequence TEXT)").unwrap();
//! db.execute("CREATE ANNOTATION TABLE Comments ON Gene").unwrap();
//! db.execute("INSERT INTO Gene VALUES ('JW0080', 'ATGATGGAAAA')").unwrap();
//! db.execute(
//!     "ADD ANNOTATION TO Gene.Comments VALUE 'curated' \
//!      ON (SELECT G.GID FROM Gene G)",
//! ).unwrap();
//! let r = db.execute("SELECT GID FROM Gene ANNOTATION(Comments)").unwrap();
//! assert_eq!(r.rows[0].anns[0][0].text(), "curated");
//! ```

pub use bdbms_common as common;
pub use bdbms_core as core;
pub use bdbms_index as index;
pub use bdbms_seq as seq;
pub use bdbms_storage as storage;

pub use bdbms_core::{Database, QueryResult};
