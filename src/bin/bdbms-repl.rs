//! An interactive A-SQL shell over a bdbms instance — in-memory by
//! default, durable when given a database path.
//!
//! ```text
//! cargo run --release --bin bdbms-repl              # in-memory scratch
//! cargo run --release --bin bdbms-repl mydb.bdbms   # open or create
//! bdbms> CREATE TABLE Gene (GID TEXT, GSequence TEXT)
//! mydb> .open other.bdbms   -- switch databases (checkpoints the old one)
//! mydb> .user alice          -- switch the session user
//! mydb> .demo                -- load the paper's Figure 2 scenario
//! mydb> .help
//! ```
//!
//! Statements may span lines; a trailing `;` or an empty line submits.
//! `.quit` checkpoints a durable database cleanly before exiting.

use std::io::{BufRead, Write};

use bdbms::core::Database;

const HELP: &str = "\
dot-commands:
  .help            this help
  .open PATH       switch to the database at PATH (created if missing);
                   the current database is checkpointed first
  .db              show the current database path and WAL state
  .checkpoint      write a checkpoint now (truncates the WAL)
  .user NAME       switch session user (default: admin)
  .demo            load the paper's Figure 2 gene tables + annotations
  .tables          list tables, row counts, annotation tables
  .quit            checkpoint (durable databases) and exit
everything else is executed as (A-)SQL, e.g.:
  SELECT GID FROM DB2_Gene ANNOTATION(GAnnotation) AWHERE CONTAINS 'GenoBase'
  ADD ANNOTATION TO T.notes VALUE 'checked' ON (SELECT G.c FROM T G)
  SHOW PENDING OPERATIONS / SHOW OUTDATED / VALIDATE T
  BEGIN / SAVEPOINT s / ROLLBACK TO s / COMMIT   (prompt shows * in a txn)";

fn load_demo(db: &mut Database) {
    let stmts = [
        "CREATE TABLE DB1_Gene (GID TEXT, GName TEXT, GSequence TEXT)",
        "CREATE TABLE DB2_Gene (GID TEXT, GName TEXT, GSequence TEXT)",
        "CREATE ANNOTATION TABLE GAnnotation ON DB1_Gene",
        "CREATE ANNOTATION TABLE GAnnotation ON DB2_Gene",
        "INSERT INTO DB1_Gene VALUES ('JW0080','mraW','ATGATGGAAAA'), \
         ('JW0082','ftsI','ATGAAAGCAGC'), ('JW0055','yabP','ATGAAAGTATC'), \
         ('JW0078','fruR','GTGAAACTGGA')",
        "INSERT INTO DB2_Gene VALUES ('JW0080','mraW','ATGATGGAAAA'), \
         ('JW0041','fixB','ATGAACACGTT'), ('JW0037','caiB','ATGGATCATCT'), \
         ('JW0027','ispH','ATGCAGATCCT'), ('JW0055','yabP','ATGAAAGTATC')",
        "ADD ANNOTATION TO DB2_Gene.GAnnotation \
         VALUE '<Annotation>B3: obtained from GenoBase</Annotation>' \
         ON (SELECT G.GSequence FROM DB2_Gene G)",
        "ADD ANNOTATION TO DB2_Gene.GAnnotation \
         VALUE '<Annotation>B5: This gene has an unknown function</Annotation>' \
         ON (SELECT G.* FROM DB2_Gene G WHERE GID = 'JW0080')",
        "ADD ANNOTATION TO DB1_Gene.GAnnotation \
         VALUE '<Annotation>A2: These genes were obtained from RegulonDB</Annotation>' \
         ON (SELECT G.* FROM DB1_Gene G WHERE GID IN ('JW0055','JW0078'))",
    ];
    for s in stmts {
        if let Err(e) = db.execute(s) {
            eprintln!("demo load failed: {e}");
            return;
        }
    }
    println!("Figure 2 scenario loaded (DB1_Gene, DB2_Gene, GAnnotation). Try:");
    println!("  SELECT GID, GName, GSequence FROM DB1_Gene ANNOTATION(GAnnotation)");
    println!("  INTERSECT SELECT GID, GName, GSequence FROM DB2_Gene ANNOTATION(GAnnotation)");
}

fn list_tables(db: &Database) {
    for t in db.catalog().tables() {
        let anns: Vec<&str> = t.ann_sets.iter().map(|s| s.name.as_str()).collect();
        println!(
            "{:<16} {:>6} rows   annotation tables: [{}]",
            t.name,
            t.len(),
            anns.join(", ")
        );
    }
}

/// Open (or create) the database at `path`, reporting what recovery did.
fn open_database(path: &str) -> Option<Database> {
    let existed = std::path::Path::new(path).join("data.bdb").exists();
    let result = if existed {
        Database::open(path)
    } else {
        Database::create(path)
    };
    match result {
        Ok(db) => {
            if let Some(rec) = db.last_recovery() {
                if rec.replayed_commits > 0 || rec.discarded_ops > 0 || rec.torn_bytes > 0 {
                    println!(
                        "recovered `{path}`: {} committed transaction(s) replayed, \
                         {} uncommitted op(s) discarded, {} torn byte(s) truncated",
                        rec.replayed_commits, rec.discarded_ops, rec.torn_bytes
                    );
                } else {
                    println!("opened `{path}` (clean)");
                }
            } else {
                println!("created `{path}`");
            }
            Some(db)
        }
        Err(e) => {
            eprintln!("cannot open `{path}`: {e}");
            None
        }
    }
}

/// The prompt stem: the database's file stem, or `bdbms` when in-memory.
fn db_name(db: &Database) -> String {
    db.path()
        .and_then(|p| p.file_stem())
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "bdbms".to_string())
}

/// Checkpoint a durable database, reporting errors (exit/switch path).
fn close_current(db: Database) {
    let durable = db.is_persistent();
    match db.close() {
        Ok(()) if durable => println!("checkpointed"),
        Ok(()) => {}
        Err(e) => eprintln!("checkpoint on close failed: {e}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut db = match args.first() {
        Some(path) => match open_database(path) {
            Some(db) => db,
            None => std::process::exit(1),
        },
        None => Database::new_in_memory(),
    };
    let mut user = "admin".to_string();
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    println!("bdbms — CIDR 2007 reproduction. `.help` for commands, `.quit` to exit.");
    loop {
        let name = db_name(&db);
        if !buffer.is_empty() {
            print!("   ..> ");
        } else if db.in_transaction() {
            // `*` marks an open BEGIN: statements queue in the undo log
            print!("{name}*> ");
        } else {
            print!("{name}> ");
        }
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('.') {
            let mut parts = trimmed.splitn(2, ' ');
            match parts.next().unwrap() {
                ".quit" | ".exit" => break,
                ".help" => println!("{HELP}"),
                ".demo" => load_demo(&mut db),
                ".tables" => list_tables(&db),
                ".open" => match parts.next() {
                    Some(p) if !p.trim().is_empty() => {
                        let p = p.trim();
                        // two live handles on one directory checkpoint
                        // over each other (docs/STORAGE.md Limitations):
                        // refuse a same-path reopen, and close the old
                        // database *before* opening the new one
                        let same = db.path().is_some_and(|cur| {
                            std::fs::canonicalize(cur)
                                .ok()
                                .is_some_and(|a| std::fs::canonicalize(p).is_ok_and(|b| a == b))
                        });
                        if same {
                            println!("`{p}` is already the current database");
                        } else {
                            close_current(std::mem::replace(&mut db, Database::new_in_memory()));
                            match open_database(p) {
                                Some(new_db) => db = new_db,
                                None => println!(
                                    "fell back to an in-memory database (`.open` to retry)"
                                ),
                            }
                        }
                    }
                    _ => println!("usage: .open PATH"),
                },
                ".db" => match db.path() {
                    Some(p) => println!(
                        "database: {} ({} WAL segment(s))",
                        p.display(),
                        db.wal_segment_count().unwrap_or(0)
                    ),
                    None => println!("database: in-memory (state dies with the process)"),
                },
                ".checkpoint" => match db.checkpoint() {
                    Ok(()) if db.is_persistent() => println!("checkpointed"),
                    Ok(()) => println!("in-memory database: nothing to checkpoint"),
                    Err(e) => println!("error: {e}"),
                },
                ".user" => match parts.next() {
                    Some(u) if !u.trim().is_empty() => {
                        user = u.trim().to_string();
                        println!("session user is now `{user}`");
                    }
                    _ => println!("usage: .user NAME"),
                },
                other => println!("unknown command {other} (`.help`)"),
            }
            continue;
        }
        // accumulate until `;` or a blank line after content
        if !trimmed.is_empty() {
            buffer.push_str(&line);
            if !trimmed.ends_with(';') {
                continue;
            }
        } else if buffer.is_empty() {
            continue;
        }
        let stmt = buffer.trim().trim_end_matches(';').to_string();
        buffer.clear();
        if stmt.is_empty() {
            continue;
        }
        match db.execute_as(&stmt, &user) {
            Ok(result) => println!("{result}"),
            Err(e) => println!("error: {e}"),
        }
    }
    // `.quit` / EOF: a durable database checkpoints cleanly
    close_current(db);
    println!("bye");
}
