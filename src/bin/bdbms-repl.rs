//! An interactive A-SQL shell over an in-memory bdbms instance.
//!
//! ```text
//! cargo run --release --bin bdbms-repl
//! bdbms> CREATE TABLE Gene (GID TEXT, GSequence TEXT)
//! bdbms> .user alice        -- switch the session user
//! bdbms> .demo              -- load the paper's Figure 2 scenario
//! bdbms> .help
//! ```
//!
//! Statements may span lines; a trailing `;` or an empty line submits.

use std::io::{BufRead, Write};

use bdbms::core::Database;

const HELP: &str = "\
dot-commands:
  .help            this help
  .user NAME       switch session user (default: admin)
  .demo            load the paper's Figure 2 gene tables + annotations
  .tables          list tables, row counts, annotation tables
  .quit            exit
everything else is executed as (A-)SQL, e.g.:
  SELECT GID FROM DB2_Gene ANNOTATION(GAnnotation) AWHERE CONTAINS 'GenoBase'
  ADD ANNOTATION TO T.notes VALUE 'checked' ON (SELECT G.c FROM T G)
  SHOW PENDING OPERATIONS / SHOW OUTDATED / VALIDATE T
  BEGIN / SAVEPOINT s / ROLLBACK TO s / COMMIT   (prompt shows * in a txn)";

fn load_demo(db: &mut Database) {
    let stmts = [
        "CREATE TABLE DB1_Gene (GID TEXT, GName TEXT, GSequence TEXT)",
        "CREATE TABLE DB2_Gene (GID TEXT, GName TEXT, GSequence TEXT)",
        "CREATE ANNOTATION TABLE GAnnotation ON DB1_Gene",
        "CREATE ANNOTATION TABLE GAnnotation ON DB2_Gene",
        "INSERT INTO DB1_Gene VALUES ('JW0080','mraW','ATGATGGAAAA'), \
         ('JW0082','ftsI','ATGAAAGCAGC'), ('JW0055','yabP','ATGAAAGTATC'), \
         ('JW0078','fruR','GTGAAACTGGA')",
        "INSERT INTO DB2_Gene VALUES ('JW0080','mraW','ATGATGGAAAA'), \
         ('JW0041','fixB','ATGAACACGTT'), ('JW0037','caiB','ATGGATCATCT'), \
         ('JW0027','ispH','ATGCAGATCCT'), ('JW0055','yabP','ATGAAAGTATC')",
        "ADD ANNOTATION TO DB2_Gene.GAnnotation \
         VALUE '<Annotation>B3: obtained from GenoBase</Annotation>' \
         ON (SELECT G.GSequence FROM DB2_Gene G)",
        "ADD ANNOTATION TO DB2_Gene.GAnnotation \
         VALUE '<Annotation>B5: This gene has an unknown function</Annotation>' \
         ON (SELECT G.* FROM DB2_Gene G WHERE GID = 'JW0080')",
        "ADD ANNOTATION TO DB1_Gene.GAnnotation \
         VALUE '<Annotation>A2: These genes were obtained from RegulonDB</Annotation>' \
         ON (SELECT G.* FROM DB1_Gene G WHERE GID IN ('JW0055','JW0078'))",
    ];
    for s in stmts {
        if let Err(e) = db.execute(s) {
            eprintln!("demo load failed: {e}");
            return;
        }
    }
    println!("Figure 2 scenario loaded (DB1_Gene, DB2_Gene, GAnnotation). Try:");
    println!("  SELECT GID, GName, GSequence FROM DB1_Gene ANNOTATION(GAnnotation)");
    println!("  INTERSECT SELECT GID, GName, GSequence FROM DB2_Gene ANNOTATION(GAnnotation)");
}

fn list_tables(db: &Database) {
    for t in db.catalog().tables() {
        let anns: Vec<&str> = t.ann_sets.iter().map(|s| s.name.as_str()).collect();
        println!(
            "{:<16} {:>6} rows   annotation tables: [{}]",
            t.name,
            t.len(),
            anns.join(", ")
        );
    }
}

fn main() {
    let mut db = Database::new_in_memory();
    let mut user = "admin".to_string();
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    println!("bdbms — CIDR 2007 reproduction. `.help` for commands, `.quit` to exit.");
    loop {
        if !buffer.is_empty() {
            print!("   ..> ");
        } else if db.in_transaction() {
            // `*` marks an open BEGIN: statements queue in the undo log
            print!("bdbms*> ");
        } else {
            print!("bdbms> ");
        }
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('.') {
            let mut parts = trimmed.splitn(2, ' ');
            match parts.next().unwrap() {
                ".quit" | ".exit" => break,
                ".help" => println!("{HELP}"),
                ".demo" => load_demo(&mut db),
                ".tables" => list_tables(&db),
                ".user" => match parts.next() {
                    Some(u) if !u.trim().is_empty() => {
                        user = u.trim().to_string();
                        println!("session user is now `{user}`");
                    }
                    _ => println!("usage: .user NAME"),
                },
                other => println!("unknown command {other} (`.help`)"),
            }
            continue;
        }
        // accumulate until `;` or a blank line after content
        if !trimmed.is_empty() {
            buffer.push_str(&line);
            if !trimmed.ends_with(';') {
                continue;
            }
        } else if buffer.is_empty() {
            continue;
        }
        let stmt = buffer.trim().trim_end_matches(';').to_string();
        buffer.clear();
        if stmt.is_empty() {
            continue;
        }
        match db.execute_as(&stmt, &user) {
            Ok(result) => println!("{result}"),
            Err(e) => println!("error: {e}"),
        }
    }
    println!("bye");
}
