//! An interactive A-SQL shell over a bdbms instance — in-memory by
//! default, durable when given a database path, remote when given a
//! `host:port` of a running `bdbms-serve`.
//!
//! ```text
//! cargo run --release --bin bdbms-repl              # in-memory scratch
//! cargo run --release --bin bdbms-repl mydb.bdbms   # open or create
//! cargo run --release --bin bdbms-repl 127.0.0.1:4411   # remote server
//! bdbms> CREATE TABLE Gene (GID TEXT, GSequence TEXT)
//! mydb> .open other.bdbms    -- switch databases (checkpoints the old one)
//! mydb> .open 127.0.0.1:4411 -- or switch to a server
//! mydb> .user alice          -- switch the session user
//! mydb> .demo                -- load the paper's Figure 2 scenario
//! mydb> .help
//! ```
//!
//! Statements may span lines; a trailing `;` or an empty line submits.
//! `.quit` checkpoints a durable database cleanly before exiting.  The
//! shell itself lives in `bdbms-client` and drives the transport-
//! agnostic `Connection` trait, so local and remote sessions behave
//! identically (the `*` transaction prompt mirrors server-side state
//! when remote).  `bdbms-cli` is the same shell with the same flags.

use bdbms_client::shell;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match shell::open_target(args.first().map(|s| s.as_str()), "admin") {
        Some((conn, name)) => shell::run(conn, name),
        None => std::process::exit(1),
    }
}
