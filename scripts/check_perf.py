#!/usr/bin/env python3
"""Perf-regression gate over `reproduce -- <id> --json` output.

Usage:
    check_perf.py BASELINE.json FRESH.json [--tolerance N] [--id EXP]

Both files are arrays of experiment reports as emitted by
`cargo run -p bdbms-bench --release --bin reproduce -- e13 --json`
(or `-- e14 --json` with `--id e14`).  For every query row of the gated
experiment present in both files, the fresh speedup (the "speedup"
column, e.g. "12000.5x") must be at least `baseline / N` (default
N = 5): only a more-than-N-fold drop fails the gate, so noisy CI
runners never flake it, while a real regression — an index probe
silently degrading to a full scan, a LIMIT no longer terminating the
pipeline — trips it immediately.

A few workloads additionally carry an *absolute* floor (see
ABSOLUTE_FLOOR): e14's group-commit rows gate the paper-repro
acceptance numbers — >= 4x aggregate commit throughput over sequential
commits and >= 4 commits per fsync — regardless of what the baseline
happened to measure.

The two files must also agree on the *set* of workload keys: a workload
missing from the fresh run (renamed or deleted) and a workload present
only in the fresh run (newly added) both fail the gate.  Either way the
baseline no longer describes the benchmark and must be regenerated —
silently passing would leave the new workload ungated (or the old one
unmeasured) forever.

Exit code 0 = pass, 1 = regression / workload-key drift / malformed input.
"""

import json
import sys

# Per-workload tolerance overrides.  The default tolerance assumes the
# measured ratio is hardware-stable (algorithmic speedups are); a few
# workloads measure something hardware-dependent instead and only gate
# against outright collapse.
WORKLOAD_TOLERANCE = {
    # Full/NoSync = the price of the commit fsync barrier, which swings
    # with the filesystem and disk (tmpfs CI runners vs laptops vs SSDs).
    # A collapse to ~baseline/50 would still mean commits stopped
    # syncing; anything milder is machine variance, not a regression.
    "commit durability (Full vs NoSync)": 50.0,
    # Cold/warm = the price of re-reading (and CRC-verifying) every page
    # of a scan, which depends on whether the OS page cache soaks up the
    # "cold" reads (tmpfs CI runners vs real disks).  Only a wholesale
    # collapse — warm scans suddenly paying the cold path — should fail.
    "checksummed read (cold vs warm)": 50.0,
    # e14: group-commit gains scale with fsync latency (a slow disk makes
    # the win huge, tmpfs makes it modest), so gate the relative drop
    # loosely — the ABSOLUTE_FLOOR entries below still hold the line.
    "sequential commits (wire)": 50.0,
    "group commit": 50.0,
    "commits per fsync": 50.0,
    # Concurrent point reads funnel through the single engine thread; the
    # ratio over sequential reads is scheduling-dependent, so only gate
    # against outright collapse.
    "point reads": 50.0,
    # e15: both ratios lean on I/O (COPY parses a file and checkpoints;
    # the INSERT side pays per-statement WAL appends), so the measured
    # multiple swings with the filesystem.  The ABSOLUTE_FLOOR entries
    # below carry the acceptance criteria.
    "bulk load (COPY vs row INSERTs)": 50.0,
    "indexed substring (CONTAINS SEQ vs scan)": 50.0,
}

# Absolute minimum speedups, enforced on the fresh run regardless of the
# baseline.  These encode acceptance criteria rather than trajectories.
ABSOLUTE_FLOOR = {
    # 16 concurrent committing clients must beat 16 sequential
    # single-session commits by >= 4x in aggregate throughput...
    "group commit": 4.0,
    # ...and one fsync must cover >= 4 acknowledged commits on average
    # (i.e. <= 0.25 fsyncs per acknowledged commit).
    "commits per fsync": 4.0,
    # e15 acceptance: COPY of a 50k-record FASTA dump must load >= 10x
    # faster than the same rows as row-at-a-time INSERT statements...
    "bulk load (COPY vs row INSERTs)": 10.0,
    # ...and CONTAINS SEQ through the sequence index must beat the naive
    # full scan >= 10x.
    "indexed substring (CONTAINS SEQ vs scan)": 10.0,
    # Observability acceptance (ISSUE 10): always-on metric counters may
    # cost at most ~5% on the hottest page-fetch path.  The row's ratio
    # is (metrics off) / (metrics on), so 0.95 means the instrumented
    # leg runs no more than ~5% slower than the uninstrumented one.
    "instrumentation overhead (metrics on vs off)": 0.95,
    # Batch-executor acceptance (ISSUE 9): the vectorized next_batch()
    # pipeline must run the full-scan aggregate >= 2x faster than the
    # row-at-a-time next() pipeline on the same plan.  Pure CPU-bound
    # dispatch amortization — hardware-stable, so a hard floor is safe.
    "full-scan aggregate (batch vs row)": 2.0,
}


def speedups(path, exp_id):
    """Map query label -> speedup ratio from the `exp_id` report."""
    with open(path) as f:
        reports = json.load(f)
    for report in reports:
        if report.get("id") != exp_id:
            continue
        headers = report["headers"]
        qi = headers.index("query")
        si = headers.index("speedup")
        out = {}
        for row in report["rows"]:
            ratio = row[si].rstrip("x")
            try:
                out[row[qi]] = float(ratio)
            except ValueError:
                continue  # "-" (unmeasurable) rows are not gated
        return out
    raise SystemExit(f"error: no {exp_id} report found in {path}")


def main(argv):
    tolerance = 5.0
    exp_id = "e13"
    args = []
    i = 0
    while i < len(argv):
        if argv[i] == "--tolerance":
            tolerance = float(argv[i + 1])
            i += 2
        elif argv[i] == "--id":
            exp_id = argv[i + 1]
            i += 2
        else:
            args.append(argv[i])
            i += 1
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 1
    base = speedups(args[0], exp_id)
    fresh = speedups(args[1], exp_id)
    failed = False
    print(f"{'query':<24} {'baseline':>10} {'fresh':>10} {'floor':>10}  verdict")
    for label, base_s in sorted(base.items()):
        if label not in fresh:
            print(f"{label:<24} {base_s:>10.1f} {'missing':>10} {'':>10}  FAIL")
            failed = True
            continue
        floor = base_s / WORKLOAD_TOLERANCE.get(label, tolerance)
        floor = max(floor, ABSOLUTE_FLOOR.get(label, 0.0))
        fresh_s = fresh[label]
        verdict = "ok" if fresh_s >= floor else "FAIL"
        failed = failed or verdict == "FAIL"
        print(f"{label:<24} {base_s:>10.1f} {fresh_s:>10.1f} {floor:>10.1f}  {verdict}")
    for label in sorted(set(fresh) - set(base)):
        print(f"{label:<24} {'(absent)':>10} {fresh[label]:>10.1f} {'':>10}  FAIL")
        failed = True
    if failed:
        print(
            f"\nperf gate FAILED: a speedup regressed by more than {tolerance}x, "
            "fell below an absolute floor, or the workload keys drifted (a row "
            f"added to or removed from the {exp_id} table), against "
            f"bench/baseline_{exp_id}.json.\nIf the change is intended, "
            "regenerate the baseline with:\n"
            f"  cargo run -p bdbms-bench --release --bin reproduce -- {exp_id} "
            f"--json > bench/baseline_{exp_id}.json"
        )
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
