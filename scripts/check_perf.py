#!/usr/bin/env python3
"""Perf-regression gate over `reproduce -- e13 --json` output.

Usage:
    check_perf.py BASELINE.json FRESH.json [--tolerance N]

Both files are arrays of experiment reports as emitted by
`cargo run -p bdbms-bench --release --bin reproduce -- e13 --json`.
For every e13 query row present in both files, the fresh speedup (the
"speedup" column, e.g. "12000.5x") must be at least `baseline / N`
(default N = 5): only a more-than-N-fold drop fails the gate, so noisy
CI runners never flake it, while a real regression — an index probe
silently degrading to a full scan, a LIMIT no longer terminating the
pipeline — trips it immediately.

The two files must also agree on the *set* of workload keys: a workload
missing from the fresh run (renamed or deleted) and a workload present
only in the fresh run (newly added) both fail the gate.  Either way the
baseline no longer describes the benchmark and must be regenerated —
silently passing would leave the new workload ungated (or the old one
unmeasured) forever.

Exit code 0 = pass, 1 = regression / workload-key drift / malformed input.
"""

import json
import sys

# Per-workload tolerance overrides.  The default tolerance assumes the
# measured ratio is hardware-stable (algorithmic speedups are); a few
# workloads measure something hardware-dependent instead and only gate
# against outright collapse.
WORKLOAD_TOLERANCE = {
    # Full/NoSync = the price of the commit fsync barrier, which swings
    # with the filesystem and disk (tmpfs CI runners vs laptops vs SSDs).
    # A collapse to ~baseline/50 would still mean commits stopped
    # syncing; anything milder is machine variance, not a regression.
    "commit durability (Full vs NoSync)": 50.0,
    # Cold/warm = the price of re-reading (and CRC-verifying) every page
    # of a scan, which depends on whether the OS page cache soaks up the
    # "cold" reads (tmpfs CI runners vs real disks).  Only a wholesale
    # collapse — warm scans suddenly paying the cold path — should fail.
    "checksummed read (cold vs warm)": 50.0,
}


def speedups(path):
    """Map query label -> speedup ratio from an e13 report."""
    with open(path) as f:
        reports = json.load(f)
    for report in reports:
        if report.get("id") != "e13":
            continue
        headers = report["headers"]
        qi = headers.index("query")
        si = headers.index("speedup")
        out = {}
        for row in report["rows"]:
            ratio = row[si].rstrip("x")
            try:
                out[row[qi]] = float(ratio)
            except ValueError:
                continue  # "-" (unmeasurable) rows are not gated
        return out
    raise SystemExit(f"error: no e13 report found in {path}")


def main(argv):
    tolerance = 5.0
    args = []
    i = 0
    while i < len(argv):
        if argv[i] == "--tolerance":
            tolerance = float(argv[i + 1])
            i += 2
        else:
            args.append(argv[i])
            i += 1
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 1
    base = speedups(args[0])
    fresh = speedups(args[1])
    failed = False
    print(f"{'query':<24} {'baseline':>10} {'fresh':>10} {'floor':>10}  verdict")
    for label, base_s in sorted(base.items()):
        if label not in fresh:
            print(f"{label:<24} {base_s:>10.1f} {'missing':>10} {'':>10}  FAIL")
            failed = True
            continue
        floor = base_s / WORKLOAD_TOLERANCE.get(label, tolerance)
        fresh_s = fresh[label]
        verdict = "ok" if fresh_s >= floor else "FAIL"
        failed = failed or verdict == "FAIL"
        print(f"{label:<24} {base_s:>10.1f} {fresh_s:>10.1f} {floor:>10.1f}  {verdict}")
    for label in sorted(set(fresh) - set(base)):
        print(f"{label:<24} {'(absent)':>10} {fresh[label]:>10.1f} {'':>10}  FAIL")
        failed = True
    if failed:
        print(
            f"\nperf gate FAILED: a speedup regressed by more than {tolerance}x, "
            "or the workload keys drifted (a row added to or removed from the "
            "e13 table), against bench/baseline_e13.json.\nIf the change is "
            "intended, regenerate the baseline with:\n"
            "  cargo run -p bdbms-bench --release --bin reproduce -- e13 --json "
            "> bench/baseline_e13.json"
        )
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
