//! Fast regression guards for the paper's headline claims: if a future
//! change breaks the *shape* of a reproduced result (who wins, and that
//! the gap grows the right way), these tests fail long before anyone
//! reruns the full benchmark harness.

use bdbms::seq::gen;
use bdbms::seq::{SbcTree, StringBTree};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn corpus(n: usize, len: usize, mean_run: f64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(7);
    (0..n)
        .map(|_| gen::secondary_structure(&mut rng, len, mean_run))
        .collect()
}

fn build(corpus: &[Vec<u8>]) -> (StringBTree, SbcTree) {
    let mut sbt = StringBTree::new();
    let mut sbc = SbcTree::new();
    for t in corpus {
        sbt.insert_text(t);
        sbc.insert_sequence(t);
    }
    (sbt, sbc)
}

/// §7.2: "up to an order of magnitude reduction in storage" — the ratio
/// must favour the SBC-tree and grow with the mean run length.
#[test]
fn sbc_storage_claim_shape() {
    let short = corpus(40, 200, 4.0);
    let long = corpus(40, 200, 24.0);
    let (sbt_s, sbc_s) = build(&short);
    let (sbt_l, sbc_l) = build(&long);
    let ratio_short = sbt_s.storage_bytes() as f64 / sbc_s.storage_bytes() as f64;
    let ratio_long = sbt_l.storage_bytes() as f64 / sbc_l.storage_bytes() as f64;
    assert!(
        ratio_short > 1.2,
        "SBC must win even at short runs: {ratio_short}"
    );
    assert!(
        ratio_long > 2.0 * ratio_short,
        "the gap must grow with run length: {ratio_short} -> {ratio_long}"
    );
    assert!(
        ratio_long > 6.0,
        "long runs must approach the paper's 10x: {ratio_long}"
    );
}

/// §7.2: "up to 30% reduction in I/Os for the insertion operations" —
/// the SBC-tree must write fewer nodes, by at least the paper's margin.
#[test]
fn sbc_insertion_io_claim_shape() {
    let c = corpus(40, 200, 8.0);
    let (sbt, sbc) = build(&c);
    let sbt_writes = sbt.io_stats().writes as f64;
    let sbc_writes = sbc.io_stats().writes as f64;
    assert!(
        sbc_writes < sbt_writes * 0.7,
        "paper claims ≥30% fewer insertion I/Os: sbt={sbt_writes} sbc={sbc_writes}"
    );
}

/// §7.2: search performance retained — on long-run data the SBC-tree must
/// answer substring queries within a small factor of the String B-tree's
/// read I/O (and agree on results, which the property tests cover deeper).
#[test]
fn sbc_search_claim_shape() {
    let c = corpus(60, 300, 20.0);
    let (sbt, sbc) = build(&c);
    // The claim is about search cost in aggregate, so probe several
    // patterns and compare total I/O — a single pattern's ratio is noisy
    // (it depends on where the generated corpus happens to split nodes).
    let mut sbt_reads = 0;
    let mut sbc_reads = 0;
    let mut answered = 0usize;
    for i in 0..10 {
        let text = &c[(i * 6) % c.len()];
        let pat = &text[100..112];
        sbt.reset_io();
        let a = sbt.substring_search(pat);
        sbt_reads += sbt.io_stats().reads;
        sbc.reset_io();
        let b = sbc.substring_search(pat);
        sbc_reads += sbc.io_stats().reads;
        assert_eq!(a.len(), b.len(), "identical answers");
        answered += a.len();
    }
    assert!(answered > 0);
    let (sbt_reads, sbc_reads) = (sbt_reads.max(1), sbc_reads.max(1));
    assert!(
        sbc_reads <= sbt_reads * 4,
        "search I/O must stay comparable on long-run data: sbt={sbt_reads} sbc={sbc_reads}"
    );
}

/// §7.1: the SP-GiST trie must beat a B+-tree full scan on regex match by
/// a wide margin.
#[test]
fn spgist_regex_claim_shape() {
    use bdbms::index::regex::Regex;
    use bdbms::index::trie::{StrQuery, TrieOps};
    use bdbms::index::{BPlusTree, SpGist};
    let mut trie: SpGist<TrieOps, u32> = SpGist::new(TrieOps);
    let mut bpt: BPlusTree<Vec<u8>, u32> = BPlusTree::new();
    for i in 0..10_000 {
        let k = gen::gene_id(i).into_bytes();
        trie.insert(k.clone(), i as u32);
        bpt.insert(k, i as u32);
    }
    trie.stats().reset();
    let re = Regex::compile("JW00[0-9][05]").unwrap();
    let hits = trie.search(&StrQuery::Regex(re)).len();
    assert_eq!(hits, 20);
    let trie_reads = trie.stats().reads();
    let bpt_scan = bpt.node_count() as u64;
    assert!(
        trie_reads * 5 < bpt_scan,
        "trie regex must prune: {trie_reads} reads vs {bpt_scan}-node scan"
    );
}
