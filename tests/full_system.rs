//! Cross-crate integration tests: the full bdbms stack working together —
//! engine + annotations + dependencies + approval + provenance in one
//! scenario, and the access methods serving engine-shaped data.

use bdbms::common::Value;
use bdbms::core::provenance::{ProvOp, ProvenanceRecord};
use bdbms::core::Database;
use bdbms::index::trie::{StrQuery, TrieOps};
use bdbms::index::SpGist;
use bdbms::seq::{gen, RleSeq, SbcTree, StringBTree};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The whole paper in one scenario: load with provenance, annotate,
/// depend, approve, archive — and verify every manager's view at the end.
#[test]
fn e_coli_curation_scenario() {
    let mut db = Database::new_in_memory();

    // -- schema & users --
    db.execute("CREATE TABLE Gene (GID TEXT, GName TEXT, GSequence TEXT)")
        .unwrap();
    db.execute("CREATE TABLE Protein (PName TEXT, GID TEXT, PSequence TEXT, PFunction TEXT)")
        .unwrap();
    db.execute("CREATE ANNOTATION TABLE Comments ON Gene")
        .unwrap();
    db.execute("CREATE USER labadmin").unwrap();
    db.execute("CREATE USER alice IN GROUP lab1").unwrap();
    db.execute("GRANT SELECT, INSERT, UPDATE ON Gene TO lab1")
        .unwrap();
    db.execute("GRANT SELECT ON Protein TO lab1").unwrap();

    // -- dependency rules + executable tool --
    db.register_procedure("P", |args| match &args[0] {
        Value::Text(dna) => Value::Text(dna.as_bytes().chunks(3).map(|c| c[0] as char).collect()),
        _ => Value::Null,
    });
    db.execute(
        "CREATE DEPENDENCY RULE r1 FROM Gene.GSequence TO Protein.PSequence \
         VIA PROCEDURE 'P' EXECUTABLE LINK Gene.GID = Protein.GID",
    )
    .unwrap();
    db.execute(
        "CREATE DEPENDENCY RULE r2 FROM Protein.PSequence TO Protein.PFunction \
         VIA PROCEDURE 'lab-experiment'",
    )
    .unwrap();

    // -- load with provenance --
    db.execute("INSERT INTO Gene VALUES ('JW0080', 'mraW', 'ATGATGGAAAAA')")
        .unwrap();
    db.execute("INSERT INTO Protein VALUES ('mraW', 'JW0080', 'AAGA', 'Exhibitor')")
        .unwrap();
    db.record_provenance(
        "Gene",
        &[0],
        &[0, 1, 2],
        &ProvenanceRecord {
            source: "RegulonDB".into(),
            operation: ProvOp::Copy,
            program: Some("loader".into()),
            time: 0,
        },
    )
    .unwrap();

    // -- annotate through A-SQL --
    db.execute_as(
        "ADD ANNOTATION TO Gene.Comments VALUE 'verify against trace files' \
         ON (SELECT G.GSequence FROM Gene G WHERE GID = 'JW0080')",
        "alice",
    )
    .unwrap();

    // -- approval on; alice edits; change cascades immediately --
    db.execute("START CONTENT APPROVAL ON Gene COLUMNS GSequence APPROVED BY labadmin")
        .unwrap();
    db.execute_as(
        "UPDATE Gene SET GSequence = 'GTGGTGGTGGTG' WHERE GID = 'JW0080'",
        "alice",
    )
    .unwrap();
    // dependency: PSequence recomputed, PFunction outdated
    let qr = db.execute("SELECT PSequence FROM Protein").unwrap();
    assert_eq!(qr.rows[0].values[0], Value::Text("GGGG".into()));
    let outdated = db.execute("SHOW OUTDATED ON Protein").unwrap();
    assert_eq!(outdated.rows.len(), 1);

    // the pending edit is visible; the admin disapproves it
    let pending = db.execute("SHOW PENDING OPERATIONS ON Gene").unwrap();
    assert_eq!(pending.rows.len(), 1);
    let id = pending.rows[0].values[0].as_int().unwrap();
    db.execute_as(&format!("DISAPPROVE OPERATION {id}"), "labadmin")
        .unwrap();
    // inverse restored the gene AND the cascade recomputed the protein back
    let qr = db.execute("SELECT GSequence FROM Gene").unwrap();
    assert_eq!(qr.rows[0].values[0], Value::Text("ATGATGGAAAAA".into()));
    let qr = db.execute("SELECT PSequence FROM Protein").unwrap();
    assert_eq!(qr.rows[0].values[0], Value::Text("AAGA".into()));

    // -- queries see annotations + provenance + outdated flags together --
    let qr = db
        .execute(
            "SELECT GSequence FROM Gene ANNOTATION(Comments, provenance) \
             WHERE GID = 'JW0080'",
        )
        .unwrap();
    let anns: Vec<String> = qr.rows[0].anns[0].iter().map(|a| a.text()).collect();
    assert!(anns.iter().any(|a| a.contains("trace files")));
    assert!(anns.iter().any(|a| a.contains("RegulonDB")));

    // -- archive the comment; it stops propagating --
    db.execute(
        "ARCHIVE ANNOTATION FROM Gene.Comments \
         ON (SELECT G.GSequence FROM Gene G)",
    )
    .unwrap();
    let qr = db
        .execute("SELECT GSequence FROM Gene ANNOTATION(Comments)")
        .unwrap();
    assert!(qr.rows[0].anns[0].is_empty());

    // -- provenance time travel still answers --
    let src = db.source_of("Gene", 0, 2, db.now()).unwrap().unwrap();
    assert_eq!(src.source, "RegulonDB");
}

/// Sequences stored in the engine can be indexed by the access methods:
/// gene sequences go into an SBC-tree and are searchable without
/// decompression; results agree with a String B-tree and brute force.
#[test]
fn engine_data_flows_into_sequence_indexes() {
    let mut rng = StdRng::seed_from_u64(99);
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE SS (PID TEXT, Structure TEXT)")
        .unwrap();
    let mut corpus = Vec::new();
    for i in 0..40 {
        let s = gen::secondary_structure(&mut rng, 200, 9.0);
        let text = String::from_utf8(s.clone()).unwrap();
        db.execute(&format!("INSERT INTO SS VALUES ('P{i:03}', '{text}')"))
            .unwrap();
        corpus.push(s);
    }
    // pull the column out of the engine and index it
    let qr = db.execute("SELECT Structure FROM SS").unwrap();
    let mut sbc = SbcTree::new();
    let mut sbt = StringBTree::new();
    for row in &qr.rows {
        let s = row.values[0].as_text().unwrap().as_bytes();
        sbc.insert_sequence(s);
        sbt.insert_text(s);
    }
    assert_eq!(sbc.num_texts(), 40);
    let pat = &corpus[11][40..52];
    let a: Vec<(u32, u64)> = sbc
        .substring_search(pat)
        .into_iter()
        .map(|o| (o.text, o.pos))
        .collect();
    let mut b = sbt.substring_search(pat);
    b.sort_unstable();
    let mut naive = bdbms::seq::string_btree::naive_substring_search(&corpus, pat);
    naive.sort_unstable();
    assert_eq!(a, naive);
    assert_eq!(b, naive);
    assert!(!a.is_empty(), "pattern drawn from the corpus must occur");
    // compression really happened inside the SBC store
    let ratio = RleSeq::encode(&corpus[0]).compression_ratio();
    assert!(ratio > 1.0);
}

/// Gene identifiers indexed in an SP-GiST trie answer the id-style regex
/// queries the paper lists, consistently with a linear scan.
#[test]
fn gene_ids_in_spgist_trie() {
    let mut trie: SpGist<TrieOps, usize> = SpGist::new(TrieOps);
    let ids: Vec<String> = (0..5000).map(gen::gene_id).collect();
    for (i, id) in ids.iter().enumerate() {
        trie.insert(id.clone().into_bytes(), i);
    }
    let re = bdbms::index::regex::Regex::compile("JW00[0-9]2").unwrap();
    let hits = trie.search(&StrQuery::Regex(re)).len();
    let re = bdbms::index::regex::Regex::compile("JW00[0-9]2").unwrap();
    let naive = ids.iter().filter(|s| re.is_match(s.as_bytes())).count();
    assert_eq!(hits, naive);
    assert_eq!(hits, 10);
}

/// The storage engine under the database survives buffer-pool pressure:
/// a tiny pool forces evictions while the engine runs a full workload.
#[test]
fn engine_correct_under_tiny_buffer_pool() {
    use bdbms::storage::{BufferPool, MemStore};
    use std::sync::Arc;
    let pool = Arc::new(BufferPool::new(Box::new(MemStore::new()), 4));
    let mut db = Database::with_pool(pool.clone());
    db.execute("CREATE TABLE T (id INT, payload TEXT)").unwrap();
    for i in 0..500 {
        db.execute(&format!(
            "INSERT INTO T VALUES ({i}, 'payload-{i}-{}')",
            "x".repeat(100)
        ))
        .unwrap();
    }
    db.execute("UPDATE T SET payload = 'rewritten' WHERE id % 7 = 0")
        .unwrap();
    db.execute("DELETE FROM T WHERE id % 13 = 0").unwrap();
    let qr = db.execute("SELECT COUNT(*) FROM T").unwrap();
    let expect = (0..500).filter(|i| i % 13 != 0).count() as i64;
    assert_eq!(qr.rows[0].values[0], Value::Int(expect));
    let qr = db
        .execute("SELECT COUNT(*) FROM T WHERE payload = 'rewritten'")
        .unwrap();
    let expect = (0..500).filter(|i| i % 13 != 0 && i % 7 == 0).count() as i64;
    assert_eq!(qr.rows[0].values[0], Value::Int(expect));
    // the tiny pool really did hit the backing store: the table spans more
    // pages than the pool holds, so scans fault pages back in
    let io = pool.io_stats();
    assert!(
        io.reads > 10,
        "scans over an evicted table must re-read pages"
    );
    assert!(io.writes > 5, "dirty evictions must have written pages");
}
