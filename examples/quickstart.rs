//! Quickstart: the paper's running example, end to end.
//!
//! Builds the Figure 2 gene tables, adds the annotations A1–A3 / B1–B5 at
//! their paper granularities (cells, rows, columns), and then runs the §3
//! motivating query — *genes common to both tables, with all their
//! annotations* — as ONE A-SQL statement instead of the three manual SQL
//! steps the paper shows.
//!
//! Run with: `cargo run --example quickstart`

use bdbms::core::Database;

fn main() {
    let mut db = Database::new_in_memory();

    // ---- schema + annotation tables (Figure 4) ----
    for t in ["DB1_Gene", "DB2_Gene"] {
        db.execute(&format!(
            "CREATE TABLE {t} (GID TEXT, GName TEXT, GSequence TEXT)"
        ))
        .unwrap();
        db.execute(&format!("CREATE ANNOTATION TABLE GAnnotation ON {t}"))
            .unwrap();
    }

    // ---- data (Figure 2) ----
    for (gid, name, seq) in [
        ("JW0080", "mraW", "ATGATGGAAAA"),
        ("JW0082", "ftsI", "ATGAAAGCAGC"),
        ("JW0055", "yabP", "ATGAAAGTATC"),
        ("JW0078", "fruR", "GTGAAACTGGA"),
    ] {
        db.execute(&format!(
            "INSERT INTO DB1_Gene VALUES ('{gid}', '{name}', '{seq}')"
        ))
        .unwrap();
    }
    for (gid, name, seq) in [
        ("JW0080", "mraW", "ATGATGGAAAA"),
        ("JW0041", "fixB", "ATGAACACGTT"),
        ("JW0037", "caiB", "ATGGATCATCT"),
        ("JW0027", "ispH", "ATGCAGATCCT"),
        ("JW0055", "yabP", "ATGAAAGTATC"),
    ] {
        db.execute(&format!(
            "INSERT INTO DB2_Gene VALUES ('{gid}', '{name}', '{seq}')"
        ))
        .unwrap();
    }

    // ---- annotations at the paper's granularities (§3.2, Figure 6a) ----
    // A2: row-granularity over two tuples
    db.execute(
        "ADD ANNOTATION TO DB1_Gene.GAnnotation \
         VALUE '<Annotation>A2: These genes were obtained from RegulonDB</Annotation>' \
         ON (SELECT G.* FROM DB1_Gene G WHERE GID IN ('JW0055', 'JW0078'))",
    )
    .unwrap();
    // A3: single-cell granularity
    db.execute(
        "ADD ANNOTATION TO DB1_Gene.GAnnotation \
         VALUE 'A3: Involved in methyltransferase activity' \
         ON (SELECT G.GSequence FROM DB1_Gene G WHERE GID = 'JW0080')",
    )
    .unwrap();
    // B3: column granularity — the paper's verbatim example
    db.execute(
        "ADD ANNOTATION TO DB2_Gene.GAnnotation \
         VALUE '<Annotation>B3: obtained from GenoBase</Annotation>' \
         ON (SELECT G.GSequence FROM DB2_Gene G)",
    )
    .unwrap();
    // B5: tuple granularity — the paper's verbatim example
    db.execute(
        "ADD ANNOTATION TO DB2_Gene.GAnnotation \
         VALUE '<Annotation>B5: This gene has an unknown function</Annotation>' \
         ON (SELECT G.* FROM DB2_Gene G WHERE GID = 'JW0080')",
    )
    .unwrap();

    // ---- the §3 motivating query, as one A-SQL statement ----
    println!("Genes common to DB1_Gene and DB2_Gene, annotations propagated:\n");
    let result = db
        .execute(
            "SELECT GID, GName, GSequence FROM DB1_Gene ANNOTATION(GAnnotation) \
             INTERSECT \
             SELECT GID, GName, GSequence FROM DB2_Gene ANNOTATION(GAnnotation) \
             ORDER BY GID",
        )
        .unwrap();
    println!("{result}");

    // ---- annotation-based querying (Figure 7) ----
    println!("Genes whose annotations mention RegulonDB (AWHERE):\n");
    let result = db
        .execute(
            "SELECT GID FROM DB1_Gene ANNOTATION(GAnnotation) \
             AWHERE CONTAINS 'RegulonDB' ORDER BY GID",
        )
        .unwrap();
    println!("{result}");

    // ---- archival (§3.3): the function of JW0080 becomes known ----
    db.execute(
        "ARCHIVE ANNOTATION FROM DB2_Gene.GAnnotation \
         ON (SELECT G.GName FROM DB2_Gene G WHERE GID = 'JW0080')",
    )
    .unwrap();
    println!("After archiving B5 (function became known), JW0080 carries:\n");
    let result = db
        .execute("SELECT * FROM DB2_Gene ANNOTATION(GAnnotation) WHERE GID = 'JW0080'")
        .unwrap();
    println!("{result}");
}
