//! The Figure 9 / Figure 10 pipeline: local dependency tracking.
//!
//! Gene sequences feed protein sequences through an executable prediction
//! tool `P`; protein functions come from (non-executable) lab experiments;
//! BLAST E-values are recomputable from sequence pairs.  When a gene is
//! edited, bdbms recomputes what it can and marks the rest outdated —
//! exactly the Figure 10 bitmap.
//!
//! Run with: `cargo run --example protein_pipeline`

use bdbms::common::Value;
use bdbms::core::Database;

/// Toy stand-in for the paper's prediction tool: one residue per codon.
fn translate(dna: &str) -> String {
    dna.as_bytes().chunks(3).map(|c| c[0] as char).collect()
}

fn main() {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE Gene (GID TEXT, GName TEXT, GSequence TEXT)")
        .unwrap();
    db.execute("CREATE TABLE Protein (PName TEXT, GID TEXT, PSequence TEXT, PFunction TEXT)")
        .unwrap();
    db.execute("CREATE TABLE GeneMatching (Gene1 TEXT, Gene2 TEXT, Evalue FLOAT)")
        .unwrap();

    // executable procedures (§5): the DBMS can re-run these
    db.register_procedure("P", |args| match &args[0] {
        Value::Text(dna) => Value::Text(translate(dna)),
        _ => Value::Null,
    });
    db.register_procedure("BLAST-2.2.15", |args| {
        let (a, b) = (
            args[0].as_text().unwrap_or(""),
            args[1].as_text().unwrap_or(""),
        );
        let shared = a.bytes().zip(b.bytes()).take_while(|(x, y)| x == y).count();
        Value::Float((-(shared as f64)).exp())
    });

    // the paper's rules 1–3
    db.execute(
        "CREATE DEPENDENCY RULE r1 FROM Gene.GSequence TO Protein.PSequence \
         VIA PROCEDURE 'P' EXECUTABLE LINK Gene.GID = Protein.GID",
    )
    .unwrap();
    db.execute(
        "CREATE DEPENDENCY RULE r2 FROM Protein.PSequence TO Protein.PFunction \
         VIA PROCEDURE 'lab-experiment'",
    )
    .unwrap();
    db.execute(
        "CREATE DEPENDENCY RULE r3 FROM GeneMatching.Gene1, GeneMatching.Gene2 \
         TO GeneMatching.Evalue VIA PROCEDURE 'BLAST-2.2.15' EXECUTABLE",
    )
    .unwrap();

    // the derived Rule 4 the paper infers: Gene.GSequence → Protein.PFunction
    println!("Derived rules (the paper's Rule 4):");
    for d in db.dependencies().derived_rules() {
        println!(
            "  {:?} -> {:?} via {:?} (executable: {}, invertible: {})",
            d.src, d.dst, d.chain, d.executable, d.invertible
        );
    }
    println!();

    // load the Figure 9 data
    for (gid, name, seq) in [
        ("JW0080", "mraW", "ATGATGGAAAAA"),
        ("JW0082", "ftsI", "ATGAAAGCAGCA"),
        ("JW0055", "yabP", "ATGAAAGTATCA"),
    ] {
        db.execute(&format!(
            "INSERT INTO Gene VALUES ('{gid}', '{name}', '{seq}')"
        ))
        .unwrap();
        db.execute(&format!(
            "INSERT INTO Protein VALUES ('{name}', '{gid}', '{}', '{}')",
            translate(seq),
            match name {
                "mraW" => "Exhibitor",
                "ftsI" => "Cell wall formation",
                _ => "Hypothetical protein",
            }
        ))
        .unwrap();
    }
    db.execute("INSERT INTO GeneMatching VALUES ('ATCCTGGTT', 'ATCCCGGTT', 1.0)")
        .unwrap();

    println!(
        "Initial state:\n{}",
        db.execute("SELECT * FROM Protein").unwrap()
    );

    // ---- the Figure 10 scenario: modify two gene sequences ----
    for gid in ["JW0080", "JW0082"] {
        db.execute(&format!(
            "UPDATE Gene SET GSequence = 'GTGGTGGTGGTG' WHERE GID = '{gid}'"
        ))
        .unwrap();
    }
    println!("After editing the genes of mraW and ftsI:");
    println!("- PSequence was recomputed automatically (procedure P is executable)");
    println!("- PFunction was marked outdated (lab experiments are not)\n");
    println!("{}", db.execute("SELECT * FROM Protein").unwrap());
    println!("Outdated cells (the Figure 10 bitmap):\n");
    println!("{}", db.execute("SHOW OUTDATED").unwrap());

    // queries over outdated data warn via propagated annotations (§5)
    println!("Query answers over outdated items carry a warning annotation:\n");
    println!(
        "{}",
        db.execute("SELECT PName, PFunction FROM Protein WHERE GID = 'JW0080'")
            .unwrap()
    );

    // ---- re-running the lab experiment validates the cell ----
    db.execute(
        "UPDATE Protein SET PFunction = 'Methyltransferase (re-assayed)' WHERE GID = 'JW0080'",
    )
    .unwrap();
    db.execute("VALIDATE Protein COLUMNS PFunction WHERE GID = 'JW0082'")
        .unwrap();
    println!("After re-assaying mraW and revalidating ftsI:\n");
    println!("{}", db.execute("SHOW OUTDATED").unwrap());

    // ---- closure queries (§5 reasoning) ----
    println!(
        "Closure of Gene.GSequence: {:?}",
        db.dependencies().closure_of_attribute("Gene", "GSequence")
    );
    println!(
        "Closure of procedure BLAST-2.2.15 (what a version upgrade touches): {:?}",
        db.dependencies().closure_of_procedure("BLAST-2.2.15")
    );
}
