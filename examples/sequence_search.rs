//! Sequence search through SQL (§7.2): `COPY`, `CREATE SEQUENCE INDEX`,
//! `CONTAINS SEQ`, and `SUBSEQ`.
//!
//! Earlier revisions of this example drove the SBC-tree and String
//! B-tree APIs directly; the whole workflow is now surfaced in SQL, so
//! this walks the curation path a biologist would take:
//!
//! 1. bulk-load a FASTA dump with `COPY … FORMAT FASTA`,
//! 2. index the sequence column with `CREATE SEQUENCE INDEX … USING SBC`
//!    (the RLE-compressed SBC-tree; `USING SUFFIX` picks the
//!    uncompressed String B-tree baseline),
//! 3. search with `WHERE col CONTAINS SEQ '<pattern>'` — the planner
//!    routes the predicate through the sequence index, visible in the
//!    execution stats — and slice with `SUBSEQ(col, lo, hi)`.
//!
//! Run with: `cargo run --release --example sequence_search`

use std::fmt::Write as _;

use bdbms::core::executor::ExecOptions;
use bdbms::core::Database;
use bdbms::seq::gen;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let mut db = Database::new_in_memory();

    // ---- 1. write a FASTA dump and COPY it in ----
    let mut fasta = String::new();
    let mut corpus = Vec::new();
    for i in 0..300 {
        let seq = gen::secondary_structure(&mut rng, 400, 10.0);
        writeln!(fasta, ">{} protein secondary structure", gen::gene_id(i)).unwrap();
        for chunk in seq.chunks(60) {
            writeln!(fasta, "{}", String::from_utf8_lossy(chunk)).unwrap();
        }
        corpus.push(seq);
    }
    let path = std::env::temp_dir().join(format!("bdbms-example-{}.fasta", std::process::id()));
    std::fs::write(&path, fasta).unwrap();

    db.execute("CREATE TABLE Prot (Hdr TEXT, SS TEXT)").unwrap();
    let r = db
        .execute(&format!("COPY Prot FROM '{}' FORMAT FASTA", path.display()))
        .unwrap();
    println!("{}", r.message.as_deref().unwrap_or_default());
    std::fs::remove_file(&path).ok();

    // ---- 2. index the sequence column ----
    db.execute("CREATE SEQUENCE INDEX ss_idx ON Prot (SS) USING SBC")
        .unwrap();
    println!("sequence index `ss_idx` created (SBC-tree, RLE-compressed)\n");

    // ---- 3. substring search: indexed vs naive ----
    // A pattern cut from a stored sequence, so it is guaranteed to hit.
    let pat = String::from_utf8_lossy(&corpus[17][40..64]).into_owned();
    let sql = format!("SELECT Hdr FROM Prot WHERE SS CONTAINS SEQ '{pat}'");
    let (naive, ns) = db.query_traced(&sql, &ExecOptions::naive()).unwrap();
    let (opt, os) = db.query_traced(&sql, &ExecOptions::default()).unwrap();
    assert_eq!(naive.rows.len(), opt.rows.len());
    println!("CONTAINS SEQ '{pat}'");
    println!("  {} matching protein(s):", opt.rows.len());
    for row in &opt.rows {
        println!("    {}", row.values[0]);
    }
    println!(
        "  naive:   full scans = {}, rows fetched = {}",
        ns.full_scans, ns.rows_fetched
    );
    println!(
        "  planned: seq-index probes = {}, rows fetched = {}, via {:?}\n",
        os.seq_index_probes, os.rows_fetched, os.chosen_indexes
    );

    // ---- negation falls back to a scan (the index prunes, it cannot
    //      enumerate non-matches) ----
    let (miss, ms) = db
        .query_traced(
            &format!("SELECT COUNT(*) FROM Prot WHERE SS NOT CONTAINS SEQ '{pat}'"),
            &ExecOptions::default(),
        )
        .unwrap();
    println!(
        "NOT CONTAINS SEQ: {} proteins, full scans = {} (negation cannot use the index)\n",
        miss.rows[0].values[0], ms.full_scans
    );

    // ---- 4. SUBSEQ slices (1-based, inclusive) ----
    let (slice, _) = db
        .query_traced(
            "SELECT Hdr, SUBSEQ(SS, 1, 24) FROM Prot WHERE Hdr LIKE 'JW0017%'",
            &ExecOptions::default(),
        )
        .unwrap();
    for row in &slice.rows {
        println!("SUBSEQ(SS, 1, 24) of {}: {}", row.values[0], row.values[1]);
    }
}
