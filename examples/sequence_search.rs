//! Searching compressed sequences without decompressing them (§7.2,
//! Figure 12) — plus the SP-GiST access methods (§7.1).
//!
//! Generates protein secondary structures shaped like Figure 12's
//! (`LLLEEEEEEEHHHH…`), stores them RLE-compressed in an SBC-tree, and
//! runs substring / prefix / range queries against both the SBC-tree and
//! the uncompressed String B-tree baseline, printing the storage and I/O
//! comparison the paper claims.  Then demonstrates the SP-GiST trie's
//! regex matching over gene names.
//!
//! Run with: `cargo run --release --example sequence_search`

use bdbms::index::regex::Regex;
use bdbms::index::trie::{StrQuery, TrieOps};
use bdbms::index::SpGist;
use bdbms::seq::gen;
use bdbms::seq::rle::RleSeq;
use bdbms::seq::{SbcTree, StringBTree};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // ---- Figure 12: RLE compression of secondary structures ----
    let demo = gen::secondary_structure(&mut rng, 120, 8.0);
    let rle = RleSeq::encode(&demo);
    println!("Protein secondary structure:");
    println!("  {}", String::from_utf8_lossy(&demo));
    println!("RLE compressed form (as in Figure 12):");
    println!("  {}", rle.to_text());
    println!(
        "  {} chars -> {} runs ({:.1}x compression)\n",
        demo.len(),
        rle.num_runs(),
        rle.compression_ratio()
    );

    // ---- index 300 sequences in both structures ----
    let mut sbc = SbcTree::new();
    let mut sbt = StringBTree::new();
    let mut texts = Vec::new();
    for _ in 0..300 {
        let s = gen::secondary_structure(&mut rng, 400, 10.0);
        sbc.insert_sequence(&s);
        sbt.insert_text(&s);
        texts.push(s);
    }
    println!(
        "Indexed 300 sequences of 400 residues ({} total chars):",
        texts.iter().map(|t| t.len()).sum::<usize>()
    );
    println!(
        "  String B-tree (uncompressed): {:>9} bytes, {} suffixes",
        sbt.storage_bytes(),
        sbt.num_suffixes()
    );
    println!(
        "  SBC-tree (RLE-compressed):    {:>9} bytes, {} suffixes",
        sbc.storage_bytes(),
        sbc.num_suffixes()
    );
    println!(
        "  storage ratio: {:.1}x (paper: \"up to an order of magnitude\")\n",
        sbt.storage_bytes() as f64 / sbc.storage_bytes() as f64
    );

    // ---- substring search over the compressed data ----
    let pattern = b"HHHHEEEE";
    sbc.reset_io();
    sbt.reset_io();
    let hits_sbc = sbc.substring_search(pattern);
    let io_sbc = sbc.io_stats();
    let hits_sbt = sbt.substring_search(pattern);
    let io_sbt = sbt.io_stats();
    assert_eq!(hits_sbc.len(), hits_sbt.len());
    println!(
        "Substring search '{}': {} occurrences",
        String::from_utf8_lossy(pattern),
        hits_sbc.len()
    );
    println!("  SBC-tree reads:      {}", io_sbc.reads);
    println!("  String B-tree reads: {}\n", io_sbt.reads);

    // ---- prefix + range search ----
    let prefix = &texts[17][..10];
    let p_hits = sbc.prefix_search(prefix);
    println!(
        "Prefix search '{}': texts {:?}",
        String::from_utf8_lossy(prefix),
        p_hits
    );
    let lo = b"EE";
    let hi = b"EL";
    println!(
        "Range search ['EE','EL'): {} texts\n",
        sbc.range_search(lo, hi).len()
    );

    // ---- SP-GiST trie regex search over gene names (§7.1) ----
    let mut trie: SpGist<TrieOps, usize> = SpGist::new(TrieOps);
    for i in 0..2000 {
        trie.insert(gen::gene_id(i).into_bytes(), i);
    }
    let re = Regex::compile("JW00[0-2][0-9]").unwrap();
    trie.stats().reset();
    let hits = trie.search(&StrQuery::Regex(re));
    println!(
        "SP-GiST trie regex 'JW00[0-2][0-9]' over 2000 gene ids: {} hits, \
         {} node reads (of {} nodes)",
        hits.len(),
        trie.stats().reads(),
        trie.node_count()
    );
}
