//! A community-curated gene database (§4 + §6 of the paper).
//!
//! The paper's motivation: biological databases are curated by the
//! community, so the DBMS must (a) track where every value came from, and
//! (b) let lab members contribute updates that the lab administrator
//! approves or disapproves *by content*.
//!
//! This example plays through that workflow:
//! 1. an integration tool loads genes from two sources, recording
//!    provenance (Figure 8);
//! 2. content approval is switched on (Figure 11);
//! 3. a lab member fixes a sequence — visible immediately but pending;
//! 4. the lab admin disapproves one change (auto-generated inverse undoes
//!    it) and approves another;
//! 5. provenance time-travel answers "what was the source of this value
//!    at time T?".
//!
//! Run with: `cargo run --example curated_gene_db`

use bdbms::core::provenance::{ProvOp, ProvenanceRecord};
use bdbms::core::Database;

fn main() {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE Gene (GID TEXT, GName TEXT, GSequence TEXT)")
        .unwrap();
    db.execute("CREATE USER labadmin").unwrap();
    db.execute("CREATE USER alice IN GROUP lab1").unwrap();
    db.execute("CREATE USER bob IN GROUP lab1").unwrap();
    db.execute("GRANT SELECT, INSERT, UPDATE, DELETE ON Gene TO lab1")
        .unwrap();

    // ---- 1. integration tool loads data, recording provenance ----
    for (gid, name, seq, src) in [
        ("JW0080", "mraW", "ATGATGGAAAA", "RegulonDB"),
        ("JW0082", "ftsI", "ATGAAAGCAGC", "RegulonDB"),
        ("JW0055", "yabP", "ATGAAAGTATC", "GenoBase"),
    ] {
        db.execute(&format!(
            "INSERT INTO Gene VALUES ('{gid}', '{name}', '{seq}')"
        ))
        .unwrap();
        let row = db.catalog().table("Gene").unwrap().len() as u64 - 1;
        db.record_provenance(
            "Gene",
            &[row],
            &[0, 1, 2],
            &ProvenanceRecord {
                source: src.into(),
                operation: ProvOp::Copy,
                program: Some("loader-v1".into()),
                time: 0,
            },
        )
        .unwrap();
    }
    let t_loaded = db.now();

    // ---- 2. content approval on the sequence column (Figure 11) ----
    db.execute("START CONTENT APPROVAL ON Gene COLUMNS GSequence APPROVED BY labadmin")
        .unwrap();

    // ---- 3. lab members edit; changes pending but visible ----
    db.execute_as(
        "UPDATE Gene SET GSequence = 'ATGATGGAAAC' WHERE GID = 'JW0080'",
        "alice",
    )
    .unwrap();
    db.execute_as(
        "UPDATE Gene SET GSequence = 'TTTTTTTTTTT' WHERE GID = 'JW0082'",
        "bob",
    )
    .unwrap();
    println!("Pending operations (visible to the lab admin):\n");
    println!("{}", db.execute("SHOW PENDING OPERATIONS").unwrap());

    // ---- 4. the admin reviews by content ----
    let pending = db.execute("SHOW PENDING OPERATIONS").unwrap();
    let (mut approve_id, mut reject_id) = (None, None);
    for row in &pending.rows {
        let id = row.values[0].as_int().unwrap();
        let desc = row.values[5].to_string();
        let user = row.values[2].to_string();
        // content-based decision: a sequence of all T's is clearly bogus
        if user == "bob" {
            reject_id = Some(id);
        } else {
            approve_id = Some(id);
        }
        println!("reviewing op {id} by {user}: {desc}");
    }
    db.execute_as(
        &format!("APPROVE OPERATION {}", approve_id.unwrap()),
        "labadmin",
    )
    .unwrap();
    db.execute_as(
        &format!("DISAPPROVE OPERATION {}", reject_id.unwrap()),
        "labadmin",
    )
    .unwrap();
    println!("\nAfter review (bob's bogus edit was undone by its inverse):\n");
    println!("{}", db.execute("SELECT * FROM Gene ORDER BY GID").unwrap());

    // ---- 5. provenance time travel (Figure 8) ----
    let src_then = db.source_of("Gene", 0, 2, t_loaded).unwrap().unwrap();
    println!(
        "Source of JW0080.GSequence at load time: {} (via {})",
        src_then.source,
        src_then.program.as_deref().unwrap_or("-")
    );
    // record the curation as provenance too
    db.record_provenance(
        "Gene",
        &[0],
        &[2],
        &ProvenanceRecord {
            source: "curation:alice".into(),
            operation: ProvOp::ProgramUpdate,
            program: None,
            time: 0,
        },
    )
    .unwrap();
    let src_now = db.source_of("Gene", 0, 2, db.now()).unwrap().unwrap();
    println!("Source of JW0080.GSequence now: {}", src_now.source);

    // provenance is queryable through plain A-SQL as well
    println!("\nGenes with RegulonDB provenance:\n");
    println!(
        "{}",
        db.execute(
            "SELECT GID FROM Gene ANNOTATION(provenance) \
             AWHERE PATH '/Annotation/source' = 'RegulonDB' ORDER BY GID",
        )
        .unwrap()
    );
}
