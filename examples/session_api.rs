//! Session API walkthrough: prepared statements, parameter binding,
//! streaming cursors, and structured errors.
//!
//! The paper's users hit the database with near-identical statements
//! over and over (curators annotating genes, pipelines re-checking
//! sequences).  This example shows the production-style path for that
//! workload: prepare once, bind parameters per call, stream results,
//! and branch on machine-readable error codes.
//!
//! Run with: `cargo run --example session_api`

use bdbms::common::{ErrorCode, Value};
use bdbms::core::Database;

fn main() {
    let mut db = Database::new_in_memory();

    // ---- schema + a few thousand rows ----
    db.execute("CREATE TABLE Gene (GID TEXT, GName TEXT, Len INT)")
        .unwrap();
    db.execute("CREATE ANNOTATION TABLE Curation ON Gene")
        .unwrap();
    let mut i = 0;
    while i < 5000 {
        let hi = (i + 500).min(5000);
        let rows: Vec<String> = (i..hi)
            .map(|r| format!("('JW{r:06}', 'gene{r}', {r})"))
            .collect();
        db.execute(&format!("INSERT INTO Gene VALUES {}", rows.join(", ")))
            .unwrap();
        i = hi;
    }
    db.execute("CREATE INDEX len_idx ON Gene (Len)").unwrap();
    db.execute(
        "ADD ANNOTATION TO Gene.Curation VALUE 'curated against GenoBase' \
         ON (SELECT G.GID FROM Gene G WHERE Len < 10)",
    )
    .unwrap();

    // ---- prepare once, execute many ----
    let session = db.session("admin");
    let point = session
        .prepare("SELECT GID, GName FROM Gene ANNOTATION(Curation) WHERE Len = ?")
        .unwrap();
    println!(
        "prepared `{}` with {} parameter slot(s)",
        point.sql(),
        point.param_count()
    );
    for k in [3i64, 1500, 4999] {
        let mut cursor = session.query(&point, &[Value::Int(k)]).unwrap();
        while let Some(row) = cursor.next_row().unwrap() {
            let anns: Vec<String> = row.anns[0].iter().map(|a| a.text()).collect();
            println!(
                "  Len = {k:>4} -> {} ({}) annotations: {anns:?}",
                row.values[0], row.values[1]
            );
        }
        let stats = cursor.stats();
        println!(
            "    [stats] index probes: {}, rows fetched: {}",
            stats.index_probes, stats.rows_fetched
        );
    }
    println!(
        "plan cached after first execution: {}",
        point.has_cached_plan()
    );

    // ---- streaming: the cursor pulls rows off the pipeline lazily ----
    let scan = session.prepare("SELECT GID FROM Gene").unwrap();
    let mut cursor = session.query(&scan, &[]).unwrap();
    for _ in 0..3 {
        cursor.next_row().unwrap();
    }
    println!(
        "pulled 3 of 5000 rows; heap fetches so far: {} (nothing materialized)",
        cursor.stats().rows_fetched
    );
    drop(cursor);

    // ---- numbered parameters + prepared DML ----
    let mut session = session;
    let rename = session
        .prepare("UPDATE Gene SET GName = $2 WHERE GID = $1")
        .unwrap();
    let n = session
        .execute(
            &rename,
            &[Value::Text("JW000003".into()), Value::Text("mraW".into())],
        )
        .unwrap()
        .affected;
    println!("prepared UPDATE renamed {n} row(s)");

    // ---- structured errors: branch on the code, not the message ----
    let bad = session
        .prepare("SELECT GID FROM Gene WHERE Len = ?")
        .unwrap();
    match session.query(&bad, &[]) {
        Err(e) if e.code() == ErrorCode::ParamMismatch => {
            println!("caught as expected: {e}")
        }
        other => panic!("expected a parameter-count error, got {other:?}"),
    }
    match session.run("SELECT GID FRM Gene") {
        Err(e) if e.code() == ErrorCode::Syntax => {
            let span = e.span.expect("syntax errors carry spans");
            println!(
                "caught as expected: {e} (offending text: `{}`)",
                &"SELECT GID FRM Gene"[span.start..span.end]
            );
        }
        other => panic!("expected a syntax error, got {other:?}"),
    }

    println!("session walkthrough complete");
}
