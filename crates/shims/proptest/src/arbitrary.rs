//! `any::<T>()` for the proptest shim.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (`any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // bias towards small magnitudes half the time — boundary
                // and small values find more bugs than uniform 64-bit noise
                let raw = rng.next_u64();
                let full = rng.next_u64() as $t;
                if raw & 1 == 0 {
                    full % (100 as $t)
                } else {
                    full
                }
            }
        }
    )*};
}

int_arbitrary!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        match rng.next_u64() % 8 {
            0 => 0.0,
            1 => -0.0,
            2 => f64::INFINITY,
            3 => f64::NEG_INFINITY,
            4 => f64::NAN,
            // from_bits covers subnormals / extreme exponents / NaNs
            _ => f64::from_bits(rng.next_u64()),
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // printable ASCII most of the time, arbitrary scalar otherwise
        if rng.next_u64() & 3 != 0 {
            (0x20 + rng.usize_below(0x5f) as u32 as u8) as char
        } else {
            char::from_u32(rng.next_u64() as u32 % 0x11_0000).unwrap_or('\u{FFFD}')
        }
    }
}
