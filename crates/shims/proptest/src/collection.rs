//! Collection strategies for the proptest shim.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Vec<S::Value>` with a length drawn from `len` (half-open).
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(
        len.start < len.end,
        "empty length range for collection::vec"
    );
    VecStrategy { element, len }
}

/// Strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.start + rng.usize_below(self.len.end - self.len.start);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
