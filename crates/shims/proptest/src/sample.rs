//! Sampling strategies for the proptest shim.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy that picks a uniformly random element of `items`.
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "sample::select over an empty vec");
    Select { items }
}

/// Strategy returned by [`select`].
pub struct Select<T> {
    items: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.items[rng.usize_below(self.items.len())].clone()
    }
}
