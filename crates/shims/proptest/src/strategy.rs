//! The [`Strategy`] trait and combinators for the proptest shim.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// just draws one value from the RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discard values failing `f` (rejection-sampled, bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Chain a dependent strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Result of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates: {}", self.whence);
    }
}

/// Result of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Equal-weight choice among several strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.usize_below(self.arms.len());
        self.arms[i].generate(rng)
    }
}

// ---- ranges ----

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.f64_unit() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.f64_unit() * (hi - lo)
    }
}

// ---- tuples ----

macro_rules! tuple_strategy {
    ($(($($s:ident/$i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

// ---- string regex subset ----

/// `&str` strategies: a subset of proptest's regex syntax covering what
/// the bdbms tests use — one character class with optional ranges,
/// followed by a `{lo,hi}` repetition (e.g. `"[a-zA-Z0-9 ]{0,40}"`).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_class_repeat(self)
            .unwrap_or_else(|| panic!("proptest shim: unsupported string regex `{self}`"));
        let len = lo + rng.usize_below(hi - lo + 1);
        (0..len)
            .map(|_| alphabet[rng.usize_below(alphabet.len())])
            .collect()
    }
}

/// Parse `[class]{lo,hi}` (also bare `[class]`, meaning one repetition).
fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    if class.is_empty() {
        return None;
    }
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i], class[i + 2]);
            if a > b {
                return None;
            }
            for c in a..=b {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    let tail = &rest[close + 1..];
    if tail.is_empty() {
        return Some((alphabet, 1, 1));
    }
    let counts = tail.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match counts.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    if lo > hi {
        return None;
    }
    Some((alphabet, lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_parser_handles_used_patterns() {
        let (a, lo, hi) = parse_class_repeat("[a-zA-Z0-9 ]{0,40}").unwrap();
        assert_eq!(a.len(), 26 + 26 + 10 + 1);
        assert_eq!((lo, hi), (0, 40));
        let (a, lo, hi) = parse_class_repeat("[a-c]{0,4}").unwrap();
        assert_eq!(a, vec!['a', 'b', 'c']);
        assert_eq!((lo, hi), (0, 4));
        let (a, lo, hi) = parse_class_repeat("[HEL]").unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!((lo, hi), (1, 1));
        assert!(parse_class_repeat("abc").is_none());
    }
}
