//! Config and deterministic RNG for the proptest shim.

/// Subset of proptest's config: just the case count.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic SplitMix64 generator seeded from the test name, so
/// every run of a given test sees the same input sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded from `name` (FNV-1a).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; panics when `n == 0`.
    pub fn usize_below(&mut self, n: usize) -> usize {
        assert!(n > 0, "usize_below(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Reports the failing case number when a test body panics (the shim has
/// no shrinking, so the case number is the reproduction handle).
pub struct CaseGuard {
    name: &'static str,
    case: u32,
    done: bool,
}

impl CaseGuard {
    /// Guard for one case of `name`.
    pub fn new(name: &'static str, case: u32) -> Self {
        CaseGuard {
            name,
            case,
            done: false,
        }
    }

    /// Mark the case as passed (suppresses the failure note).
    pub fn passed(mut self) {
        self.done = true;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if !self.done && std::thread::panicking() {
            eprintln!(
                "proptest shim: `{}` failed at generated case #{} \
                 (deterministic: rerun reproduces it)",
                self.name, self.case
            );
        }
    }
}
