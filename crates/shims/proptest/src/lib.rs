//! Offline shim for the `proptest` crate.
//!
//! The build container has no network access, so this workspace-local
//! crate implements the subset of proptest the bdbms test suites use:
//! the [`strategy::Strategy`] trait with `prop_map`, [`arbitrary::any`],
//! range / tuple / string-regex strategies, [`collection::vec`],
//! [`sample::select`], `prop_oneof!`, and the `proptest!` test macro.
//!
//! Inputs are generated from a deterministic per-test seed (so failures
//! reproduce), but there is **no shrinking**: a failing case panics with
//! the assertion message and its case number.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Items `use proptest::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` namespace (`prop::collection::vec`, `prop::sample::select`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// One random arm of several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skip the current case when an assumption fails.  The shim counts the
/// case as run (no resampling), which is sound — just slightly fewer
/// effective cases.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !$cond {
            continue;
        }
    };
}

/// Define property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` that runs `body` over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with_config ($cfg) $($rest)* }
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    let case_guard = $crate::test_runner::CaseGuard::new(stringify!($name), case);
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    $body
                    case_guard.passed();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (i64, String)> {
        (0i64..10, "[a-c]{0,4}")
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_and_strings(x in -5i64..5, s in "[a-zA-Z0-9 ]{0,40}", p in arb_pair()) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!(s.chars().count() <= 40);
            prop_assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == ' '));
            prop_assert!((0..10).contains(&p.0));
            prop_assert!(p.1.len() <= 4 && p.1.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn oneof_vec_select(
            v in prop::collection::vec(prop_oneof![Just(0u8), 1u8..4], 2..6),
            pick in prop::sample::select(vec![10, 20, 30]),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 4));
            prop_assert!([10, 20, 30].contains(&pick));
        }

        #[test]
        fn any_and_map(x in any::<u8>().prop_map(|b| b as u32 * 2)) {
            prop_assert!(x % 2 == 0 && x <= 510);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("seed");
        let mut b = crate::test_runner::TestRng::deterministic("seed");
        let s: Vec<u8> =
            crate::collection::vec(crate::arbitrary::any::<u8>(), 5..6).generate(&mut a);
        let t: Vec<u8> =
            crate::collection::vec(crate::arbitrary::any::<u8>(), 5..6).generate(&mut b);
        assert_eq!(s, t);
    }
}
