//! Offline shim for the `criterion` crate.
//!
//! The build container has no network access, so this workspace-local
//! crate provides the subset of the criterion API the bdbms benches use:
//! `Criterion::bench_function` / `benchmark_group`, `Bencher::iter` /
//! `iter_batched`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros.  Measurement is a plain wall-clock loop
//! (warmup + timed samples) printing mean / min per iteration — enough
//! for before/after comparisons, without criterion's statistics engine.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup (ignored by the shim's runner).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small routine input.
    SmallInput,
    /// Large routine input.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Top-level bench context.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Run one benchmark (`id` may be `&str` or `String`, as in criterion).
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        run_bench(id.as_ref(), self.sample_size, self.measurement_time, f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
        }
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.as_ref());
        run_bench(&full, self.sample_size, self.measurement_time, f);
        self
    }

    /// Finish the group (no-op in the shim).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    measurement_time: Duration,
    mut f: F,
) {
    let mut b = Bencher {
        sample_size,
        measurement_time,
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<50} (no samples)");
        return;
    }
    let mean = b.samples.iter().sum::<f64>() / b.samples.len() as f64;
    let min = b.samples.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "{id:<50} mean {:>12}  min {:>12}  ({} samples)",
        fmt_ns(mean),
        fmt_ns(min),
        b.samples.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Drives the measured routine; one `iter*` call performs the whole
/// warmup + sampling sequence.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Measure `routine` directly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // warmup + calibration: how many iterations fit one sample slot
        let t0 = Instant::now();
        let mut warm_iters = 0u64;
        while t0.elapsed() < Duration::from_millis(50) {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = t0.elapsed().as_nanos() as f64 / warm_iters as f64;
        let budget_ns = self.measurement_time.as_nanos() as f64;
        let per_sample_ns = budget_ns / self.sample_size as f64;
        let iters_per_sample = ((per_sample_ns / per_iter.max(1.0)) as u64).clamp(1, 1 << 20);
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let s = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(s.elapsed().as_nanos() as f64 / iters_per_sample as f64);
            if Instant::now() > deadline {
                break;
            }
        }
    }

    /// Measure `routine` over fresh inputs from `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // warmup one run
        black_box(routine(setup()));
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let input = setup();
            let s = Instant::now();
            black_box(routine(input));
            self.samples.push(s.elapsed().as_nanos() as f64);
            if Instant::now() > deadline {
                break;
            }
        }
    }

    /// `iter_batched` with a by-reference routine.
    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        let mut warm = setup();
        black_box(routine(&mut warm));
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let mut input = setup();
            let s = Instant::now();
            black_box(routine(&mut input));
            self.samples.push(s.elapsed().as_nanos() as f64);
            if Instant::now() > deadline {
                break;
            }
        }
    }
}

/// Collect bench functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3)
            .measurement_time(Duration::from_millis(100));
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
