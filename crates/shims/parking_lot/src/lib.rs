//! Offline shim for the `parking_lot` crate.
//!
//! The build container has no network access, so this workspace-local
//! crate provides the (tiny) subset of the `parking_lot` API bdbms uses,
//! implemented over `std::sync`.  Like real `parking_lot`, `lock()` does
//! not return a poison `Result`: a poisoned std mutex is recovered
//! transparently.

use std::sync::TryLockError;

/// A mutual-exclusion primitive with non-poisoning `lock()`.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner }
    }

    /// Try to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
