//! Offline shim for the `rand` crate (0.8-compatible subset).
//!
//! The build container has no network access, so this workspace-local
//! crate provides the subset of `rand` the bdbms workspace uses:
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], the
//! [`Rng`] extension trait (`gen`, `gen_range`), and
//! [`seq::SliceRandom::choose`].  The generator is SplitMix64 — not
//! cryptographic, but deterministic under a seed, which is all the
//! benchmarks and generators need.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range (panics if the range is empty).
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range over empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range over empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range over empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range over empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniformly random value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A random bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// Deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014)
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Random selection from slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// A uniformly random element (`None` on an empty slice).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.next_u64() as usize % self.len())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::seq::SliceRandom;

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = r.gen_range(-50..50);
            assert!((-50..50).contains(&y));
            let z: usize = r.gen_range(5..=5);
            assert_eq!(z, 5);
            let f: f64 = r.gen_range(0.0..10.0);
            assert!((0.0..10.0).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn choose_covers_slice() {
        let mut r = StdRng::seed_from_u64(2);
        let xs = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*xs.choose(&mut r).unwrap() as usize - 1] = true;
        }
        assert_eq!(seen, [true, true, true]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
