//! Kill-the-server durability test: concurrent clients commit over the
//! wire while the server process is SIGKILLed mid-burst.  Every commit
//! the server *acknowledged* (the client read a success frame for it)
//! must be present after reopening the database — the whole point of
//! holding the acknowledgment until the group-commit fsync covers it.
//!
//! This test drives the raw wire protocol (`bdbms_server::proto`)
//! directly rather than `bdbms-client`, so the server crate has no
//! dev-dependency cycle on the client crate.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};

use bdbms_common::{BdbmsError, Value};
use bdbms_core::Database;
use bdbms_server::proto::{read_response, write_request, Request, Response};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bdbms-crash-commit-{}-{name}.bdbms",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Spawn `bdbms-serve` on an ephemeral port and wait for its
/// `listening on ADDR` line.
fn spawn_server(db: &PathBuf) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_bdbms-serve"))
        .arg(db)
        .args(["--listen", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn bdbms-serve");
    let stdout = child.stdout.take().expect("child stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read listen line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected server output: {line:?}"))
        .to_string();
    (child, addr)
}

/// A minimal raw-protocol client: enough to hello, run statements and
/// execute a prepared insert.
struct RawClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl RawClient {
    fn connect(addr: &str, user: &str) -> Result<Self, BdbmsError> {
        let stream = TcpStream::connect(addr).map_err(|e| BdbmsError::io(e.to_string()))?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| BdbmsError::io(e.to_string()))?,
        );
        let mut me = RawClient {
            reader,
            writer: BufWriter::new(stream),
        };
        match me.roundtrip(&Request::Hello {
            user: user.to_string(),
        })? {
            Response::HelloOk { .. } => Ok(me),
            other => Err(BdbmsError::io(format!("unexpected hello reply: {other:?}"))),
        }
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response, BdbmsError> {
        write_request(&mut self.writer, req)?;
        self.writer
            .flush()
            .map_err(|e| BdbmsError::io(e.to_string()))?;
        match read_response(&mut self.reader)? {
            Response::Error { error, .. } => Err(error),
            resp => Ok(resp),
        }
    }

    fn run(&mut self, sql: &str) -> Result<Response, BdbmsError> {
        self.roundtrip(&Request::Run {
            sql: sql.to_string(),
        })
    }

    fn prepare(&mut self, sql: &str) -> Result<u64, BdbmsError> {
        match self.roundtrip(&Request::Prepare {
            sql: sql.to_string(),
        })? {
            Response::PrepareOk { stmt, .. } => Ok(stmt),
            other => Err(BdbmsError::io(format!(
                "unexpected prepare reply: {other:?}"
            ))),
        }
    }
}

#[test]
fn acknowledged_commits_survive_sigkill() {
    let db_dir = tmp("sigkill");
    let (mut child, addr) = spawn_server(&db_dir);

    {
        let mut setup = RawClient::connect(&addr, "admin").expect("setup connect");
        setup
            .run("CREATE TABLE Durable (K INT, Who TEXT)")
            .expect("create table");
    }

    // N clients commit as fast as they can; each records a key only
    // after reading the server's success frame for it.
    let clients = 6usize;
    let acked: Arc<Mutex<Vec<i64>>> = Arc::new(Mutex::new(Vec::new()));
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.clone();
            let acked = acked.clone();
            std::thread::spawn(move || {
                let Ok(mut conn) = RawClient::connect(&addr, "admin") else {
                    return; // server may already be dead
                };
                let Ok(stmt) = conn.prepare("INSERT INTO Durable VALUES (?, ?)") else {
                    return;
                };
                let who = format!("client-{c}");
                for i in 0..10_000i64 {
                    let key = c as i64 * 1_000_000 + i;
                    let reply = conn.roundtrip(&Request::Execute {
                        stmt,
                        params: vec![Value::Int(key), Value::Text(who.clone())],
                    });
                    match reply {
                        Ok(Response::Result { .. }) => {
                            acked.lock().unwrap().push(key);
                        }
                        // any error or torn frame: the server died (or is
                        // dying) — this commit was NOT acknowledged
                        _ => return,
                    }
                }
            })
        })
        .collect();

    // let the burst get going, then SIGKILL mid-group-commit
    std::thread::sleep(std::time::Duration::from_millis(400));
    child.kill().expect("kill server");
    child.wait().expect("reap server");
    for h in handles {
        h.join().expect("client thread");
    }

    let acked = Arc::try_unwrap(acked).unwrap().into_inner().unwrap();
    assert!(
        !acked.is_empty(),
        "no commits were acknowledged before the kill — burst too short"
    );

    // reopen: recovery must surface every acknowledged key
    let mut db = Database::open(&db_dir).expect("reopen after crash");
    let result = db
        .execute("SELECT K FROM Durable")
        .expect("scan after recovery");
    let visible: std::collections::HashSet<i64> = result
        .rows
        .iter()
        .filter_map(|row| match row.values[0] {
            Value::Int(k) => Some(k),
            _ => None,
        })
        .collect();
    let lost: Vec<i64> = acked
        .iter()
        .copied()
        .filter(|k| !visible.contains(k))
        .collect();
    assert!(
        lost.is_empty(),
        "{} of {} acknowledged commits lost after crash (first few: {:?})",
        lost.len(),
        acked.len(),
        &lost[..lost.len().min(8)]
    );
    println!(
        "crash test: {} acknowledged commits, all survived SIGKILL",
        acked.len()
    );
}
