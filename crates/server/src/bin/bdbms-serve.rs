//! `bdbms-serve` — the bdbms wire-protocol server.
//!
//! ```text
//! bdbms-serve <db-dir> [--listen HOST:PORT] [--no-group-commit]
//! ```
//!
//! Opens (or creates) the database directory, binds the listener, and
//! prints `listening on HOST:PORT` once ready — scripts and tests wait
//! for that line before connecting.  Runs until killed; recovery on the
//! next boot replays the WAL, so `kill -9` loses nothing that was
//! acknowledged.  See `docs/SERVER.md`.

use std::process::ExitCode;

use bdbms_server::{Server, ServerConfig};

const USAGE: &str = "usage: bdbms-serve <db-dir> [--listen HOST:PORT] [--no-group-commit]";

fn main() -> ExitCode {
    let mut db_path: Option<String> = None;
    let mut listen = "127.0.0.1:4411".to_string();
    let mut group_commit = true;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => match args.next() {
                Some(a) => listen = a,
                None => {
                    eprintln!("{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--no-group-commit" => group_commit = false,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag `{flag}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
            path if db_path.is_none() => db_path = Some(path.to_string()),
            extra => {
                eprintln!("unexpected argument `{extra}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(db_path) = db_path else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };

    let mut cfg = ServerConfig::new(db_path, listen);
    cfg.group_commit = group_commit;
    match Server::start(cfg) {
        Ok(server) => {
            // tooling waits for this exact line before connecting
            println!("listening on {}", server.local_addr());
            use std::io::Write;
            let _ = std::io::stdout().flush();
            server.serve_forever();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bdbms-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
