//! The bdbms wire protocol.
//!
//! Every message is one length-prefixed frame:
//!
//! ```text
//! [u32 LE: length of kind + payload][u8: kind][payload bytes]
//! ```
//!
//! Primitives inside payloads: integers are little-endian fixed-width;
//! strings are `u32 length || utf8 bytes`; values reuse the storage
//! encoding ([`Value::encode`]: `tag byte || payload`); options are a
//! presence byte followed by the payload.  The protocol is synchronous
//! request/response — the client writes one request frame and reads
//! exactly one response frame (row data is paged explicitly with
//! [`Request::Fetch`], so a large result never monopolizes the
//! connection).
//!
//! Errors cross the wire losslessly: an [`Response::Error`] frame
//! carries the [`ErrorCode`] (one byte, exhaustively mapped), the
//! message text, and the optional byte [`Span`] into the offending SQL
//! — a remote client reconstructs the exact [`BdbmsError`] the engine
//! raised.  See `docs/SERVER.md` for the full frame catalog.

use std::io::{Read, Write};

use bdbms_common::metrics::{HistogramSnapshot, MetricsSnapshot};
use bdbms_common::{BdbmsError, ErrorCode, Result, Span, Value};
use bdbms_core::executor::ExecStats;
use bdbms_core::result::{AnnOut, AnnRow, QueryResult};
use bdbms_core::xml::XmlNode;

/// Protocol version, negotiated in `Hello` / `HelloOk`.
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on a single frame (64 MiB) — a garbage length prefix
/// must not allocate unbounded memory.
pub const MAX_FRAME: u32 = 64 << 20;

/// Default rows per [`Request::Fetch`] batch used by clients.
pub const DEFAULT_FETCH_ROWS: u32 = 256;

// ---- frame kinds ----

const K_HELLO: u8 = 0x01;
const K_PREPARE: u8 = 0x02;
const K_EXECUTE: u8 = 0x03;
const K_QUERY: u8 = 0x04;
const K_FETCH: u8 = 0x05;
const K_CLOSE_STMT: u8 = 0x06;
const K_CLOSE_CURSOR: u8 = 0x07;
const K_RUN: u8 = 0x08;
const K_SET_USER: u8 = 0x09;
const K_PING: u8 = 0x0A;
const K_QUIT: u8 = 0x0B;
const K_METRICS: u8 = 0x0C;

const K_HELLO_OK: u8 = 0x81;
const K_PREPARE_OK: u8 = 0x82;
const K_RESULT: u8 = 0x83;
const K_CURSOR_OK: u8 = 0x84;
const K_ROW_BATCH: u8 = 0x85;
const K_OK: u8 = 0x86;
const K_PONG: u8 = 0x87;
const K_BYE: u8 = 0x88;
const K_METRICS_OK: u8 = 0x89;
const K_ERROR: u8 = 0x8F;

/// A client→server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// First frame on a connection: authenticate as `user`.
    Hello { user: String },
    /// Parse + cache a statement server-side; answered by `PrepareOk`.
    Prepare { sql: String },
    /// Bind + execute a prepared statement, materializing the result.
    Execute { stmt: u64, params: Vec<Value> },
    /// Bind + run a prepared SELECT; answered by `CursorOk`, then rows
    /// are pulled with `Fetch`.
    Query { stmt: u64, params: Vec<Value> },
    /// Pull up to `max_rows` rows from an open cursor.
    Fetch { cursor: u64, max_rows: u32 },
    /// Discard a prepared statement.
    CloseStmt { stmt: u64 },
    /// Discard an open cursor before exhaustion.
    CloseCursor { cursor: u64 },
    /// Parse + execute a parameter-less statement in one step.
    Run { sql: String },
    /// Switch the acting user for subsequent statements.
    SetUser { user: String },
    /// Liveness probe; answered by `Pong` without touching the engine.
    Ping,
    /// Orderly goodbye; answered by `Bye`, then the connection closes.
    Quit,
    /// Snapshot the server's metrics registry; answered by `Metrics`.
    Metrics,
}

/// A server→client message.
#[derive(Debug, Clone)]
pub enum Response {
    /// `Hello` accepted.
    HelloOk { version: u32, server: String },
    /// Statement parsed and cached under `stmt`.
    PrepareOk {
        stmt: u64,
        param_count: u32,
        in_txn: bool,
    },
    /// A materialized statement result.
    Result { result: QueryResult, in_txn: bool },
    /// A cursor is open; pull rows with `Fetch`.
    CursorOk {
        cursor: u64,
        columns: Vec<String>,
        in_txn: bool,
    },
    /// Up to `max_rows` rows; `done` means the cursor is exhausted and
    /// already closed server-side.
    RowBatch { rows: Vec<AnnRow>, done: bool },
    /// Command acknowledged (`CloseStmt` / `CloseCursor` / `SetUser`).
    Ok { in_txn: bool },
    /// Liveness reply.
    Pong,
    /// Goodbye acknowledgment.
    Bye,
    /// Point-in-time copy of the engine's metrics registry.
    Metrics { snapshot: MetricsSnapshot },
    /// The command failed; the full engine error, round-tripped.
    Error { error: BdbmsError, in_txn: bool },
}

impl Response {
    /// The explicit-transaction flag piggybacked on this response, when
    /// it carries one (clients mirror it into their prompt state).
    pub fn in_txn(&self) -> Option<bool> {
        match self {
            Response::PrepareOk { in_txn, .. }
            | Response::Result { in_txn, .. }
            | Response::CursorOk { in_txn, .. }
            | Response::Ok { in_txn }
            | Response::Error { in_txn, .. } => Some(*in_txn),
            _ => None,
        }
    }
}

// ---- error-code mapping (exhaustive both ways) ----

/// One wire byte per [`ErrorCode`] variant.  `match` on the full enum:
/// adding a code without extending the protocol is a compile error.
pub fn error_code_to_wire(code: ErrorCode) -> u8 {
    match code {
        ErrorCode::Syntax => 0,
        ErrorCode::NotFound => 1,
        ErrorCode::AlreadyExists => 2,
        ErrorCode::TypeMismatch => 3,
        ErrorCode::Invalid => 4,
        ErrorCode::Unauthorized => 5,
        ErrorCode::Approval => 6,
        ErrorCode::Dependency => 7,
        ErrorCode::Storage => 8,
        ErrorCode::Corrupt => 9,
        ErrorCode::Eval => 10,
        ErrorCode::Io => 11,
        ErrorCode::ParamMismatch => 12,
        ErrorCode::TxnState => 13,
    }
}

/// Inverse of [`error_code_to_wire`].
pub fn error_code_from_wire(byte: u8) -> Result<ErrorCode> {
    Ok(match byte {
        0 => ErrorCode::Syntax,
        1 => ErrorCode::NotFound,
        2 => ErrorCode::AlreadyExists,
        3 => ErrorCode::TypeMismatch,
        4 => ErrorCode::Invalid,
        5 => ErrorCode::Unauthorized,
        6 => ErrorCode::Approval,
        7 => ErrorCode::Dependency,
        8 => ErrorCode::Storage,
        9 => ErrorCode::Corrupt,
        10 => ErrorCode::Eval,
        11 => ErrorCode::Io,
        12 => ErrorCode::ParamMismatch,
        13 => ErrorCode::TxnState,
        b => return Err(bad(format!("unknown error code byte {b}"))),
    })
}

fn bad(m: impl Into<String>) -> BdbmsError {
    BdbmsError::corrupt(format!("wire protocol: {}", m.into()))
}

// ---- payload primitives ----

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_bool(out: &mut Vec<u8>, b: bool) {
    out.push(b as u8);
}

fn put_values(out: &mut Vec<u8>, vs: &[Value]) {
    put_u32(out, vs.len() as u32);
    for v in vs {
        v.encode(out);
    }
}

struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Cur<'a> {
        Cur { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let s = self
            .buf
            .get(self.pos..self.pos + n)
            .ok_or_else(|| bad("truncated frame"))?;
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn bool(&mut self) -> Result<bool> {
        Ok(self.u8()? != 0)
    }

    fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let s = std::str::from_utf8(self.take(n)?).map_err(|_| bad("invalid utf8 in string"))?;
        Ok(s.to_string())
    }

    fn values(&mut self) -> Result<Vec<Value>> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            out.push(Value::decode(self.buf, &mut self.pos)?);
        }
        Ok(out)
    }

    fn done(&self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(bad("trailing bytes in frame"));
        }
        Ok(())
    }
}

// ---- row / result encoding ----

fn put_ann(out: &mut Vec<u8>, ann: &AnnOut) {
    put_str(out, &ann.source_table);
    put_str(out, &ann.ann_table);
    put_u64(out, ann.id);
    put_str(out, &ann.raw);
    put_u64(out, ann.created);
}

fn get_ann(c: &mut Cur<'_>) -> Result<AnnOut> {
    let source_table = c.str()?;
    let ann_table = c.str()?;
    let id = c.u64()?;
    let raw = c.str()?;
    let created = c.u64()?;
    // the parsed body is derived state — re-derive it client-side from
    // the raw text instead of shipping the tree
    let body = XmlNode::parse_or_wrap(&raw);
    Ok(AnnOut {
        source_table,
        ann_table,
        id,
        raw,
        body,
        created,
    })
}

fn put_row(out: &mut Vec<u8>, row: &AnnRow) {
    put_values(out, &row.values);
    put_u32(out, row.anns.len() as u32);
    for col in &row.anns {
        put_u32(out, col.len() as u32);
        for ann in col {
            put_ann(out, ann);
        }
    }
}

fn get_row(c: &mut Cur<'_>) -> Result<AnnRow> {
    let values = c.values()?;
    let ncols = c.u32()? as usize;
    let mut anns = Vec::with_capacity(ncols.min(1024));
    for _ in 0..ncols {
        let n = c.u32()? as usize;
        let mut col = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            col.push(std::rc::Rc::new(get_ann(c)?));
        }
        anns.push(col);
    }
    Ok(AnnRow { values, anns })
}

/// Executor counters, shipped with every `Result` frame so remote
/// clients see exactly what a local [`Session`](bdbms_core::Session)
/// reports (the local-vs-remote parity test pins this).
fn put_stats(out: &mut Vec<u8>, st: &ExecStats) {
    put_u64(out, st.rows_fetched);
    put_u64(out, st.rows_scan_filtered);
    put_u64(out, st.index_probes);
    put_u64(out, st.seq_index_probes);
    put_u64(out, st.full_scans);
    put_u64(out, st.index_only_scans);
    put_u64(out, st.anns_attached);
    put_u64(out, st.limit_pushdowns);
    put_u64(out, st.rows_limit_discarded);
    put_u64(out, st.scan_batches);
    put_u64(out, st.parse_ns);
    put_u64(out, st.plan_ns);
    put_u64(out, st.exec_ns);
    put_u32(out, st.chosen_indexes.len() as u32);
    for ix in &st.chosen_indexes {
        put_str(out, ix);
    }
    put_u32(out, st.join_order.len() as u32);
    for pos in &st.join_order {
        put_u64(out, *pos as u64);
    }
}

fn get_stats(c: &mut Cur<'_>) -> Result<ExecStats> {
    let mut st = ExecStats {
        rows_fetched: c.u64()?,
        rows_scan_filtered: c.u64()?,
        index_probes: c.u64()?,
        seq_index_probes: c.u64()?,
        full_scans: c.u64()?,
        index_only_scans: c.u64()?,
        anns_attached: c.u64()?,
        limit_pushdowns: c.u64()?,
        rows_limit_discarded: c.u64()?,
        scan_batches: c.u64()?,
        parse_ns: c.u64()?,
        plan_ns: c.u64()?,
        exec_ns: c.u64()?,
        ..Default::default()
    };
    let n = c.u32()? as usize;
    st.chosen_indexes = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        st.chosen_indexes.push(c.str()?);
    }
    let n = c.u32()? as usize;
    st.join_order = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        st.join_order.push(c.u64()? as usize);
    }
    Ok(st)
}

fn put_result(out: &mut Vec<u8>, r: &QueryResult) {
    put_u32(out, r.columns.len() as u32);
    for c in &r.columns {
        put_str(out, c);
    }
    put_u32(out, r.rows.len() as u32);
    for row in &r.rows {
        put_row(out, row);
    }
    put_u64(out, r.affected as u64);
    match &r.message {
        None => out.push(0),
        Some(m) => {
            out.push(1);
            put_str(out, m);
        }
    }
    match &r.stats {
        None => out.push(0),
        Some(st) => {
            out.push(1);
            put_stats(out, st);
        }
    }
}

fn get_result(c: &mut Cur<'_>) -> Result<QueryResult> {
    let ncols = c.u32()? as usize;
    let mut columns = Vec::with_capacity(ncols.min(1024));
    for _ in 0..ncols {
        columns.push(c.str()?);
    }
    let nrows = c.u32()? as usize;
    let mut rows = Vec::with_capacity(nrows.min(1024));
    for _ in 0..nrows {
        rows.push(get_row(c)?);
    }
    let affected = c.u64()? as usize;
    let message = match c.u8()? {
        0 => None,
        1 => Some(c.str()?),
        _ => return Err(bad("bad option tag")),
    };
    let stats = match c.u8()? {
        0 => None,
        1 => Some(get_stats(c)?),
        _ => return Err(bad("bad option tag")),
    };
    Ok(QueryResult {
        columns,
        rows,
        affected,
        message,
        stats,
    })
}

fn put_snapshot(out: &mut Vec<u8>, s: &MetricsSnapshot) {
    put_u32(out, s.counters.len() as u32);
    for (n, v) in &s.counters {
        put_str(out, n);
        put_u64(out, *v);
    }
    put_u32(out, s.gauges.len() as u32);
    for (n, v) in &s.gauges {
        put_str(out, n);
        put_u64(out, *v);
    }
    put_u32(out, s.histograms.len() as u32);
    for (n, h) in &s.histograms {
        put_str(out, n);
        put_u64(out, h.count);
        put_u64(out, h.sum);
        put_u32(out, h.buckets.len() as u32);
        for (bound, count) in &h.buckets {
            put_u64(out, *bound);
            put_u64(out, *count);
        }
    }
}

fn get_snapshot(c: &mut Cur<'_>) -> Result<MetricsSnapshot> {
    let n = c.u32()? as usize;
    let mut counters = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        counters.push((c.str()?, c.u64()?));
    }
    let n = c.u32()? as usize;
    let mut gauges = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        gauges.push((c.str()?, c.u64()?));
    }
    let n = c.u32()? as usize;
    let mut histograms = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let name = c.str()?;
        let count = c.u64()?;
        let sum = c.u64()?;
        let nb = c.u32()? as usize;
        let mut buckets = Vec::with_capacity(nb.min(1024));
        for _ in 0..nb {
            buckets.push((c.u64()?, c.u64()?));
        }
        histograms.push((name, HistogramSnapshot { count, sum, buckets }));
    }
    Ok(MetricsSnapshot {
        counters,
        gauges,
        histograms,
    })
}

fn put_error(out: &mut Vec<u8>, e: &BdbmsError) {
    out.push(error_code_to_wire(e.code));
    put_str(out, &e.message);
    match e.span {
        None => out.push(0),
        Some(Span { start, end }) => {
            out.push(1);
            put_u64(out, start as u64);
            put_u64(out, end as u64);
        }
    }
}

fn get_error(c: &mut Cur<'_>) -> Result<BdbmsError> {
    let code = error_code_from_wire(c.u8()?)?;
    let message = c.str()?;
    let span = match c.u8()? {
        0 => None,
        1 => {
            let start = c.u64()? as usize;
            let end = c.u64()? as usize;
            Some(Span::new(start, end))
        }
        _ => return Err(bad("bad option tag")),
    };
    Ok(BdbmsError {
        code,
        message,
        span,
    })
}

// ---- framing ----

fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> Result<()> {
    let len = 1 + payload.len() as u32;
    if len > MAX_FRAME {
        return Err(bad(format!("frame too large ({len} bytes)")));
    }
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&[kind])?;
    w.write_all(payload)?;
    Ok(())
}

/// Read one raw frame.  `Ok(None)` = clean EOF at a frame boundary.
fn read_frame(r: &mut impl Read) -> Result<Option<(u8, Vec<u8>)>> {
    let mut lenb = [0u8; 4];
    // distinguish clean EOF (no bytes at all) from a torn frame
    match r.read(&mut lenb)? {
        0 => return Ok(None),
        n => r.read_exact(&mut lenb[n..])?,
    }
    let len = u32::from_le_bytes(lenb);
    if len == 0 || len > MAX_FRAME {
        return Err(bad(format!("bad frame length {len}")));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let kind = body[0];
    body.remove(0);
    Ok(Some((kind, body)))
}

/// Write one request frame (caller flushes the stream).
pub fn write_request(w: &mut impl Write, req: &Request) -> Result<()> {
    let mut p = Vec::new();
    let kind = match req {
        Request::Hello { user } => {
            put_u32(&mut p, PROTOCOL_VERSION);
            put_str(&mut p, user);
            K_HELLO
        }
        Request::Prepare { sql } => {
            put_str(&mut p, sql);
            K_PREPARE
        }
        Request::Execute { stmt, params } => {
            put_u64(&mut p, *stmt);
            put_values(&mut p, params);
            K_EXECUTE
        }
        Request::Query { stmt, params } => {
            put_u64(&mut p, *stmt);
            put_values(&mut p, params);
            K_QUERY
        }
        Request::Fetch { cursor, max_rows } => {
            put_u64(&mut p, *cursor);
            put_u32(&mut p, *max_rows);
            K_FETCH
        }
        Request::CloseStmt { stmt } => {
            put_u64(&mut p, *stmt);
            K_CLOSE_STMT
        }
        Request::CloseCursor { cursor } => {
            put_u64(&mut p, *cursor);
            K_CLOSE_CURSOR
        }
        Request::Run { sql } => {
            put_str(&mut p, sql);
            K_RUN
        }
        Request::SetUser { user } => {
            put_str(&mut p, user);
            K_SET_USER
        }
        Request::Ping => K_PING,
        Request::Quit => K_QUIT,
        Request::Metrics => K_METRICS,
    };
    write_frame(w, kind, &p)
}

/// Read one request frame.  `Ok(None)` = the peer closed cleanly.
pub fn read_request(r: &mut impl Read) -> Result<Option<Request>> {
    let Some((kind, body)) = read_frame(r)? else {
        return Ok(None);
    };
    let mut c = Cur::new(&body);
    let req = match kind {
        K_HELLO => {
            let version = c.u32()?;
            if version != PROTOCOL_VERSION {
                return Err(bad(format!(
                    "protocol version mismatch: client {version}, server {PROTOCOL_VERSION}"
                )));
            }
            Request::Hello { user: c.str()? }
        }
        K_PREPARE => Request::Prepare { sql: c.str()? },
        K_EXECUTE => Request::Execute {
            stmt: c.u64()?,
            params: c.values()?,
        },
        K_QUERY => Request::Query {
            stmt: c.u64()?,
            params: c.values()?,
        },
        K_FETCH => Request::Fetch {
            cursor: c.u64()?,
            max_rows: c.u32()?,
        },
        K_CLOSE_STMT => Request::CloseStmt { stmt: c.u64()? },
        K_CLOSE_CURSOR => Request::CloseCursor { cursor: c.u64()? },
        K_RUN => Request::Run { sql: c.str()? },
        K_SET_USER => Request::SetUser { user: c.str()? },
        K_PING => Request::Ping,
        K_QUIT => Request::Quit,
        K_METRICS => Request::Metrics,
        k => return Err(bad(format!("unknown request kind {k:#x}"))),
    };
    c.done()?;
    Ok(Some(req))
}

/// Write one response frame (caller flushes the stream).
pub fn write_response(w: &mut impl Write, resp: &Response) -> Result<()> {
    let mut p = Vec::new();
    let kind = match resp {
        Response::HelloOk { version, server } => {
            put_u32(&mut p, *version);
            put_str(&mut p, server);
            K_HELLO_OK
        }
        Response::PrepareOk {
            stmt,
            param_count,
            in_txn,
        } => {
            put_u64(&mut p, *stmt);
            put_u32(&mut p, *param_count);
            put_bool(&mut p, *in_txn);
            K_PREPARE_OK
        }
        Response::Result { result, in_txn } => {
            put_result(&mut p, result);
            put_bool(&mut p, *in_txn);
            K_RESULT
        }
        Response::CursorOk {
            cursor,
            columns,
            in_txn,
        } => {
            put_u64(&mut p, *cursor);
            put_u32(&mut p, columns.len() as u32);
            for col in columns {
                put_str(&mut p, col);
            }
            put_bool(&mut p, *in_txn);
            K_CURSOR_OK
        }
        Response::RowBatch { rows, done } => {
            put_u32(&mut p, rows.len() as u32);
            for row in rows {
                put_row(&mut p, row);
            }
            put_bool(&mut p, *done);
            K_ROW_BATCH
        }
        Response::Ok { in_txn } => {
            put_bool(&mut p, *in_txn);
            K_OK
        }
        Response::Pong => K_PONG,
        Response::Bye => K_BYE,
        Response::Metrics { snapshot } => {
            put_snapshot(&mut p, snapshot);
            K_METRICS_OK
        }
        Response::Error { error, in_txn } => {
            put_error(&mut p, error);
            put_bool(&mut p, *in_txn);
            K_ERROR
        }
    };
    write_frame(w, kind, &p)
}

/// Read one response frame.  EOF is an error here — the server must
/// answer every request (a vanished server mid-commit is precisely the
/// unknown-outcome case clients must see loudly).
pub fn read_response(r: &mut impl Read) -> Result<Response> {
    let Some((kind, body)) = read_frame(r)? else {
        return Err(BdbmsError::io("connection closed by server"));
    };
    let mut c = Cur::new(&body);
    let resp = match kind {
        K_HELLO_OK => Response::HelloOk {
            version: c.u32()?,
            server: c.str()?,
        },
        K_PREPARE_OK => Response::PrepareOk {
            stmt: c.u64()?,
            param_count: c.u32()?,
            in_txn: c.bool()?,
        },
        K_RESULT => Response::Result {
            result: get_result(&mut c)?,
            in_txn: c.bool()?,
        },
        K_CURSOR_OK => {
            let cursor = c.u64()?;
            let n = c.u32()? as usize;
            let mut columns = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                columns.push(c.str()?);
            }
            Response::CursorOk {
                cursor,
                columns,
                in_txn: c.bool()?,
            }
        }
        K_ROW_BATCH => {
            let n = c.u32()? as usize;
            let mut rows = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                rows.push(get_row(&mut c)?);
            }
            Response::RowBatch {
                rows,
                done: c.bool()?,
            }
        }
        K_OK => Response::Ok { in_txn: c.bool()? },
        K_PONG => Response::Pong,
        K_BYE => Response::Bye,
        K_METRICS_OK => Response::Metrics {
            snapshot: get_snapshot(&mut c)?,
        },
        K_ERROR => Response::Error {
            error: get_error(&mut c)?,
            in_txn: c.bool()?,
        },
        k => return Err(bad(format!("unknown response kind {k:#x}"))),
    };
    c.done()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    fn roundtrip_req(req: Request) {
        let mut buf = Vec::new();
        write_request(&mut buf, &req).unwrap();
        let back = read_request(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(back, req);
    }

    fn roundtrip_resp(resp: Response) {
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();
        let back = read_response(&mut buf.as_slice()).unwrap();
        // results/rows carry Rc-shared parsed annotation bodies without
        // PartialEq; structural Debug equality is exactly the lossless-
        // round-trip claim being tested
        assert_eq!(format!("{back:?}"), format!("{resp:?}"));
    }

    #[test]
    fn requests_round_trip() {
        roundtrip_req(Request::Hello {
            user: "admin".into(),
        });
        roundtrip_req(Request::Prepare {
            sql: "SELECT * FROM Gene WHERE Len = ?".into(),
        });
        roundtrip_req(Request::Execute {
            stmt: 3,
            params: vec![
                Value::Null,
                Value::Int(-7),
                Value::Float(2.5),
                Value::Text("mraW".into()),
                Value::Bool(true),
                Value::Timestamp(99),
            ],
        });
        roundtrip_req(Request::Query {
            stmt: 9,
            params: vec![],
        });
        roundtrip_req(Request::Fetch {
            cursor: 4,
            max_rows: 128,
        });
        roundtrip_req(Request::CloseStmt { stmt: 3 });
        roundtrip_req(Request::CloseCursor { cursor: 4 });
        roundtrip_req(Request::Run {
            sql: "BEGIN".into(),
        });
        roundtrip_req(Request::SetUser {
            user: "alice".into(),
        });
        roundtrip_req(Request::Ping);
        roundtrip_req(Request::Quit);
        roundtrip_req(Request::Metrics);
    }

    #[test]
    fn exec_stats_round_trip() {
        let result = QueryResult {
            columns: vec!["x".into()],
            rows: vec![],
            affected: 0,
            message: None,
            stats: Some(ExecStats {
                rows_fetched: 10,
                rows_scan_filtered: 3,
                index_probes: 2,
                seq_index_probes: 1,
                full_scans: 4,
                index_only_scans: 1,
                anns_attached: 7,
                chosen_indexes: vec!["gene_gid".into()],
                join_order: vec![1, 0],
                limit_pushdowns: 1,
                rows_limit_discarded: 5,
                scan_batches: 6,
                parse_ns: 1_000,
                plan_ns: 2_000,
                exec_ns: 3_000,
            }),
        };
        let mut buf = Vec::new();
        write_response(
            &mut buf,
            &Response::Result {
                result: result.clone(),
                in_txn: false,
            },
        )
        .unwrap();
        let Response::Result { result: got, .. } = read_response(&mut buf.as_slice()).unwrap()
        else {
            panic!("wrong frame");
        };
        assert_eq!(got.stats, result.stats);
    }

    #[test]
    fn metrics_snapshot_round_trips() {
        let snapshot = MetricsSnapshot {
            counters: vec![("buffer.hits".into(), 42), ("txn.commits".into(), 7)],
            gauges: vec![("group.fsync_ema_ns".into(), 125_000)],
            histograms: vec![(
                "wal.fsync_latency_ns".into(),
                HistogramSnapshot {
                    count: 3,
                    sum: 300_000,
                    buckets: vec![(131_071, 3)],
                },
            )],
        };
        let mut buf = Vec::new();
        write_response(
            &mut buf,
            &Response::Metrics {
                snapshot: snapshot.clone(),
            },
        )
        .unwrap();
        let Response::Metrics { snapshot: got } = read_response(&mut buf.as_slice()).unwrap()
        else {
            panic!("wrong frame");
        };
        assert_eq!(got, snapshot);
    }

    #[test]
    fn responses_round_trip() {
        roundtrip_resp(Response::HelloOk {
            version: PROTOCOL_VERSION,
            server: "bdbms 0.1.0".into(),
        });
        roundtrip_resp(Response::PrepareOk {
            stmt: 1,
            param_count: 2,
            in_txn: false,
        });
        roundtrip_resp(Response::CursorOk {
            cursor: 7,
            columns: vec!["GID".into(), "GName".into()],
            in_txn: true,
        });
        roundtrip_resp(Response::Ok { in_txn: false });
        roundtrip_resp(Response::Pong);
        roundtrip_resp(Response::Bye);
    }

    #[test]
    fn annotated_rows_round_trip() {
        let ann = Rc::new(AnnOut {
            source_table: "DB2_Gene".into(),
            ann_table: "GAnnotation".into(),
            id: 12,
            raw: "<Annotation>obtained from GenoBase</Annotation>".into(),
            body: XmlNode::parse_or_wrap("<Annotation>obtained from GenoBase</Annotation>"),
            created: 42,
        });
        let mut row = AnnRow::plain(vec![Value::Text("JW0080".into()), Value::Int(11)]);
        row.anns[0].push(ann.clone());
        row.anns[0].push(ann.clone());
        let result = QueryResult {
            columns: vec!["GID".into(), "Len".into()],
            rows: vec![row.clone(), AnnRow::plain(vec![Value::Null, Value::Null])],
            affected: 0,
            message: Some("ok".into()),
            stats: None,
        };
        let mut buf = Vec::new();
        write_response(
            &mut buf,
            &Response::Result {
                result: result.clone(),
                in_txn: false,
            },
        )
        .unwrap();
        let back = read_response(&mut buf.as_slice()).unwrap();
        let Response::Result { result: got, .. } = back else {
            panic!("wrong frame");
        };
        assert_eq!(got.columns, result.columns);
        assert_eq!(got.rows.len(), 2);
        assert_eq!(got.rows[0].values, row.values);
        // annotation body is re-derived from raw text and must match
        let got_ann = &got.rows[0].anns[0][0];
        assert_eq!(got_ann.identity(), ann.identity());
        assert_eq!(got_ann.text(), "obtained from GenoBase");
        assert_eq!(got_ann.created, 42);
        roundtrip_resp(Response::RowBatch {
            rows: vec![row],
            done: true,
        });
    }

    /// The acceptance-criteria test: every [`ErrorCode`] variant and the
    /// span round-trip exactly through an error frame.
    #[test]
    fn every_error_code_round_trips() {
        for (i, code) in ErrorCode::ALL.into_iter().enumerate() {
            // wire bytes are stable and distinct
            assert_eq!(error_code_to_wire(code), i as u8);
            assert_eq!(error_code_from_wire(i as u8).unwrap(), code);

            for span in [None, Some(Span::new(7, 19))] {
                let error = BdbmsError {
                    code,
                    message: format!("synthetic {} failure", code.as_str()),
                    span,
                };
                let resp = Response::Error {
                    error: error.clone(),
                    in_txn: true,
                };
                let mut buf = Vec::new();
                write_response(&mut buf, &resp).unwrap();
                let Response::Error { error: got, in_txn } =
                    read_response(&mut buf.as_slice()).unwrap()
                else {
                    panic!("wrong frame");
                };
                assert_eq!(got, error, "lossy round-trip for {code:?}");
                assert!(in_txn);
            }
        }
        assert!(error_code_from_wire(14).is_err());
    }

    #[test]
    fn clean_eof_is_none_torn_frame_is_error() {
        let mut empty: &[u8] = &[];
        assert!(read_request(&mut empty).unwrap().is_none());

        let mut buf = Vec::new();
        write_request(&mut buf, &Request::Ping).unwrap();
        // length prefix present but the body is missing: torn frame
        let mut torn: &[u8] = &buf[..4];
        assert!(read_request(&mut torn).is_err());
        // partial length prefix: also torn
        let mut short: &[u8] = &buf[..3];
        assert!(read_request(&mut short).is_err());
    }

    #[test]
    fn oversized_and_garbage_frames_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        buf.push(K_PING);
        assert!(read_request(&mut buf.as_slice()).is_err());

        let mut buf = Vec::new();
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&[0x7F, 0x00]); // unknown kind
        assert!(read_request(&mut buf.as_slice()).is_err());
    }
}
