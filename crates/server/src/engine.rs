//! The single engine thread that owns the [`Database`].
//!
//! The engine is deliberately single-threaded — the core is built on
//! `Rc`/`RefCell` and is not `Send`, so the database never leaves the
//! thread that opened it.  Concurrency comes from the *shape* of the
//! commit path instead:
//!
//! * Connection reader threads decode frames and forward [`Cmd`]s over
//!   an mpsc channel; the engine executes them one at a time and writes
//!   each reply frame **directly to the client's socket** (`Write` is
//!   implemented for `&TcpStream`, so the shared handle registered by
//!   [`Cmd::Connect`] needs no lock).  The reader threads never handle
//!   replies at all — on a loaded single-core box the wakeup round-trip
//!   through a per-connection handler used to cost more than the
//!   statement itself.
//! * With group commit armed, a commit returns from the engine as soon
//!   as its WAL records are **appended** (no fsync).  The engine hands
//!   the pre-encoded acknowledgment and its [`CommitTicket`] to the
//!   **ack pump** — one thread that waits tickets in commit order and
//!   writes the acks once the group-commit flusher's fsync covers them.
//!   The engine immediately moves on to the next command; sixteen
//!   committing clients queue sixteen appends behind one another and
//!   share a handful of fsyncs, and the fsync wakes one pump thread
//!   that drains the whole group instead of sixteen parked handlers.
//!
//! Replies leave the engine as **pre-encoded frames** (`Vec<u8>`): a
//! materialized result holds `Rc`-shared annotations and cannot leave
//! the engine thread as a live object.
//!
//! Ordering: the protocol is strictly request/response — a client has
//! at most one request outstanding, so for any one connection exactly
//! one of {engine, ack pump} has a frame to write at a time and the
//! socket never sees interleaved or reordered replies.  A client that
//! pipelines past an unacknowledged commit forfeits that guarantee
//! (its own stream may garble; nobody else's can).
//!
//! Transactions: the core has one transaction runtime, so an explicit
//! `BEGIN` makes its connection the *transaction owner*.  Statements
//! from other connections are deferred (queued in arrival order) until
//! the owner commits, rolls back, or disconnects — a disconnect with an
//! open transaction rolls it back, exactly like a dropped session.

use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::AtomicU64;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use bdbms_common::{BdbmsError, Result, Value};
use bdbms_core::result::AnnRow;
use bdbms_core::{CommitTicket, Database, Prepared};

use crate::proto::{write_response, Response, PROTOCOL_VERSION};

/// A decoded command, forwarded by a connection reader thread.
#[derive(Debug)]
pub enum Cmd {
    /// Register the connection's write half.  Sent once by the reader
    /// before anything else; every later reply goes to this stream.
    Connect {
        stream: Arc<TcpStream>,
    },
    Hello {
        user: String,
    },
    Prepare {
        sql: String,
    },
    Execute {
        stmt: u64,
        params: Vec<Value>,
    },
    Query {
        stmt: u64,
        params: Vec<Value>,
    },
    Fetch {
        cursor: u64,
        max_rows: u32,
    },
    CloseStmt {
        stmt: u64,
    },
    CloseCursor {
        cursor: u64,
    },
    Run {
        sql: String,
    },
    SetUser {
        user: String,
    },
    /// Snapshot the metrics registry (read-only; never deferred).
    Metrics,
    /// The connection is gone (EOF, error, or `Quit`).  No reply.
    Disconnect,
}

/// One unit of work for the engine: which connection and what to do.
/// The reply goes straight to the connection's registered socket.
pub struct EngineRequest {
    pub conn: u64,
    pub cmd: Cmd,
}

/// A commit waiting for its durability barrier: the ack pump waits the
/// ticket, then writes `frame` (or an error frame if the flush failed).
struct PendingAck {
    ticket: CommitTicket,
    frame: Vec<u8>,
    stream: Arc<TcpStream>,
}

/// How the engine thread opens its database.
pub struct EngineConfig {
    /// Database directory (opened if a data file exists, else created).
    pub path: PathBuf,
    /// Arm the group-commit gate (on for servers; off turns every
    /// commit back into its own fsync, for baselines).
    pub group_commit: bool,
}

/// Handle to a running engine thread.
pub struct Engine {
    tx: Option<Sender<EngineRequest>>,
    /// WAL fsync counter, shared with the engine's database (`None`
    /// only if the database is in-memory, which a server's never is).
    fsyncs: Option<Arc<AtomicU64>>,
    thread: Option<JoinHandle<()>>,
}

impl Engine {
    /// Spawn the engine thread and open the database on it.  Errors
    /// opening the database are reported here, not on first use.
    pub fn start(cfg: EngineConfig) -> Result<Engine> {
        let (tx, rx) = channel::<EngineRequest>();
        let (ready_tx, ready_rx) = channel();
        let thread = std::thread::Builder::new()
            .name("bdbms-engine".to_string())
            .spawn(move || {
                let mut db = match Database::open_or_create(&cfg.path) {
                    Ok(db) => db,
                    Err(e) => {
                        let _ = ready_tx.send(Err(e));
                        return;
                    }
                };
                if cfg.group_commit {
                    db.enable_group_commit();
                }
                let _ = ready_tx.send(Ok(db.wal_sync_counter()));
                let (ack_tx, ack_rx) = channel::<PendingAck>();
                let pump = std::thread::Builder::new()
                    .name("bdbms-ack-pump".to_string())
                    .spawn(move || ack_pump(ack_rx))
                    .expect("spawn ack pump");
                engine_loop(db, rx, ack_tx);
                // engine_loop consumed the ack sender; the pump drains
                // what's left (the flusher resolves pending tickets
                // before the database's shutdown checkpoint) and exits
                let _ = pump.join();
            })
            .map_err(|e| BdbmsError::io(format!("spawning engine thread: {e}")))?;
        let fsyncs = ready_rx
            .recv()
            .map_err(|_| BdbmsError::io("engine thread died during startup"))??;
        Ok(Engine {
            tx: Some(tx),
            fsyncs,
            thread: Some(thread),
        })
    }

    /// A sender for connection readers to submit work through.
    pub fn sender(&self) -> Sender<EngineRequest> {
        self.tx.as_ref().expect("engine running").clone()
    }

    /// Total WAL fsyncs issued by the engine's database so far.
    pub fn fsync_count(&self) -> u64 {
        self.fsyncs
            .as_ref()
            .map(|c| c.load(std::sync::atomic::Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Stop the engine: drops the work channel and joins the thread
    /// (the database closes with a shutdown checkpoint).  Connection
    /// readers still holding sender clones keep the engine alive until
    /// they disconnect — call this after the listener has wound down.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.tx.take();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Per-connection server-side state.
struct ConnState {
    /// The socket replies are written to (shared with the reader
    /// thread, which only reads, and the ack pump).
    stream: Arc<TcpStream>,
    /// Set by `Hello`; commands before a successful hello are rejected.
    user: Option<String>,
    stmts: HashMap<u64, Prepared>,
    cursors: HashMap<u64, CursorState>,
    next_id: u64,
}

impl ConnState {
    fn new(stream: Arc<TcpStream>) -> ConnState {
        ConnState {
            stream,
            user: None,
            stmts: HashMap::new(),
            cursors: HashMap::new(),
            next_id: 0,
        }
    }
}

/// A server-side cursor: the result rows of one `Query`, materialized
/// at execute time and paged to the client in `Fetch` batches.
struct CursorState {
    rows: VecDeque<AnnRow>,
}

fn encode(resp: &Response) -> Vec<u8> {
    let mut buf = Vec::new();
    // encoding into a Vec cannot fail except via MAX_FRAME, which a
    // server-built response can only hit with a pathological result;
    // surface that as an error frame rather than a dead connection
    if write_response(&mut buf, resp).is_err() {
        buf.clear();
        let fallback = Response::Error {
            error: BdbmsError::io("response exceeded maximum frame size"),
            in_txn: false,
        };
        write_response(&mut buf, &fallback).expect("fallback error frame encodes");
    }
    buf
}

fn err_frame(error: BdbmsError, in_txn: bool) -> Vec<u8> {
    encode(&Response::Error { error, in_txn })
}

/// Write one pre-encoded frame to the socket.  A failed write means the
/// client vanished; its reader thread sees the hangup and disconnects.
fn send_frame(stream: &TcpStream, frame: &[u8]) {
    let mut w: &TcpStream = stream;
    let _ = w.write_all(frame);
}

/// The ack pump: waits each commit's durability barrier, then writes
/// the acknowledgment.  Tickets arrive in commit (LSN) order and one
/// group fsync resolves a whole run of them, so the pump wakes once per
/// *group* and drains it — not once per commit.
fn ack_pump(rx: Receiver<PendingAck>) {
    while let Ok(ack) = rx.recv() {
        match ack.ticket.wait() {
            // the fsync covering this commit has happened — only now
            // may the acknowledgment reach the client
            Ok(_) => send_frame(&ack.stream, &ack.frame),
            // flush failed: commit durability is unknown; the client
            // must see the failure, not a result
            Err(e) => send_frame(&ack.stream, &err_frame(e, false)),
        }
    }
}

/// Should this command wait until the transaction owner releases the
/// database?  Only statement execution touches transaction state;
/// prepares, fetches from materialized cursors, and bookkeeping are
/// safe to interleave.
fn touches_txn(cmd: &Cmd) -> bool {
    matches!(
        cmd,
        Cmd::Execute { .. } | Cmd::Query { .. } | Cmd::Run { .. }
    )
}

fn engine_loop(mut db: Database, rx: Receiver<EngineRequest>, ack: Sender<PendingAck>) {
    let mut conns: HashMap<u64, ConnState> = HashMap::new();
    let mut txn_owner: Option<u64> = None;
    let mut deferred: VecDeque<EngineRequest> = VecDeque::new();

    while let Ok(first) = rx.recv() {
        let mut queue = VecDeque::new();
        queue.push_back(first);
        while let Some(req) = queue.pop_front() {
            if touches_txn(&req.cmd) && txn_owner.is_some_and(|owner| owner != req.conn) {
                deferred.push_back(req);
                continue;
            }
            handle(&mut db, &mut conns, &mut txn_owner, &ack, req);
            if txn_owner.is_none() && !deferred.is_empty() {
                // the transaction released: replay deferred commands in
                // arrival order ahead of any new arrivals
                while let Some(d) = deferred.pop_front() {
                    queue.push_back(d);
                }
            }
        }
    }
    // all senders gone: engine shuts down, Database drop checkpoints
}

fn handle(
    db: &mut Database,
    conns: &mut HashMap<u64, ConnState>,
    txn_owner: &mut Option<u64>,
    ack: &Sender<PendingAck>,
    req: EngineRequest,
) {
    let EngineRequest { conn, cmd } = req;

    match &cmd {
        Cmd::Connect { stream } => {
            conns.insert(conn, ConnState::new(stream.clone()));
            return;
        }
        Cmd::Disconnect => {
            if *txn_owner == Some(conn) {
                // dropped connection mid-transaction: roll it back
                let user = conns
                    .get(&conn)
                    .and_then(|c| c.user.clone())
                    .unwrap_or_else(|| "admin".to_string());
                let _ = db.session(&user).rollback();
                *txn_owner = None;
            }
            conns.remove(&conn);
            return;
        }
        _ => {}
    }

    // a reader always sends Connect first, so a missing entry means the
    // connection already disconnected — there is no socket to answer on
    let Some(state) = conns.get_mut(&conn) else {
        return;
    };
    let stream = state.stream.clone();

    if let Cmd::Hello { user } = &cmd {
        let frame = if db.user_exists(user) {
            state.user = Some(user.clone());
            encode(&Response::HelloOk {
                version: PROTOCOL_VERSION,
                server: format!("bdbms {}", env!("CARGO_PKG_VERSION")),
            })
        } else {
            err_frame(
                BdbmsError::unauthorized(format!("unknown user `{user}`")),
                db.in_transaction(),
            )
        };
        send_frame(&stream, &frame);
        return;
    }

    let Some(user) = state.user.clone() else {
        send_frame(
            &stream,
            &err_frame(
                BdbmsError::invalid("connection must Hello before issuing commands"),
                false,
            ),
        );
        return;
    };

    let frame = match cmd {
        Cmd::Connect { .. } | Cmd::Disconnect | Cmd::Hello { .. } => {
            unreachable!("handled above")
        }
        Cmd::Prepare { sql } => match db.session(&user).prepare(&sql) {
            Ok(p) => {
                state.next_id += 1;
                let id = state.next_id;
                let param_count = p.param_count() as u32;
                state.stmts.insert(id, p);
                encode(&Response::PrepareOk {
                    stmt: id,
                    param_count,
                    in_txn: db.in_transaction(),
                })
            }
            Err(e) => err_frame(e, db.in_transaction()),
        },
        Cmd::Execute { stmt, params } => match state.stmts.get(&stmt).cloned() {
            Some(p) => {
                let r = db.session(&user).execute(&p, &params);
                let resp = r.map(|result| Response::Result {
                    result,
                    in_txn: db.in_transaction(),
                });
                match finish_statement(db, conn, txn_owner, ack, &stream, resp) {
                    Some(frame) => frame,
                    None => return, // the ack pump writes it after the fsync
                }
            }
            None => err_frame(unknown_stmt(stmt), db.in_transaction()),
        },
        Cmd::Run { sql } => {
            let r = db.session(&user).run(&sql);
            let resp = r.map(|result| Response::Result {
                result,
                in_txn: db.in_transaction(),
            });
            match finish_statement(db, conn, txn_owner, ack, &stream, resp) {
                Some(frame) => frame,
                None => return, // the ack pump writes it after the fsync
            }
        }
        Cmd::Query { stmt, params } => match state.stmts.get(&stmt).cloned() {
            Some(p) => {
                // cursors borrow their session: materialize inside this
                // block, then page the owned rows out via Fetch
                let materialized = {
                    let session = db.session(&user);
                    session.query(&p, &params).and_then(|cur| {
                        let columns = cur.columns().to_vec();
                        let mut rows = VecDeque::new();
                        for row in cur {
                            rows.push_back(row?);
                        }
                        Ok((columns, rows))
                    })
                };
                match materialized {
                    Ok((columns, rows)) => {
                        state.next_id += 1;
                        let id = state.next_id;
                        state.cursors.insert(id, CursorState { rows });
                        encode(&Response::CursorOk {
                            cursor: id,
                            columns,
                            in_txn: db.in_transaction(),
                        })
                    }
                    Err(e) => err_frame(e, db.in_transaction()),
                }
            }
            None => err_frame(unknown_stmt(stmt), db.in_transaction()),
        },
        Cmd::Fetch { cursor, max_rows } => match state.cursors.get_mut(&cursor) {
            Some(c) => {
                let take = (max_rows as usize).max(1).min(c.rows.len());
                let rows: Vec<AnnRow> = c.rows.drain(..take).collect();
                let done = c.rows.is_empty();
                if done {
                    state.cursors.remove(&cursor);
                }
                encode(&Response::RowBatch { rows, done })
            }
            None => err_frame(
                BdbmsError::not_found(format!("no open cursor {cursor}")),
                db.in_transaction(),
            ),
        },
        Cmd::CloseStmt { stmt } => {
            state.stmts.remove(&stmt);
            encode(&Response::Ok {
                in_txn: db.in_transaction(),
            })
        }
        Cmd::CloseCursor { cursor } => {
            state.cursors.remove(&cursor);
            encode(&Response::Ok {
                in_txn: db.in_transaction(),
            })
        }
        Cmd::SetUser { user: new_user } => {
            if db.user_exists(&new_user) {
                state.user = Some(new_user);
                encode(&Response::Ok {
                    in_txn: db.in_transaction(),
                })
            } else {
                err_frame(
                    BdbmsError::unauthorized(format!("unknown user `{new_user}`")),
                    db.in_transaction(),
                )
            }
        }
        Cmd::Metrics => encode(&Response::Metrics {
            snapshot: db.metrics_snapshot(),
        }),
    };
    send_frame(&stream, &frame);
}

fn unknown_stmt(id: u64) -> BdbmsError {
    BdbmsError::not_found(format!("no prepared statement {id}"))
}

/// Post-statement bookkeeping shared by `Execute` and `Run`: update the
/// transaction owner, and if the statement committed under group
/// commit, hand the acknowledgment to the ack pump so it is written
/// only after the flusher's fsync covers the commit.  Returns the frame
/// to write now, or `None` if the pump took it.
fn finish_statement(
    db: &mut Database,
    conn: u64,
    txn_owner: &mut Option<u64>,
    ack: &Sender<PendingAck>,
    stream: &Arc<TcpStream>,
    resp: Result<Response>,
) -> Option<Vec<u8>> {
    *txn_owner = if db.in_transaction() {
        Some(conn)
    } else {
        None
    };
    let ticket = db.take_commit_ticket();
    let frame = match resp {
        Ok(r) => encode(&r),
        Err(e) => encode(&Response::Error {
            error: e,
            in_txn: db.in_transaction(),
        }),
    };
    match ticket {
        Some(ticket) => {
            let pending = PendingAck {
                ticket,
                frame,
                stream: stream.clone(),
            };
            if let Err(std::sync::mpsc::SendError(p)) = ack.send(pending) {
                // pump gone (shutdown race): resolve the barrier inline
                match p.ticket.wait() {
                    Ok(_) => send_frame(&p.stream, &p.frame),
                    Err(e) => send_frame(&p.stream, &err_frame(e, false)),
                }
            }
            None
        }
        None => Some(frame),
    }
}
