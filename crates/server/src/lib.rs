//! # bdbms-server
//!
//! The wire-protocol server: `bdbms-serve` exposes a [`Database`] over
//! TCP to many concurrent clients while the engine itself stays
//! single-threaded, and turns that concurrency into *group commit* —
//! one WAL fsync acknowledges every commit whose records reached the
//! log before the barrier.
//!
//! Layers (see `docs/SERVER.md` for the picture):
//!
//! * [`proto`] — the length-prefixed binary frame protocol, shared with
//!   the `bdbms-client` crate.  Errors round-trip losslessly (code,
//!   message, span).
//! * [`engine`] — the single thread that owns the database; connection
//!   handlers reach it over channels, and commits come back as
//!   [`CommitTicket`](bdbms_core::CommitTicket)s resolved by the WAL's
//!   group-commit flusher.
//! * [`server`] — the TCP accept loop and per-connection handler
//!   threads.
//!
//! [`Database`]: bdbms_core::Database

pub mod engine;
pub mod proto;
pub mod server;

pub use server::{Server, ServerConfig};
