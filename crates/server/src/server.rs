//! The TCP front end: accept loop and per-connection reader threads.
//!
//! Each accepted socket gets a *reader* thread that decodes request
//! frames and forwards them to the [`Engine`].
//! Replies never come back through the reader: the engine (or, for
//! commits waiting on their durability barrier, its ack pump) writes
//! response frames straight to the socket.  A slow fsync therefore
//! stalls only the clients that committed, while the engine keeps
//! executing other connections' statements — and their commits pile
//! onto the same upcoming fsync, which is the group-commit win.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::thread::JoinHandle;

use bdbms_common::{BdbmsError, Result};

use crate::engine::{Cmd, Engine, EngineConfig, EngineRequest};
use crate::proto::{read_request, write_response, Request, Response};

/// Server configuration.
pub struct ServerConfig {
    /// Database directory (created on first boot).
    pub db_path: PathBuf,
    /// Listen address, e.g. `127.0.0.1:4411` (`:0` picks a free port).
    pub listen: String,
    /// Arm group commit (the default; off for baseline measurements).
    pub group_commit: bool,
}

impl ServerConfig {
    /// Defaults: group commit on.
    pub fn new(db_path: impl Into<PathBuf>, listen: impl Into<String>) -> ServerConfig {
        ServerConfig {
            db_path: db_path.into(),
            listen: listen.into(),
            group_commit: true,
        }
    }
}

/// A running server: an engine thread, an accept thread, and one
/// handler thread per live connection.
pub struct Server {
    addr: SocketAddr,
    engine: Option<Engine>,
    accept: Option<JoinHandle<()>>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Bind, open the database, and start accepting connections.
    pub fn start(cfg: ServerConfig) -> Result<Server> {
        let listener = TcpListener::bind(&cfg.listen)
            .map_err(|e| BdbmsError::io(format!("bind {}: {e}", cfg.listen)))?;
        let addr = listener.local_addr()?;
        let engine = Engine::start(EngineConfig {
            path: cfg.db_path,
            group_commit: cfg.group_commit,
        })?;
        let shutdown = Arc::new(AtomicBool::new(false));

        let engine_tx = engine.sender();
        let stop_flag = shutdown.clone();
        let accept = std::thread::Builder::new()
            .name("bdbms-accept".to_string())
            .spawn(move || {
                let next_conn = AtomicU64::new(1);
                for stream in listener.incoming() {
                    if stop_flag.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // reply frames are small and latency-bound; Nagle
                    // would hold them hostage to the client's ACKs
                    let _ = stream.set_nodelay(true);
                    let conn = next_conn.fetch_add(1, Ordering::Relaxed);
                    let tx = engine_tx.clone();
                    let _ = std::thread::Builder::new()
                        .name(format!("bdbms-conn-{conn}"))
                        .spawn(move || serve_conn(stream, conn, tx));
                }
            })
            .map_err(|e| BdbmsError::io(format!("spawning accept thread: {e}")))?;

        Ok(Server {
            addr,
            engine: Some(engine),
            accept: Some(accept),
            shutdown,
        })
    }

    /// The bound address (resolves `:0` to the picked port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total WAL fsyncs issued so far (the e14 experiment's numerator).
    pub fn fsync_count(&self) -> u64 {
        self.engine.as_ref().map(|e| e.fsync_count()).unwrap_or(0)
    }

    /// Block forever serving connections (the `bdbms-serve` main loop).
    pub fn serve_forever(mut self) {
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }

    /// Graceful stop: stop accepting, then join the engine once every
    /// connected client has disconnected.  Clients that never say
    /// goodbye keep their handler threads (and thus the engine) alive —
    /// callers that need a hard stop kill the process instead, which is
    /// exactly what the crash suite does.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // unblock the accept loop with a throwaway connection
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        if let Some(engine) = self.engine.take() {
            engine.stop();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }
}

/// One connection's reader loop.  Strictly sequential per connection:
/// decode a frame, forward it, read the next.  The engine writes the
/// replies — the reader answers directly only for `Ping`/`Quit` and
/// engine-is-gone errors, which is safe because the protocol allows at
/// most one outstanding request per connection (so no engine write can
/// be in flight for this socket at that moment).
fn serve_conn(stream: TcpStream, conn: u64, engine: Sender<EngineRequest>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let stream = Arc::new(stream);
    if engine
        .send(EngineRequest {
            conn,
            cmd: Cmd::Connect {
                stream: stream.clone(),
            },
        })
        .is_err()
    {
        let _ = write_direct(
            &stream,
            &Response::Error {
                error: BdbmsError::io("server is shutting down"),
                in_txn: false,
            },
        );
        return;
    }

    // runs until EOF or a torn/garbage frame ends the connection
    while let Ok(Some(req)) = read_request(&mut reader) {
        let cmd = match req {
            // liveness probes skip the engine round-trip entirely
            Request::Ping => {
                if write_direct(&stream, &Response::Pong).is_err() {
                    break;
                }
                continue;
            }
            Request::Quit => {
                let _ = write_direct(&stream, &Response::Bye);
                break;
            }
            Request::Hello { user } => Cmd::Hello { user },
            Request::Prepare { sql } => Cmd::Prepare { sql },
            Request::Execute { stmt, params } => Cmd::Execute { stmt, params },
            Request::Query { stmt, params } => Cmd::Query { stmt, params },
            Request::Fetch { cursor, max_rows } => Cmd::Fetch { cursor, max_rows },
            Request::CloseStmt { stmt } => Cmd::CloseStmt { stmt },
            Request::CloseCursor { cursor } => Cmd::CloseCursor { cursor },
            Request::Run { sql } => Cmd::Run { sql },
            Request::SetUser { user } => Cmd::SetUser { user },
            Request::Metrics => Cmd::Metrics,
        };
        if engine.send(EngineRequest { conn, cmd }).is_err() {
            // engine is gone; tell the client and hang up
            let _ = write_direct(
                &stream,
                &Response::Error {
                    error: BdbmsError::io("server is shutting down"),
                    in_txn: false,
                },
            );
            break;
        }
    }
    let _ = engine.send(EngineRequest {
        conn,
        cmd: Cmd::Disconnect,
    });
}

/// Encode and write one response as a single `write(2)`.
fn write_direct(stream: &TcpStream, resp: &Response) -> Result<()> {
    let mut buf = Vec::new();
    write_response(&mut buf, resp)?;
    let mut w: &TcpStream = stream;
    w.write_all(&buf)?;
    Ok(())
}
