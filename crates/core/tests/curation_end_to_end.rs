//! End-to-end tests for the paper's curation machinery: local dependency
//! tracking (§5, Figures 9–10), content-based approval (§6, Figure 11),
//! provenance (§4, Figure 8), and GRANT/REVOKE authorization.

use bdbms_common::Value;
use bdbms_core::provenance::{ProvOp, ProvenanceRecord};
use bdbms_core::Database;

/// Build the Figure 9 scenario: Gene + Protein tables, rules r1/r2, and a
/// registered executable prediction tool `P` (first character of each
/// codon — a stand-in translation with the right shape).
fn figure9_db() -> Database {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE Gene (GID TEXT, GName TEXT, GSequence TEXT)")
        .unwrap();
    db.execute("CREATE TABLE Protein (PName TEXT, GID TEXT, PSequence TEXT, PFunction TEXT)")
        .unwrap();
    db.register_procedure("P", |args| match &args[0] {
        Value::Text(dna) => Value::Text(translate(dna)),
        _ => Value::Null,
    });
    db.execute(
        "CREATE DEPENDENCY RULE r1 FROM Gene.GSequence TO Protein.PSequence \
         VIA PROCEDURE 'P' EXECUTABLE LINK Gene.GID = Protein.GID",
    )
    .unwrap();
    db.execute(
        "CREATE DEPENDENCY RULE r2 FROM Protein.PSequence TO Protein.PFunction \
         VIA PROCEDURE 'lab-experiment'",
    )
    .unwrap();
    for (gid, name, seq) in [
        ("JW0080", "mraW", "ATGATGGAAAAA"),
        ("JW0082", "ftsI", "ATGAAAGCAGCA"),
        ("JW0055", "yabP", "ATGAAAGTATCA"),
    ] {
        db.execute(&format!(
            "INSERT INTO Gene VALUES ('{gid}', '{name}', '{seq}')"
        ))
        .unwrap();
    }
    for (pname, gid, fun) in [
        ("mraW", "JW0080", "Exhibitor"),
        ("ftsI", "JW0082", "Cell wall formation"),
        ("yabP", "JW0055", "Hypothetical protein"),
    ] {
        let gseq = gene_seq(&mut db, gid);
        db.execute(&format!(
            "INSERT INTO Protein VALUES ('{pname}', '{gid}', '{}', '{fun}')",
            translate(&gseq)
        ))
        .unwrap();
    }
    db
}

/// Toy stand-in for the prediction tool: one residue per codon.
fn translate(dna: &str) -> String {
    dna.as_bytes().chunks(3).map(|c| c[0] as char).collect()
}

fn gene_seq(db: &mut Database, gid: &str) -> String {
    let qr = db
        .execute(&format!("SELECT GSequence FROM Gene WHERE GID = '{gid}'"))
        .unwrap();
    qr.rows[0].values[0].to_string()
}

fn protein_row(db: &mut Database, gid: &str) -> (String, String) {
    let qr = db
        .execute(&format!(
            "SELECT PSequence, PFunction FROM Protein WHERE GID = '{gid}'"
        ))
        .unwrap();
    (
        qr.rows[0].values[0].to_string(),
        qr.rows[0].values[1].to_string(),
    )
}

#[test]
fn figure10_gene_update_recomputes_sequence_outdates_function() {
    let mut db = figure9_db();
    // modify the sequences of JW0080 and JW0082 (the paper's example)
    for gid in ["JW0080", "JW0082"] {
        db.execute(&format!(
            "UPDATE Gene SET GSequence = 'GTGGTGGTGGTG' WHERE GID = '{gid}'"
        ))
        .unwrap();
    }
    // PSequence was recomputed by P automatically — bitmap bit stays 0
    for gid in ["JW0080", "JW0082"] {
        let (pseq, _) = protein_row(&mut db, gid);
        assert_eq!(pseq, translate("GTGGTGGTGGTG"));
    }
    // PFunction cannot be recomputed (lab experiment) — marked outdated
    let outdated = db.execute("SHOW OUTDATED ON Protein").unwrap();
    let cells: Vec<(String, String)> = outdated
        .rows
        .iter()
        .map(|r| (r.values[1].to_string(), r.values[2].to_string()))
        .collect();
    assert_eq!(cells.len(), 2, "{cells:?}");
    assert!(cells.iter().all(|(_, c)| c == "PFunction"));
    // untouched gene's protein is clean
    let all = db.execute("SHOW OUTDATED").unwrap();
    assert_eq!(all.rows.len(), 2);
}

#[test]
fn outdated_cells_propagate_annotation_in_queries() {
    // §5: "the database should propagate with those items an annotation
    // specifying that the query answer may not be correct"
    let mut db = figure9_db();
    db.execute("UPDATE Gene SET GSequence = 'CCCCCCCCC' WHERE GID = 'JW0080'")
        .unwrap();
    let qr = db
        .execute("SELECT PFunction FROM Protein WHERE GID = 'JW0080'")
        .unwrap();
    let anns: Vec<String> = qr.rows[0].anns[0].iter().map(|a| a.text()).collect();
    assert_eq!(anns.len(), 1);
    assert!(anns[0].contains("outdated"));
    // AWHERE can select exactly the outdated tuples
    let qr = db
        .execute("SELECT GID FROM Protein AWHERE FROM outdated")
        .unwrap();
    assert_eq!(qr.rows.len(), 1);
    assert_eq!(qr.rows[0].values[0].to_string(), "JW0080");
}

#[test]
fn validate_clears_outdated_without_modification() {
    // §5 "Validating outdated data": a gene change may not affect the
    // protein function; revalidation clears the mark without a new value.
    let mut db = figure9_db();
    db.execute("UPDATE Gene SET GSequence = 'AAAAAAAAA' WHERE GID = 'JW0055'")
        .unwrap();
    assert_eq!(db.execute("SHOW OUTDATED").unwrap().rows.len(), 1);
    let (_, fun_before) = protein_row(&mut db, "JW0055");
    db.execute("VALIDATE Protein COLUMNS PFunction WHERE GID = 'JW0055'")
        .unwrap();
    assert_eq!(db.execute("SHOW OUTDATED").unwrap().rows.len(), 0);
    let (_, fun_after) = protein_row(&mut db, "JW0055");
    assert_eq!(fun_before, fun_after, "value untouched by validation");
}

#[test]
fn non_executable_chain_marks_transitively() {
    // If the prediction tool is NOT registered, PSequence itself is marked
    // outdated, and PFunction is marked transitively (derived Rule 4).
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE Gene (GID TEXT, GSequence TEXT)")
        .unwrap();
    db.execute("CREATE TABLE Protein (GID TEXT, PSequence TEXT, PFunction TEXT)")
        .unwrap();
    // note: rule says EXECUTABLE but no procedure body is registered →
    // the engine cannot run it and falls back to marking
    db.execute(
        "CREATE DEPENDENCY RULE r1 FROM Gene.GSequence TO Protein.PSequence \
         VIA PROCEDURE 'P' EXECUTABLE LINK Gene.GID = Protein.GID",
    )
    .unwrap();
    db.execute(
        "CREATE DEPENDENCY RULE r2 FROM Protein.PSequence TO Protein.PFunction \
         VIA PROCEDURE 'lab-experiment'",
    )
    .unwrap();
    db.execute("INSERT INTO Gene VALUES ('g1', 'ATG')").unwrap();
    db.execute("INSERT INTO Protein VALUES ('g1', 'M', 'kinase')")
        .unwrap();
    db.execute("UPDATE Gene SET GSequence = 'GTG' WHERE GID = 'g1'")
        .unwrap();
    let qr = db.execute("SHOW OUTDATED ON Protein").unwrap();
    let cols: Vec<String> = qr.rows.iter().map(|r| r.values[2].to_string()).collect();
    assert!(cols.contains(&"PSequence".to_string()));
    assert!(cols.contains(&"PFunction".to_string()));
}

#[test]
fn multi_source_rule_blast_recomputes() {
    // Figure 9(b): Evalue depends on (Gene1, Gene2) via BLAST-2.2.15
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE GeneMatching (Gene1 TEXT, Gene2 TEXT, Evalue FLOAT)")
        .unwrap();
    db.register_procedure("BLAST-2.2.15", |args| {
        // toy E-value: shared prefix length between the two sequences
        let (a, b) = (
            args[0].as_text().unwrap_or(""),
            args[1].as_text().unwrap_or(""),
        );
        let shared = a.bytes().zip(b.bytes()).take_while(|(x, y)| x == y).count();
        Value::Float(1.0 / (1.0 + shared as f64))
    });
    db.execute(
        "CREATE DEPENDENCY RULE r3 FROM GeneMatching.Gene1, GeneMatching.Gene2 \
         TO GeneMatching.Evalue VIA PROCEDURE 'BLAST-2.2.15' EXECUTABLE",
    )
    .unwrap();
    db.execute("INSERT INTO GeneMatching VALUES ('ATCCTGGTT', 'ATCCCGGTT', 0.5)")
        .unwrap();
    // insertion already recomputed the Evalue
    let qr = db.execute("SELECT Evalue FROM GeneMatching").unwrap();
    assert_eq!(qr.rows[0].values[0], Value::Float(1.0 / 5.0));
    // updating either source recomputes again; nothing is marked outdated
    db.execute("UPDATE GeneMatching SET Gene2 = 'ATCCTGGTT'")
        .unwrap();
    let qr = db.execute("SELECT Evalue FROM GeneMatching").unwrap();
    assert_eq!(qr.rows[0].values[0], Value::Float(1.0 / 10.0));
    assert_eq!(db.execute("SHOW OUTDATED").unwrap().rows.len(), 0);
}

#[test]
fn closures_and_derived_rules_via_api() {
    let db = figure9_db();
    let closure = db.dependencies().closure_of_attribute("Gene", "GSequence");
    assert_eq!(closure.len(), 2);
    let derived = db.dependencies().derived_rules();
    assert_eq!(derived.len(), 1);
    assert!(!derived[0].executable);
    let proc_closure = db.dependencies().closure_of_procedure("P");
    assert_eq!(proc_closure.len(), 2, "P affects PSequence and PFunction");
}

// ---- content-based approval (§6, Figure 11) ----

fn approval_db() -> Database {
    let mut db = figure9_db();
    db.execute("CREATE USER labadmin").unwrap();
    db.execute("CREATE USER alice IN GROUP lab1").unwrap();
    db.execute("GRANT SELECT, INSERT, UPDATE, DELETE ON Gene TO alice")
        .unwrap();
    db.execute("GRANT SELECT ON Protein TO alice").unwrap();
    db.execute("START CONTENT APPROVAL ON Gene COLUMNS GSequence APPROVED BY labadmin")
        .unwrap();
    db
}

#[test]
fn pending_update_visible_then_disapproved_and_undone() {
    let mut db = approval_db();
    let original = gene_seq(&mut db, "JW0080");
    db.execute_as(
        "UPDATE Gene SET GSequence = 'TTTTTTTTT' WHERE GID = 'JW0080'",
        "alice",
    )
    .unwrap();
    // pending yet visible (§6: users may view data pending approval)
    assert_eq!(gene_seq(&mut db, "JW0080"), "TTTTTTTTT");
    let pending = db.execute("SHOW PENDING OPERATIONS ON Gene").unwrap();
    assert_eq!(pending.rows.len(), 1);
    let id = pending.rows[0].values[0].as_int().unwrap();
    // labadmin disapproves → inverse UPDATE restores the old value
    db.execute_as(&format!("DISAPPROVE OPERATION {id}"), "labadmin")
        .unwrap();
    assert_eq!(gene_seq(&mut db, "JW0080"), original);
    // the undo itself went through dependency tracking: PSequence again
    // matches the original gene
    let (pseq, _) = protein_row(&mut db, "JW0080");
    assert_eq!(pseq, translate(&original));
    assert!(db
        .execute("SHOW PENDING OPERATIONS")
        .unwrap()
        .rows
        .is_empty());
}

#[test]
fn approve_keeps_change() {
    let mut db = approval_db();
    db.execute_as(
        "UPDATE Gene SET GSequence = 'CCCCCCCCC' WHERE GID = 'JW0082'",
        "alice",
    )
    .unwrap();
    let pending = db.execute("SHOW PENDING OPERATIONS").unwrap();
    let id = pending.rows[0].values[0].as_int().unwrap();
    db.execute_as(&format!("APPROVE OPERATION {id}"), "labadmin")
        .unwrap();
    assert_eq!(gene_seq(&mut db, "JW0082"), "CCCCCCCCC");
    // double decision fails
    assert!(db
        .execute_as(&format!("APPROVE OPERATION {id}"), "labadmin")
        .is_err());
}

#[test]
fn insert_and_delete_inverses() {
    let mut db = approval_db();
    // approval on Gene monitors all ops touching GSequence; INSERT touches
    // every column, so it is logged
    db.execute_as(
        "INSERT INTO Gene VALUES ('JW9999', 'newG', 'AAACCC')",
        "alice",
    )
    .unwrap();
    let pending = db.execute("SHOW PENDING OPERATIONS").unwrap();
    assert_eq!(pending.rows.len(), 1);
    let id = pending.rows[0].values[0].as_int().unwrap();
    db.execute_as(&format!("DISAPPROVE OPERATION {id}"), "labadmin")
        .unwrap();
    assert!(db
        .execute("SELECT * FROM Gene WHERE GID = 'JW9999'")
        .unwrap()
        .rows
        .is_empty());
    // DELETE: disapproval re-inserts the old tuple
    db.execute_as("DELETE FROM Gene WHERE GID = 'JW0055'", "alice")
        .unwrap();
    assert_eq!(
        db.execute("SELECT * FROM Gene").unwrap().rows.len(),
        2,
        "row deleted while pending"
    );
    let pending = db.execute("SHOW PENDING OPERATIONS").unwrap();
    let id = pending.rows[0].values[0].as_int().unwrap();
    db.execute_as(&format!("DISAPPROVE OPERATION {id}"), "labadmin")
        .unwrap();
    let qr = db
        .execute("SELECT GName FROM Gene WHERE GID = 'JW0055'")
        .unwrap();
    assert_eq!(qr.rows[0].values[0].to_string(), "yabP");
}

#[test]
fn approver_and_unmonitored_changes_bypass_log() {
    let mut db = approval_db();
    // labadmin's own updates are not logged
    db.execute("GRANT UPDATE ON Gene TO labadmin").unwrap();
    db.execute_as(
        "UPDATE Gene SET GSequence = 'GGG' WHERE GID = 'JW0080'",
        "labadmin",
    )
    .unwrap();
    assert!(db
        .execute("SHOW PENDING OPERATIONS")
        .unwrap()
        .rows
        .is_empty());
    // updates to unmonitored columns are not logged either
    db.execute_as(
        "UPDATE Gene SET GName = 'renamed' WHERE GID = 'JW0080'",
        "alice",
    )
    .unwrap();
    assert!(db
        .execute("SHOW PENDING OPERATIONS")
        .unwrap()
        .rows
        .is_empty());
    // STOP turns monitoring off entirely
    db.execute("STOP CONTENT APPROVAL ON Gene").unwrap();
    db.execute_as(
        "UPDATE Gene SET GSequence = 'AAA' WHERE GID = 'JW0080'",
        "alice",
    )
    .unwrap();
    assert!(db
        .execute("SHOW PENDING OPERATIONS")
        .unwrap()
        .rows
        .is_empty());
}

#[test]
fn only_approver_decides() {
    let mut db = approval_db();
    db.execute_as(
        "UPDATE Gene SET GSequence = 'TTT' WHERE GID = 'JW0080'",
        "alice",
    )
    .unwrap();
    let id = db.execute("SHOW PENDING OPERATIONS").unwrap().rows[0].values[0]
        .as_int()
        .unwrap();
    let err = db
        .execute_as(&format!("APPROVE OPERATION {id}"), "alice")
        .unwrap_err();
    assert_eq!(err.kind(), "unauthorized");
    // admin can always decide
    db.execute(&format!("APPROVE OPERATION {id}")).unwrap();
}

// ---- identity-based authorization (§6) ----

#[test]
fn grant_revoke_enforced() {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE Gene (GID TEXT)").unwrap();
    db.execute("CREATE USER mallory").unwrap();
    let err = db.execute_as("SELECT * FROM Gene", "mallory").unwrap_err();
    assert_eq!(err.kind(), "unauthorized");
    db.execute("GRANT SELECT ON Gene TO mallory").unwrap();
    assert!(db.execute_as("SELECT * FROM Gene", "mallory").is_ok());
    assert!(db
        .execute_as("INSERT INTO Gene VALUES ('x')", "mallory")
        .is_err());
    db.execute("REVOKE SELECT ON Gene FROM mallory").unwrap();
    assert!(db.execute_as("SELECT * FROM Gene", "mallory").is_err());
    // group grants
    db.execute("CREATE USER bob IN GROUP lab1").unwrap();
    db.execute("GRANT SELECT ON Gene TO lab1").unwrap();
    assert!(db.execute_as("SELECT * FROM Gene", "bob").is_ok());
    // non-admin cannot grant on someone else's table
    assert!(db
        .execute_as("GRANT SELECT ON Gene TO mallory", "bob")
        .is_err());
}

// ---- provenance (§4, Figure 8) ----

#[test]
fn figure8_source_queries() {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE T (id INT, v TEXT)").unwrap();
    db.execute("INSERT INTO T VALUES (1, 'a'), (2, 'b')")
        .unwrap();
    db.enable_provenance("T").unwrap();
    // copy from S2, then program P1 updates, then S3 overwrites column v
    db.record_provenance(
        "T",
        &[0, 1],
        &[0, 1],
        &ProvenanceRecord {
            source: "S2".into(),
            operation: ProvOp::Copy,
            program: None,
            time: 0,
        },
    )
    .unwrap();
    let t_copy = db.now();
    db.record_provenance(
        "T",
        &[0],
        &[1],
        &ProvenanceRecord {
            source: "P1".into(),
            operation: ProvOp::ProgramUpdate,
            program: Some("P1".into()),
            time: 0,
        },
    )
    .unwrap();
    let t_update = db.now();
    db.record_provenance(
        "T",
        &[0, 1],
        &[1],
        &ProvenanceRecord {
            source: "S3".into(),
            operation: ProvOp::Overwrite,
            program: None,
            time: 0,
        },
    )
    .unwrap();
    // Figure 8: "what is the source of this value at time T?"
    let at_copy = db.source_of("T", 0, 1, t_copy).unwrap().unwrap();
    assert_eq!(at_copy.source, "S2");
    let at_update = db.source_of("T", 0, 1, t_update).unwrap().unwrap();
    assert_eq!(at_update.source, "P1");
    let now = db.source_of("T", 0, 1, db.now()).unwrap().unwrap();
    assert_eq!(now.source, "S3");
    assert_eq!(now.operation, ProvOp::Overwrite);
    // id column of row 0 only ever saw the copy
    let id_src = db.source_of("T", 0, 0, db.now()).unwrap().unwrap();
    assert_eq!(id_src.source, "S2");
    // full history in order
    let hist = db.provenance_history("T", 0, 1).unwrap();
    assert_eq!(hist.len(), 3);
    assert_eq!(hist[0].source, "S2");
    assert_eq!(hist[2].source, "S3");
}

#[test]
fn provenance_writes_are_restricted() {
    // §4: end-users may not insert provenance; integration tools (the
    // PROVENANCE privilege) may.
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE T (id INT)").unwrap();
    db.execute("INSERT INTO T VALUES (1)").unwrap();
    db.enable_provenance("T").unwrap();
    db.execute("CREATE USER enduser").unwrap();
    db.execute("GRANT SELECT ON T TO enduser").unwrap();
    db.execute("CREATE USER loader").unwrap();
    db.execute("GRANT SELECT, PROVENANCE ON T TO loader")
        .unwrap();
    let stmt = "ADD ANNOTATION TO T.provenance \
                VALUE '<Annotation><source>S1</source><operation>copy</operation></Annotation>' \
                ON (SELECT G.id FROM T G)";
    let err = db.execute_as(stmt, "enduser").unwrap_err();
    assert_eq!(err.kind(), "unauthorized");
    assert!(db.execute_as(stmt, "loader").is_ok());
    // schema enforcement rejects malformed provenance bodies
    let bad = "ADD ANNOTATION TO T.provenance VALUE 'free text' \
               ON (SELECT G.id FROM T G)";
    let err = db.execute_as(bad, "loader").unwrap_err();
    assert_eq!(err.kind(), "invalid");
    // and the provenance propagates through A-SQL like any annotation
    let qr = db
        .execute("SELECT id FROM T ANNOTATION(provenance)")
        .unwrap();
    assert_eq!(qr.rows[0].anns[0].len(), 1);
    assert!(qr.rows[0].anns[0][0].text().contains("S1"));
}

#[test]
fn deleting_source_row_outdates_dependents() {
    let mut db = figure9_db();
    db.execute("DELETE FROM Gene WHERE GID = 'JW0080'").unwrap();
    let qr = db.execute("SHOW OUTDATED ON Protein").unwrap();
    // both PSequence and PFunction of the dependent protein are stale
    let cols: Vec<String> = qr.rows.iter().map(|r| r.values[2].to_string()).collect();
    assert!(cols.contains(&"PSequence".to_string()), "{cols:?}");
    assert!(cols.contains(&"PFunction".to_string()));
}

#[test]
fn cycle_rejected_through_sql() {
    let mut db = figure9_db();
    let err = db
        .execute(
            "CREATE DEPENDENCY RULE bad FROM Protein.PFunction TO Gene.GSequence \
             VIA PROCEDURE 'X' LINK Protein.GID = Gene.GID",
        )
        .unwrap_err();
    assert_eq!(err.kind(), "dependency");
}
