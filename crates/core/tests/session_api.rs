//! End-to-end coverage of the Session API: prepared statements,
//! parameter binding, streaming cursors, plan caching, and plan
//! invalidation on DDL / ANALYZE.

use bdbms_common::{ErrorCode, Value};
use bdbms_core::batch::BATCH_SIZE;
use bdbms_core::Database;

/// A Gene table with `n` rows (`Len` = row number) and no indexes.
fn gene_db(n: usize) -> Database {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE Gene (GID TEXT, GName TEXT, Len INT)")
        .unwrap();
    let mut i = 0;
    while i < n {
        let hi = (i + 500).min(n);
        let tuples: Vec<String> = (i..hi)
            .map(|r| format!("('JW{r:06}', 'g{r}', {r})"))
            .collect();
        db.execute(&format!("INSERT INTO Gene VALUES {}", tuples.join(", ")))
            .unwrap();
        i = hi;
    }
    db
}

#[test]
fn prepared_query_matches_one_shot_execute() {
    let mut db = gene_db(200);
    let expected = db
        .execute("SELECT GID, Len FROM Gene WHERE Len >= 10 AND Len < 14")
        .unwrap();

    let session = db.session("admin");
    let stmt = session
        .prepare("SELECT GID, Len FROM Gene WHERE Len >= ? AND Len < ?")
        .unwrap();
    assert_eq!(stmt.param_count(), 2);
    let cursor = session
        .query(&stmt, &[Value::Int(10), Value::Int(14)])
        .unwrap();
    let got = cursor.into_result().unwrap();
    assert_eq!(got.columns, expected.columns);
    assert_eq!(
        got.rows.iter().map(|r| &r.values).collect::<Vec<_>>(),
        expected.rows.iter().map(|r| &r.values).collect::<Vec<_>>()
    );

    // re-execution with different parameters reuses the cached parse
    let got = session
        .query(&stmt, &[Value::Int(100), Value::Int(101)])
        .unwrap()
        .into_result()
        .unwrap();
    assert_eq!(got.rows.len(), 1);
    assert_eq!(got.rows[0].values[0], Value::Text("JW000100".into()));
}

#[test]
fn numbered_parameters_bind_by_slot_and_repeat() {
    let mut db = gene_db(50);
    let session = db.session("admin");
    // $1 used twice, $2 once — two slots, order independent of use site
    let stmt = session
        .prepare("SELECT GID FROM Gene WHERE Len >= $1 AND Len <= $1 + $2")
        .unwrap();
    assert_eq!(stmt.param_count(), 2);
    let rows = session
        .query(&stmt, &[Value::Int(7), Value::Int(2)])
        .unwrap()
        .into_result()
        .unwrap();
    assert_eq!(rows.rows.len(), 3, "Len in [7, 9]");
}

#[test]
fn row_cursor_streams_without_materializing() {
    let mut db = gene_db(5000);
    let session = db.session("admin");
    let stmt = session.prepare("SELECT GID FROM Gene").unwrap();
    let mut cursor = session.query(&stmt, &[]).unwrap();
    assert_eq!(cursor.columns(), ["GID"]);
    for _ in 0..5 {
        assert!(cursor.next_row().unwrap().is_some());
    }
    // the scan advanced only as far as the cursor was pulled — at
    // per-batch granularity: pulling any of the first BATCH_SIZE rows
    // fetches exactly one batch, and the remaining 3976 rows were never
    // fetched off the heap
    let st = cursor.stats();
    assert_eq!(
        st.rows_fetched, BATCH_SIZE as u64,
        "pull-based cursor must not materialize past the current batch"
    );
    assert_eq!(st.full_scans, 1);
    // draining the cursor fetches the rest
    let rest = cursor.into_result().unwrap();
    assert_eq!(rest.rows.len(), 4995);

    // the one-shot path fetches everything up front (sanity contrast)
    let (_, st) = db
        .query_traced("SELECT GID FROM Gene", &Default::default())
        .unwrap();
    assert_eq!(st.rows_fetched, 5000);
}

#[test]
fn dropped_cursor_stops_the_scan() {
    let mut db = gene_db(3000);
    let session = db.session("admin");
    let stmt = session
        .prepare("SELECT GID FROM Gene WHERE Len % 2 = 0")
        .unwrap();
    let mut cursor = session.query(&stmt, &[]).unwrap();
    let first = cursor.next_row().unwrap().unwrap();
    assert_eq!(first.values[0], Value::Text("JW000000".into()));
    let fetched_at_drop = cursor.stats().rows_fetched;
    drop(cursor);
    assert!(
        fetched_at_drop <= BATCH_SIZE as u64,
        "one surviving row needs at most one batch of fetches, got {fetched_at_drop}"
    );
}

/// Regression for the batch-executor redesign: the cursor surface keeps
/// its blocking-vs-streaming contract, with the streaming scan advancing
/// in whole batches as rows are pulled — never materializing the rest of
/// the table, and fetching nothing before the first pull.
#[test]
fn streamable_cursor_advances_per_batch() {
    let mut db = gene_db(5000);
    let session = db.session("admin");
    let stmt = session.prepare("SELECT GID FROM Gene").unwrap();
    let mut cursor = session.query(&stmt, &[]).unwrap();
    // opening the cursor fetches nothing
    assert_eq!(cursor.stats().rows_fetched, 0);
    // rows 1..=BATCH_SIZE all come out of the first batch
    for _ in 0..BATCH_SIZE {
        assert!(cursor.next_row().unwrap().is_some());
    }
    assert_eq!(cursor.stats().rows_fetched, BATCH_SIZE as u64);
    assert_eq!(cursor.stats().scan_batches, 1);
    // the next pull crosses the batch boundary: exactly one more batch
    assert!(cursor.next_row().unwrap().is_some());
    assert_eq!(cursor.stats().rows_fetched, 2 * BATCH_SIZE as u64);
    assert_eq!(cursor.stats().scan_batches, 2);
    // dropping here leaves the remaining ~3000 rows unfetched
    let fetched = cursor.stats().rows_fetched;
    drop(cursor);
    assert!(fetched < 5000);
}

#[test]
fn prepared_dml_executes_with_parameters() {
    let mut db = gene_db(0);
    let mut session = db.session("admin");
    let ins = session
        .prepare("INSERT INTO Gene VALUES (?, ?, ?)")
        .unwrap();
    for i in 0..10i64 {
        let r = session
            .execute(
                &ins,
                &[
                    Value::Text(format!("G{i}")),
                    Value::Text("x".into()),
                    Value::Int(i),
                ],
            )
            .unwrap();
        assert_eq!(r.affected, 1);
    }
    let upd = session
        .prepare("UPDATE Gene SET GName = $2 WHERE GID = $1")
        .unwrap();
    let r = session
        .execute(
            &upd,
            &[Value::Text("G3".into()), Value::Text("renamed".into())],
        )
        .unwrap();
    assert_eq!(r.affected, 1);
    let q = session
        .prepare("SELECT GName FROM Gene WHERE GID = ?")
        .unwrap();
    let got = session
        .query(&q, &[Value::Text("G3".into())])
        .unwrap()
        .into_result()
        .unwrap();
    assert_eq!(got.rows[0].values[0], Value::Text("renamed".into()));
}

#[test]
fn plan_is_cached_and_invalidated_by_create_index() {
    let mut db = gene_db(2000);
    let gen_before = db.catalog().generation();
    {
        let session = db.session("admin");
        let stmt = session
            .prepare("SELECT GID FROM Gene WHERE Len = ?")
            .unwrap();
        assert!(!stmt.has_cached_plan());

        // no index exists: the cached plan is a full scan
        let cursor = session.query(&stmt, &[Value::Int(42)]).unwrap();
        let st = cursor.stats();
        drop(cursor);
        assert!(stmt.has_cached_plan());
        assert_eq!(st.full_scans, 1, "no index to probe yet");
        assert_eq!(st.rows_fetched, 0, "nothing pulled yet");

        let got = session
            .query(&stmt, &[Value::Int(42)])
            .unwrap()
            .into_result()
            .unwrap();
        assert_eq!(got.rows.len(), 1);

        // DDL through the same session invalidates the cached plan …
        let mut session = session;
        session.run("CREATE INDEX len_idx ON Gene (Len)").unwrap();
        // … so the next execution replans onto the new index instead of
        // replaying the stale full-scan choice
        let mut cursor = session.query(&stmt, &[Value::Int(42)]).unwrap();
        let row = cursor.next_row().unwrap().unwrap();
        assert_eq!(row.values[0], Value::Text("JW000042".into()));
        let st = cursor.stats();
        assert_eq!(
            st.index_probes, 1,
            "stale full-scan plan must not be reused"
        );
        assert_eq!(st.full_scans, 0);
        assert_eq!(st.chosen_indexes, vec!["len_idx".to_string()]);
    }
    assert!(
        db.catalog().generation() > gen_before,
        "CREATE INDEX must bump the plan generation"
    );

    // ANALYZE also bumps the generation (fresh stats can flip cost-based
    // choices even without new access paths)
    let g = db.catalog().generation();
    db.execute("ANALYZE Gene").unwrap();
    assert!(db.catalog().generation() > g);
}

#[test]
fn cached_plan_replays_across_executions() {
    let mut db = gene_db(2000);
    db.execute("CREATE INDEX len_idx ON Gene (Len)").unwrap();
    let session = db.session("admin");
    let stmt = session
        .prepare("SELECT GID FROM Gene WHERE Len = ?")
        .unwrap();
    // 1,000 re-executions: parse once, plan once, probe each time
    for i in 0..1000 {
        let k = i % 2000;
        let mut cursor = session.query(&stmt, &[Value::Int(k)]).unwrap();
        let row = cursor.next_row().unwrap().unwrap();
        assert_eq!(row.values[0], Value::Text(format!("JW{k:06}")));
        let st = cursor.stats();
        assert_eq!(st.index_probes, 1);
        assert_eq!(st.rows_fetched, 1);
    }
    assert!(stmt.has_cached_plan());
}

#[test]
fn blocking_queries_still_cursor() {
    let mut db = gene_db(100);
    let session = db.session("admin");
    let stmt = session
        .prepare("SELECT GName, COUNT(*) AS n FROM Gene GROUP BY GName ORDER BY GName LIMIT 3")
        .unwrap();
    let cursor = session.query(&stmt, &[]).unwrap();
    assert_eq!(cursor.columns(), ["GName", "n"]);
    let got = cursor.into_result().unwrap();
    assert_eq!(got.rows.len(), 3);
}

#[test]
fn param_count_mismatch_is_structured() {
    let mut db = gene_db(10);
    let mut session = db.session("admin");
    let stmt = session
        .prepare("SELECT GID FROM Gene WHERE Len = ?")
        .unwrap();
    let err = session.query(&stmt, &[]).unwrap_err();
    assert_eq!(err.code(), ErrorCode::ParamMismatch);
    let err = session
        .query(&stmt, &[Value::Int(1), Value::Int(2)])
        .unwrap_err();
    assert_eq!(err.code(), ErrorCode::ParamMismatch);
    // legacy one-shot execution cannot bind parameters at all
    let err = session
        .run("SELECT GID FROM Gene WHERE Len = ?")
        .unwrap_err();
    assert_eq!(err.code(), ErrorCode::ParamMismatch);
}

#[test]
fn query_rejects_non_select_and_checks_auth() {
    let mut db = gene_db(10);
    db.execute("CREATE USER eve").unwrap();
    {
        let session = db.session("admin");
        let dml = session.prepare("DELETE FROM Gene").unwrap();
        let err = session.query(&dml, &[]).unwrap_err();
        assert_eq!(err.code(), ErrorCode::Invalid);
    }
    // eve holds no SELECT privilege: the cursor is refused up front
    let session = db.session("eve");
    let stmt = session.prepare("SELECT GID FROM Gene").unwrap();
    let err = session.query(&stmt, &[]).unwrap_err();
    assert_eq!(err.code(), ErrorCode::Unauthorized);
}

#[test]
fn prepared_statements_cache_by_sql_text() {
    let mut db = gene_db(10);
    let session = db.session("admin");
    let a = session.prepare("SELECT GID FROM Gene").unwrap();
    let b = session.prepare("SELECT GID FROM Gene").unwrap();
    // same cache entry: a plan observed through one handle is visible
    // through the other
    drop(session.query(&a, &[]).unwrap());
    assert!(b.has_cached_plan());
}

#[test]
fn annotations_flow_through_cursors() {
    let mut db = gene_db(20);
    db.execute("CREATE ANNOTATION TABLE Curation ON Gene")
        .unwrap();
    db.execute(
        "ADD ANNOTATION TO Gene.Curation VALUE 'curated' \
         ON (SELECT G.GID FROM Gene G WHERE Len < 3)",
    )
    .unwrap();
    let session = db.session("admin");
    let stmt = session
        .prepare("SELECT GID FROM Gene ANNOTATION(Curation) WHERE Len = ?")
        .unwrap();
    let mut cursor = session.query(&stmt, &[Value::Int(1)]).unwrap();
    let row = cursor.next_row().unwrap().unwrap();
    assert_eq!(row.anns[0][0].text(), "curated");
    let mut cursor = session.query(&stmt, &[Value::Int(10)]).unwrap();
    let row = cursor.next_row().unwrap().unwrap();
    assert!(row.anns[0].is_empty());
}

#[test]
fn null_binding_does_not_poison_the_plan_cache() {
    let mut db = gene_db(2000);
    db.execute("CREATE INDEX len_idx ON Gene (Len)").unwrap();
    let session = db.session("admin");
    let stmt = session
        .prepare("SELECT GID FROM Gene WHERE Len = ?")
        .unwrap();
    // first binding is NULL: provably-empty scan, and the decision is
    // value-dependent so nothing may be cached off it
    let got = session
        .query(&stmt, &[Value::Null])
        .unwrap()
        .into_result()
        .unwrap();
    assert!(got.rows.is_empty());
    assert!(
        !stmt.has_cached_plan(),
        "a NULL first binding must not pin an access path"
    );
    // the next (normal) binding probes the index as if NULL never happened
    let mut cursor = session.query(&stmt, &[Value::Int(42)]).unwrap();
    assert!(cursor.next_row().unwrap().is_some());
    assert_eq!(cursor.stats().index_probes, 1);
    drop(cursor);
    assert!(stmt.has_cached_plan());
    // a later NULL replays the cached column choice into an empty probe
    // and leaves the cache intact
    let got = session
        .query(&stmt, &[Value::Null])
        .unwrap()
        .into_result()
        .unwrap();
    assert!(got.rows.is_empty());
    assert!(stmt.has_cached_plan());
    let mut cursor = session.query(&stmt, &[Value::Int(7)]).unwrap();
    assert!(cursor.next_row().unwrap().is_some());
    assert_eq!(cursor.stats().index_probes, 1);
}

#[test]
fn set_op_branches_are_authorized() {
    let mut db = gene_db(5);
    db.execute("CREATE TABLE Secret (GID TEXT, GName TEXT, Len INT)")
        .unwrap();
    db.execute("INSERT INTO Secret VALUES ('classified', 'x', 1)")
        .unwrap();
    db.execute("CREATE USER eve").unwrap();
    db.execute("GRANT SELECT ON Gene TO eve").unwrap();
    {
        let session = db.session("eve");
        let stmt = session
            .prepare("SELECT GID FROM Gene UNION SELECT GID FROM Secret")
            .unwrap();
        let err = session.query(&stmt, &[]).unwrap_err();
        assert_eq!(err.code(), ErrorCode::Unauthorized);
    }
    // the legacy one-shot path shares the same check
    let err = db
        .execute_as("SELECT GID FROM Gene UNION SELECT GID FROM Secret", "eve")
        .unwrap_err();
    assert_eq!(err.code(), ErrorCode::Unauthorized);
    // with the grant in place the compound query flows
    db.execute("GRANT SELECT ON Secret TO eve").unwrap();
    let got = db
        .execute_as("SELECT GID FROM Gene UNION SELECT GID FROM Secret", "eve")
        .unwrap();
    assert_eq!(got.rows.len(), 6);
}

#[test]
fn query_traced_rejects_placeholders_up_front() {
    let db = gene_db(0);
    let err = db
        .query_traced("SELECT GID FROM Gene WHERE Len = ?", &Default::default())
        .unwrap_err();
    assert_eq!(err.code(), ErrorCode::ParamMismatch);
}
