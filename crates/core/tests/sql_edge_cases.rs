//! Edge-case tests for the SQL surface: NULLs, coercion, compound set
//! operations, multi-key ordering, LIKE corner cases, error surfaces.

use bdbms_common::Value;
use bdbms_core::Database;

fn db() -> Database {
    Database::new_in_memory()
}

#[test]
fn null_handling_through_the_pipeline() {
    let mut d = db();
    d.execute("CREATE TABLE T (a INT, b TEXT)").unwrap();
    d.execute("INSERT INTO T VALUES (1, 'x'), (NULL, 'y'), (3, NULL)")
        .unwrap();
    // NULL never satisfies comparisons
    let qr = d.execute("SELECT b FROM T WHERE a > 0").unwrap();
    assert_eq!(qr.rows.len(), 2);
    // IS NULL / IS NOT NULL
    let qr = d.execute("SELECT b FROM T WHERE a IS NULL").unwrap();
    assert_eq!(qr.rows.len(), 1);
    assert_eq!(qr.rows[0].values[0], Value::Text("y".into()));
    // aggregates skip NULLs; COUNT(*) does not
    let qr = d
        .execute("SELECT COUNT(*), COUNT(a), SUM(a), AVG(a) FROM T")
        .unwrap();
    assert_eq!(qr.rows[0].values[0], Value::Int(3));
    assert_eq!(qr.rows[0].values[1], Value::Int(2));
    assert_eq!(qr.rows[0].values[2], Value::Int(4));
    assert_eq!(qr.rows[0].values[3], Value::Float(2.0));
    // NULLs sort first in ORDER BY
    let qr = d.execute("SELECT a FROM T ORDER BY a").unwrap();
    assert!(qr.rows[0].values[0].is_null());
}

#[test]
fn int_float_coercion_in_storage_and_compare() {
    let mut d = db();
    d.execute("CREATE TABLE T (e FLOAT)").unwrap();
    d.execute("INSERT INTO T VALUES (2), (2.5), (3e-2)")
        .unwrap();
    let qr = d.execute("SELECT e FROM T WHERE e = 2").unwrap();
    assert_eq!(qr.rows.len(), 1);
    assert_eq!(qr.rows[0].values[0], Value::Float(2.0));
    let qr = d.execute("SELECT e FROM T WHERE e < 0.1").unwrap();
    assert_eq!(qr.rows[0].values[0], Value::Float(0.03));
}

#[test]
fn chained_set_operations() {
    let mut d = db();
    for (t, vals) in [("A", vec![1, 2, 3]), ("B", vec![2, 3, 4]), ("C", vec![3])] {
        d.execute(&format!("CREATE TABLE {t} (v INT)")).unwrap();
        for v in vals {
            d.execute(&format!("INSERT INTO {t} VALUES ({v})")).unwrap();
        }
    }
    // right-associative chain: A INTERSECT (B EXCEPT C) = {1,2,3} ∩ {2,4} = {2}
    let qr = d
        .execute("SELECT v FROM A INTERSECT SELECT v FROM B EXCEPT SELECT v FROM C")
        .unwrap();
    let got: Vec<i64> = qr
        .rows
        .iter()
        .map(|r| r.values[0].as_int().unwrap())
        .collect();
    assert_eq!(got, vec![2]);
}

#[test]
fn multi_key_order_by() {
    let mut d = db();
    d.execute("CREATE TABLE T (a INT, b INT)").unwrap();
    d.execute("INSERT INTO T VALUES (1, 2), (1, 1), (0, 9), (1, 3)")
        .unwrap();
    let qr = d.execute("SELECT a, b FROM T ORDER BY a, b DESC").unwrap();
    let got: Vec<(i64, i64)> = qr
        .rows
        .iter()
        .map(|r| (r.values[0].as_int().unwrap(), r.values[1].as_int().unwrap()))
        .collect();
    assert_eq!(got, vec![(0, 9), (1, 3), (1, 2), (1, 1)]);
}

#[test]
fn like_special_characters() {
    let mut d = db();
    d.execute("CREATE TABLE T (s TEXT)").unwrap();
    d.execute("INSERT INTO T VALUES ('a.b'), ('axb'), ('a*b'), ('ab')")
        .unwrap();
    // regex metacharacters in the pattern must be literal
    let qr = d.execute("SELECT s FROM T WHERE s LIKE 'a.b'").unwrap();
    assert_eq!(qr.rows.len(), 1);
    assert_eq!(qr.rows[0].values[0], Value::Text("a.b".into()));
    let qr = d.execute("SELECT s FROM T WHERE s LIKE 'a*b'").unwrap();
    assert_eq!(qr.rows.len(), 1);
    // _ matches exactly one char
    let qr = d.execute("SELECT s FROM T WHERE s LIKE 'a_b'").unwrap();
    assert_eq!(qr.rows.len(), 3);
    let qr = d.execute("SELECT s FROM T WHERE s LIKE 'a%b'").unwrap();
    assert_eq!(qr.rows.len(), 4);
}

#[test]
fn runtime_errors_are_errors_not_panics() {
    let mut d = db();
    d.execute("CREATE TABLE T (a INT)").unwrap();
    d.execute("INSERT INTO T VALUES (1)").unwrap();
    let e = d.execute("SELECT a / 0 FROM T").unwrap_err();
    assert_eq!(e.kind(), "eval");
    let e = d.execute("SELECT LENGTH(a) FROM T").unwrap_err();
    assert_eq!(e.kind(), "eval");
    let e = d.execute("SELECT NOSUCHFN(a) FROM T").unwrap_err();
    assert_eq!(e.kind(), "eval");
    // HAVING without aggregate context
    let e = d.execute("SELECT a FROM T HAVING a > 0").unwrap_err();
    assert_eq!(e.kind(), "invalid");
}

#[test]
fn string_concat_and_functions_in_projection() {
    let mut d = db();
    d.execute("CREATE TABLE G (GID TEXT, GSequence TEXT)")
        .unwrap();
    d.execute("INSERT INTO G VALUES ('JW0080', 'atgatg')")
        .unwrap();
    let qr = d
        .execute(
            "SELECT GID || ':' || UPPER(GSequence) AS tagged, \
             LENGTH(GSequence) AS len, SUBSTR(GSequence, 1, 3) AS codon FROM G",
        )
        .unwrap();
    assert_eq!(qr.columns, vec!["tagged", "len", "codon"]);
    assert_eq!(qr.rows[0].values[0], Value::Text("JW0080:ATGATG".into()));
    assert_eq!(qr.rows[0].values[1], Value::Int(6));
    assert_eq!(qr.rows[0].values[2], Value::Text("atg".into()));
}

#[test]
fn self_join_with_aliases() {
    let mut d = db();
    d.execute("CREATE TABLE G (GID TEXT, len INT)").unwrap();
    d.execute("INSERT INTO G VALUES ('a', 1), ('b', 2), ('c', 2)")
        .unwrap();
    // pairs with equal length, distinct ids
    let qr = d
        .execute(
            "SELECT X.GID, Y.GID FROM G X, G Y \
             WHERE X.len = Y.len AND X.GID < Y.GID",
        )
        .unwrap();
    assert_eq!(qr.rows.len(), 1);
    assert_eq!(qr.rows[0].values[0], Value::Text("b".into()));
    assert_eq!(qr.rows[0].values[1], Value::Text("c".into()));
}

#[test]
fn three_way_join() {
    let mut d = db();
    d.execute("CREATE TABLE A (k TEXT, va INT)").unwrap();
    d.execute("CREATE TABLE B (k TEXT, vb INT)").unwrap();
    d.execute("CREATE TABLE C (k TEXT, vc INT)").unwrap();
    for i in 0..20 {
        d.execute(&format!("INSERT INTO A VALUES ('k{i}', {i})"))
            .unwrap();
        if i % 2 == 0 {
            d.execute(&format!("INSERT INTO B VALUES ('k{i}', {})", i * 10))
                .unwrap();
        }
        if i % 3 == 0 {
            d.execute(&format!("INSERT INTO C VALUES ('k{i}', {})", i * 100))
                .unwrap();
        }
    }
    let qr = d
        .execute(
            "SELECT A.k, va, vb, vc FROM A, B, C \
             WHERE A.k = B.k AND B.k = C.k ORDER BY va",
        )
        .unwrap();
    // multiples of 6 in 0..20: 0, 6, 12, 18
    assert_eq!(qr.rows.len(), 4);
    assert_eq!(qr.rows[2].values[1], Value::Int(12));
    assert_eq!(qr.rows[2].values[2], Value::Int(120));
    assert_eq!(qr.rows[2].values[3], Value::Int(1200));
}

#[test]
fn group_by_qualified_column_and_having() {
    let mut d = db();
    d.execute("CREATE TABLE H (gene TEXT, score INT)").unwrap();
    d.execute("INSERT INTO H VALUES ('g1', 5), ('g1', 15), ('g2', 1), ('g3', 7), ('g3', 9)")
        .unwrap();
    let qr = d
        .execute(
            "SELECT gene, AVG(score) FROM H GROUP BY gene \
             HAVING COUNT(*) > 1 AND AVG(score) >= 8 ORDER BY gene",
        )
        .unwrap();
    let genes: Vec<String> = qr.rows.iter().map(|r| r.values[0].to_string()).collect();
    assert_eq!(genes, vec!["g1", "g3"]);
}

#[test]
fn distinct_on_expressions() {
    let mut d = db();
    d.execute("CREATE TABLE T (v INT)").unwrap();
    d.execute("INSERT INTO T VALUES (1), (2), (3), (4)")
        .unwrap();
    let qr = d.execute("SELECT DISTINCT v % 2 FROM T").unwrap();
    assert_eq!(qr.rows.len(), 2);
}

#[test]
fn insert_arity_and_type_errors() {
    let mut d = db();
    d.execute("CREATE TABLE T (a INT, b TEXT)").unwrap();
    assert!(d.execute("INSERT INTO T VALUES (1)").is_err());
    assert!(d.execute("INSERT INTO T VALUES (1, 'x', 2)").is_err());
    assert!(d.execute("INSERT INTO T VALUES ('no', 'x')").is_err());
    // expressions allowed in VALUES
    d.execute("INSERT INTO T VALUES (1 + 2 * 3, 'a' || 'b')")
        .unwrap();
    let qr = d.execute("SELECT a, b FROM T").unwrap();
    assert_eq!(qr.rows[0].values[0], Value::Int(7));
    assert_eq!(qr.rows[0].values[1], Value::Text("ab".into()));
}

#[test]
fn empty_table_queries() {
    let mut d = db();
    d.execute("CREATE TABLE T (a INT)").unwrap();
    assert!(d.execute("SELECT * FROM T").unwrap().rows.is_empty());
    assert_eq!(
        d.execute("SELECT COUNT(*) FROM T").unwrap().rows[0].values[0],
        Value::Int(0)
    );
    assert!(d.execute("SELECT SUM(a) FROM T").unwrap().rows[0].values[0].is_null());
    assert_eq!(d.execute("UPDATE T SET a = 1").unwrap().affected, 0);
    assert_eq!(d.execute("DELETE FROM T").unwrap().affected, 0);
    // set ops with an empty side
    d.execute("CREATE TABLE U (a INT)").unwrap();
    d.execute("INSERT INTO U VALUES (1)").unwrap();
    assert!(d
        .execute("SELECT a FROM T INTERSECT SELECT a FROM U")
        .unwrap()
        .rows
        .is_empty());
    assert_eq!(
        d.execute("SELECT a FROM U EXCEPT SELECT a FROM T")
            .unwrap()
            .rows
            .len(),
        1
    );
}

#[test]
fn case_insensitive_identifiers_everywhere() {
    let mut d = db();
    d.execute("create table GeNe (gId TEXT, LEN int)").unwrap();
    d.execute("insert into gene values ('x', 1)").unwrap();
    let qr = d
        .execute("SELECT GID, len FROM GENE WHERE Gid = 'x'")
        .unwrap();
    assert_eq!(qr.rows.len(), 1);
    d.execute("create annotation table NOTES on gene").unwrap();
    d.execute("ADD ANNOTATION TO Gene.notes VALUE 'hi' ON (SELECT G.gid FROM gene G)")
        .unwrap();
    let qr = d.execute("SELECT gid FROM gene ANNOTATION(Notes)").unwrap();
    assert_eq!(qr.rows[0].anns[0].len(), 1);
}

#[test]
fn semicolons_and_comments_tolerated() {
    let mut d = db();
    d.execute("CREATE TABLE T (a INT); ").unwrap();
    d.execute("-- populate\nINSERT INTO T VALUES (1) -- one row\n;")
        .unwrap();
    assert_eq!(d.execute("SELECT * FROM T;").unwrap().rows.len(), 1);
}

#[test]
fn update_with_expression_referencing_other_columns() {
    let mut d = db();
    d.execute("CREATE TABLE T (a INT, b INT)").unwrap();
    d.execute("INSERT INTO T VALUES (1, 10), (2, 20)").unwrap();
    d.execute("UPDATE T SET a = b * 2 + a").unwrap();
    let qr = d.execute("SELECT a FROM T ORDER BY a").unwrap();
    let got: Vec<i64> = qr
        .rows
        .iter()
        .map(|r| r.values[0].as_int().unwrap())
        .collect();
    assert_eq!(got, vec![21, 42]);
}

#[test]
fn annotations_survive_row_updates() {
    // annotations attach to row numbers; updating a row must not lose them
    let mut d = db();
    d.execute("CREATE TABLE T (k TEXT, v TEXT)").unwrap();
    d.execute("CREATE ANNOTATION TABLE n ON T").unwrap();
    d.execute("INSERT INTO T VALUES ('a', 'old')").unwrap();
    d.execute("ADD ANNOTATION TO T.n VALUE 'sticky' ON (SELECT G.k FROM T G)")
        .unwrap();
    d.execute("UPDATE T SET v = 'new' WHERE k = 'a'").unwrap();
    let qr = d.execute("SELECT k, v FROM T ANNOTATION(n)").unwrap();
    assert_eq!(qr.rows[0].values[1], Value::Text("new".into()));
    assert_eq!(qr.rows[0].anns[0].len(), 1, "annotation sticks to the row");
}
