//! Golden-output tests for `EXPLAIN` and a differential test pinning
//! `EXPLAIN ANALYZE` actuals against the executor counters the same
//! query reports through [`QueryResult::stats`].

use bdbms_common::Value;
use bdbms_core::{Database, QueryResult};

fn setup() -> Database {
    let mut db = Database::new_in_memory();
    for sql in [
        "CREATE TABLE Gene (GID TEXT, Chrom TEXT, Len INT)",
        "CREATE INDEX gene_gid ON Gene (GID)",
        "CREATE TABLE Prot (PID TEXT, GID TEXT, Mass INT)",
        "CREATE TABLE Seq (SID TEXT, Residues TEXT)",
        "CREATE SEQUENCE INDEX seq_res ON Seq (Residues) USING SBC",
    ] {
        db.execute(sql).unwrap();
    }
    for i in 0..200 {
        db.execute(&format!(
            "INSERT INTO Gene VALUES ('G{i:03}', 'chr{}', {})",
            i % 5,
            i * 3
        ))
        .unwrap();
        db.execute(&format!(
            "INSERT INTO Prot VALUES ('P{i:03}', 'G{i:03}', {})",
            i * 7
        ))
        .unwrap();
    }
    for i in 0..20 {
        db.execute(&format!("INSERT INTO Seq VALUES ('S{i}', 'ACGTACGTTTAGGC')"))
            .unwrap();
    }
    db.execute("ANALYZE Gene").unwrap();
    db.execute("ANALYZE Prot").unwrap();
    db
}

fn plan_text(qr: &QueryResult) -> Vec<String> {
    assert_eq!(qr.columns, ["plan"]);
    qr.rows
        .iter()
        .map(|r| match &r.values[0] {
            Value::Text(t) => t.clone(),
            other => panic!("plan rows must be text, got {other:?}"),
        })
        .collect()
}

#[test]
fn explain_point_lookup_uses_index() {
    let mut db = setup();
    let qr = db
        .execute("EXPLAIN SELECT Len FROM Gene WHERE GID = 'G007'")
        .unwrap();
    let lines = plan_text(&qr);
    assert_eq!(lines[0], "Project: Len");
    assert!(
        lines[1].trim_start().starts_with("Index Scan Gene using gene_gid (GID = 'G007')"),
        "expected an index point probe, got: {}",
        lines[1]
    );
    assert!(lines[1].contains("of 200)"), "row estimate missing: {}", lines[1]);
}

#[test]
fn explain_range_scan_renders_bounds() {
    let mut db = setup();
    let qr = db
        .execute("EXPLAIN SELECT GID FROM Gene WHERE GID >= 'G010' AND GID <= 'G020'")
        .unwrap();
    let lines = plan_text(&qr);
    assert_eq!(lines[0], "Project: GID");
    assert!(
        lines[1].trim_start().starts_with("Index Scan Gene using gene_gid (GID >= 'G010' AND GID <= 'G020')"),
        "expected an index range probe, got: {}",
        lines[1]
    );
    // the probe column is the only projected column: index-only
    assert!(
        lines[1].contains("(index-only)"),
        "expected index-only marker: {}",
        lines[1]
    );
}

#[test]
fn explain_join_shows_build_and_probe_sides() {
    let mut db = setup();
    let qr = db
        .execute(
            "EXPLAIN SELECT Prot.PID, Gene.Len FROM Gene, Prot \
             WHERE Gene.GID = Prot.GID AND Gene.Chrom = 'chr1'",
        )
        .unwrap();
    let lines = plan_text(&qr);
    assert_eq!(lines[0], "Project: PID, Len");
    let join = lines
        .iter()
        .find(|l| l.trim_start().starts_with("Hash Join"))
        .expect("plan must contain a hash join");
    assert!(join.trim_start().starts_with("Hash Join"), "{join}");
    assert!(
        lines.iter().any(|l| l.trim_start().starts_with("Build: ")),
        "plan must show the build side: {lines:?}"
    );
    assert!(
        lines.iter().any(|l| l.trim_start().starts_with("Probe: ")),
        "plan must show the probe side: {lines:?}"
    );
    // the filtered conjunct is pushed to its scan
    assert!(
        lines
            .iter()
            .any(|l| l.trim_start().starts_with("Pushed: ") && l.contains("Chrom")),
        "pushed predicate missing: {lines:?}"
    );
}

#[test]
fn explain_limit_pushdown_is_visible() {
    let mut db = setup();
    let qr = db
        .execute("EXPLAIN SELECT GID FROM Gene LIMIT 5")
        .unwrap();
    let lines = plan_text(&qr);
    assert_eq!(lines[0], "Project: GID");
    assert!(
        lines.iter().any(|l| l.trim_start().starts_with("Limit 5")),
        "pushed limit missing: {lines:?}"
    );
    assert!(
        lines.iter().any(|l| l.trim_start().starts_with("Seq Scan Gene")),
        "expected a sequential scan: {lines:?}"
    );
}

#[test]
fn explain_seq_index_scan() {
    let mut db = setup();
    let qr = db
        .execute("EXPLAIN SELECT SID FROM Seq WHERE Residues CONTAINS SEQ 'ACGT'")
        .unwrap();
    let lines = plan_text(&qr);
    assert!(
        lines
            .iter()
            .any(|l| l.trim_start().starts_with(
                "Seq Index Scan Seq using seq_res (Residues CONTAINS SEQ 'ACGT')"
            )),
        "expected a sequence-index scan: {lines:?}"
    );
}

#[test]
fn explain_does_not_execute() {
    let mut db = setup();
    let qr = db
        .execute("EXPLAIN SELECT * FROM Gene WHERE Len > 10")
        .unwrap();
    assert!(qr.stats.is_none(), "EXPLAIN must not carry executor stats");
    assert!(!plan_text(&qr).is_empty());
    // no rows of the underlying query leak out
    assert_eq!(qr.columns, ["plan"]);
}

#[test]
fn explain_rejects_non_select() {
    let mut db = setup();
    let err = db
        .execute("EXPLAIN INSERT INTO Gene VALUES ('X', 'c', 1)")
        .unwrap_err();
    assert!(err.message().contains("EXPLAIN supports only SELECT"));
}

#[test]
fn explain_analyze_matches_exec_stats() {
    let mut db = setup();
    let sql = "SELECT Prot.PID, Gene.Len FROM Gene, Prot \
               WHERE Gene.GID = Prot.GID AND Gene.Chrom = 'chr1'";
    // ground truth: run the query and capture its counters
    let plain = db.execute(sql).unwrap();
    let stats = plain.stats.clone().expect("SELECT carries stats");

    let qr = db.execute(&format!("EXPLAIN ANALYZE {sql}")).unwrap();
    let lines = plan_text(&qr);

    // every pipeline operator reports actuals
    let actual_lines: Vec<&String> = lines.iter().filter(|l| l.contains("(actual: ")).collect();
    assert!(
        !actual_lines.is_empty(),
        "EXPLAIN ANALYZE must annotate operators with actuals: {lines:?}"
    );

    // the output-row count in the Actual summary equals the real result
    let actual = lines
        .iter()
        .find(|l| l.trim_start().starts_with("Actual: "))
        .expect("Actual summary line");
    assert!(
        actual.contains(&format!("output rows={}", plain.rows.len())),
        "row count mismatch: {actual} vs {} rows",
        plain.rows.len()
    );

    // the Stats line mirrors the ExecStats counters of the plain run
    let stat_line = lines
        .iter()
        .find(|l| l.trim_start().starts_with("Stats: "))
        .expect("Stats summary line");
    for (name, v) in [
        ("rows_fetched", stats.rows_fetched),
        ("index_probes", stats.index_probes),
        ("full_scans", stats.full_scans),
    ] {
        assert!(
            stat_line.contains(&format!("{name}={v}")),
            "counter {name} mismatch: {stat_line} (expected {v})"
        );
    }
}

#[test]
fn explain_set_operation_tree() {
    let mut db = setup();
    let qr = db
        .execute(
            "EXPLAIN SELECT GID FROM Gene WHERE Chrom = 'chr0' \
             UNION SELECT GID FROM Prot ORDER BY GID LIMIT 3",
        )
        .unwrap();
    let lines = plan_text(&qr);
    assert_eq!(lines[0], "Limit 3");
    assert!(lines[1].trim_start().starts_with("Sort: "), "{lines:?}");
    assert_eq!(lines[2].trim(), "Union");
    assert!(
        lines.iter().skip(3).any(|l| l.contains("Scan Gene")),
        "{lines:?}"
    );
    assert!(
        lines.iter().skip(3).any(|l| l.contains("Scan Prot")),
        "{lines:?}"
    );
}

#[test]
fn slow_query_log_records_and_shows() {
    let mut db = setup();
    assert!(db.slow_query_threshold().is_none(), "off by default");
    db.execute("SELECT GID FROM Gene WHERE GID = 'G007'").unwrap();
    assert!(db.slow_queries().is_empty(), "nothing recorded while off");

    // a zero threshold records every statement
    db.set_slow_query_threshold(Some(std::time::Duration::ZERO));
    db.execute("SELECT GID FROM Gene WHERE GID = 'G007'").unwrap();
    let logged = db.slow_queries();
    let entry = logged.last().expect("statement recorded");
    assert_eq!(entry.sql, "SELECT GID FROM Gene WHERE GID = 'G007'");
    assert_eq!(entry.user, "admin");
    assert!(entry.duration_ns > 0);
    assert!(
        entry.plan_summary.contains("indexes=[\"gene_gid\"]"),
        "plan summary carries the chosen index: {}",
        entry.plan_summary
    );

    let qr = db.execute("SHOW SLOW QUERIES").unwrap();
    assert_eq!(qr.columns, ["time", "user", "duration_us", "plan", "sql"]);
    assert!(!qr.rows.is_empty());
    let last = qr.rows.last().unwrap();
    assert_eq!(
        last.values[4],
        Value::Text("SELECT GID FROM Gene WHERE GID = 'G007'".into())
    );

    // the ring is bounded: flooding it keeps the newest 128
    for i in 0..200 {
        db.execute(&format!("SELECT GID FROM Gene WHERE Len = {i}"))
            .unwrap();
    }
    let logged = db.slow_queries();
    assert_eq!(logged.len(), 128, "ring buffer caps at 128 entries");
    assert!(
        logged.last().unwrap().sql.contains("Len = 199"),
        "newest entries survive eviction"
    );

    db.set_slow_query_threshold(None);
    db.execute("SELECT GID FROM Gene WHERE GID = 'G007'").unwrap();
    assert_eq!(db.slow_queries().len(), 128, "recording stops when disabled");
}
