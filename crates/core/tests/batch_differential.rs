//! Differential property suite for the batch executor: every randomized
//! SELECT must produce the same answer through the vectorized
//! `next_batch()` pipeline as through the row-at-a-time `next()`
//! pipeline, with the same plan decisions.  Both paths share the
//! planning front-half (`plan_simple_select`), so any divergence here is
//! an operator bug, not a planner disagreement.

use bdbms_core::executor::{ExecOptions, ExecStats};
use bdbms_core::{Database, QueryResult};
use proptest::prelude::*;

/// Two joinable tables with indexes and annotations, so random queries
/// exercise index probes, full scans, hash joins, and the annotation
/// operators.
fn diff_db() -> Database {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE Gene (GID TEXT, GName TEXT, Len INT, Bucket INT)")
        .unwrap();
    let tuples: Vec<String> = (0..300)
        .map(|r| format!("('JW{r:04}', 'g{}', {r}, {})", r % 7, r % 5))
        .collect();
    db.execute(&format!("INSERT INTO Gene VALUES {}", tuples.join(", ")))
        .unwrap();
    db.execute("CREATE INDEX len_idx ON Gene (Len)").unwrap();
    db.execute("CREATE INDEX bucket_idx ON Gene (Bucket)")
        .unwrap();
    db.execute("CREATE ANNOTATION TABLE Curation ON Gene")
        .unwrap();
    db.execute(
        "ADD ANNOTATION TO Gene.Curation VALUE 'curated by lab' \
         ON (SELECT G.GID FROM Gene G WHERE Len < 40)",
    )
    .unwrap();
    db.execute(
        "ADD ANNOTATION TO Gene.Curation VALUE 'from GenoBase' \
         ON (SELECT G.Len FROM Gene G WHERE Bucket = 2)",
    )
    .unwrap();
    db.execute("CREATE TABLE Tag (TLen INT, TName TEXT)")
        .unwrap();
    let tags: Vec<String> = (0..80)
        .map(|r| format!("({}, 't{r}')", r * 3 % 50))
        .collect();
    db.execute(&format!("INSERT INTO Tag VALUES {}", tags.join(", ")))
        .unwrap();
    db
}

/// Canonical text form of a result row: values plus the identity of each
/// column's annotations (annotation propagation must match too).
fn row_keys(qr: &QueryResult) -> Vec<String> {
    qr.rows
        .iter()
        .map(|r| {
            let anns: Vec<Vec<String>> = r
                .anns
                .iter()
                .map(|col| {
                    let mut ids: Vec<String> =
                        col.iter().map(|a| format!("{:?}", a.identity())).collect();
                    ids.sort();
                    ids
                })
                .collect();
            format!("{:?} {:?}", r.values, anns)
        })
        .collect()
}

/// The plan decisions both pipelines must agree on.  Row-granularity
/// counters (`rows_fetched`, `rows_scan_filtered`) legitimately differ:
/// the batch path fetches in BATCH_SIZE steps.
fn plan_decisions(st: &ExecStats) -> (Vec<String>, Vec<usize>, u64, u64, u64, u64) {
    (
        st.chosen_indexes.clone(),
        st.join_order.clone(),
        st.full_scans,
        st.index_probes,
        st.limit_pushdowns,
        st.rows_limit_discarded,
    )
}

/// Run one SQL string through both pipelines and assert equivalence.
fn assert_differential(db: &Database, sql: &str) {
    let row_opts = ExecOptions::builder().batch(false).build();
    let batch_opts = ExecOptions::default();
    let row = db.query_traced(sql, &row_opts);
    let batch = db.query_traced(sql, &batch_opts);
    match (row, batch) {
        (Ok((r, rst)), Ok((b, bst))) => {
            assert_eq!(r.columns, b.columns, "columns diverge for {sql}");
            // same rows in the same order — scan order is deterministic,
            // so this is strictly stronger than multiset equality
            assert_eq!(row_keys(&r), row_keys(&b), "rows diverge for {sql}");
            assert_eq!(
                plan_decisions(&rst),
                plan_decisions(&bst),
                "plan decisions diverge for {sql}"
            );
        }
        (Err(re), Err(be)) => {
            assert_eq!(re.code(), be.code(), "error codes diverge for {sql}");
        }
        (Ok(_), Err(e)) => panic!("row path succeeded, batch failed for {sql}: {e}"),
        (Err(e), Ok(_)) => panic!("batch path succeeded, row failed for {sql}: {e}"),
    }
}

fn arb_where() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        (0i64..310).prop_map(|k| format!(" WHERE Len = {k}")),
        (0i64..300, 1i64..40).prop_map(|(k, w)| format!(" WHERE Len >= {k} AND Len < {}", k + w)),
        (0i64..5).prop_map(|k| format!(" WHERE Bucket = {k}")),
        (1i64..9, 0i64..9).prop_map(|(m, r)| format!(" WHERE Len % {m} = {r}")),
        (0i64..10).prop_map(|d| format!(" WHERE GID LIKE 'JW%{d}'")),
        (0i64..5, 0i64..150).prop_map(|(b, k)| format!(" WHERE Bucket = {b} AND Len > {k}")),
        // type error: TEXT + INT must fail identically on both paths
        Just(" WHERE GID + 1 = 2".to_string()),
    ]
}

fn arb_ann() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        Just(" ANNOTATION(Curation)".to_string()),
    ]
}

fn arb_tail() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        (1usize..40).prop_map(|k| format!(" LIMIT {k}")),
        Just(" ORDER BY Len DESC".to_string()),
        (1usize..20).prop_map(|k| format!(" ORDER BY Len DESC LIMIT {k}")),
    ]
}

fn arb_scan_items() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("GID".to_string()),
        Just("GID, Len".to_string()),
        Just("DISTINCT GName".to_string()),
        Just("Len + Bucket, GID".to_string()),
        Just("GID PROMOTE (Len)".to_string()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Single-table scans: projections, filters, annotations, DISTINCT,
    /// ORDER BY, LIMIT — batch ≡ row.
    #[test]
    fn scans_are_equivalent(
        items in arb_scan_items(),
        ann in arb_ann(),
        cond in arb_where(),
        tail in arb_tail(),
    ) {
        let db = diff_db();
        let sql = format!("SELECT {items} FROM Gene{ann}{cond}{tail}");
        assert_differential(&db, &sql);
    }

    /// Aggregation (streaming-accumulator fast path and the grouped
    /// fallback) — batch ≡ row.
    #[test]
    fn aggregates_are_equivalent(
        ann in arb_ann(),
        cond in arb_where(),
        shape in 0usize..4,
    ) {
        let db = diff_db();
        let sql = match shape {
            0 => format!(
                "SELECT COUNT(*), SUM(Len), MIN(Len), MAX(GID), AVG(Len) FROM Gene{ann}{cond}"
            ),
            1 => format!(
                "SELECT Bucket, COUNT(*), SUM(Len) FROM Gene{ann}{cond} GROUP BY Bucket"
            ),
            // HAVING forces the materializing fallback
            2 => format!(
                "SELECT GName, COUNT(*) FROM Gene{ann}{cond} GROUP BY GName HAVING COUNT(*) > 2"
            ),
            _ => format!(
                "SELECT Bucket, Bucket * 2, MIN(GID) FROM Gene{ann}{cond} \
                 GROUP BY Bucket ORDER BY Bucket"
            ),
        };
        assert_differential(&db, &sql);
    }

    /// Joins (hash probe on the discovered equi-key, plus residual
    /// filters and limits) — batch ≡ row.
    #[test]
    fn joins_are_equivalent(
        extra in prop_oneof![
            Just(String::new()),
            Just(" AND G.Bucket = 2".to_string()),
            Just(" AND T.TName LIKE 't1%'".to_string()),
            (0i64..100).prop_map(|k| format!(" AND G.Len < {k}")),
        ],
        tail in prop_oneof![
            Just(String::new()),
            (1usize..30).prop_map(|k| format!(" LIMIT {k}")),
        ],
    ) {
        let db = diff_db();
        let sql = format!(
            "SELECT G.GID, T.TName FROM Gene G, Tag T WHERE G.Len = T.TLen{extra}{tail}"
        );
        assert_differential(&db, &sql);
    }

    /// The annotation-predicate operators (AWHERE / FILTER, §3.4) —
    /// batch ≡ row.
    #[test]
    fn annotation_predicates_are_equivalent(
        cond in arb_where(),
        shape in 0usize..3,
    ) {
        let db = diff_db();
        let sql = match shape {
            0 => format!(
                "SELECT GID FROM Gene ANNOTATION(Curation){cond} AWHERE CONTAINS 'curated'"
            ),
            1 => format!(
                "SELECT GID, Len FROM Gene ANNOTATION(Curation){cond} FILTER CONTAINS 'GenoBase'"
            ),
            _ => format!(
                "SELECT GID FROM Gene ANNOTATION(Curation){cond} \
                 AWHERE PATH '/Annotation' = 'from GenoBase'"
            ),
        };
        assert_differential(&db, &sql);
    }

    /// Pipelines with deliberately broken projections or predicates must
    /// fail with the same error code on both paths.
    #[test]
    fn errors_are_equivalent(
        sql in prop_oneof![
            Just("SELECT Nope FROM Gene".to_string()),
            Just("SELECT GID FROM Gene WHERE Nope = 1".to_string()),
            Just("SELECT GID + 1 FROM Gene".to_string()),
            Just("SELECT GID FROM Gene WHERE Len LIKE '[' ".to_string()),
            Just("SELECT SUM(GID || 'x') FROM Gene".to_string()),
            (0i64..300).prop_map(|k| format!("SELECT GID, GID + 1 FROM Gene WHERE Len = {k}")),
        ],
    ) {
        let db = diff_db();
        assert_differential(&db, &sql);
    }
}
