//! One end-to-end assertion per [`ErrorCode`] variant: clients must be
//! able to distinguish syntax vs. authorization vs. constraint failures
//! programmatically, without string-matching messages.

use bdbms_common::{BdbmsError, ErrorCode, Value};
use bdbms_core::Database;

fn db_with_gene() -> Database {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE Gene (GID TEXT, Len INT)").unwrap();
    db.execute("INSERT INTO Gene VALUES ('JW0080', 11)")
        .unwrap();
    db
}

#[test]
fn syntax_error_carries_code_and_span() {
    let mut db = db_with_gene();
    let err = db.execute("SELECT GID FRM Gene").unwrap_err();
    assert_eq!(err.code(), ErrorCode::Syntax);
    let span = err.span.expect("parse errors point at the offending token");
    assert_eq!(
        &"SELECT GID FRM Gene"[span.start..span.end],
        "FRM",
        "span must cover the unexpected token"
    );
    // lex-level errors are spanned too
    let err = db.execute("SELECT 'oops").unwrap_err();
    assert_eq!(err.code(), ErrorCode::Syntax);
    assert_eq!(err.span.map(|s| s.start), Some(7));
}

#[test]
fn unknown_table_is_not_found() {
    let mut db = db_with_gene();
    let err = db.execute("SELECT * FROM Protein").unwrap_err();
    assert_eq!(err.code(), ErrorCode::NotFound);
}

#[test]
fn duplicate_table_already_exists() {
    let mut db = db_with_gene();
    let err = db.execute("CREATE TABLE Gene (X INT)").unwrap_err();
    assert_eq!(err.code(), ErrorCode::AlreadyExists);
}

#[test]
fn wrong_value_type_is_type_mismatch() {
    let mut db = db_with_gene();
    let err = db
        .execute("INSERT INTO Gene VALUES ('JW0001', 'not-an-int')")
        .unwrap_err();
    assert_eq!(err.code(), ErrorCode::TypeMismatch);
}

#[test]
fn semantic_violation_is_invalid() {
    let mut db = db_with_gene();
    let err = db.execute("CREATE TABLE Dup (a INT, a TEXT)").unwrap_err();
    assert_eq!(err.code(), ErrorCode::Invalid);
}

#[test]
fn auth_denial_is_unauthorized() {
    let mut db = db_with_gene();
    db.execute("CREATE USER mallory").unwrap();
    let err = db.execute_as("DROP TABLE Gene", "mallory").unwrap_err();
    assert_eq!(err.code(), ErrorCode::Unauthorized);
}

#[test]
fn double_decision_is_approval_error() {
    let mut db = db_with_gene();
    db.execute("CREATE USER intern").unwrap();
    db.execute("GRANT INSERT ON Gene TO intern").unwrap();
    db.execute("START CONTENT APPROVAL ON Gene APPROVED BY admin")
        .unwrap();
    db.execute_as("INSERT INTO Gene VALUES ('JW0002', 7)", "intern")
        .unwrap();
    let id = db.approval().pending(None)[0].id.raw();
    db.execute(&format!("APPROVE OPERATION {id}")).unwrap();
    let err = db.execute(&format!("APPROVE OPERATION {id}")).unwrap_err();
    assert_eq!(err.code(), ErrorCode::Approval);
}

#[test]
fn rule_cycle_is_dependency_error() {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE T (a TEXT, b TEXT)").unwrap();
    db.execute("CREATE DEPENDENCY RULE r1 FROM T.a TO T.b VIA PROCEDURE 'p'")
        .unwrap();
    let err = db
        .execute("CREATE DEPENDENCY RULE r2 FROM T.b TO T.a VIA PROCEDURE 'q'")
        .unwrap_err();
    assert_eq!(err.code(), ErrorCode::Dependency);
}

#[test]
fn storage_and_io_codes() {
    // storage failures need a corrupted heap to trigger end-to-end; the
    // constructor contract is what clients rely on
    let err = BdbmsError::storage("page overflow");
    assert_eq!(err.code(), ErrorCode::Storage);
    assert_eq!(err.kind(), "storage");
    // io errors arrive via the std conversion
    let err: BdbmsError = std::io::Error::other("disk gone").into();
    assert_eq!(err.code(), ErrorCode::Io);
}

#[test]
fn damaged_database_file_is_corrupt() {
    // a real end-to-end trigger: scribble over a durable database's page
    // file and try to open it
    let dir = std::env::temp_dir().join(format!("bdbms-corrupt-code-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut db = Database::create(&dir).unwrap();
        db.execute("CREATE TABLE Gene (GID TEXT)").unwrap();
        db.close().unwrap();
    }
    std::fs::write(dir.join("data.bdb"), vec![0xAB; 8192]).unwrap();
    let err = match Database::open(&dir) {
        Ok(_) => panic!("a scribbled-over page file must not open"),
        Err(e) => e,
    };
    assert_eq!(err.code(), ErrorCode::Corrupt);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn runtime_expression_failure_is_eval() {
    let mut db = db_with_gene();
    let err = db
        .execute("SELECT * FROM Gene WHERE Len / 0 = 1")
        .unwrap_err();
    assert_eq!(err.code(), ErrorCode::Eval);
}

#[test]
fn bad_bind_is_param_mismatch() {
    let mut db = db_with_gene();
    let mut session = db.session("admin");
    let stmt = session
        .prepare("SELECT GID FROM Gene WHERE Len = ?")
        .unwrap();
    let err = session.execute(&stmt, &[]).unwrap_err();
    assert_eq!(err.code(), ErrorCode::ParamMismatch);
    let err = session
        .execute(&stmt, &[Value::Int(1), Value::Int(2)])
        .unwrap_err();
    assert_eq!(err.code(), ErrorCode::ParamMismatch);
}

#[test]
fn bad_transaction_state_is_txn_state() {
    let mut db = db_with_gene();
    // COMMIT / ROLLBACK outside a transaction
    let err = db.execute("COMMIT").unwrap_err();
    assert_eq!(err.code(), ErrorCode::TxnState);
    let err = db.execute("ROLLBACK").unwrap_err();
    assert_eq!(err.code(), ErrorCode::TxnState);
    // nested BEGIN
    db.execute("BEGIN").unwrap();
    let err = db.execute("BEGIN").unwrap_err();
    assert_eq!(err.code(), ErrorCode::TxnState);
    // unknown savepoint
    let err = db.execute("ROLLBACK TO nowhere").unwrap_err();
    assert_eq!(err.code(), ErrorCode::TxnState);
    db.execute("ROLLBACK").unwrap();
}

#[test]
fn every_code_is_covered_and_distinct() {
    // the assertions above cover each variant; this pins the full set so
    // adding a code without a test shows up here
    assert_eq!(ErrorCode::ALL.len(), 14);
}
