//! Property tests for the engine: SQL results must agree with a naive
//! in-memory model under random data and random predicates, and random
//! statement garbage must error, never panic.

use bdbms_common::Value;
use bdbms_core::Database;
use proptest::prelude::*;

fn db_with_rows(rows: &[(i64, i64, String)]) -> Database {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE T (a INT, b INT, s TEXT)").unwrap();
    if rows.is_empty() {
        return db;
    }
    let values: Vec<String> = rows
        .iter()
        .map(|(a, b, s)| format!("({a}, {b}, '{s}')"))
        .collect();
    db.execute(&format!("INSERT INTO T VALUES {}", values.join(", ")))
        .unwrap();
    db
}

fn arb_rows() -> impl Strategy<Value = Vec<(i64, i64, String)>> {
    prop::collection::vec((-50i64..50, -50i64..50, "[a-c]{0,4}"), 0..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// WHERE with comparison predicates selects exactly the model rows.
    #[test]
    fn where_matches_model(rows in arb_rows(), lo in -50i64..50, hi in -50i64..50) {
        let mut db = db_with_rows(&rows);
        let qr = db
            .execute(&format!("SELECT a, b FROM T WHERE a >= {lo} AND b < {hi}"))
            .unwrap();
        let expect = rows.iter().filter(|(a, b, _)| *a >= lo && *b < hi).count();
        prop_assert_eq!(qr.rows.len(), expect);
        for r in &qr.rows {
            let a = r.values[0].as_int().unwrap();
            let b = r.values[1].as_int().unwrap();
            prop_assert!(a >= lo && b < hi);
        }
    }

    /// ORDER BY sorts correctly (and DESC reverses).
    #[test]
    fn order_by_matches_model(rows in arb_rows()) {
        let mut db = db_with_rows(&rows);
        let qr = db.execute("SELECT a FROM T ORDER BY a").unwrap();
        let got: Vec<i64> = qr.rows.iter().map(|r| r.values[0].as_int().unwrap()).collect();
        let mut expect: Vec<i64> = rows.iter().map(|(a, _, _)| *a).collect();
        expect.sort_unstable();
        prop_assert_eq!(&got, &expect);
        let qr = db.execute("SELECT a FROM T ORDER BY a DESC").unwrap();
        let got: Vec<i64> = qr.rows.iter().map(|r| r.values[0].as_int().unwrap()).collect();
        expect.reverse();
        prop_assert_eq!(got, expect);
    }

    /// Aggregates agree with the model, per group and globally.
    #[test]
    fn aggregates_match_model(rows in arb_rows()) {
        let mut db = db_with_rows(&rows);
        let qr = db
            .execute("SELECT s, COUNT(*), SUM(a), MIN(b), MAX(b) FROM T GROUP BY s ORDER BY s")
            .unwrap();
        use std::collections::BTreeMap;
        let mut model: BTreeMap<&str, (i64, i64, i64, i64)> = BTreeMap::new();
        for (a, b, s) in &rows {
            let e = model.entry(s).or_insert((0, 0, i64::MAX, i64::MIN));
            e.0 += 1;
            e.1 += a;
            e.2 = e.2.min(*b);
            e.3 = e.3.max(*b);
        }
        prop_assert_eq!(qr.rows.len(), model.len());
        for (row, (s, (cnt, sum, min, max))) in qr.rows.iter().zip(model) {
            prop_assert_eq!(row.values[0].as_text().unwrap(), s);
            prop_assert_eq!(row.values[1].as_int().unwrap(), cnt);
            prop_assert_eq!(row.values[2].as_int().unwrap(), sum);
            prop_assert_eq!(row.values[3].as_int().unwrap(), min);
            prop_assert_eq!(row.values[4].as_int().unwrap(), max);
        }
        // global count
        let qr = db.execute("SELECT COUNT(*) FROM T").unwrap();
        prop_assert_eq!(qr.rows[0].values[0].as_int().unwrap(), rows.len() as i64);
    }

    /// UPDATE+DELETE keep the table consistent with the model.
    #[test]
    fn dml_matches_model(rows in arb_rows(), pivot in -50i64..50) {
        let mut db = db_with_rows(&rows);
        db.execute(&format!("UPDATE T SET b = b + 100 WHERE a < {pivot}")).unwrap();
        db.execute(&format!("DELETE FROM T WHERE a = {pivot}")).unwrap();
        let model: Vec<(i64, i64)> = rows
            .iter()
            .filter(|(a, _, _)| *a != pivot)
            .map(|(a, b, _)| (*a, if *a < pivot { b + 100 } else { *b }))
            .collect();
        let qr = db.execute("SELECT a, b FROM T ORDER BY a, b").unwrap();
        let mut got: Vec<(i64, i64)> = qr
            .rows
            .iter()
            .map(|r| (r.values[0].as_int().unwrap(), r.values[1].as_int().unwrap()))
            .collect();
        let mut expect = model;
        expect.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// INTERSECT/UNION/EXCEPT match set semantics of the model.
    #[test]
    fn set_ops_match_model(
        xs in prop::collection::vec(-20i64..20, 0..40),
        ys in prop::collection::vec(-20i64..20, 0..40),
    ) {
        let mut db = Database::new_in_memory();
        db.execute("CREATE TABLE X (v INT)").unwrap();
        db.execute("CREATE TABLE Y (v INT)").unwrap();
        for v in &xs {
            db.execute(&format!("INSERT INTO X VALUES ({v})")).unwrap();
        }
        for v in &ys {
            db.execute(&format!("INSERT INTO Y VALUES ({v})")).unwrap();
        }
        use std::collections::BTreeSet;
        let sx: BTreeSet<i64> = xs.iter().copied().collect();
        let sy: BTreeSet<i64> = ys.iter().copied().collect();
        let run = |db: &mut Database, op: &str| -> BTreeSet<i64> {
            db.execute(&format!("SELECT v FROM X {op} SELECT v FROM Y"))
                .unwrap()
                .rows
                .iter()
                .map(|r| r.values[0].as_int().unwrap())
                .collect()
        };
        prop_assert_eq!(run(&mut db, "INTERSECT"), &sx & &sy);
        prop_assert_eq!(run(&mut db, "UNION"), &sx | &sy);
        prop_assert_eq!(run(&mut db, "EXCEPT"), &sx - &sy);
    }

    /// The annotation store agrees with a per-cell model under random
    /// rectangle attachments, for both storage schemes.
    #[test]
    fn annotation_schemes_match_model(
        attaches in prop::collection::vec(
            (0u64..30, 0u64..30, 0usize..4, 0usize..4),
            1..25,
        ),
    ) {
        use bdbms_core::annotation::AnnotationSet;
        use std::collections::HashSet;
        let mut cell = AnnotationSet::new("a", true);
        let mut rect = AnnotationSet::new("a", false);
        let mut model: Vec<HashSet<(u64, usize)>> = Vec::new();
        for (i, (r1, r2, c1, c2)) in attaches.iter().enumerate() {
            let (rlo, rhi) = (*r1.min(r2), *r1.max(r2));
            let (clo, chi) = (*c1.min(c2), *c1.max(c2));
            let rows: Vec<u64> = (rlo..=rhi).collect();
            let cols: Vec<usize> = (clo..=chi).collect();
            cell.add(&format!("ann{i}"), "u", i as u64, &rows, &cols);
            rect.add(&format!("ann{i}"), "u", i as u64, &rows, &cols);
            let mut covered = HashSet::new();
            for r in rlo..=rhi {
                for c in clo..=chi {
                    covered.insert((r, c));
                }
            }
            model.push(covered);
        }
        for probe_r in (0..30).step_by(3) {
            for probe_c in 0..4usize {
                let expect: usize = model
                    .iter()
                    .filter(|cov| cov.contains(&(probe_r, probe_c)))
                    .count();
                prop_assert_eq!(cell.for_cell(probe_r, probe_c).len(), expect);
                prop_assert_eq!(rect.for_cell(probe_r, probe_c).len(), expect);
            }
        }
    }

    /// Random junk never panics the parser/engine — it errors.
    #[test]
    fn junk_statements_error_gracefully(junk in "[ -~]{0,80}") {
        let mut db = Database::new_in_memory();
        db.execute("CREATE TABLE T (a INT)").unwrap();
        let _ = db.execute(&junk); // must not panic
    }

    /// Text round-trips through insert/select including quote escaping.
    #[test]
    fn text_values_roundtrip(s in "[a-zA-Z0-9 .,;<>/&()*+-]{0,60}") {
        let mut db = Database::new_in_memory();
        db.execute("CREATE TABLE T (v TEXT)").unwrap();
        let quoted = s.replace('\'', "''");
        db.execute(&format!("INSERT INTO T VALUES ('{quoted}')")).unwrap();
        let qr = db.execute("SELECT v FROM T").unwrap();
        prop_assert_eq!(qr.rows[0].values[0].clone(), Value::Text(s));
    }
}
