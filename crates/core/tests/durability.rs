//! Durable-database round trips: everything the engine manages —
//! tables, rows, secondary indexes, annotation sets in both schemes,
//! archived flags, outdated bitmaps, deletion logs, dependency rules,
//! auth state, the approval log, and the logical clock — must survive
//! `close()` + `open()` byte-identically (modulo planner statistics,
//! which a reopen recomputes exactly, like `ANALYZE`).

use std::path::PathBuf;

use bdbms_common::{ErrorCode, Value};
use bdbms_core::{Database, Durability, DurabilityOptions};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bdbms-durability-{}-{name}.bdbms",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Everything observable about a table, for byte-identical comparisons
/// (same shape as the transactions suite, minus stats — a reopen is an
/// implicit ANALYZE).
fn table_fingerprint(db: &Database, table: &str) -> String {
    let t = db.catalog().table(table).unwrap();
    let rows = t.scan().unwrap();
    let indexes: Vec<(String, usize, usize)> = t
        .indexes()
        .iter()
        .map(|i| (i.name.clone(), i.column, i.len()))
        .collect();
    #[allow(clippy::type_complexity)]
    let anns: Vec<(String, usize, usize, Vec<(u64, bool, String, u64, String)>)> = t
        .ann_sets
        .iter()
        .map(|s| {
            (
                s.name.clone(),
                s.len(),
                s.attachment_records(),
                s.iter()
                    .map(|a| {
                        (
                            a.id.raw(),
                            a.archived,
                            a.raw.clone(),
                            a.created,
                            a.creator.clone(),
                        )
                    })
                    .collect(),
            )
        })
        .collect();
    let outdated: Vec<(usize, usize)> = t.outdated.iter_set().collect();
    let deleted: Vec<(u64, Option<String>)> = t
        .deleted_log
        .iter()
        .map(|d| (d.row_no, d.annotation.clone()))
        .collect();
    format!(
        "rows={rows:?} indexes={indexes:?} anns={anns:?} outdated={outdated:?} deleted={deleted:?}"
    )
}

#[test]
fn create_populate_close_open_round_trip() {
    let dir = tmp("roundtrip");
    let before = {
        let mut db = Database::create(&dir).unwrap();
        assert!(db.is_persistent());
        assert_eq!(db.path().unwrap(), dir.as_path());
        db.execute("CREATE TABLE Gene (GID TEXT, GName TEXT, Len INT)")
            .unwrap();
        db.execute("CREATE INDEX len_idx ON Gene (Len)").unwrap();
        db.execute(
            "INSERT INTO Gene VALUES ('JW0080','mraW',11), ('JW0082','ftsI',42), \
             ('JW0055','yabP',7)",
        )
        .unwrap();
        db.execute("UPDATE Gene SET Len = 13 WHERE GID = 'JW0080'")
            .unwrap();
        db.execute("DELETE FROM Gene WHERE GID = 'JW0055'").unwrap();
        // annotations in both schemes, one archived
        db.execute("CREATE ANNOTATION TABLE Curation ON Gene")
            .unwrap();
        db.execute("CREATE ANNOTATION TABLE CellNotes ON Gene SCHEME CELL")
            .unwrap();
        db.execute(
            "ADD ANNOTATION TO Gene.Curation VALUE '<Annotation>checked</Annotation>' \
             ON (SELECT G.GName FROM Gene G)",
        )
        .unwrap();
        db.execute(
            "ADD ANNOTATION TO Gene.CellNotes VALUE 'cell note' \
             ON (SELECT G.GID FROM Gene G WHERE Len = 42)",
        )
        .unwrap();
        db.execute(
            "ARCHIVE ANNOTATION FROM Gene.Curation ON (SELECT G.GName FROM Gene G WHERE Len = 13)",
        )
        .unwrap();
        let fp = table_fingerprint(&db, "Gene");
        db.close().unwrap();
        fp
    };
    let db = Database::open(&dir).unwrap();
    assert_eq!(table_fingerprint(&db, "Gene"), before);
    // a clean close leaves nothing to replay
    let rec = db.last_recovery().unwrap();
    assert_eq!(rec.replayed_commits, 0);
    assert_eq!(rec.discarded_ops, 0);
    assert_eq!(rec.torn_bytes, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn indexes_are_rebuilt_and_used_after_reopen() {
    let dir = tmp("indexes");
    {
        let mut db = Database::create(&dir).unwrap();
        db.execute("CREATE TABLE Gene (GID TEXT, Len INT)").unwrap();
        for i in 0..500 {
            db.execute(&format!("INSERT INTO Gene VALUES ('g{i}', {i})"))
                .unwrap();
        }
        db.execute("CREATE INDEX len_idx ON Gene (Len)").unwrap();
        db.close().unwrap();
    }
    let db = Database::open(&dir).unwrap();
    let (r, stats) = db
        .query_traced(
            "SELECT GID FROM Gene WHERE Len = 250",
            &bdbms_core::executor::ExecOptions::default(),
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0].values[0], Value::Text("g250".into()));
    assert_eq!(stats.index_probes, 1, "rebuilt index must serve probes");
    assert_eq!(stats.rows_fetched, 1, "no full scan after reopen");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn auth_approval_rules_clock_survive_reopen() {
    let dir = tmp("managers");
    let pending_before;
    let clock_before;
    {
        let mut db = Database::create(&dir).unwrap();
        db.execute("CREATE TABLE Gene (GID TEXT, GSequence TEXT)")
            .unwrap();
        db.execute("CREATE TABLE Protein (GID TEXT, PSequence TEXT)")
            .unwrap();
        db.execute("CREATE USER alice IN GROUP curators").unwrap();
        db.execute("CREATE USER labadmin").unwrap();
        db.execute("GRANT SELECT, INSERT ON Gene TO alice").unwrap();
        db.execute("GRANT SELECT ON Gene TO curators").unwrap();
        db.execute(
            "CREATE DEPENDENCY RULE translate FROM Gene.GSequence TO Protein.PSequence \
             VIA PROCEDURE 'translate' LINK Gene.GID = Protein.GID",
        )
        .unwrap();
        db.execute("START CONTENT APPROVAL ON Gene APPROVED BY labadmin")
            .unwrap();
        db.execute_as("INSERT INTO Gene VALUES ('JW1', 'ATG')", "alice")
            .unwrap();
        pending_before = db.approval().pending(None).len();
        assert_eq!(pending_before, 1);
        clock_before = db.now();
        db.close().unwrap();
    }
    let mut db = Database::open(&dir).unwrap();
    // clock never rewinds
    assert!(db.now() >= clock_before);
    // grants still enforced: alice may read, not delete
    db.execute_as("SELECT * FROM Gene", "alice").unwrap();
    let err = db
        .execute_as("DELETE FROM Gene WHERE GID = 'JW1'", "alice")
        .unwrap_err();
    assert_eq!(err.code(), ErrorCode::Unauthorized);
    // duplicate user still rejected (user table survived)
    assert_eq!(
        db.execute("CREATE USER alice").unwrap_err().code(),
        ErrorCode::AlreadyExists
    );
    // the pending approval op survived the reopen
    let ops = db.approval().pending(None);
    assert_eq!(ops.len(), pending_before);
    let id = ops[0].id.raw();
    // the dependency rule survived: updating the source cascades (this
    // update is itself approval-logged — admin is not the approver —
    // which is fine; we decide the original op below)
    assert_eq!(db.dependencies().rules().len(), 1);
    db.execute("INSERT INTO Protein VALUES ('JW1', 'M')")
        .unwrap();
    db.execute_as(
        "UPDATE Gene SET GSequence = 'GTG' WHERE GID = 'JW1'",
        "admin",
    )
    .unwrap();
    let t = db.catalog().table("Protein").unwrap();
    assert!(t.is_outdated(0, 1), "cascade across reopen marks outdated");
    db.execute_as(&format!("DISAPPROVE OPERATION {id}"), "labadmin")
        .unwrap();
    assert_eq!(
        db.catalog().table("Gene").unwrap().len(),
        0,
        "disapproval executed the stored inverse after reopen"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn committed_transactions_survive_without_checkpoint() {
    let dir = tmp("wal-replay");
    {
        let mut db = Database::create(&dir).unwrap();
        db.execute("CREATE TABLE T (K INT, V TEXT)").unwrap();
        db.execute("BEGIN").unwrap();
        db.execute("INSERT INTO T VALUES (1, 'one'), (2, 'two')")
            .unwrap();
        db.execute("COMMIT").unwrap();
        // crash: no checkpoint — everything past `create` lives in the WAL
        db.simulate_crash();
    }
    let mut db = Database::open(&dir).unwrap();
    let rec = db.last_recovery().unwrap().clone();
    assert!(rec.replayed_commits >= 2, "DDL txn + explicit txn replayed");
    assert!(rec.replayed_ops >= 3);
    let r = db.execute("SELECT K, V FROM T").unwrap();
    assert_eq!(r.rows.len(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rolled_back_work_never_reaches_the_wal() {
    let dir = tmp("rollback");
    {
        let mut db = Database::create(&dir).unwrap();
        db.execute("CREATE TABLE T (K INT)").unwrap();
        db.execute("INSERT INTO T VALUES (1)").unwrap();
        // an explicitly rolled-back transaction
        db.execute("BEGIN").unwrap();
        db.execute("INSERT INTO T VALUES (2)").unwrap();
        db.execute("CREATE TABLE Ghost (X INT)").unwrap();
        db.execute("ROLLBACK").unwrap();
        // a savepoint rollback inside a committed transaction
        db.execute("BEGIN").unwrap();
        db.execute("INSERT INTO T VALUES (3)").unwrap();
        db.execute("SAVEPOINT s").unwrap();
        db.execute("INSERT INTO T VALUES (4)").unwrap();
        db.execute("ROLLBACK TO s").unwrap();
        db.execute("COMMIT").unwrap();
        // a failed statement in an implicit transaction (partial apply
        // must not leak to disk either)
        let _ = db.execute("INSERT INTO T VALUES (5), ('boom')");
        db.simulate_crash();
    }
    let mut db = Database::open(&dir).unwrap();
    let r = db.execute("SELECT K FROM T").unwrap();
    let ks: Vec<&Value> = r.rows.iter().map(|row| &row.values[0]).collect();
    assert_eq!(ks, vec![&Value::Int(1), &Value::Int(3)]);
    assert!(
        db.catalog().table("Ghost").is_err(),
        "rolled-back DDL must not resurrect"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn no_sync_durability_works_and_checkpoints_truncate_the_wal() {
    let dir = tmp("nosync");
    {
        let mut db = Database::create_with(&dir, DurabilityOptions::no_sync()).unwrap();
        db.execute("CREATE TABLE T (K INT)").unwrap();
        for i in 0..50 {
            db.execute(&format!("INSERT INTO T VALUES ({i})")).unwrap();
        }
        assert_eq!(db.wal_segment_count(), Some(1));
        db.checkpoint().unwrap();
        // the image now carries everything; the WAL restarted empty
        assert_eq!(db.wal_segment_count(), Some(1));
        db.execute("INSERT INTO T VALUES (99)").unwrap();
        db.simulate_crash();
    }
    let mut db = Database::open_with(&dir, DurabilityOptions::no_sync()).unwrap();
    assert_eq!(
        db.last_recovery().unwrap().replayed_commits,
        1,
        "only the post-checkpoint insert needed replay"
    );
    assert_eq!(db.execute("SELECT K FROM T").unwrap().rows.len(), 51);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn auto_checkpoint_after_commit_interval() {
    let dir = tmp("autockpt");
    let opts = DurabilityOptions {
        durability: Durability::NoSync,
        checkpoint_every_commits: 5,
        ..Default::default()
    };
    let mut db = Database::create_with(&dir, opts.clone()).unwrap();
    db.execute("CREATE TABLE T (K INT)").unwrap();
    for i in 0..20 {
        db.execute(&format!("INSERT INTO T VALUES ({i})")).unwrap();
    }
    // with a checkpoint every 5 commits the WAL can never hold more
    // than 5 transactions; reopening replays at most that many
    db.simulate_crash();
    let mut db = Database::open_with(&dir, opts).unwrap();
    assert!(db.last_recovery().unwrap().replayed_commits <= 5);
    assert_eq!(db.execute("SELECT K FROM T").unwrap().rows.len(), 20);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn create_and_open_error_shapes() {
    let dir = tmp("errors");
    // open of nothing
    let err = match Database::open(&dir) {
        Ok(_) => panic!("open of a missing database must fail"),
        Err(e) => e,
    };
    assert_eq!(err.code(), ErrorCode::NotFound);
    // double create
    let db = Database::create(&dir).unwrap();
    db.close().unwrap();
    let err = match Database::create(&dir) {
        Ok(_) => panic!("create over an existing database must fail"),
        Err(e) => e,
    };
    assert_eq!(err.code(), ErrorCode::AlreadyExists);
    // checkpoint inside a transaction is rejected
    let mut db = Database::open(&dir).unwrap();
    db.execute("BEGIN").unwrap();
    assert_eq!(db.checkpoint().unwrap_err().code(), ErrorCode::TxnState);
    db.execute("ROLLBACK").unwrap();
    db.close().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn in_memory_databases_are_unchanged() {
    let mut db = Database::new_in_memory();
    assert!(!db.is_persistent());
    assert_eq!(db.path(), None);
    assert_eq!(db.last_recovery(), None);
    assert_eq!(db.wal_segment_count(), None);
    db.checkpoint().unwrap(); // no-op, not an error
    db.execute("CREATE TABLE T (K INT)").unwrap();
    db.execute("INSERT INTO T VALUES (1)").unwrap();
    assert_eq!(db.execute("SELECT * FROM T").unwrap().rows.len(), 1);
}

#[test]
fn provenance_survives_reopen() {
    use bdbms_core::provenance::{ProvOp, ProvenanceRecord};
    let dir = tmp("provenance");
    {
        let mut db = Database::create(&dir).unwrap();
        db.execute("CREATE TABLE Gene (GID TEXT, GSequence TEXT)")
            .unwrap();
        db.execute("INSERT INTO Gene VALUES ('JW1', 'ATG')")
            .unwrap();
        db.record_provenance(
            "Gene",
            &[0],
            &[1],
            &ProvenanceRecord {
                source: "GenoBase".into(),
                operation: ProvOp::Copy,
                program: None,
                time: db.now(),
            },
        )
        .unwrap();
        db.simulate_crash(); // provenance must come back from the WAL alone
    }
    let db = Database::open(&dir).unwrap();
    let rec = db.source_of("Gene", 0, 1, u64::MAX).unwrap();
    assert_eq!(rec.unwrap().source, "GenoBase");
    let _ = std::fs::remove_dir_all(&dir);
}
