//! Session-level transactions: `BEGIN`/`COMMIT`/`ROLLBACK`, savepoints,
//! and the implicit per-statement transaction.
//!
//! The headline guarantee (ISSUE 4): `BEGIN; <DML+DDL+ANALYZE>;
//! ROLLBACK` restores row data, indexes, planner statistics, outdated
//! bitmaps, annotations, provenance, and dependency rules to their
//! exact pre-transaction state — while the catalog generation moves
//! *forward*, so prepared plans cached against rolled-back DDL are
//! never replayed.

use bdbms_common::{ErrorCode, Value};
use bdbms_core::executor::ExecOptions;
use bdbms_core::provenance::{ProvOp, ProvenanceRecord};
use bdbms_core::{Database, TxnStatus};

fn curated_db() -> Database {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE Gene (GID TEXT, Len INT)").unwrap();
    db.execute("CREATE ANNOTATION TABLE Curation ON Gene")
        .unwrap();
    db.execute("INSERT INTO Gene VALUES ('JW0080', 11), ('JW0082', 42), ('JW0055', 7)")
        .unwrap();
    db.execute(
        "ADD ANNOTATION TO Gene.Curation VALUE 'seed annotation' \
         ON (SELECT G.GID FROM Gene G WHERE Len = 42)",
    )
    .unwrap();
    db
}

/// One annotation's observable identity: id, archived flag, body.
type AnnFacts = Vec<(u64, bool, String)>;

/// Everything observable about a table, for byte-identical comparisons.
fn table_fingerprint(db: &Database, table: &str) -> String {
    let t = db.catalog().table(table).unwrap();
    let rows = t.scan().unwrap();
    let indexes: Vec<(String, usize, usize)> = t
        .indexes()
        .iter()
        .map(|i| (i.name.clone(), i.column, i.len()))
        .collect();
    let anns: Vec<(String, usize, usize, AnnFacts)> = t
        .ann_sets
        .iter()
        .map(|s| {
            (
                s.name.clone(),
                s.len(),
                s.attachment_records(),
                s.iter()
                    .map(|a| (a.id.raw(), a.archived, a.raw.clone()))
                    .collect(),
            )
        })
        .collect();
    format!(
        "rows={rows:?} indexes={indexes:?} anns={anns:?} stats={:?} \
         outdated_rows={} deleted_log={}",
        t.stats(),
        t.outdated.rows(),
        t.deleted_log.len()
    )
}

#[test]
fn commit_makes_everything_permanent() {
    let mut db = curated_db();
    assert_eq!(db.transaction_status(), TxnStatus::Idle);
    db.execute("BEGIN").unwrap();
    assert_eq!(db.transaction_status(), TxnStatus::Active { savepoints: 0 });
    db.execute("INSERT INTO Gene VALUES ('JW9999', 99)")
        .unwrap();
    db.execute("CREATE INDEX len_idx ON Gene (Len)").unwrap();
    db.execute("UPDATE Gene SET Len = 12 WHERE GID = 'JW0080'")
        .unwrap();
    db.execute("COMMIT").unwrap();
    assert_eq!(db.transaction_status(), TxnStatus::Idle);
    let r = db.execute("SELECT GID FROM Gene WHERE Len = 99").unwrap();
    assert_eq!(r.rows.len(), 1);
    assert!(db
        .catalog()
        .table("Gene")
        .unwrap()
        .index_named("len_idx")
        .is_some());
    let r = db
        .execute("SELECT Len FROM Gene WHERE GID = 'JW0080'")
        .unwrap();
    assert_eq!(r.rows[0].values[0], Value::Int(12));
}

#[test]
fn rollback_restores_dml_ddl_analyze_exactly() {
    let mut db = curated_db();
    let before = table_fingerprint(&db, "Gene");
    let gen_before = db.catalog().generation();

    db.execute("BEGIN").unwrap();
    db.execute("INSERT INTO Gene VALUES ('JW1111', 1), ('JW2222', 2)")
        .unwrap();
    db.execute("UPDATE Gene SET Len = Len + 100 WHERE Len >= 11")
        .unwrap();
    db.execute("DELETE FROM Gene WHERE GID = 'JW0055'").unwrap();
    db.execute("CREATE INDEX len_idx ON Gene (Len)").unwrap();
    db.execute("ANALYZE Gene").unwrap();
    db.execute("CREATE TABLE Scratch (x INT)").unwrap();
    db.execute("INSERT INTO Scratch VALUES (1)").unwrap();
    db.execute(
        "ADD ANNOTATION TO Gene.Curation VALUE 'mid-txn note' \
         ON (SELECT G.GID FROM Gene G WHERE GID = 'JW0080')",
    )
    .unwrap();
    db.execute("ROLLBACK").unwrap();

    assert_eq!(table_fingerprint(&db, "Gene"), before);
    assert!(!db.catalog().has_table("Scratch"), "created table removed");
    assert!(
        db.catalog().generation() > gen_before,
        "rollback must move the generation forward, never back"
    );

    // row-number allocation is part of the restored state: the next
    // insert gets the number it would have gotten without the txn
    db.execute("INSERT INTO Gene VALUES ('JW3333', 3)").unwrap();
    let t = db.catalog().table("Gene").unwrap();
    assert_eq!(t.row_numbers(), vec![0, 1, 2, 3]);
}

#[test]
fn rollback_restores_a_dropped_table_wholesale() {
    let mut db = curated_db();
    db.execute("CREATE INDEX gid_idx ON Gene (GID)").unwrap();
    let before = table_fingerprint(&db, "Gene");
    db.execute("BEGIN").unwrap();
    db.execute("DROP TABLE Gene").unwrap();
    assert!(!db.catalog().has_table("Gene"));
    // ... and a different table can even take its name mid-transaction
    db.execute("CREATE TABLE Gene (other TEXT)").unwrap();
    db.execute("ROLLBACK").unwrap();
    assert_eq!(table_fingerprint(&db, "Gene"), before);
    // the restored secondary index answers probes again
    let (_, st) = db
        .query_traced(
            "SELECT Len FROM Gene WHERE GID = 'JW0082'",
            &ExecOptions::default(),
        )
        .unwrap();
    assert_eq!(st.index_probes, 1, "restored index is used");
}

#[test]
fn savepoints_partial_rollback_release_and_shadowing() {
    let mut db = curated_db();
    db.execute("BEGIN").unwrap();
    db.execute("INSERT INTO Gene VALUES ('A', 1)").unwrap();
    db.execute("SAVEPOINT sp1").unwrap();
    assert_eq!(db.transaction_status(), TxnStatus::Active { savepoints: 1 });
    db.execute("INSERT INTO Gene VALUES ('B', 2)").unwrap();
    db.execute("SAVEPOINT sp2").unwrap();
    db.execute("INSERT INTO Gene VALUES ('C', 3)").unwrap();
    // partial rollback drops C and sp2, keeps A, B and sp1
    db.execute("ROLLBACK TO sp1").unwrap();
    assert_eq!(db.transaction_status(), TxnStatus::Active { savepoints: 1 });
    let err = db.execute("ROLLBACK TO sp2").unwrap_err();
    assert_eq!(
        err.code(),
        ErrorCode::TxnState,
        "sp2 died with the rollback"
    );
    // B was rolled back: rollback-to keeps everything before the savepoint
    let r = db.execute("SELECT GID FROM Gene WHERE Len <= 3").unwrap();
    let got: Vec<Value> = r
        .column_values("GID")
        .unwrap()
        .into_iter()
        .cloned()
        .collect();
    assert_eq!(got, vec![Value::Text("A".into())]);
    db.execute("INSERT INTO Gene VALUES ('D', 4)").unwrap();
    db.execute("RELEASE sp1").unwrap();
    assert_eq!(db.transaction_status(), TxnStatus::Active { savepoints: 0 });
    db.execute("COMMIT").unwrap();
    let r = db.execute("SELECT GID FROM Gene WHERE Len <= 4").unwrap();
    assert_eq!(r.rows.len(), 2, "A and D survive; B and C rolled back");

    // full rollback after a savepoint-heavy transaction restores all
    let before = table_fingerprint(&db, "Gene");
    db.execute("BEGIN").unwrap();
    db.execute("SAVEPOINT s").unwrap();
    db.execute("INSERT INTO Gene VALUES ('E', 5)").unwrap();
    db.execute("SAVEPOINT s").unwrap(); // shadows
    db.execute("DELETE FROM Gene WHERE GID = 'A'").unwrap();
    db.execute("ROLLBACK TO s").unwrap(); // undoes only the delete
    db.execute("ROLLBACK").unwrap();
    assert_eq!(table_fingerprint(&db, "Gene"), before);
}

#[test]
fn stats_counters_restored_exactly_for_the_planner() {
    let mut db = curated_db();
    db.execute("ANALYZE Gene").unwrap();
    let stats_before = format!("{:?}", db.catalog().table("Gene").unwrap().stats());
    let analyze_before = db.execute("ANALYZE Gene").unwrap().message;
    // (re-ANALYZE is idempotent, so running it to capture the message is safe)

    db.execute("BEGIN").unwrap();
    for i in 0..100 {
        db.execute(&format!("INSERT INTO Gene VALUES ('T{i}', {i})"))
            .unwrap();
    }
    db.execute("ANALYZE Gene").unwrap();
    db.execute("DELETE FROM Gene WHERE Len < 50").unwrap();
    db.execute("ROLLBACK").unwrap();

    let stats_after = format!("{:?}", db.catalog().table("Gene").unwrap().stats());
    assert_eq!(
        stats_after, stats_before,
        "min/max, NULL counts, and the KMV sketch must be byte-identical"
    );
    // the documented check: ANALYZE reports the same row count as before
    let analyze_after = db.execute("ANALYZE Gene").unwrap().message;
    assert_eq!(analyze_after, analyze_before);
}

#[test]
fn prepared_plans_do_not_survive_a_rolled_back_create_index() {
    let mut db = curated_db();
    for i in 0..50 {
        db.execute(&format!("INSERT INTO Gene VALUES ('X{i}', {})", i + 1000))
            .unwrap();
    }
    let mut session = db.session("admin");
    let stmt = session
        .prepare("SELECT GID FROM Gene WHERE Len = 1042")
        .unwrap();
    // first run: no index, full scan; plan cached
    session.query(&stmt, &[]).unwrap().into_result().unwrap();
    assert!(stmt.has_cached_plan());

    session.run("BEGIN").unwrap();
    session.run("CREATE INDEX len_idx ON Gene (Len)").unwrap();
    // inside the txn the new index is live and the statement replans onto it
    let mut cur = session.query(&stmt, &[]).unwrap();
    while cur.next_row().unwrap().is_some() {}
    let mid = cur.stats();
    drop(cur);
    assert_eq!(mid.index_probes, 1, "mid-txn plan probes the new index");
    assert_eq!(mid.chosen_indexes, vec!["len_idx".to_string()]);

    session.run("ROLLBACK").unwrap();
    // the index is gone and the generation moved: the cached plan must
    // not be replayed (it would probe a dropped index)
    let mut cur = session.query(&stmt, &[]).unwrap();
    let row = cur.next_row().unwrap().expect("row still present");
    assert_eq!(row.values[0], Value::Text("X42".into()));
    assert!(cur.next_row().unwrap().is_none());
    let after = cur.stats();
    assert_eq!(after.index_probes, 0, "replanned onto a full scan");
    assert!(after.chosen_indexes.is_empty());
}

#[test]
fn annotations_and_provenance_attachments_disappear_on_rollback() {
    let mut db = curated_db();
    db.enable_provenance("Gene").unwrap();
    db.record_provenance(
        "Gene",
        &[0],
        &[0],
        &ProvenanceRecord {
            source: "GenoBase".into(),
            operation: ProvOp::Copy,
            program: None,
            time: 1,
        },
    )
    .unwrap();
    let before = table_fingerprint(&db, "Gene");

    db.execute("BEGIN").unwrap();
    db.execute(
        "ADD ANNOTATION TO Gene.Curation VALUE 'uncommitted note' \
         ON (SELECT G.GID FROM Gene G)",
    )
    .unwrap();
    // provenance through the system API joins the transaction too
    db.record_provenance(
        "Gene",
        &[1],
        &[1],
        &ProvenanceRecord {
            source: "RegulonDB".into(),
            operation: ProvOp::ProgramUpdate,
            program: Some("pipeline".into()),
            time: 2,
        },
    )
    .unwrap();
    // archive the pre-existing annotation (a state flip, not an add)
    db.execute("ARCHIVE ANNOTATION FROM Gene.Curation ON (SELECT G.GID FROM Gene G)")
        .unwrap();
    // annotation-DDL is transactional as well
    db.execute("CREATE ANNOTATION TABLE Review ON Gene")
        .unwrap();
    db.execute("DROP ANNOTATION TABLE Curation ON Gene")
        .unwrap();
    db.execute("ROLLBACK").unwrap();

    assert_eq!(table_fingerprint(&db, "Gene"), before);
    // the propagated view agrees: the seed annotation is live again
    let r = db
        .execute("SELECT GID FROM Gene ANNOTATION(Curation) AWHERE CONTAINS 'seed'")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    // and the provenance query sees exactly the pre-txn record
    let p = db.source_of("Gene", 0, 0, 10).unwrap().unwrap();
    assert_eq!(p.source, "GenoBase");
    assert!(db.source_of("Gene", 1, 1, 10).unwrap().is_none());
}

#[test]
fn dependency_rules_and_cascades_roll_back() {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE Gene (GID TEXT, GSequence TEXT)")
        .unwrap();
    db.execute("CREATE TABLE Protein (GID TEXT, PSequence TEXT)")
        .unwrap();
    db.execute("INSERT INTO Gene VALUES ('JW0080', 'ATG')")
        .unwrap();
    db.execute("INSERT INTO Protein VALUES ('JW0080', 'M')")
        .unwrap();
    db.register_procedure("translate", |args| Value::Text(format!("T:{}", args[0])));
    db.execute(
        "CREATE DEPENDENCY RULE r1 FROM Gene.GSequence TO Protein.PSequence \
         VIA PROCEDURE 'translate' EXECUTABLE LINK Gene.GID = Protein.GID",
    )
    .unwrap();
    db.execute("UPDATE Gene SET GSequence = 'ATGATG' WHERE GID = 'JW0080'")
        .unwrap();
    let gene_before = table_fingerprint(&db, "Gene");
    let protein_before = table_fingerprint(&db, "Protein");

    db.execute("BEGIN").unwrap();
    // the update cascades: Protein.PSequence is recomputed in-txn
    db.execute("UPDATE Gene SET GSequence = 'GGG' WHERE GID = 'JW0080'")
        .unwrap();
    let r = db.execute("SELECT PSequence FROM Protein").unwrap();
    assert_eq!(r.rows[0].values[0], Value::Text("T:GGG".into()));
    // rule DDL inside the transaction
    db.execute("DROP DEPENDENCY RULE r1").unwrap();
    db.execute("CREATE DEPENDENCY RULE r2 FROM Gene.GID TO Protein.GID VIA PROCEDURE 'copy'")
        .unwrap();
    db.execute("ROLLBACK").unwrap();

    assert_eq!(table_fingerprint(&db, "Gene"), gene_before);
    assert_eq!(
        table_fingerprint(&db, "Protein"),
        protein_before,
        "cascade recomputes are undone with their trigger"
    );
    assert!(db.dependencies().rule_by_name("r1").is_some());
    assert!(db.dependencies().rule_by_name("r2").is_none());
}

#[test]
fn outdated_bitmaps_roll_back_with_validate() {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE T (a INT, b INT)").unwrap();
    db.execute("INSERT INTO T VALUES (1, 2)").unwrap();
    // a non-executable dependency marks b outdated when a changes
    db.execute("CREATE DEPENDENCY RULE r FROM T.a TO T.b VIA PROCEDURE 'lab'")
        .unwrap();
    db.execute("UPDATE T SET a = 5").unwrap();
    assert!(db.catalog().table("T").unwrap().is_outdated(0, 1));
    let before = table_fingerprint(&db, "T");

    db.execute("BEGIN").unwrap();
    db.execute("VALIDATE T COLUMNS b").unwrap();
    assert!(!db.catalog().table("T").unwrap().is_outdated(0, 1));
    db.execute("ROLLBACK").unwrap();
    assert!(
        db.catalog().table("T").unwrap().is_outdated(0, 1),
        "the outdated bit came back with the rollback"
    );
    assert_eq!(table_fingerprint(&db, "T"), before);
}

#[test]
fn implicit_transaction_makes_multi_row_dml_atomic() {
    // regression (ISSUE 4 satellite): a mid-flight failure used to leave
    // the earlier rows applied
    let mut db = curated_db();
    let before = table_fingerprint(&db, "Gene");
    let err = db
        .execute("INSERT INTO Gene VALUES ('OK1', 1), ('bad', 'not-an-int'), ('OK2', 2)")
        .unwrap_err();
    assert_eq!(err.code(), ErrorCode::TypeMismatch);
    assert_eq!(
        table_fingerprint(&db, "Gene"),
        before,
        "no row of the failed INSERT may remain"
    );
    // row numbers were not burned by the rolled-back rows
    db.execute("INSERT INTO Gene VALUES ('JW4444', 4)").unwrap();
    assert_eq!(
        db.catalog().table("Gene").unwrap().row_numbers(),
        vec![0, 1, 2, 3]
    );
}

#[test]
fn failed_statement_inside_txn_rolls_back_alone() {
    let mut db = curated_db();
    db.execute("BEGIN").unwrap();
    db.execute("INSERT INTO Gene VALUES ('KEEP', 123)").unwrap();
    let err = db
        .execute("INSERT INTO Gene VALUES ('X1', 9), ('X2', 'boom')")
        .unwrap_err();
    assert_eq!(err.code(), ErrorCode::TypeMismatch);
    assert!(db.in_transaction(), "statement failure keeps the txn open");
    db.execute("COMMIT").unwrap();
    let r = db.execute("SELECT GID FROM Gene WHERE Len >= 9").unwrap();
    let mut got: Vec<Value> = r
        .column_values("GID")
        .unwrap()
        .into_iter()
        .cloned()
        .collect();
    got.sort_by_key(|v| format!("{v:?}"));
    assert_eq!(
        got,
        vec![
            Value::Text("JW0080".into()),
            Value::Text("JW0082".into()),
            Value::Text("KEEP".into())
        ],
        "KEEP survives, X1/X2 do not"
    );
}

#[test]
fn non_transactional_statements_rejected_inside_txn() {
    let mut db = curated_db();
    db.execute("CREATE USER alice").unwrap();
    db.execute("BEGIN").unwrap();
    for sql in [
        "CREATE USER bob",
        "GRANT SELECT ON Gene TO alice",
        "REVOKE SELECT ON Gene FROM alice",
        "START CONTENT APPROVAL ON Gene APPROVED BY admin",
        "STOP CONTENT APPROVAL ON Gene",
        "APPROVE OPERATION 0",
        "DISAPPROVE OPERATION 0",
    ] {
        let err = db.execute(sql).unwrap_err();
        assert_eq!(err.code(), ErrorCode::TxnState, "{sql} must be rejected");
    }
    db.execute("ROLLBACK").unwrap();
}

#[test]
fn cursors_opened_inside_a_transaction_see_its_writes_and_stream() {
    let mut db = curated_db();
    let mut session = db.session("admin");
    session.run("BEGIN").unwrap();
    for i in 0..20 {
        session
            .run(&format!("INSERT INTO Gene VALUES ('N{i}', {})", 500 + i))
            .unwrap();
    }
    let stmt = session
        .prepare("SELECT GID FROM Gene WHERE Len >= 500")
        .unwrap();
    let mut cur = session.query(&stmt, &[]).unwrap();
    // pinned semantics: the cursor reads the transaction's own
    // uncommitted writes, and advances the scan only as pulled
    let first = cur.next_row().unwrap().expect("uncommitted row visible");
    assert_eq!(first.values[0], Value::Text("N0".into()));
    let early = cur.stats();
    // streaming at per-batch granularity: a table this small fits in
    // one batch, so at most one batch's worth of rows is fetched
    assert!(
        early.rows_fetched <= bdbms_core::batch::BATCH_SIZE as u64,
        "streaming: no more than one batch is materialized (fetched {})",
        early.rows_fetched
    );
    let rest: Vec<_> = cur.collect();
    assert_eq!(rest.len(), 19);

    session.run("ROLLBACK").unwrap();
    let mut cur = session.query(&stmt, &[]).unwrap();
    assert!(
        cur.next_row().unwrap().is_none(),
        "a cursor opened after ROLLBACK sees none of the rolled-back rows"
    );
}

#[test]
fn approval_log_rolls_back_with_the_statement_that_wrote_it() {
    let mut db = curated_db();
    db.execute("CREATE USER intern").unwrap();
    db.execute("GRANT INSERT ON Gene TO intern").unwrap();
    db.execute("START CONTENT APPROVAL ON Gene APPROVED BY admin")
        .unwrap();
    // a monitored multi-row INSERT that fails mid-way must leave neither
    // rows nor pending-approval entries behind
    let err = db
        .execute_as("INSERT INTO Gene VALUES ('P1', 1), ('P2', 'bad')", "intern")
        .unwrap_err();
    assert_eq!(err.code(), ErrorCode::TypeMismatch);
    assert!(
        db.approval().pending(None).is_empty(),
        "no stale pending operation may reference a rolled-back row"
    );
}

#[test]
fn transaction_control_statement_errors() {
    let mut db = curated_db();
    // savepoint commands need an open transaction
    for sql in ["SAVEPOINT s", "ROLLBACK TO s", "RELEASE s"] {
        assert_eq!(db.execute(sql).unwrap_err().code(), ErrorCode::TxnState);
    }
    db.execute("BEGIN").unwrap();
    assert_eq!(
        db.execute("RELEASE nope").unwrap_err().code(),
        ErrorCode::TxnState
    );
    // an empty transaction commits and rolls back cleanly
    db.execute("COMMIT").unwrap();
    db.execute("BEGIN").unwrap();
    db.execute("ROLLBACK").unwrap();
    assert_eq!(db.transaction_status(), TxnStatus::Idle);
}
