//! Bulk ingestion end to end: the `COPY` statement (FASTA and TSV), the
//! sequence-index catalog surface (`CREATE SEQUENCE INDEX … USING
//! SBC|SUFFIX`), planner routing of `CONTAINS SEQ` through the sequence
//! index (observed via `ExecStats`), durability round trips, and the
//! mid-COPY fault-injection sweep proving the load is atomic: after any
//! single injected I/O fault plus a crash, recovery sees either zero
//! copied rows or the complete load — never a partial heap, never a
//! stale sequence index.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use bdbms_core::executor::ExecOptions;
use bdbms_core::{Database, DurabilityOptions};
use bdbms_storage::{FaultInjector, FaultKind};

fn tmp(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("bdbms-ingest-{}-{name}.bdbms", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Write a deterministic FASTA file of `n` records (same generator family
/// as `crates/seq::gen`: short DNA with runs, so the SBC-tree sees
/// realistic RLE input).
fn fasta_file(name: &str, n: usize) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("bdbms-ingest-{}-{name}.fasta", std::process::id()));
    let mut out = String::new();
    for i in 0..n {
        let bases = ["AAAC", "CCGT", "GGGA", "TTAC"];
        let mut seq = String::new();
        for j in 0..6 {
            seq.push_str(bases[(i + j) % 4]);
        }
        // a recognizable motif on every 7th record
        if i % 7 == 0 {
            seq.push_str("CATCAT");
        }
        writeln!(out, ">JW{i:04} synthetic record {i}").unwrap();
        // sequences split across lines, as real FASTA is
        let (a, b) = seq.split_at(seq.len() / 2);
        writeln!(out, "{a}").unwrap();
        writeln!(out, "{b}").unwrap();
    }
    fs::write(&path, out).unwrap();
    path
}

fn tsv_file(name: &str, body: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("bdbms-ingest-{}-{name}.tsv", std::process::id()));
    fs::write(&path, body).unwrap();
    path
}

#[test]
fn copy_fasta_loads_headers_and_sequences() {
    let data = fasta_file("fasta-basic", 25);
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE Gene (Hdr TEXT, Seq TEXT, Note TEXT)")
        .unwrap();
    // format inferred from the .fasta extension
    let r = db
        .execute(&format!("COPY Gene FROM '{}'", data.display()))
        .unwrap();
    assert_eq!(r.affected, 25);
    assert!(r.message.unwrap().contains("FASTA"));
    let r = db
        .execute("SELECT Hdr, Seq FROM Gene WHERE Hdr LIKE 'JW0003%'")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0].values[0].to_string(), "JW0003 synthetic record 3");
    // sequence lines were concatenated
    assert!(!r.rows[0].values[1].to_string().contains('\n'));
    // the third column defaulted to NULL
    let r = db
        .execute("SELECT COUNT(*) FROM Gene WHERE Note IS NULL")
        .unwrap();
    assert_eq!(r.rows[0].values[0].to_string(), "25");
    let _ = fs::remove_file(&data);
}

#[test]
fn copy_tsv_parses_typed_columns() {
    let data = tsv_file(
        "tsv-basic",
        "JW0001\tmraW\t11\t0.5\ttrue\nJW0002\t\\N\t42\t\t1\n",
    );
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE T (GID TEXT, GName TEXT, Len INT, Score FLOAT, Seen BOOL)")
        .unwrap();
    let r = db
        .execute(&format!("COPY T FROM '{}' FORMAT TSV", data.display()))
        .unwrap();
    assert_eq!(r.affected, 2);
    let r = db
        .execute("SELECT Len FROM T WHERE GName IS NULL AND Score IS NULL AND Seen")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0].values[0].to_string(), "42");
    let _ = fs::remove_file(&data);
}

#[test]
fn copy_failure_rolls_back_to_zero_rows() {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE T (GID TEXT, Len INT)").unwrap();
    db.execute("INSERT INTO T VALUES ('pre', 1)").unwrap();
    db.execute("CREATE INDEX len_idx ON T (Len)").unwrap();
    db.execute("CREATE SEQUENCE INDEX gseq ON T (GID) USING SUFFIX")
        .unwrap();
    // a bad row in the middle: the whole COPY must vanish
    let data = tsv_file("tsv-bad", "a\t1\nb\t2\nc\tnot-an-int\nd\t4\n");
    let err = db
        .execute(&format!("COPY T FROM '{}' FORMAT TSV", data.display()))
        .unwrap_err();
    assert!(err.to_string().contains("line 3"), "got: {err}");
    assert_eq!(db.execute("SELECT * FROM T").unwrap().rows.len(), 1);
    // indexes saw none of the aborted rows
    let r = db.execute("SELECT GID FROM T WHERE Len = 2").unwrap();
    assert!(r.rows.is_empty());
    let r = db
        .execute("SELECT GID FROM T WHERE GID CONTAINS SEQ 'b'")
        .unwrap();
    assert!(r.rows.is_empty());
    // a missing file fails cleanly too
    let err = db
        .execute("COPY T FROM '/nonexistent/nope.tsv'")
        .unwrap_err();
    assert!(err.to_string().contains("cannot open"), "got: {err}");
    let _ = fs::remove_file(&data);
}

#[test]
fn copy_is_rejected_inside_a_transaction() {
    let data = tsv_file("tsv-txn", "a\n");
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE T (GID TEXT)").unwrap();
    db.execute("BEGIN").unwrap();
    let err = db
        .execute(&format!("COPY T FROM '{}'", data.display()))
        .unwrap_err();
    assert!(err.to_string().contains("COPY"), "got: {err}");
    db.execute("ROLLBACK").unwrap();
    let _ = fs::remove_file(&data);
}

#[test]
fn contains_seq_routes_through_the_sequence_index() {
    let data = fasta_file("routing", 60);
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE Gene (Hdr TEXT, Seq TEXT)")
        .unwrap();
    db.execute(&format!("COPY Gene FROM '{}'", data.display()))
        .unwrap();
    db.execute("CREATE SEQUENCE INDEX seq_sbc ON Gene (Seq) USING SBC")
        .unwrap();
    let sql = "SELECT Hdr FROM Gene WHERE Seq CONTAINS SEQ 'CATCAT'";
    let (naive, ns) = db.query_traced(sql, &ExecOptions::naive()).unwrap();
    let (opt, os) = db.query_traced(sql, &ExecOptions::default()).unwrap();
    // 60 records, a motif on every 7th
    assert_eq!(naive.rows.len(), 9);
    let sort = |qr: &bdbms_core::result::QueryResult| {
        let mut v: Vec<String> = qr.rows.iter().map(|r| r.values[0].to_string()).collect();
        v.sort();
        v
    };
    assert_eq!(sort(&naive), sort(&opt), "probe and scan must agree");
    assert_eq!(ns.seq_index_probes, 0);
    assert_eq!(ns.full_scans, 1);
    assert_eq!(os.seq_index_probes, 1, "planner must route to the index");
    assert_eq!(os.full_scans, 0);
    assert_eq!(os.chosen_indexes, vec!["seq_sbc".to_string()]);
    // the probe touches only candidates, the scan everything
    assert!(os.rows_fetched < ns.rows_fetched);

    // the index stays correct across DML
    db.execute("INSERT INTO Gene VALUES ('new1', 'TTTCATCATTTT')")
        .unwrap();
    db.execute("UPDATE Gene SET Seq = 'CCCC' WHERE Hdr LIKE 'JW0007%'")
        .unwrap();
    db.execute("DELETE FROM Gene WHERE Hdr LIKE 'JW0014%'")
        .unwrap();
    let (naive, _) = db.query_traced(sql, &ExecOptions::naive()).unwrap();
    let (opt, os) = db.query_traced(sql, &ExecOptions::default()).unwrap();
    assert_eq!(sort(&naive), sort(&opt), "post-DML probe must agree");
    assert_eq!(naive.rows.len(), 8); // -1 update, -1 delete, +1 insert
    assert_eq!(os.seq_index_probes, 1);

    // NOT CONTAINS SEQ cannot use the candidate set
    let (_, os) = db
        .query_traced(
            "SELECT Hdr FROM Gene WHERE Seq NOT CONTAINS SEQ 'CATCAT'",
            &ExecOptions::default(),
        )
        .unwrap();
    assert_eq!(os.seq_index_probes, 0);
    assert_eq!(os.full_scans, 1);

    // SUBSEQ extracts 1-based inclusive ranges
    let r = db
        .execute("SELECT SUBSEQ(Seq, 4, 9) FROM Gene WHERE Hdr = 'new1'")
        .unwrap();
    assert_eq!(r.rows[0].values[0].to_string(), "CATCAT");

    // dropping the index reverts to full scans
    db.execute("DROP SEQUENCE INDEX seq_sbc ON Gene").unwrap();
    let (_, os) = db.query_traced(sql, &ExecOptions::default()).unwrap();
    assert_eq!(os.seq_index_probes, 0);
    assert_eq!(os.full_scans, 1);
    let _ = fs::remove_file(&data);
}

#[test]
fn suffix_kind_answers_identically_to_sbc() {
    let data = fasta_file("kinds", 40);
    let mk = |kind: &str| {
        let mut db = Database::new_in_memory();
        db.execute("CREATE TABLE G (H TEXT, S TEXT)").unwrap();
        db.execute(&format!("COPY G FROM '{}'", data.display()))
            .unwrap();
        db.execute(&format!("CREATE SEQUENCE INDEX sx ON G (S) USING {kind}"))
            .unwrap();
        let mut rows: Vec<String> = db
            .execute("SELECT H FROM G WHERE S CONTAINS SEQ 'GGGA'")
            .unwrap()
            .rows
            .iter()
            .map(|r| r.values[0].to_string())
            .collect();
        rows.sort();
        rows
    };
    assert_eq!(mk("SBC"), mk("SUFFIX"));
    let _ = fs::remove_file(&data);
}

#[test]
fn copy_and_sequence_index_survive_close_and_open() {
    let dir = tmp("durable");
    let data = fasta_file("durable", 30);
    {
        let mut db = Database::create(&dir).unwrap();
        db.execute("CREATE TABLE Gene (Hdr TEXT, Seq TEXT)")
            .unwrap();
        db.execute("CREATE SEQUENCE INDEX sidx ON Gene (Seq) USING SBC")
            .unwrap();
        db.execute(&format!("COPY Gene FROM '{}'", data.display()))
            .unwrap();
        db.close().unwrap();
    }
    let db = Database::open(&dir).unwrap();
    assert_eq!(db.catalog().table("Gene").unwrap().len(), 30);
    let (r, st) = db
        .query_traced(
            "SELECT Hdr FROM Gene WHERE Seq CONTAINS SEQ 'CATCAT'",
            &ExecOptions::default(),
        )
        .unwrap();
    assert_eq!(r.rows.len(), 5);
    assert_eq!(st.seq_index_probes, 1, "the index definition must persist");
    assert_eq!(st.chosen_indexes, vec!["sidx".to_string()]);
    drop(db);
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_file(&data);
}

#[test]
fn crash_right_after_copy_recovers_the_full_load() {
    // the forced checkpoint after COPY means a clean crash right after
    // the statement returns replays nothing and still sees every row
    let dir = tmp("post-copy-crash");
    let data = fasta_file("post-copy-crash", 20);
    {
        let mut db = Database::create(&dir).unwrap();
        db.execute("CREATE TABLE Gene (Hdr TEXT, Seq TEXT)")
            .unwrap();
        db.execute(&format!("COPY Gene FROM '{}'", data.display()))
            .unwrap();
        db.simulate_crash();
    }
    let db = Database::open(&dir).unwrap();
    assert_eq!(db.catalog().table("Gene").unwrap().len(), 20);
    let rec = db.last_recovery().unwrap();
    assert_eq!(
        rec.replayed_commits, 0,
        "the WAL-bypass barrier folds the load into the image"
    );
    drop(db);
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_file(&data);
}

// ---------------------------------------------------------------------
// The mid-COPY fault sweep (the crash-test satellite)
// ---------------------------------------------------------------------

const SWEEP_ROWS: usize = 30;

fn sweep_workload(db: &mut Database, data: &std::path::Path) -> Vec<bool> {
    [
        "CREATE TABLE Gene (Hdr TEXT, Seq TEXT)".to_string(),
        "CREATE SEQUENCE INDEX sidx ON Gene (Seq) USING SBC".to_string(),
        format!("COPY Gene FROM '{}' FORMAT FASTA", data.display()),
    ]
    .iter()
    .map(|s| db.execute(s).is_ok())
    .collect()
}

/// Inject one I/O fault at every operation index across a COPY workload,
/// crash, reopen on a healthy device, and hold the atomicity contract:
///
/// * never a panic, never a partial load — the table holds 0 copied rows
///   or all of them;
/// * if `COPY` reported success, the load is durable (the reverse — a
///   failure report with a durable load — is the usual post-barrier
///   ambiguity window and is allowed);
/// * whenever rows are present and the index definition survived, a
///   sequence-index probe answers exactly like a full scan.
#[test]
fn mid_copy_fault_sweep_loads_all_or_nothing() {
    let data = fasta_file("sweep", SWEEP_ROWS);
    let opts = |inj: Option<Arc<FaultInjector>>| DurabilityOptions {
        fault_injector: inj,
        ..Default::default()
    };
    // pass 1: count I/O on a healthy device
    let inj = FaultInjector::new();
    let count_dir = tmp("sweep-count");
    {
        let mut db = Database::create_with(&count_dir, opts(Some(inj.clone()))).unwrap();
        inj.arm(u64::MAX, FaultKind::TransientError);
        let ok = sweep_workload(&mut db, &data);
        assert!(ok.iter().all(|&b| b));
        db.simulate_crash();
    }
    let total_ops = inj.op_count();
    let _ = fs::remove_dir_all(&count_dir);
    assert!(total_ops > 10, "COPY must exercise real I/O ({total_ops})");

    let stride = if cfg!(debug_assertions) { 7 } else { 1 };
    let mut saw_wal_replay = false;
    for n in (0..total_ops).step_by(stride) {
        for kind in [
            FaultKind::TransientError,
            FaultKind::PermanentError,
            FaultKind::TornWrite {
                bytes: 1 + (n as usize * 997) % 4000,
            },
        ] {
            let dir = tmp(&format!("sweep-{n}-{kind:?}"));
            let inj = FaultInjector::new();
            let mut db = Database::create_with(&dir, opts(Some(inj.clone()))).unwrap();
            inj.arm(n, kind);
            let ok = sweep_workload(&mut db, &data);
            inj.disarm();
            db.simulate_crash();
            let db = Database::open(&dir)
                .unwrap_or_else(|e| panic!("fault {kind:?} at op {n}: reopen failed: {e}"));
            let rows = db.catalog().table("Gene").map(|t| t.len()).unwrap_or(0);
            assert!(
                rows == 0 || rows == SWEEP_ROWS,
                "fault {kind:?} at op {n}: partial load ({rows} rows)"
            );
            if ok[2] {
                assert_eq!(
                    rows, SWEEP_ROWS,
                    "fault {kind:?} at op {n}: COPY reported success but rows are gone"
                );
            }
            if db.last_recovery().unwrap().replayed_commits > 0 && rows == SWEEP_ROWS {
                saw_wal_replay = true;
            }
            // the sequence index (when its DDL survived) must agree with
            // a naive scan — stale/missing candidates would diverge here
            if db
                .catalog()
                .table("Gene")
                .is_ok_and(|t| t.seq_index_named("sidx").is_some())
            {
                let sql = "SELECT Hdr FROM Gene WHERE Seq CONTAINS SEQ 'CATCAT'";
                let (a, st) = db.query_traced(sql, &ExecOptions::default()).unwrap();
                let (b, _) = db.query_traced(sql, &ExecOptions::naive()).unwrap();
                assert_eq!(st.seq_index_probes, 1);
                let key = |qr: &bdbms_core::result::QueryResult| {
                    let mut v: Vec<String> =
                        qr.rows.iter().map(|r| r.values[0].to_string()).collect();
                    v.sort();
                    v
                };
                assert_eq!(
                    key(&a),
                    key(&b),
                    "fault {kind:?} at op {n}: index diverges from scan"
                );
            }
            drop(db);
            let _ = fs::remove_dir_all(&dir);
        }
    }
    if cfg!(not(debug_assertions)) {
        assert!(
            saw_wal_replay,
            "some fault must land inside the forced checkpoint, exercising \
             BulkLoad WAL replay from the source file"
        );
    }
    let _ = fs::remove_file(&data);
}
