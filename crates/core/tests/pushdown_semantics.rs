//! Pushdown/index regression suite: the optimized streaming executor
//! must return **identical rows and identical annotation sets** to the
//! naive fully-materializing executor for every §3.4 construct —
//! ANNOTATION propagation, AWHERE, FILTER, PROMOTE, the synthetic
//! `outdated` annotation (§5), grouping, set operations — and the
//! secondary indexes must stay consistent across INSERT / UPDATE /
//! DELETE and dependency cascades.

use bdbms_core::executor::{ExecOptions, ExecStats};
use bdbms_core::result::QueryResult;
use bdbms_core::Database;

/// `(source table, annotation table, id, raw body)` — one annotation's
/// comparable identity.
type AnnKey = (String, String, u64, String);

/// A result's annotations as a comparable, order-insensitive fingerprint
/// (per row, per cell).
fn ann_fingerprint(qr: &QueryResult) -> Vec<Vec<Vec<AnnKey>>> {
    qr.rows
        .iter()
        .map(|row| {
            row.anns
                .iter()
                .map(|cell| {
                    let mut a: Vec<_> = cell
                        .iter()
                        .map(|a| {
                            (
                                a.source_table.clone(),
                                a.ann_table.clone(),
                                a.id,
                                a.raw.clone(),
                            )
                        })
                        .collect();
                    a.sort();
                    a
                })
                .collect()
        })
        .collect()
}

fn values_of(qr: &QueryResult) -> Vec<Vec<String>> {
    qr.rows
        .iter()
        .map(|r| r.values.iter().map(|v| v.to_string()).collect())
        .collect()
}

/// Run `sql` under both executors and assert identical answers
/// (columns, the multiset of row values, and per-cell annotation sets).
/// Rows are compared order-insensitively — SQL leaves row order
/// unspecified without ORDER BY, and the cost-based join reordering
/// legitimately emits join results in a different (but equally valid)
/// order than FROM-order execution.  ORDER BY queries still compare in
/// order after the shared sort.  Returns the optimized run's stats for
/// additional assertions.
fn assert_equivalent(db: &Database, sql: &str) -> ExecStats {
    let (naive, _) = db
        .query_traced(sql, &ExecOptions::naive())
        .unwrap_or_else(|e| panic!("naive failed on {sql}: {e:?}"));
    let (opt, stats) = db
        .query_traced(sql, &ExecOptions::default())
        .unwrap_or_else(|e| panic!("optimized failed on {sql}: {e:?}"));
    assert_eq!(naive.columns, opt.columns, "columns differ: {sql}");
    let rowset = |qr: &QueryResult| {
        let mut rows: Vec<(Vec<String>, Vec<Vec<AnnKey>>)> =
            values_of(qr).into_iter().zip(ann_fingerprint(qr)).collect();
        rows.sort();
        rows
    };
    assert_eq!(rowset(&naive), rowset(&opt), "result sets differ: {sql}");
    // ORDER BY output must also agree row-for-row
    if sql.to_ascii_uppercase().contains("ORDER BY") {
        assert_eq!(
            values_of(&naive),
            values_of(&opt),
            "ordered rows differ: {sql}"
        );
    }
    stats
}

/// The paper-shaped fixture: two gene tables with annotation tables,
/// per-cell annotations at several granularities, outdated marks, and a
/// secondary index on the join/filter column.
fn fixture() -> Database {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE DB1_Gene (GID TEXT, GName TEXT, Len INT)")
        .unwrap();
    db.execute("CREATE TABLE DB2_Gene (GID TEXT, GFunction TEXT, Score FLOAT)")
        .unwrap();
    db.execute("CREATE ANNOTATION TABLE Prov ON DB1_Gene")
        .unwrap();
    db.execute("CREATE ANNOTATION TABLE Comments ON DB1_Gene")
        .unwrap();
    db.execute("CREATE ANNOTATION TABLE GAnnotation ON DB2_Gene")
        .unwrap();
    for i in 0..60 {
        db.execute(&format!(
            "INSERT INTO DB1_Gene VALUES ('JW{i:04}', 'g{i}', {i})"
        ))
        .unwrap();
    }
    for i in 0..40 {
        db.execute(&format!(
            "INSERT INTO DB2_Gene VALUES ('JW{:04}', 'fn{i}', {}.5)",
            i * 2,
            i
        ))
        .unwrap();
    }
    // column-granularity annotation (§3.2 example B3)
    db.execute(
        "ADD ANNOTATION TO DB1_Gene.Prov VALUE 'obtained from RegulonDB' \
         ON (SELECT G.GName FROM DB1_Gene G)",
    )
    .unwrap();
    // tuple- and cell-granularity annotations
    db.execute(
        "ADD ANNOTATION TO DB1_Gene.Comments VALUE 'unknown function' \
         ON (SELECT G.GID, G.GName, G.Len FROM DB1_Gene G WHERE Len < 10)",
    )
    .unwrap();
    db.execute(
        "ADD ANNOTATION TO DB2_Gene.GAnnotation VALUE 'obtained from GenoBase' \
         ON (SELECT G.GFunction FROM DB2_Gene G WHERE Score > 30.0)",
    )
    .unwrap();
    db.execute("CREATE INDEX len_idx ON DB1_Gene (Len)")
        .unwrap();
    db.execute("CREATE INDEX gid_idx ON DB2_Gene (GID)")
        .unwrap();
    db
}

#[test]
fn filtered_queries_agree_between_executors() {
    let db = fixture();
    for sql in [
        // selective equality over the indexed column
        "SELECT GID, Len FROM DB1_Gene WHERE Len = 42",
        // range over the indexed column
        "SELECT GID FROM DB1_Gene WHERE Len > 55",
        "SELECT GID FROM DB1_Gene WHERE Len >= 10 AND Len < 13",
        // non-indexed predicate (full scan both ways)
        "SELECT GID FROM DB1_Gene WHERE GName LIKE 'g1%'",
        // compound with OR (not pushable through the index)
        "SELECT GID FROM DB1_Gene WHERE Len = 3 OR Len = 57",
        // NULL comparison: provably empty
        "SELECT GID FROM DB1_Gene WHERE Len = NULL",
        // non-comparison NULL: `x OR NULL` is true when x is true, so
        // this must NOT be planned as empty
        "SELECT GID FROM DB1_Gene WHERE Len > 55 OR NULL",
        // expression predicates
        "SELECT GID FROM DB1_Gene WHERE Len * 2 = 20 AND LENGTH(GID) = 6",
    ] {
        assert_equivalent(&db, sql);
    }
}

#[test]
fn annotation_propagation_agrees_between_executors() {
    let db = fixture();
    for sql in [
        // scan-time attachment + projection annotation semantics
        "SELECT GID, GName FROM DB1_Gene ANNOTATION(Prov, Comments) WHERE Len < 12",
        // AWHERE over attached annotations
        "SELECT GID FROM DB1_Gene ANNOTATION(Comments) WHERE Len < 30 AWHERE CONTAINS 'unknown'",
        // FILTER keeps tuples, drops non-matching annotations
        "SELECT GID, GName FROM DB1_Gene ANNOTATION(Prov, Comments) \
         WHERE Len < 12 FILTER CONTAINS 'RegulonDB'",
        // PROMOTE pulls a non-projected column's annotations
        "SELECT GID PROMOTE (GName) FROM DB1_Gene ANNOTATION(Prov) WHERE Len = 7",
        // join with annotations from both sides, pushdown on each input
        "SELECT G.GID, H.GFunction FROM DB1_Gene ANNOTATION(Prov) G, \
         DB2_Gene ANNOTATION(GAnnotation) H \
         WHERE G.GID = H.GID AND G.Len < 20 AND H.Score > 1.0",
        // DISTINCT union-of-annotations semantics
        "SELECT DISTINCT GName FROM DB1_Gene ANNOTATION(Prov) WHERE Len < 15",
        // grouping: annotations union across the group; AHAVING
        "SELECT COUNT(*) FROM DB1_Gene ANNOTATION(Comments) WHERE Len < 9 \
         GROUP BY GName AHAVING CONTAINS 'unknown'",
        // set operation with annotation union
        "SELECT GID FROM DB1_Gene ANNOTATION(Comments) WHERE Len < 5 \
         UNION SELECT GID FROM DB2_Gene ANNOTATION(GAnnotation) WHERE Score > 35.0",
        "SELECT GID FROM DB1_Gene WHERE Len < 20 \
         INTERSECT SELECT GID FROM DB2_Gene WHERE Score < 50.0",
        // ORDER BY on the compound output
        "SELECT GID FROM DB1_Gene WHERE Len < 6 ORDER BY GID DESC",
    ] {
        assert_equivalent(&db, sql);
    }
}

#[test]
fn outdated_annotations_agree_between_executors() {
    let mut db = fixture();
    // make cells outdated the § 5 way: a non-executable dependency rule
    // marks targets stale when sources change
    db.execute("CREATE TABLE Protein (GID TEXT, PSequence TEXT)")
        .unwrap();
    for i in 0..10 {
        db.execute(&format!(
            "INSERT INTO Protein VALUES ('JW{i:04}', 'seq{i}')"
        ))
        .unwrap();
    }
    db.execute(
        "CREATE DEPENDENCY RULE r1 FROM DB1_Gene.GName TO Protein.PSequence \
         VIA PROCEDURE 'translate' LINK DB1_Gene.GID = Protein.GID",
    )
    .unwrap();
    db.execute("UPDATE DB1_Gene SET GName = 'renamed' WHERE Len = 3")
        .unwrap();
    db.execute("UPDATE DB1_Gene SET GName = 'renamed2' WHERE Len = 7")
        .unwrap();
    // outdated cells now exist on Protein; both executors must attach the
    // synthetic annotation identically, with and without pushdown
    for sql in [
        "SELECT GID, PSequence FROM Protein",
        "SELECT GID, PSequence FROM Protein WHERE GID = 'JW0003'",
        "SELECT PSequence FROM Protein AWHERE FROM outdated",
        "SELECT GID FROM Protein AWHERE CONTAINS 'pending re-verification'",
    ] {
        assert_equivalent(&db, sql);
    }
}

#[test]
fn optimized_path_actually_uses_the_index() {
    let db = fixture();
    let stats = assert_equivalent(&db, "SELECT GID FROM DB1_Gene WHERE Len = 42");
    assert_eq!(stats.index_probes, 1, "equality must probe the index");
    assert_eq!(stats.full_scans, 0);
    assert_eq!(stats.rows_fetched, 1, "only the matching row is fetched");
    let (_, naive_stats) = db
        .query_traced(
            "SELECT GID FROM DB1_Gene WHERE Len = 42",
            &ExecOptions::naive(),
        )
        .unwrap();
    assert_eq!(naive_stats.rows_fetched, 60, "baseline scans everything");
    assert!(naive_stats.anns_attached == 0, "no annotations requested");

    // pushdown without an index still avoids materializing losers into
    // the join: only annotation work shrinks, row fetches stay full-scan
    let stats = assert_equivalent(
        &db,
        "SELECT G.GID FROM DB1_Gene ANNOTATION(Prov) G, DB2_Gene H \
         WHERE G.GID = H.GID AND G.Len = 4",
    );
    assert_eq!(stats.index_probes, 1, "G.Len = 4 probes len_idx");
    // lazy attachment: only the surviving joined row's projected column
    // gets annotation work
    let (_, naive) = db
        .query_traced(
            "SELECT G.GID FROM DB1_Gene ANNOTATION(Prov) G, DB2_Gene H \
             WHERE G.GID = H.GID AND G.Len = 4",
            &ExecOptions::naive(),
        )
        .unwrap();
    assert!(
        stats.anns_attached < naive.anns_attached,
        "lazy attachment must do strictly less annotation work \
         (opt {} vs naive {})",
        stats.anns_attached,
        naive.anns_attached
    );
}

#[test]
fn index_consistency_through_dml_and_cascades() {
    let mut db = fixture();
    let probe = |db: &Database, len: i64| -> Vec<String> {
        let (qr, stats) = db
            .query_traced(
                &format!("SELECT GID FROM DB1_Gene WHERE Len = {len}"),
                &ExecOptions::default(),
            )
            .unwrap();
        assert_eq!(stats.index_probes, 1);
        qr.rows.iter().map(|r| r.values[0].to_string()).collect()
    };
    // INSERT: new row visible through the index
    db.execute("INSERT INTO DB1_Gene VALUES ('JW9001', 'new', 1001)")
        .unwrap();
    assert_eq!(probe(&db, 1001), vec!["JW9001"]);
    // UPDATE: moves the key
    db.execute("UPDATE DB1_Gene SET Len = 2002 WHERE GID = 'JW9001'")
        .unwrap();
    assert_eq!(probe(&db, 1001), Vec::<String>::new());
    assert_eq!(probe(&db, 2002), vec!["JW9001"]);
    // DELETE: retires the key
    db.execute("DELETE FROM DB1_Gene WHERE GID = 'JW9001'")
        .unwrap();
    assert_eq!(probe(&db, 2002), Vec::<String>::new());

    // dependency cascades write through Table::update and must maintain
    // indexes on the *target* table too
    db.execute("CREATE TABLE Derived (GID TEXT, DLen INT)")
        .unwrap();
    for i in 0..10 {
        db.execute(&format!("INSERT INTO Derived VALUES ('JW{i:04}', 0)"))
            .unwrap();
    }
    db.execute("CREATE INDEX dlen_idx ON Derived (DLen)")
        .unwrap();
    db.register_procedure("double_len", |inputs| match &inputs[0] {
        bdbms_common::Value::Int(i) => bdbms_common::Value::Int(i * 2),
        other => other.clone(),
    });
    db.execute(
        "CREATE DEPENDENCY RULE dd FROM DB1_Gene.Len TO Derived.DLen \
         VIA PROCEDURE 'double_len' EXECUTABLE LINK DB1_Gene.GID = Derived.GID",
    )
    .unwrap();
    // cascade recomputes Derived.DLen = 2 * Len through Table::update
    db.execute("UPDATE DB1_Gene SET Len = 500 WHERE GID = 'JW0004'")
        .unwrap();
    let (qr, stats) = db
        .query_traced(
            "SELECT GID FROM Derived WHERE DLen = 1000",
            &ExecOptions::default(),
        )
        .unwrap();
    assert_eq!(stats.index_probes, 1);
    assert_eq!(qr.rows.len(), 1);
    assert_eq!(qr.rows[0].values[0].to_string(), "JW0004");
    // and the equivalence still holds table-wide after all the churn
    assert_equivalent(&db, "SELECT GID, DLen FROM Derived WHERE DLen > 0");
    assert_equivalent(
        &db,
        "SELECT GID, Len FROM DB1_Gene WHERE Len >= 0 ORDER BY GID",
    );
}

#[test]
fn update_delete_where_go_through_index_planning() {
    let mut db = fixture();
    // UPDATE/DELETE with indexable predicates must produce the same
    // state as the full-scan path would — churn then verify
    db.execute("UPDATE DB1_Gene SET GName = 'hit' WHERE Len = 33")
        .unwrap();
    let (qr, _) = db
        .query_traced(
            "SELECT GName FROM DB1_Gene WHERE Len = 33",
            &ExecOptions::default(),
        )
        .unwrap();
    assert_eq!(qr.rows[0].values[0].to_string(), "hit");
    db.execute("DELETE FROM DB1_Gene WHERE Len >= 58").unwrap();
    let (qr, _) = db
        .query_traced("SELECT COUNT(*) FROM DB1_Gene", &ExecOptions::default())
        .unwrap();
    assert_eq!(qr.rows[0].values[0].to_string(), "58");
    assert_equivalent(&db, "SELECT GID FROM DB1_Gene WHERE Len > 50");
}
