//! Planner determinism suite: given a fixed insert history (hence fixed
//! statistics), the cost-based planner must make reproducible, assertable
//! decisions — which index serves a scan, which join order runs, whether
//! a LIMIT terminates the pipeline early, and when a scan is served
//! index-only — all observed through `ExecStats`.  The naive executor
//! must keep returning the same answers on every new workload shape.

use bdbms_common::Value;
use bdbms_core::executor::{ExecOptions, ExecStats};
use bdbms_core::result::QueryResult;
use bdbms_core::Database;

/// 200-row Gene table: `Len` = row number (unique), `Bucket` = row % 10
/// (10 distinct), B+-tree indexes on both; 10-row Tag dimension table.
fn fixture() -> Database {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE Gene (GID TEXT, GName TEXT, Len INT, Bucket INT)")
        .unwrap();
    db.execute("CREATE ANNOTATION TABLE Curation ON Gene")
        .unwrap();
    for i in 0..200 {
        db.execute(&format!(
            "INSERT INTO Gene VALUES ('JW{i:04}', 'g{i}', {i}, {})",
            i % 10
        ))
        .unwrap();
    }
    db.execute(
        "ADD ANNOTATION TO Gene.Curation VALUE 'curated' \
         ON (SELECT G.GName FROM Gene G)",
    )
    .unwrap();
    db.execute("CREATE INDEX len_idx ON Gene (Len)").unwrap();
    db.execute("CREATE INDEX bucket_idx ON Gene (Bucket)")
        .unwrap();
    db.execute("CREATE TABLE Tag (Len INT, TName TEXT)")
        .unwrap();
    for t in 0..10 {
        db.execute(&format!("INSERT INTO Tag VALUES ({}, 'tag{t}')", t * 20))
            .unwrap();
    }
    db
}

fn sorted_values(qr: &QueryResult) -> Vec<Vec<String>> {
    let mut rows: Vec<Vec<String>> = qr
        .rows
        .iter()
        .map(|r| r.values.iter().map(|v| v.to_string()).collect())
        .collect();
    rows.sort();
    rows
}

/// Both executors must agree on the multiset of result rows.
fn assert_same_rows(db: &Database, sql: &str) -> (ExecStats, ExecStats) {
    let (naive, ns) = db
        .query_traced(sql, &ExecOptions::naive())
        .unwrap_or_else(|e| panic!("naive failed on {sql}: {e:?}"));
    let (opt, os) = db
        .query_traced(sql, &ExecOptions::default())
        .unwrap_or_else(|e| panic!("optimized failed on {sql}: {e:?}"));
    assert_eq!(naive.columns, opt.columns, "columns differ: {sql}");
    assert_eq!(
        sorted_values(&naive),
        sorted_values(&opt),
        "rows differ: {sql}"
    );
    (ns, os)
}

#[test]
fn incremental_stats_track_dml() {
    let db = fixture();
    let t = db.catalog().table("Gene").unwrap();
    let len = t.stats().column(2);
    assert_eq!(len.min, Some(Value::Int(0)));
    assert_eq!(len.max, Some(Value::Int(199)));
    assert_eq!(len.null_count, 0);
    // fewer than the sketch's K distinct values → the estimate is exact
    assert_eq!(len.distinct(), 200);
    assert_eq!(t.stats().column(3).distinct(), 10);

    let mut db = db;
    db.execute("INSERT INTO Gene VALUES ('JW9999', 'g', 500, NULL)")
        .unwrap();
    let t = db.catalog().table("Gene").unwrap();
    assert_eq!(t.stats().column(2).max, Some(Value::Int(500)));
    assert_eq!(t.stats().column(3).null_count, 1);
    db.execute("UPDATE Gene SET Bucket = 3 WHERE Len = 500")
        .unwrap();
    assert_eq!(
        db.catalog()
            .table("Gene")
            .unwrap()
            .stats()
            .column(3)
            .null_count,
        0
    );
    // deletes shrink NULL counts but conservatively keep min/max wide
    db.execute("DELETE FROM Gene WHERE Len = 500").unwrap();
    let t = db.catalog().table("Gene").unwrap();
    assert_eq!(t.stats().column(2).max, Some(Value::Int(500)));
}

#[test]
fn analyze_statement_rebuilds_exact_stats() {
    let mut db = fixture();
    db.execute("DELETE FROM Gene WHERE Len >= 100").unwrap();
    // incrementally-maintained bounds are stale-wide after the delete…
    assert_eq!(
        db.catalog().table("Gene").unwrap().stats().column(2).max,
        Some(Value::Int(199))
    );
    // …until ANALYZE recomputes them from the live rows
    let r = db.execute("ANALYZE Gene").unwrap();
    assert!(r.message.unwrap().contains("100 row(s)"));
    let t = db.catalog().table("Gene").unwrap();
    assert_eq!(t.stats().column(2).max, Some(Value::Int(99)));
    assert_eq!(t.stats().column(2).distinct(), 100);
    assert!(db.execute("ANALYZE NoSuchTable").is_err());
}

#[test]
fn multi_index_choice_is_cost_based_and_deterministic() {
    let db = fixture();
    // Bucket = 3 matches 20 rows; Len ∈ [100, 102) matches 2 → len_idx
    // (the pre-stats planner preferred any equality, i.e. bucket_idx)
    let sql = "SELECT GID FROM Gene WHERE Bucket = 3 AND Len >= 100 AND Len < 102";
    let (_, st) = db.query_traced(sql, &ExecOptions::default()).unwrap();
    assert_eq!(st.chosen_indexes, vec!["len_idx".to_string()]);
    assert_eq!(st.index_probes, 1);
    // a table-wide Len range is worse than the Bucket equality
    let sql = "SELECT GID FROM Gene WHERE Bucket = 3 AND Len >= 0";
    let (_, st) = db.query_traced(sql, &ExecOptions::default()).unwrap();
    assert_eq!(st.chosen_indexes, vec!["bucket_idx".to_string()]);
    // decisions are a pure function of the (fixed) stats
    for _ in 0..3 {
        let (_, again) = db.query_traced(sql, &ExecOptions::default()).unwrap();
        assert_eq!(again.chosen_indexes, st.chosen_indexes);
    }
    // both plans return the same rows as the naive executor
    assert_same_rows(&db, sql);
    assert_same_rows(
        &db,
        "SELECT GID FROM Gene WHERE Bucket = 3 AND Len >= 100 AND Len < 102",
    );
}

#[test]
fn join_order_streams_the_big_source() {
    let db = fixture();
    let sql = "SELECT G.GID, T.TName FROM Tag T, Gene G WHERE T.Len = G.Len";
    let (naive, opt) = assert_same_rows(&db, sql);
    assert_eq!(naive.join_order, vec![0, 1], "naive keeps FROM order");
    assert_eq!(
        opt.join_order,
        vec![1, 0],
        "Gene (200 rows) streams; Tag (10 rows) is the hash build side"
    );
    // with Gene already first, the order is kept
    let sql = "SELECT G.GID, T.TName FROM Gene G, Tag T WHERE T.Len = G.Len";
    let (_, opt) = assert_same_rows(&db, sql);
    assert_eq!(opt.join_order, vec![0, 1]);
    // a selective pushed predicate flips the estimate: Gene shrinks to
    // one row, so Tag streams and Gene becomes the build side
    let sql = "SELECT G.GID, T.TName FROM Gene G, Tag T WHERE T.Len = G.Len AND G.Len = 40";
    let (_, opt) = assert_same_rows(&db, sql);
    assert_eq!(opt.join_order, vec![1, 0]);
}

#[test]
fn three_way_join_prefers_connected_sources() {
    let mut db = fixture();
    db.execute("CREATE TABLE TagMeta (TName TEXT, Grp TEXT)")
        .unwrap();
    for t in 0..10 {
        db.execute(&format!(
            "INSERT INTO TagMeta VALUES ('tag{t}', 'grp{}')",
            t % 2
        ))
        .unwrap();
    }
    // TagMeta only joins through Tag; after Gene streams, Tag (connected
    // to Gene) must come before TagMeta even though TagMeta is no bigger
    let sql = "SELECT G.GID, M.Grp FROM TagMeta M, Tag T, Gene G \
               WHERE T.Len = G.Len AND M.TName = T.TName";
    let (_, opt) = assert_same_rows(&db, sql);
    assert_eq!(
        opt.join_order,
        vec![2, 1, 0],
        "Gene, then Tag, then TagMeta"
    );
}

#[test]
fn limit_terminates_the_pipeline_early() {
    let db = fixture();
    // full-scan LIMIT: both paths emit rows in row order, so results are
    // identical row-for-row; only the work differs
    let sql = "SELECT GID, GName FROM Gene LIMIT 7";
    let (naive_r, naive) = db.query_traced(sql, &ExecOptions::naive()).unwrap();
    let (opt_r, opt) = db.query_traced(sql, &ExecOptions::default()).unwrap();
    assert_eq!(
        naive_r.rows.iter().map(|r| &r.values).collect::<Vec<_>>(),
        opt_r.rows.iter().map(|r| &r.values).collect::<Vec<_>>()
    );
    assert_eq!(naive.rows_fetched, 200);
    assert_eq!(naive.rows_limit_discarded, 193);
    assert_eq!(naive.limit_pushdowns, 0);
    assert_eq!(opt.rows_fetched, 7, "scan stopped after the limit");
    assert_eq!(opt.limit_pushdowns, 1);
    assert_eq!(opt.rows_limit_discarded, 0);

    // LIMIT over an index range probe stops the probe's re-checks too
    let sql = "SELECT GID, Len FROM Gene WHERE Len >= 50 LIMIT 5";
    let (_, opt) = db.query_traced(sql, &ExecOptions::default()).unwrap();
    assert_eq!(opt.rows_fetched, 5);
    assert_eq!(opt.limit_pushdowns, 1);
    assert_same_rows(&db, sql);

    // annotations still attach only to the tuples that survive the limit
    let sql = "SELECT GName FROM Gene ANNOTATION(Curation) LIMIT 3";
    let (_, opt) = db.query_traced(sql, &ExecOptions::default()).unwrap();
    assert_eq!(opt.anns_attached, 3);
    assert_same_rows(&db, sql);
}

#[test]
fn limit_is_not_pushed_past_blocking_operators() {
    let db = fixture();
    for sql in [
        // ORDER BY must see every row before truncating
        "SELECT GID, Len FROM Gene ORDER BY Len DESC LIMIT 4",
        // grouping and DISTINCT are blocking too
        "SELECT Bucket, COUNT(*) AS n FROM Gene GROUP BY Bucket ORDER BY Bucket LIMIT 3",
        "SELECT DISTINCT Bucket FROM Gene ORDER BY Bucket LIMIT 3",
    ] {
        let (naive_r, _) = db.query_traced(sql, &ExecOptions::naive()).unwrap();
        let (opt_r, opt) = db.query_traced(sql, &ExecOptions::default()).unwrap();
        assert_eq!(opt.limit_pushdowns, 0, "must not push: {sql}");
        assert_eq!(
            naive_r.rows.iter().map(|r| &r.values).collect::<Vec<_>>(),
            opt_r.rows.iter().map(|r| &r.values).collect::<Vec<_>>(),
            "{sql}"
        );
        assert!(opt.rows_limit_discarded > 0, "late truncation: {sql}");
    }
    // ORDER BY + LIMIT answers are correct (top-4 by Len descending)
    let (qr, _) = db
        .query_traced(
            "SELECT Len FROM Gene ORDER BY Len DESC LIMIT 4",
            &ExecOptions::default(),
        )
        .unwrap();
    let lens: Vec<String> = qr.rows.iter().map(|r| r.values[0].to_string()).collect();
    assert_eq!(lens, vec!["199", "198", "197", "196"]);
}

#[test]
fn index_only_scans_skip_the_heap() {
    let db = fixture();
    // projection and predicate both live on the indexed column
    let sql = "SELECT Len FROM Gene WHERE Len >= 5 AND Len < 8";
    let (qr, st) = db.query_traced(sql, &ExecOptions::default()).unwrap();
    assert_eq!(st.index_only_scans, 1);
    assert_eq!(st.index_probes, 1);
    assert_eq!(
        qr.rows
            .iter()
            .map(|r| r.values[0].to_string())
            .collect::<Vec<_>>(),
        vec!["5", "6", "7"]
    );
    assert_same_rows(&db, sql);
    // aggregates over the covered column stay index-only
    let sql = "SELECT COUNT(*) AS n FROM Gene WHERE Len >= 100";
    let (qr, st) = db.query_traced(sql, &ExecOptions::default()).unwrap();
    assert_eq!(st.index_only_scans, 1);
    assert_eq!(qr.rows[0].values[0], Value::Int(100));
    assert_same_rows(&db, sql);
    // projecting an uncovered column forces heap fetches
    let (_, st) = db
        .query_traced(
            "SELECT GID FROM Gene WHERE Len = 5",
            &ExecOptions::default(),
        )
        .unwrap();
    assert_eq!(st.index_only_scans, 0);
    assert_eq!(st.index_probes, 1);
}

#[test]
fn stats_survive_heavy_churn_and_plans_stay_valid() {
    let mut db = fixture();
    // churn: shift half the buckets, delete a band, re-insert
    db.execute("UPDATE Gene SET Bucket = Bucket + 10 WHERE Len < 100")
        .unwrap();
    db.execute("DELETE FROM Gene WHERE Len >= 150").unwrap();
    for i in 300..330 {
        db.execute(&format!(
            "INSERT INTO Gene VALUES ('JW{i:04}', 'g{i}', {i}, {})",
            i % 10
        ))
        .unwrap();
    }
    db.execute("ANALYZE Gene").unwrap();
    for sql in [
        "SELECT GID FROM Gene WHERE Bucket = 13 AND Len >= 10 AND Len < 12",
        "SELECT GID, Len FROM Gene WHERE Len >= 300 ORDER BY Len",
        "SELECT Bucket, COUNT(*) AS n FROM Gene GROUP BY Bucket ORDER BY Bucket",
        "SELECT GID FROM Gene WHERE Len >= 100 LIMIT 6",
    ] {
        assert_same_rows(&db, sql);
    }
}
