//! Corruption armor, end to end: the `CHECK` statement, the page
//! checksums it leans on, and salvage-mode opens.
//!
//! The acceptance criterion: flipping **any** single byte of a small
//! checkpointed database is either rejected at `Database::open` (with
//! `Corrupt`, never garbage) or — when the flip lands in space no live
//! data occupies — healed by the open-time re-checkpoint with zero data
//! loss.  In the rejected case, `Database::open_salvage` must still
//! come up, quarantining only what the flip actually hit.

use std::fs;
use std::path::{Path, PathBuf};

use bdbms_common::ErrorCode;
use bdbms_core::Database;

fn tmp(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("bdbms-corrupt-{}-{name}.bdbms", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            fs::copy(entry.path(), &to).unwrap();
        }
    }
}

/// Two tables with distinctive content; `GENEMARKER` makes the Gene
/// heap page findable in the raw image.
fn build(dir: &Path) {
    let mut db = Database::create(dir).unwrap();
    db.execute("CREATE TABLE Gene (GID TEXT, GSeq TEXT)")
        .unwrap();
    for i in 0..8 {
        db.execute(&format!(
            "INSERT INTO Gene VALUES ('JW{i:04}', 'GENEMARKER{}')",
            "ACGT".repeat(50)
        ))
        .unwrap();
    }
    db.execute("CREATE TABLE Protein (PID TEXT, PName TEXT)")
        .unwrap();
    db.execute("INSERT INTO Protein VALUES ('P1','thrA'), ('P2','thrB')")
        .unwrap();
    db.execute("CREATE INDEX pid_idx ON Protein (PID)").unwrap();
    db.close().unwrap();
}

fn rows_of(db: &mut Database, table: &str) -> usize {
    db.execute(&format!("SELECT * FROM {table}"))
        .unwrap()
        .rows
        .len()
}

#[test]
fn check_is_clean_on_a_healthy_database() {
    let dir = tmp("check-clean");
    build(&dir);
    let mut db = Database::open(&dir).unwrap();
    let rep = db.check().unwrap();
    assert!(rep.is_ok(), "unexpected problems: {:?}", rep.problems);
    assert!(rep.pages_checked > 0, "the durable image has pages");
    assert_eq!(rep.rows_checked, 10, "8 genes + 2 proteins");
    assert_eq!(rep.index_entries_checked, 2);
    assert!(
        rep.wal_segments >= 1,
        "an open database keeps a live segment"
    );
    // the SQL surface renders the same report
    let qr = db.execute("CHECK").unwrap();
    assert_eq!(qr.message.as_deref(), Some("CHECK ok"));
    assert_eq!(qr.columns, vec!["check", "detail"]);
    assert!(qr.rows.len() >= 4, "one row per verification leg");
    // table-filtered variant
    let qr = db.execute("CHECK TABLE Protein").unwrap();
    assert_eq!(qr.message.as_deref(), Some("CHECK ok"));
    assert!(db.execute("CHECK NoSuchTable").is_err());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn check_works_in_memory_too() {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE T (K INT)").unwrap();
    db.execute("INSERT INTO T VALUES (1), (2)").unwrap();
    let qr = db.execute("CHECK").unwrap();
    assert_eq!(qr.message.as_deref(), Some("CHECK ok"));
    let rep = db.check().unwrap();
    assert_eq!(rep.rows_checked, 2);
    assert_eq!(rep.pages_checked, 0, "no durable image to walk");
}

/// `CHECK` reads the durable image directly from disk, so corruption
/// that happens *behind a live handle* (whose buffer pool would happily
/// serve the cached page) is still detected.
#[test]
fn check_catches_a_flip_behind_the_buffer_pool() {
    let dir = tmp("check-live-flip");
    build(&dir);
    let db = Database::open(&dir).unwrap();
    assert!(db.check().unwrap().is_ok());
    // rot one byte of the image on disk while the handle stays open
    let data = dir.join("data.bdb");
    let mut bytes = fs::read(&data).unwrap();
    let pos = bytes.len() / 2;
    bytes[pos] ^= 0x01;
    fs::write(&data, &bytes).unwrap();
    let rep = db.check().unwrap();
    assert!(!rep.is_ok(), "the flip must be reported");
    assert!(
        rep.problems.iter().any(|p| p.contains("checksum")),
        "problems: {:?}",
        rep.problems
    );
    drop(db); // shutdown checkpoint rewrites the image — that's fine here
    let _ = fs::remove_dir_all(&dir);
}

/// The acceptance sweep: flip single bits across the whole checkpointed
/// image.  Every flip must be rejected with `Corrupt` at open or leave
/// a database that fingerprints clean (the flip hit space the
/// re-checkpoint rewrites anyway).  Whenever open refuses, salvage must
/// succeed and keep every table the flip did not touch.
#[test]
fn every_single_byte_flip_is_caught_or_harmless() {
    let dir = tmp("flip-sweep");
    build(&dir);
    let data = dir.join("data.bdb");
    let orig = fs::read(&data).unwrap();
    // Exhaustive would be len × (open+checkpoint); stride keeps the test
    // inside CI budgets while still visiting every page and region type
    // (997 is prime, so offsets cycle through all byte positions mod
    // every power-of-two structure size).
    let stride = if cfg!(debug_assertions) { 4099 } else { 997 };
    let mut rejected = 0u32;
    let mut healed = 0u32;
    for pos in (0..orig.len()).step_by(stride) {
        let work = tmp(&format!("flip-sweep-{pos}"));
        copy_dir(&dir, &work);
        let mut bytes = orig.clone();
        bytes[pos] ^= 0x01;
        fs::write(work.join("data.bdb"), &bytes).unwrap();
        match Database::open(&work) {
            Ok(mut db) => {
                healed += 1;
                assert_eq!(rows_of(&mut db, "Gene"), 8, "flip at {pos}");
                assert_eq!(rows_of(&mut db, "Protein"), 2, "flip at {pos}");
                let rep = db.check().unwrap();
                assert!(
                    rep.is_ok(),
                    "flip at {pos}: open healed the image but CHECK still \
                     complains: {:?}",
                    rep.problems
                );
            }
            Err(e) => {
                rejected += 1;
                assert_eq!(
                    e.code(),
                    ErrorCode::Corrupt,
                    "flip at {pos} must surface as Corrupt, got: {e}"
                );
                // salvage must come up and keep everything untouched
                let mut db = Database::open_salvage(&work).unwrap();
                let report = db.last_recovery().unwrap().clone();
                for t in ["Gene", "Protein"] {
                    let quarantined = report.quarantined_tables.iter().any(|q| q == t);
                    if report.image_lost || quarantined {
                        continue;
                    }
                    let want = if t == "Gene" { 8 } else { 2 };
                    assert_eq!(
                        rows_of(&mut db, t),
                        want,
                        "flip at {pos}: surviving table `{t}` lost rows"
                    );
                }
                assert!(
                    db.check().unwrap().is_ok(),
                    "salvage must leave a clean image"
                );
            }
        }
        let _ = fs::remove_dir_all(&work);
    }
    assert!(rejected > 0, "the sweep never hit live data?");
    assert!(rejected + healed > 0);
    let _ = fs::remove_dir_all(&dir);
}

/// A flip inside one table's heap page quarantines exactly that table;
/// the other opens with all rows.
#[test]
fn salvage_quarantines_only_the_damaged_table() {
    let dir = tmp("salvage-quarantine");
    build(&dir);
    let data = dir.join("data.bdb");
    let bytes = fs::read(&data).unwrap();
    let marker = b"GENEMARKER";
    let pos = bytes
        .windows(marker.len())
        .position(|w| w == marker)
        .expect("the Gene heap page is in the image");
    let mut bytes = bytes;
    bytes[pos] ^= 0x01;
    fs::write(&data, &bytes).unwrap();

    let err = Database::open(&dir).map(|_| ()).unwrap_err();
    assert_eq!(err.code(), ErrorCode::Corrupt);

    let mut db = Database::open_salvage(&dir).unwrap();
    let report = db.last_recovery().unwrap().clone();
    assert_eq!(report.quarantined_tables, vec!["Gene".to_string()]);
    assert!(!report.image_lost);
    assert!(db.execute("SELECT * FROM Gene").is_err(), "quarantined");
    assert_eq!(rows_of(&mut db, "Protein"), 2);
    assert!(db.check().unwrap().is_ok(), "salvaged image is clean");
    // the salvaged database is fully usable going forward
    db.execute("CREATE TABLE Gene (GID TEXT, GSeq TEXT)")
        .unwrap();
    db.execute("INSERT INTO Gene VALUES ('fresh','row')")
        .unwrap();
    db.close().unwrap();
    let mut db = Database::open(&dir).unwrap();
    assert_eq!(rows_of(&mut db, "Gene"), 1);
    let _ = fs::remove_dir_all(&dir);
}

/// Destroying the header page loses the whole image, but salvage still
/// opens (empty) instead of refusing, and the directory is reusable.
#[test]
fn salvage_survives_total_image_loss() {
    let dir = tmp("salvage-total-loss");
    build(&dir);
    let data = dir.join("data.bdb");
    let mut bytes = fs::read(&data).unwrap();
    bytes[0] ^= 0xFF; // first magic byte of the header page
    fs::write(&data, &bytes).unwrap();

    assert_eq!(
        Database::open(&dir).map(|_| ()).unwrap_err().code(),
        ErrorCode::Corrupt
    );

    let mut db = Database::open_salvage(&dir).unwrap();
    let report = db.last_recovery().unwrap().clone();
    assert!(report.image_lost);
    assert!(report.quarantined_tables.is_empty());
    assert!(db.execute("SELECT * FROM Gene").is_err(), "all tables lost");
    db.execute("CREATE TABLE Rebuilt (K INT)").unwrap();
    db.execute("INSERT INTO Rebuilt VALUES (7)").unwrap();
    db.close().unwrap();
    let mut db = Database::open(&dir).unwrap();
    assert_eq!(rows_of(&mut db, "Rebuilt"), 1);
    let _ = fs::remove_dir_all(&dir);
}
