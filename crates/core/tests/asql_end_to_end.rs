//! End-to-end A-SQL tests reproducing the paper's running examples:
//! the Figure 2/3 gene tables, §3's annotation-propagation query, the
//! Figure 6 archive/restore commands, and Figure 7's SELECT operators.

use bdbms_core::{Database, QueryResult};

/// Build the paper's Figure 2 scenario: DB1_Gene and DB2_Gene with
/// annotations A1–A3 and B1–B5.
fn figure2_db() -> Database {
    let mut db = Database::new_in_memory();
    for t in ["DB1_Gene", "DB2_Gene"] {
        db.execute(&format!(
            "CREATE TABLE {t} (GID TEXT, GName TEXT, GSequence TEXT)"
        ))
        .unwrap();
        db.execute(&format!("CREATE ANNOTATION TABLE GAnnotation ON {t}"))
            .unwrap();
    }
    // DB1_Gene rows (Figure 2, top-left)
    for (gid, name, seq) in [
        ("JW0080", "mraW", "ATGATGGAAAA"),
        ("JW0082", "ftsI", "ATGAAAGCAGC"),
        ("JW0055", "yabP", "ATGAAAGTATC"),
        ("JW0078", "fruR", "GTGAAACTGGA"),
    ] {
        db.execute(&format!(
            "INSERT INTO DB1_Gene VALUES ('{gid}', '{name}', '{seq}')"
        ))
        .unwrap();
    }
    // DB2_Gene rows (Figure 2, top-right)
    for (gid, name, seq) in [
        ("JW0080", "mraW", "ATGATGGAAAA"),
        ("JW0041", "fixB", "ATGAACACGTT"),
        ("JW0037", "caiB", "ATGGATCATCT"),
        ("JW0027", "ispH", "ATGCAGATCCT"),
        ("JW0055", "yabP", "ATGAAAGTATC"),
    ] {
        db.execute(&format!(
            "INSERT INTO DB2_Gene VALUES ('{gid}', '{name}', '{seq}')"
        ))
        .unwrap();
    }
    // A1: "These genes are published in …" over two tuples (rows 0,1) of DB1
    db.execute(
        "ADD ANNOTATION TO DB1_Gene.GAnnotation \
         VALUE 'A1: These genes are published in Nature' \
         ON (SELECT G.GID, G.GName, G.GSequence FROM DB1_Gene G \
             WHERE GID IN ('JW0080', 'JW0082'))",
    )
    .unwrap();
    // A2: "These genes were obtained from RegulonDB" over rows JW0055/JW0078
    db.execute(
        "ADD ANNOTATION TO DB1_Gene.GAnnotation \
         VALUE '<Annotation>A2: These genes were obtained from RegulonDB</Annotation>' \
         ON (SELECT G.GID, G.GName, G.GSequence FROM DB1_Gene G \
             WHERE GID IN ('JW0055', 'JW0078'))",
    )
    .unwrap();
    // A3: "Involved in methyltransferase activity" on one cell (mraW seq)
    db.execute(
        "ADD ANNOTATION TO DB1_Gene.GAnnotation \
         VALUE 'A3: Involved in methyltransferase activity' \
         ON (SELECT G.GSequence FROM DB1_Gene G WHERE GID = 'JW0080')",
    )
    .unwrap();
    // B1: "Curated by user admin" over three tuples of DB2 (GID+GName cols)
    db.execute(
        "ADD ANNOTATION TO DB2_Gene.GAnnotation \
         VALUE 'B1: Curated by user admin' \
         ON (SELECT G.GID, G.GName FROM DB2_Gene G \
             WHERE GID IN ('JW0080', 'JW0037', 'JW0041'))",
    )
    .unwrap();
    // B3: "obtained from GenoBase" over the entire GSequence column (§3.2)
    db.execute(
        "ADD ANNOTATION TO DB2_Gene.GAnnotation \
         VALUE '<Annotation>B3: obtained from GenoBase</Annotation>' \
         ON (SELECT G.GSequence FROM DB2_Gene G)",
    )
    .unwrap();
    // B4: "pseudogene" over an entire tuple
    db.execute(
        "ADD ANNOTATION TO DB2_Gene.GAnnotation \
         VALUE 'B4: pseudogene' \
         ON (SELECT G.* FROM DB2_Gene G WHERE GID = 'JW0037')",
    )
    .unwrap();
    // B5: "This gene has an unknown function" over the JW0080 tuple (§3.2)
    db.execute(
        "ADD ANNOTATION TO DB2_Gene.GAnnotation \
         VALUE '<Annotation>B5: This gene has an unknown function</Annotation>' \
         ON (SELECT G.* FROM DB2_Gene G WHERE GID = 'JW0080')",
    )
    .unwrap();
    db
}

fn ann_texts(qr: &QueryResult, row: usize, col: usize) -> Vec<String> {
    let mut v: Vec<String> = qr.rows[row].anns[col].iter().map(|a| a.text()).collect();
    v.sort();
    v
}

fn find_row(qr: &QueryResult, col: usize, value: &str) -> usize {
    qr.rows
        .iter()
        .position(|r| r.values[col].to_string() == value)
        .unwrap_or_else(|| panic!("row with {value} not found"))
}

#[test]
fn projection_passes_only_projected_columns_annotations() {
    // §3.4: "projecting column GID from Table DB2_Gene results in
    // reporting GID data along with annotations B1, B4, and B5 only"
    let mut db = figure2_db();
    let qr = db
        .execute("SELECT GID FROM DB2_Gene ANNOTATION(GAnnotation)")
        .unwrap();
    let row = find_row(&qr, 0, "JW0080");
    let anns = ann_texts(&qr, row, 0);
    assert_eq!(anns.len(), 2, "JW0080 GID carries B1 and B5: {anns:?}");
    assert!(anns[0].starts_with("B1") && anns[1].starts_with("B5"));
    // B3 (GSequence column) and B4 (other row) must not appear
    assert!(!anns.iter().any(|a| a.contains("GenoBase")));
    let row = find_row(&qr, 0, "JW0037");
    let anns = ann_texts(&qr, row, 0);
    assert!(anns.iter().any(|a| a.starts_with("B1")));
    assert!(anns.iter().any(|a| a.starts_with("B4")));
}

#[test]
fn selection_passes_all_annotations_of_selected_tuples() {
    // §3.4: "selecting the gene with GID = JW0080 from Table DB2_Gene
    // results in reporting the first tuple along with B1, B3, and B5"
    let mut db = figure2_db();
    let qr = db
        .execute("SELECT * FROM DB2_Gene ANNOTATION(GAnnotation) WHERE GID = 'JW0080'")
        .unwrap();
    assert_eq!(qr.rows.len(), 1);
    let all: Vec<String> = {
        let mut v: Vec<String> = qr.rows[0].all_anns().iter().map(|a| a.text()).collect();
        v.sort();
        v
    };
    assert_eq!(all.len(), 3, "{all:?}");
    assert!(all[0].starts_with("B1"));
    assert!(all[1].starts_with("B3"));
    assert!(all[2].starts_with("B5"));
}

#[test]
fn intersect_unions_annotations_from_both_tables() {
    // The paper's motivating example (§3 steps a–c): genes common to both
    // tables, with annotations from both — in ONE A-SQL statement.
    let mut db = figure2_db();
    let qr = db
        .execute(
            "SELECT GID, GName, GSequence FROM DB1_Gene ANNOTATION(GAnnotation) \
             INTERSECT \
             SELECT GID, GName, GSequence FROM DB2_Gene ANNOTATION(GAnnotation) \
             ORDER BY GID",
        )
        .unwrap();
    // common genes: JW0055 and JW0080
    assert_eq!(qr.rows.len(), 2);
    assert_eq!(qr.rows[0].values[0].to_string(), "JW0055");
    assert_eq!(qr.rows[1].values[0].to_string(), "JW0080");
    // JW0080: GID carries A1 (DB1) + B1, B5 (DB2)
    let anns = ann_texts(&qr, 1, 0);
    assert!(anns.iter().any(|a| a.starts_with("A1")), "{anns:?}");
    assert!(anns.iter().any(|a| a.starts_with("B1")));
    assert!(anns.iter().any(|a| a.starts_with("B5")));
    // GSequence of JW0080 carries A1, A3 (DB1) + B3, B5 (DB2)
    let anns = ann_texts(&qr, 1, 2);
    assert!(anns.iter().any(|a| a.starts_with("A3")), "{anns:?}");
    assert!(anns.iter().any(|a| a.contains("GenoBase")));
    // JW0055: A2 from DB1
    let anns = ann_texts(&qr, 0, 0);
    assert!(anns.iter().any(|a| a.contains("RegulonDB")), "{anns:?}");
}

#[test]
fn promote_copies_annotations_onto_projected_column() {
    // Figure 7 / §3.4: without PROMOTE, projecting GID from DB1_Gene
    // loses A3 (it lives on GSequence); PROMOTE(GSequence) keeps it.
    let mut db = figure2_db();
    let without = db
        .execute("SELECT GID FROM DB1_Gene ANNOTATION(GAnnotation) WHERE GID = 'JW0080'")
        .unwrap();
    assert!(!ann_texts(&without, 0, 0)
        .iter()
        .any(|a| a.starts_with("A3")));
    let with = db
        .execute(
            "SELECT GID PROMOTE (GSequence) FROM DB1_Gene ANNOTATION(GAnnotation) \
             WHERE GID = 'JW0080'",
        )
        .unwrap();
    assert!(ann_texts(&with, 0, 0).iter().any(|a| a.starts_with("A3")));
}

#[test]
fn awhere_filters_tuples_by_annotation() {
    let mut db = figure2_db();
    // only tuples carrying a RegulonDB annotation pass
    let qr = db
        .execute(
            "SELECT GID FROM DB1_Gene ANNOTATION(GAnnotation) \
             AWHERE CONTAINS 'RegulonDB' ORDER BY GID",
        )
        .unwrap();
    let gids: Vec<String> = qr.rows.iter().map(|r| r.values[0].to_string()).collect();
    assert_eq!(gids, vec!["JW0055", "JW0078"]);
}

#[test]
fn filter_keeps_tuples_drops_annotations() {
    let mut db = figure2_db();
    let qr = db
        .execute(
            "SELECT GID, GSequence FROM DB2_Gene ANNOTATION(GAnnotation) \
             FILTER CONTAINS 'GenoBase' ORDER BY GID",
        )
        .unwrap();
    // FILTER keeps user data intact: all 5 tuples
    assert_eq!(qr.rows.len(), 5);
    for (i, row) in qr.rows.iter().enumerate() {
        // GID column annotations (B1/B4/B5) all dropped
        assert!(row.anns[0].is_empty(), "row {i} GID anns should be empty");
        // GSequence retains only B3
        let anns = ann_texts(&qr, i, 1);
        assert_eq!(anns.len(), 1);
        assert!(anns[0].contains("GenoBase"));
    }
}

#[test]
fn annotation_predicates_path_from_before_after() {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE T (id INT, v TEXT)").unwrap();
    db.execute("CREATE ANNOTATION TABLE prov ON T").unwrap();
    db.execute("CREATE ANNOTATION TABLE comments ON T").unwrap();
    db.execute("INSERT INTO T VALUES (1, 'x'), (2, 'y')")
        .unwrap();
    db.execute(
        "ADD ANNOTATION TO T.prov \
         VALUE '<Annotation><source>RegulonDB</source></Annotation>' \
         ON (SELECT G.* FROM T G WHERE id = 1)",
    )
    .unwrap();
    db.execute(
        "ADD ANNOTATION TO T.comments VALUE 'check this' \
         ON (SELECT G.* FROM T G WHERE id = 2)",
    )
    .unwrap();
    // PATH predicate
    let qr = db
        .execute(
            "SELECT id FROM T ANNOTATION(prov, comments) \
             AWHERE PATH '/Annotation/source' = 'RegulonDB'",
        )
        .unwrap();
    assert_eq!(qr.rows.len(), 1);
    assert_eq!(qr.rows[0].values[0].to_string(), "1");
    // FROM predicate (category selection)
    let qr = db
        .execute("SELECT id FROM T ANNOTATION(prov, comments) AWHERE FROM comments")
        .unwrap();
    assert_eq!(qr.rows[0].values[0].to_string(), "2");
    // BEFORE/AFTER over creation timestamps
    let qr = db
        .execute("SELECT id FROM T ANNOTATION(prov, comments) AWHERE AFTER 1")
        .unwrap();
    assert_eq!(qr.rows.len(), 2);
    let qr = db
        .execute("SELECT id FROM T ANNOTATION(prov, comments) AWHERE BEFORE 1")
        .unwrap();
    assert!(qr.rows.is_empty());
}

#[test]
fn archive_hides_restore_brings_back() {
    // Figure 6(b)/(c) + §3.3's B5 example: archive the "unknown function"
    // annotation once the function becomes known.
    let mut db = figure2_db();
    let before = db
        .execute("SELECT * FROM DB2_Gene ANNOTATION(GAnnotation) WHERE GID = 'JW0080'")
        .unwrap();
    assert_eq!(before.rows[0].all_anns().len(), 3);
    db.execute(
        "ARCHIVE ANNOTATION FROM DB2_Gene.GAnnotation \
         ON (SELECT G.GName FROM DB2_Gene G WHERE GID = 'JW0080')",
    )
    .unwrap();
    // B1 and B5 touch GName of JW0080; B3 does not
    let after = db
        .execute("SELECT * FROM DB2_Gene ANNOTATION(GAnnotation) WHERE GID = 'JW0080'")
        .unwrap();
    let anns: Vec<String> = after.rows[0].all_anns().iter().map(|a| a.text()).collect();
    assert_eq!(anns.len(), 1, "{anns:?}");
    assert!(anns[0].contains("GenoBase"));
    db.execute(
        "RESTORE ANNOTATION FROM DB2_Gene.GAnnotation \
         ON (SELECT G.GName FROM DB2_Gene G WHERE GID = 'JW0080')",
    )
    .unwrap();
    let restored = db
        .execute("SELECT * FROM DB2_Gene ANNOTATION(GAnnotation) WHERE GID = 'JW0080'")
        .unwrap();
    assert_eq!(restored.rows[0].all_anns().len(), 3);
}

#[test]
fn archive_with_time_window() {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE T (id INT)").unwrap();
    db.execute("CREATE ANNOTATION TABLE a ON T").unwrap();
    db.execute("INSERT INTO T VALUES (1)").unwrap();
    db.execute("ADD ANNOTATION TO T.a VALUE 'early' ON (SELECT G.id FROM T G)")
        .unwrap();
    let cut = db.now();
    db.execute("ADD ANNOTATION TO T.a VALUE 'late' ON (SELECT G.id FROM T G)")
        .unwrap();
    db.execute(&format!(
        "ARCHIVE ANNOTATION FROM T.a BETWEEN 0 AND {cut} ON (SELECT G.id FROM T G)"
    ))
    .unwrap();
    let qr = db.execute("SELECT id FROM T ANNOTATION(a)").unwrap();
    let anns = ann_texts(&qr, 0, 0);
    assert_eq!(anns, vec!["late"]);
}

#[test]
fn group_by_unions_annotations_and_ahaving() {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE Hits (gene TEXT, score INT)")
        .unwrap();
    db.execute("CREATE ANNOTATION TABLE note ON Hits").unwrap();
    db.execute("INSERT INTO Hits VALUES ('g1', 10), ('g1', 20), ('g2', 5), ('g2', 7), ('g3', 1)")
        .unwrap();
    db.execute(
        "ADD ANNOTATION TO Hits.note VALUE 'suspect run' \
         ON (SELECT H.score FROM Hits H WHERE score = 20)",
    )
    .unwrap();
    let qr = db
        .execute(
            "SELECT gene, SUM(score) FROM Hits ANNOTATION(note) \
             GROUP BY gene ORDER BY gene",
        )
        .unwrap();
    assert_eq!(qr.rows.len(), 3);
    assert_eq!(qr.rows[0].values[1], bdbms_common::Value::Int(30));
    // the group output carries the union of member annotations
    assert_eq!(ann_texts(&qr, 0, 1), vec!["suspect run"]);
    assert!(qr.rows[1].anns[1].is_empty());
    // AHAVING: keep only groups containing an annotated member
    let qr = db
        .execute(
            "SELECT gene, COUNT(*) FROM Hits ANNOTATION(note) \
             GROUP BY gene AHAVING CONTAINS 'suspect'",
        )
        .unwrap();
    assert_eq!(qr.rows.len(), 1);
    assert_eq!(qr.rows[0].values[0].to_string(), "g1");
}

#[test]
fn distinct_unions_annotations() {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE T (v TEXT)").unwrap();
    db.execute("CREATE ANNOTATION TABLE a ON T").unwrap();
    db.execute("INSERT INTO T VALUES ('x'), ('x')").unwrap();
    // annotate each duplicate differently (by row via a marker column trick:
    // rows are distinguished by insertion order, use WHERE on rowless data —
    // annotate all, then one cell)
    db.execute("ADD ANNOTATION TO T.a VALUE 'both' ON (SELECT G.v FROM T G)")
        .unwrap();
    let qr = db
        .execute("SELECT DISTINCT v FROM T ANNOTATION(a)")
        .unwrap();
    assert_eq!(qr.rows.len(), 1);
    assert_eq!(ann_texts(&qr, 0, 0), vec!["both"]);
}

#[test]
fn aggregates_without_group_by() {
    let mut db = figure2_db();
    let qr = db
        .execute("SELECT COUNT(*), MIN(GID), MAX(GID) FROM DB2_Gene")
        .unwrap();
    assert_eq!(qr.rows[0].values[0], bdbms_common::Value::Int(5));
    assert_eq!(qr.rows[0].values[1].to_string(), "JW0027");
    assert_eq!(qr.rows[0].values[2].to_string(), "JW0080");
    // empty input
    db.execute("CREATE TABLE Empty (x INT)").unwrap();
    let qr = db.execute("SELECT COUNT(*) FROM Empty").unwrap();
    assert_eq!(qr.rows[0].values[0], bdbms_common::Value::Int(0));
}

#[test]
fn union_and_except() {
    let mut db = figure2_db();
    let union = db
        .execute("SELECT GID FROM DB1_Gene UNION SELECT GID FROM DB2_Gene")
        .unwrap();
    assert_eq!(union.rows.len(), 7); // 4 + 5 − 2 common
    let except = db
        .execute("SELECT GID FROM DB1_Gene EXCEPT SELECT GID FROM DB2_Gene ORDER BY GID")
        .unwrap();
    let gids: Vec<String> = except
        .rows
        .iter()
        .map(|r| r.values[0].to_string())
        .collect();
    assert_eq!(gids, vec!["JW0078", "JW0082"]);
}

#[test]
fn join_two_tables_with_where() {
    let mut db = figure2_db();
    let qr = db
        .execute(
            "SELECT G.GID, H.GName FROM DB1_Gene G, DB2_Gene H \
             WHERE G.GID = H.GID ORDER BY GID",
        )
        .unwrap();
    assert_eq!(qr.rows.len(), 2);
    assert_eq!(qr.rows[0].values[0].to_string(), "JW0055");
}

#[test]
fn insert_update_delete_roundtrip() {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE G (GID TEXT, len INT)").unwrap();
    db.execute("INSERT INTO G VALUES ('a', 1), ('b', 2), ('c', 3)")
        .unwrap();
    let n = db
        .execute("UPDATE G SET len = len * 10 WHERE GID <> 'a'")
        .unwrap();
    assert_eq!(n.affected, 2);
    let qr = db.execute("SELECT len FROM G ORDER BY len").unwrap();
    let lens: Vec<String> = qr.rows.iter().map(|r| r.values[0].to_string()).collect();
    assert_eq!(lens, vec!["1", "20", "30"]);
    let n = db.execute("DELETE FROM G WHERE len >= 20").unwrap();
    assert_eq!(n.affected, 2);
    assert_eq!(db.execute("SELECT * FROM G").unwrap().rows.len(), 1);
}

#[test]
fn add_annotation_on_insert_and_update() {
    // §3.2: "users can insert and annotate the new tuple instantly"
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE G (GID TEXT, seq TEXT)").unwrap();
    db.execute("CREATE ANNOTATION TABLE why ON G").unwrap();
    db.execute(
        "ADD ANNOTATION TO G.why VALUE 'imported in batch 7' \
         ON (INSERT INTO G VALUES ('JW1', 'ATG'))",
    )
    .unwrap();
    let qr = db.execute("SELECT * FROM G ANNOTATION(why)").unwrap();
    assert_eq!(ann_texts(&qr, 0, 0), vec!["imported in batch 7"]);
    assert_eq!(ann_texts(&qr, 0, 1), vec!["imported in batch 7"]);
    // update-and-annotate touches only the SET column
    db.execute(
        "ADD ANNOTATION TO G.why VALUE 'resequenced' \
         ON (UPDATE G SET seq = 'GTG' WHERE GID = 'JW1')",
    )
    .unwrap();
    let qr = db.execute("SELECT * FROM G ANNOTATION(why)").unwrap();
    assert_eq!(ann_texts(&qr, 0, 0), vec!["imported in batch 7"]);
    assert_eq!(
        ann_texts(&qr, 0, 1),
        vec!["imported in batch 7", "resequenced"]
    );
    assert_eq!(qr.rows[0].values[1].to_string(), "GTG");
}

#[test]
fn delete_with_annotation_goes_to_log() {
    // §3.2: deleted tuples stored in a log with the "why" annotation
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE G (GID TEXT)").unwrap();
    db.execute("CREATE ANNOTATION TABLE why ON G").unwrap();
    db.execute("INSERT INTO G VALUES ('dead'), ('alive')")
        .unwrap();
    db.execute(
        "ADD ANNOTATION TO G.why VALUE 'retracted by journal' \
         ON (DELETE FROM G WHERE GID = 'dead')",
    )
    .unwrap();
    assert_eq!(db.execute("SELECT * FROM G").unwrap().rows.len(), 1);
    let log = &db.catalog().table("G").unwrap().deleted_log;
    assert_eq!(log.len(), 1);
    assert_eq!(log[0].annotation.as_deref(), Some("retracted by journal"));
    assert_eq!(log[0].values[0].to_string(), "dead");
}

#[test]
fn multiple_annotation_tables_categorization() {
    // §3.1: one table may have provenance and comment annotation tables
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE G (GID TEXT)").unwrap();
    db.execute("CREATE ANNOTATION TABLE prov ON G").unwrap();
    db.execute("CREATE ANNOTATION TABLE comments ON G").unwrap();
    db.execute("INSERT INTO G VALUES ('g')").unwrap();
    db.execute("ADD ANNOTATION TO G.prov VALUE 'from RegulonDB' ON (SELECT X.GID FROM G X)")
        .unwrap();
    db.execute("ADD ANNOTATION TO G.comments VALUE 'looks off' ON (SELECT X.GID FROM G X)")
        .unwrap();
    // propagating only one category
    let qr = db.execute("SELECT GID FROM G ANNOTATION(prov)").unwrap();
    assert_eq!(ann_texts(&qr, 0, 0), vec!["from RegulonDB"]);
    let qr = db
        .execute("SELECT GID FROM G ANNOTATION(comments)")
        .unwrap();
    assert_eq!(ann_texts(&qr, 0, 0), vec!["looks off"]);
    let qr = db
        .execute("SELECT GID FROM G ANNOTATION(prov, comments)")
        .unwrap();
    assert_eq!(qr.rows[0].anns[0].len(), 2);
    // no ANNOTATION clause → no annotations
    let qr = db.execute("SELECT GID FROM G").unwrap();
    assert!(qr.rows[0].anns[0].is_empty());
}

#[test]
fn errors_are_reported() {
    let mut db = Database::new_in_memory();
    assert!(db.execute("SELECT * FROM missing").is_err());
    db.execute("CREATE TABLE T (x INT)").unwrap();
    assert!(db.execute("SELECT nope FROM T").is_err());
    assert!(db.execute("INSERT INTO T VALUES ('text')").is_err());
    assert!(db.execute("SELECT x FROM T ANNOTATION(ghost)").is_err());
    assert!(db.execute("CREATE TABLE T (y INT)").is_err());
    assert!(db
        .execute("ADD ANNOTATION TO T.ghost VALUE 'x' ON (SELECT G.x FROM T G)")
        .is_err());
}
