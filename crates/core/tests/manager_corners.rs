//! Corner cases across the four managers: multi-table annotation writes,
//! DDL interactions with live state, and approval/dependency interplay.

use bdbms_common::Value;
use bdbms_core::Database;

#[test]
fn add_annotation_to_multiple_annotation_tables_at_once() {
    // Figure 6(a): TO <annotation_table_names> is a list
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE T (id INT)").unwrap();
    db.execute("CREATE ANNOTATION TABLE a ON T").unwrap();
    db.execute("CREATE ANNOTATION TABLE b ON T").unwrap();
    db.execute("INSERT INTO T VALUES (1)").unwrap();
    db.execute("ADD ANNOTATION TO T.a, T.b VALUE 'both' ON (SELECT G.id FROM T G)")
        .unwrap();
    let qr = db.execute("SELECT id FROM T ANNOTATION(a, b)").unwrap();
    assert_eq!(qr.rows[0].anns[0].len(), 2, "one copy per category");
    let qr = db.execute("SELECT id FROM T ANNOTATION(a)").unwrap();
    assert_eq!(qr.rows[0].anns[0].len(), 1);
}

#[test]
fn drop_annotation_table_removes_propagation() {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE T (id INT)").unwrap();
    db.execute("CREATE ANNOTATION TABLE a ON T").unwrap();
    db.execute("INSERT INTO T VALUES (1)").unwrap();
    db.execute("ADD ANNOTATION TO T.a VALUE 'x' ON (SELECT G.id FROM T G)")
        .unwrap();
    db.execute("DROP ANNOTATION TABLE a ON T").unwrap();
    // the annotation table is gone: referencing it errors
    assert!(db.execute("SELECT id FROM T ANNOTATION(a)").is_err());
    assert!(db
        .execute("ADD ANNOTATION TO T.a VALUE 'y' ON (SELECT G.id FROM T G)")
        .is_err());
    // recreating it starts empty
    db.execute("CREATE ANNOTATION TABLE a ON T").unwrap();
    let qr = db.execute("SELECT id FROM T ANNOTATION(a)").unwrap();
    assert!(qr.rows[0].anns[0].is_empty());
}

#[test]
fn drop_dependency_rule_stops_cascade() {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE A (k TEXT, v TEXT)").unwrap();
    db.execute("CREATE TABLE B (k TEXT, d TEXT)").unwrap();
    db.execute("CREATE DEPENDENCY RULE r FROM A.v TO B.d VIA PROCEDURE 'lab' LINK A.k = B.k")
        .unwrap();
    db.execute("INSERT INTO A VALUES ('x', 'v1')").unwrap();
    db.execute("INSERT INTO B VALUES ('x', 'd1')").unwrap();
    db.execute("UPDATE A SET v = 'v2'").unwrap();
    assert_eq!(db.execute("SHOW OUTDATED").unwrap().rows.len(), 1);
    db.execute("VALIDATE B").unwrap();
    db.execute("DROP DEPENDENCY RULE r").unwrap();
    db.execute("UPDATE A SET v = 'v3'").unwrap();
    assert_eq!(
        db.execute("SHOW OUTDATED").unwrap().rows.len(),
        0,
        "no rule, no cascade"
    );
}

#[test]
fn disapproved_insert_with_dependents_marks_stale() {
    // disapproving an INSERT deletes the row; anything derived from it
    // must be invalidated (§6's closing interaction with §5)
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE Gene (GID TEXT, GSequence TEXT)")
        .unwrap();
    db.execute("CREATE TABLE Protein (GID TEXT, PFunction TEXT)")
        .unwrap();
    db.execute(
        "CREATE DEPENDENCY RULE r FROM Gene.GSequence TO Protein.PFunction \
         VIA PROCEDURE 'lab' LINK Gene.GID = Protein.GID",
    )
    .unwrap();
    db.execute("CREATE USER labadmin").unwrap();
    db.execute("CREATE USER alice").unwrap();
    db.execute("GRANT INSERT ON Gene TO alice").unwrap();
    db.execute("START CONTENT APPROVAL ON Gene APPROVED BY labadmin")
        .unwrap();
    // the protein exists first; alice's gene insert is pending
    db.execute("INSERT INTO Protein VALUES ('g1', 'kinase')")
        .unwrap();
    db.execute_as("INSERT INTO Gene VALUES ('g1', 'ATG')", "alice")
        .unwrap();
    let id = db.execute("SHOW PENDING OPERATIONS").unwrap().rows[0].values[0]
        .as_int()
        .unwrap();
    db.execute_as(&format!("DISAPPROVE OPERATION {id}"), "labadmin")
        .unwrap();
    assert!(db.execute("SELECT * FROM Gene").unwrap().rows.is_empty());
    // the protein that depended on the retracted gene is now suspect
    let outdated = db.execute("SHOW OUTDATED ON Protein").unwrap();
    assert_eq!(outdated.rows.len(), 1);
}

#[test]
fn deleted_rows_keep_annotation_log_and_row_numbers_not_reused() {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE T (k TEXT)").unwrap();
    db.execute("CREATE ANNOTATION TABLE why ON T").unwrap();
    db.execute("INSERT INTO T VALUES ('a'), ('b')").unwrap();
    db.execute("ADD ANNOTATION TO T.why VALUE 'dup of b' ON (DELETE FROM T WHERE k = 'a')")
        .unwrap();
    db.execute("INSERT INTO T VALUES ('c')").unwrap();
    let t = db.catalog().table("T").unwrap();
    assert_eq!(t.deleted_log.len(), 1);
    assert_eq!(t.deleted_log[0].row_no, 0);
    assert_eq!(t.deleted_log[0].annotation.as_deref(), Some("dup of b"));
    // 'c' got a fresh row number, not the freed 0
    assert_eq!(t.row_numbers(), vec![1, 2]);
}

#[test]
fn show_pending_table_filter_and_statuses() {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE A (v INT)").unwrap();
    db.execute("CREATE TABLE B (v INT)").unwrap();
    db.execute("INSERT INTO A VALUES (1)").unwrap();
    db.execute("INSERT INTO B VALUES (1)").unwrap();
    db.execute("CREATE USER boss").unwrap();
    db.execute("CREATE USER worker").unwrap();
    for t in ["A", "B"] {
        db.execute(&format!("GRANT UPDATE ON {t} TO worker"))
            .unwrap();
        db.execute(&format!("START CONTENT APPROVAL ON {t} APPROVED BY boss"))
            .unwrap();
    }
    db.execute_as("UPDATE A SET v = 2", "worker").unwrap();
    db.execute_as("UPDATE B SET v = 2", "worker").unwrap();
    assert_eq!(db.execute("SHOW PENDING OPERATIONS").unwrap().rows.len(), 2);
    assert_eq!(
        db.execute("SHOW PENDING OPERATIONS ON A")
            .unwrap()
            .rows
            .len(),
        1
    );
    // approving removes from pending, log retains the decision
    let id = db.execute("SHOW PENDING OPERATIONS ON A").unwrap().rows[0].values[0]
        .as_int()
        .unwrap();
    db.execute_as(&format!("APPROVE OPERATION {id}"), "boss")
        .unwrap();
    assert_eq!(db.execute("SHOW PENDING OPERATIONS").unwrap().rows.len(), 1);
    assert_eq!(db.approval().log().len(), 2);
}

#[test]
fn archive_between_respects_bounds_inclusively() {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE T (id INT)").unwrap();
    db.execute("CREATE ANNOTATION TABLE a ON T").unwrap();
    db.execute("INSERT INTO T VALUES (1)").unwrap();
    let mut stamps = Vec::new();
    for i in 0..3 {
        db.execute(&format!(
            "ADD ANNOTATION TO T.a VALUE 'n{i}' ON (SELECT G.id FROM T G)"
        ))
        .unwrap();
        stamps.push(db.now());
    }
    // archive exactly the middle annotation
    db.execute(&format!(
        "ARCHIVE ANNOTATION FROM T.a BETWEEN {} AND {} ON (SELECT G.id FROM T G)",
        stamps[1], stamps[1]
    ))
    .unwrap();
    let qr = db.execute("SELECT id FROM T ANNOTATION(a)").unwrap();
    let mut live: Vec<String> = qr.rows[0].anns[0].iter().map(|a| a.text()).collect();
    live.sort();
    assert_eq!(live, vec!["n0", "n2"]);
}

#[test]
fn annotation_target_must_match_annotation_table_owner() {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE T (id INT)").unwrap();
    db.execute("CREATE TABLE U (id INT)").unwrap();
    db.execute("CREATE ANNOTATION TABLE a ON T").unwrap();
    db.execute("INSERT INTO U VALUES (1)").unwrap();
    // annotation table on T, target cells from U: rejected
    let err = db
        .execute("ADD ANNOTATION TO T.a VALUE 'x' ON (SELECT G.id FROM U G)")
        .unwrap_err();
    assert_eq!(err.kind(), "invalid");
}

#[test]
fn complex_annotation_target_rejected() {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE T (id INT)").unwrap();
    db.execute("CREATE ANNOTATION TABLE a ON T").unwrap();
    for bad in [
        "ADD ANNOTATION TO T.a VALUE 'x' ON (SELECT G.id FROM T G GROUP BY id)",
        "ADD ANNOTATION TO T.a VALUE 'x' ON (SELECT COUNT(*) FROM T G)",
        "ADD ANNOTATION TO T.a VALUE 'x' ON (SELECT G.id FROM T G INTERSECT SELECT H.id FROM T H)",
    ] {
        assert!(db.execute(bad).is_err(), "{bad}");
    }
}

#[test]
fn executable_rule_without_registered_procedure_falls_back_to_marking() {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE A (v INT)").unwrap();
    db.execute("CREATE TABLE B (v INT, d INT)").unwrap();
    // declared EXECUTABLE but no body registered
    db.execute("CREATE DEPENDENCY RULE r FROM B.v TO B.d VIA PROCEDURE 'ghost' EXECUTABLE")
        .unwrap();
    db.execute("INSERT INTO B VALUES (1, 10)").unwrap();
    db.execute("UPDATE B SET v = 2").unwrap();
    let outdated = db.execute("SHOW OUTDATED").unwrap();
    assert_eq!(outdated.rows.len(), 1);
    // now register the body; the next update recomputes and clears
    db.register_procedure("ghost", |args| {
        Value::Int(args[0].as_int().unwrap_or(0) * 100)
    });
    db.execute("UPDATE B SET v = 3").unwrap();
    assert_eq!(db.execute("SHOW OUTDATED").unwrap().rows.len(), 0);
    let qr = db.execute("SELECT d FROM B").unwrap();
    assert_eq!(qr.rows[0].values[0], Value::Int(300));
}

#[test]
fn grant_on_missing_table_fails_but_user_creation_is_admin_only() {
    let mut db = Database::new_in_memory();
    assert!(db.execute("GRANT SELECT ON ghost TO nobody").is_err());
    db.execute("CREATE USER u1").unwrap();
    let err = db.execute_as("CREATE USER u2", "u1").unwrap_err();
    assert_eq!(err.kind(), "unauthorized");
    assert!(db.execute("CREATE USER u1").is_err(), "duplicate user");
}

#[test]
fn annotation_target_rejects_annotation_clauses() {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE T (id INT)").unwrap();
    db.execute("CREATE ANNOTATION TABLE a ON T").unwrap();
    db.execute("INSERT INTO T VALUES (1)").unwrap();
    // AWHERE inside an annotation target would be silently ignored if
    // accepted — it must be rejected instead
    let err = db
        .execute(
            "ADD ANNOTATION TO T.a VALUE 'x' \
             ON (SELECT G.id FROM T G AWHERE CONTAINS 'y')",
        )
        .unwrap_err();
    assert_eq!(err.kind(), "invalid");
}
