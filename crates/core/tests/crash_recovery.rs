//! Crash-recovery injection harness.
//!
//! The contract under test (ISSUE 5's acceptance criterion): a database
//! created via `Database::create(path)`, populated, and dropped without
//! a checkpoint recovers on `Database::open(path)` with **all committed
//! transactions visible and all uncommitted work gone**, byte-identical
//! to an oracle that executed exactly the committed prefix.
//!
//! Two injection axes:
//!
//! * **statement granularity** — the workload script is cut at every
//!   statement boundary, the process "dies" (`simulate_crash`: no
//!   checkpoint, no shutdown flush), and the reopened database is
//!   fingerprint-compared against an in-memory oracle that ran the same
//!   prefix (rolling back its open transaction, as a crash would);
//! * **byte granularity (mid-commit)** — the final commit's WAL frames
//!   are truncated at *every byte offset*, simulating a torn write in
//!   the middle of the commit sequence; recovery must come up clean at
//!   either the previous or the final commit point, never in between,
//!   never with a panic.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bdbms_core::{Database, DurabilityOptions};
use bdbms_storage::{FaultInjector, FaultKind};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bdbms-crash-{}-{name}.bdbms", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            fs::copy(entry.path(), &to).unwrap();
        }
    }
}

/// The workload: DDL, multi-row DML, an index, annotations in both
/// schemes, an archive, a deletion (feeding the deletion log), a
/// savepoint rollback inside a committed transaction, and a trailing
/// explicit transaction.  Statements run as admin.
const SCRIPT: &[&str] = &[
    "CREATE TABLE Gene (GID TEXT, GName TEXT, Len INT)",
    "INSERT INTO Gene VALUES ('JW0080','mraW',11), ('JW0082','ftsI',42)",
    "CREATE INDEX len_idx ON Gene (Len)",
    "CREATE ANNOTATION TABLE Curation ON Gene",
    "CREATE ANNOTATION TABLE Notes ON Gene SCHEME CELL",
    "ADD ANNOTATION TO Gene.Curation VALUE '<Annotation>checked</Annotation> ' \
     ON (SELECT G.GName FROM Gene G)",
    "INSERT INTO Gene VALUES ('JW0055','yabP',7)",
    "UPDATE Gene SET Len = 13 WHERE GID = 'JW0080'",
    "ADD ANNOTATION TO Gene.Notes VALUE 'cell note' \
     ON (SELECT G.GID FROM Gene G WHERE Len = 42)",
    "ARCHIVE ANNOTATION FROM Gene.Curation ON (SELECT G.GName FROM Gene G WHERE Len = 13)",
    "DELETE FROM Gene WHERE GID = 'JW0055'",
    "BEGIN",
    "INSERT INTO Gene VALUES ('JW0090','fruR',20)",
    "SAVEPOINT s",
    "INSERT INTO Gene VALUES ('JW0091','doomed',21)",
    "ROLLBACK TO s",
    "COMMIT",
    "BEGIN",
    "UPDATE Gene SET GName = 'renamed' WHERE Len = 42",
    "INSERT INTO Gene VALUES ('JW0099','tail',99)",
    "COMMIT",
];

/// Everything observable about every table, concatenated in name order.
fn database_fingerprint(db: &Database) -> String {
    fingerprint(db, false)
}

/// [`database_fingerprint`] with logical-clock values (annotation
/// `created`, deletion-log `time`) blanked.  A statement that fails
/// mid-flight still consumes clock ticks, so the surviving state of a
/// faulted run matches its oracle in everything *except* these
/// counters — the fault harness compares clocklessly.
fn clockless_fingerprint(db: &Database) -> String {
    fingerprint(db, true)
}

fn fingerprint(db: &Database, redact_clock: bool) -> String {
    let mut out = String::new();
    for t in db.catalog().tables() {
        let rows = t.scan().unwrap();
        let indexes: Vec<(String, usize, usize)> = t
            .indexes()
            .iter()
            .map(|i| (i.name.clone(), i.column, i.len()))
            .collect();
        #[allow(clippy::type_complexity)]
        let anns: Vec<(String, usize, Vec<(u64, bool, String, u64, String)>)> = t
            .ann_sets
            .iter()
            .map(|s| {
                (
                    s.name.clone(),
                    s.attachment_records(),
                    s.iter()
                        .map(|a| {
                            (
                                a.id.raw(),
                                a.archived,
                                a.raw.clone(),
                                if redact_clock { 0 } else { a.created },
                                a.creator.clone(),
                            )
                        })
                        .collect(),
                )
            })
            .collect();
        let outdated: Vec<(usize, usize)> = t.outdated.iter_set().collect();
        let deleted: Vec<String> = t
            .deleted_log
            .iter()
            .map(|d| {
                let time = if redact_clock { 0 } else { d.time };
                format!(
                    "{}:{:?}:{:?}@{}by{}",
                    d.row_no, d.values, d.annotation, time, d.user
                )
            })
            .collect();
        out.push_str(&format!(
            "table={} rows={rows:?} indexes={indexes:?} anns={anns:?} \
             outdated={outdated:?} deleted={deleted:?}\n",
            t.name
        ));
    }
    out
}

/// The oracle: an in-memory database that executed `statements` and then
/// "crashed" (its open transaction, if any, rolls back — uncommitted
/// work is gone).
fn oracle_fingerprint(statements: &[&str]) -> String {
    let mut db = Database::new_in_memory();
    for s in statements {
        db.execute(s).unwrap();
    }
    if db.in_transaction() {
        db.execute("ROLLBACK").unwrap();
    }
    database_fingerprint(&db)
}

#[test]
fn crash_after_every_statement_recovers_the_committed_prefix() {
    for cut in 0..=SCRIPT.len() {
        let dir = tmp(&format!("stmt-{cut}"));
        {
            let mut db = Database::create(&dir).unwrap();
            for s in &SCRIPT[..cut] {
                db.execute(s).unwrap();
            }
            db.simulate_crash();
        }
        let db = Database::open(&dir).unwrap();
        assert_eq!(
            database_fingerprint(&db),
            oracle_fingerprint(&SCRIPT[..cut]),
            "crash after statement {cut} (`{}`) diverged",
            if cut == 0 {
                "<create>"
            } else {
                SCRIPT[cut - 1]
            }
        );
        drop(db);
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn torn_write_at_every_byte_of_the_final_commit() {
    // Build the full workload once; the final explicit transaction (two
    // statements) is the torn-write victim.
    let master = tmp("torn-master");
    {
        let mut db = Database::create(&master).unwrap();
        for s in SCRIPT {
            db.execute(s).unwrap();
        }
        db.simulate_crash();
    }
    let full = oracle_fingerprint(SCRIPT);
    // oracle for "the final transaction never committed"
    let prev = oracle_fingerprint(&SCRIPT[..SCRIPT.len() - 4]);
    assert_ne!(full, prev, "the final transaction must be observable");

    // the WAL has exactly one segment here; find it and its length
    let wal_dir = master.join("wal");
    let seg: PathBuf = fs::read_dir(&wal_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|x| x == "log"))
        .expect("one WAL segment");
    let seg_len = fs::metadata(&seg).unwrap().len();
    // Cut the log at every byte offset across the final transaction's
    // frames (2 row records + the commit record fit well inside the last
    // 200 bytes).  A cut of 0 keeps the commit record → the final
    // transaction survives; every deeper cut tears some part of the
    // commit sequence → recovery must come up at exactly the previous
    // commit point: never a partial transaction, never a panic.
    let window = 200.min(seg_len - 16);
    let mut tails_reported = 0u32;
    for cut in 0..=window {
        let dir = tmp("torn-case");
        copy_dir(&master, &dir);
        let seg_copy = dir.join("wal").join(seg.file_name().unwrap());
        let f = fs::OpenOptions::new().write(true).open(&seg_copy).unwrap();
        f.set_len(seg_len - cut).unwrap();
        f.sync_all().unwrap();
        drop(f);
        let db = Database::open(&dir).unwrap();
        let got = database_fingerprint(&db);
        let rec = db.last_recovery().unwrap();
        if cut == 0 {
            assert_eq!(got, full, "an intact log keeps the final transaction");
        } else {
            assert_eq!(
                got, prev,
                "torn write at -{cut} bytes must recover to the previous \
                 commit point, nothing in between"
            );
            assert!(
                rec.discarded_ops > 0 || rec.torn_bytes > 0,
                "a torn mid-commit tail must be reported (cut={cut})"
            );
            if rec.discarded_ops > 0 {
                // the commit record was torn but whole op frames
                // survived: the classic "uncommitted tail discarded" case
                tails_reported += 1;
            }
        }
        drop(db);
        let _ = fs::remove_dir_all(&dir);
    }
    assert!(
        tails_reported > 0,
        "some cuts must leave intact op frames with no commit record"
    );
    let _ = fs::remove_dir_all(&master);
}

#[test]
fn in_flight_transaction_is_invisible_after_crash() {
    let dir = tmp("inflight");
    {
        let mut db = Database::create(&dir).unwrap();
        db.execute("CREATE TABLE T (K INT)").unwrap();
        db.execute("INSERT INTO T VALUES (1)").unwrap();
        db.execute("BEGIN").unwrap();
        db.execute("INSERT INTO T VALUES (2)").unwrap();
        db.execute("INSERT INTO T VALUES (3)").unwrap();
        // no COMMIT: the records never reached the WAL at all
        db.simulate_crash();
    }
    let mut db = Database::open(&dir).unwrap();
    let r = db.execute("SELECT K FROM T").unwrap();
    assert_eq!(r.rows.len(), 1, "uncommitted work must be gone");
    assert_eq!(db.last_recovery().unwrap().discarded_ops, 0);
    let _ = fs::remove_dir_all(&dir);
}

/// Regression: a crash in the window between the checkpoint's image
/// rename and its WAL truncation leaves the *new* image next to the
/// *old* (pre-checkpoint) log.  The image's WAL frontier makes recovery
/// skip those already-folded entries instead of double-applying them
/// (which used to fail the open with "row already exists" → Corrupt).
#[test]
fn crash_between_image_rename_and_wal_truncation() {
    let dir = tmp("rename-window");
    let pre_ckpt_wal = tmp("rename-window-walcopy");
    {
        let mut db = Database::create(&dir).unwrap();
        db.execute("CREATE TABLE T (K INT, V TEXT)").unwrap();
        db.execute("INSERT INTO T VALUES (1,'one'), (2,'two')")
            .unwrap();
        db.execute("UPDATE T SET V = 'uno' WHERE K = 1").unwrap();
        // preserve the pre-checkpoint log, then checkpoint (which folds
        // it into the image and truncates it)
        copy_dir(&dir.join("wal"), &pre_ckpt_wal);
        db.checkpoint().unwrap();
        db.simulate_crash();
    }
    // reconstruct the crash window: new image + old WAL
    fs::remove_dir_all(dir.join("wal")).unwrap();
    copy_dir(&pre_ckpt_wal, &dir.join("wal"));
    let mut db = Database::open(&dir).unwrap();
    let rec = db.last_recovery().unwrap();
    assert_eq!(
        rec.replayed_commits, 0,
        "entries below the image's WAL frontier are already applied"
    );
    let r = db.execute("SELECT K, V FROM T").unwrap();
    assert_eq!(r.rows.len(), 2, "no double-apply, no lost rows");
    assert_eq!(
        db.execute("SELECT V FROM T WHERE K = 1").unwrap().rows[0].values[0],
        bdbms_common::Value::Text("uno".into())
    );
    drop(db);
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&pre_ckpt_wal);
}

// ---------------------------------------------------------------------
// Deterministic fault injection (the third injection axis)
// ---------------------------------------------------------------------

/// Harness options: an aggressive auto-checkpoint interval so the
/// workload crosses several full checkpoint cycles, putting image
/// writes, fsyncs, and renames inside the injected window.
fn fault_opts(inj: Option<Arc<FaultInjector>>) -> DurabilityOptions {
    DurabilityOptions {
        checkpoint_every_commits: 4,
        fault_injector: inj,
        ..Default::default()
    }
}

/// Run the scripted workload against a fresh database at `dir`, arming
/// `kind` at operation index `n` — counted from *after* the create, to
/// line up with the counting pass.  Returns one bool per statement: did
/// it succeed?  Panics are the one outcome never allowed.
fn run_workload(dir: &Path, inj: &Arc<FaultInjector>, n: u64, kind: FaultKind) -> Vec<bool> {
    let mut db = Database::create_with(dir, fault_opts(Some(inj.clone()))).unwrap();
    inj.arm(n, kind);
    let ok: Vec<bool> = SCRIPT.iter().map(|s| db.execute(s).is_ok()).collect();
    // reopen must see only what the *disk* holds: disarm so recovery
    // itself runs on a healthy device
    inj.disarm();
    db.simulate_crash();
    ok
}

/// The oracle for a faulted run: execute the statements that succeeded;
/// a failed `COMMIT` rolled the real transaction back, so the oracle
/// rolls back too.  `also` optionally includes one failed statement (the
/// durable-but-reported-failed ambiguity window).
fn oracle_with_failures(ok: &[bool], also: Option<usize>) -> String {
    let mut db = Database::new_in_memory();
    for (i, s) in SCRIPT.iter().enumerate() {
        if ok[i] || also == Some(i) {
            db.execute(s).unwrap();
        } else if s.trim().eq_ignore_ascii_case("COMMIT") {
            db.execute("ROLLBACK").unwrap();
        }
    }
    if db.in_transaction() {
        db.execute("ROLLBACK").unwrap();
    }
    clockless_fingerprint(&db)
}

/// The exhaustive sweep: replay the whole workload once per
/// (operation index, fault kind) pair, injecting exactly that fault at
/// exactly that I/O, then crash + reopen on a healthy device and check
/// the recovered state against the oracle.
///
/// The durability contract per run:
///
/// * no panic, ever;
/// * error-shaped faults (transient, permanent, torn): the reopened
///   database fingerprints identically to the oracle over the
///   statements that reported success (a failed statement may at most
///   be durable anyway if it died *after* its commit barrier — both
///   candidates are accepted);
/// * bit flips are *silent*, so the write path cannot reject them — but
///   the reopen must then either recover a state from the same oracle
///   family or refuse with `Corrupt` (the page checksum / header CRC /
///   frame CRC catching the flip).  Serving garbage is the one failure
///   mode checked against.
#[test]
fn every_io_fault_index_recovers_or_fails_loudly() {
    // Pass 1: count the workload's I/O operations on a healthy device.
    let inj = FaultInjector::new();
    let count_dir = tmp("fault-count");
    {
        let mut db = Database::create_with(&count_dir, fault_opts(Some(inj.clone()))).unwrap();
        inj.arm(u64::MAX, FaultKind::TransientError); // reset counter, never fires
        for s in SCRIPT {
            db.execute(s).unwrap();
        }
        db.simulate_crash();
    }
    let total_ops = inj.op_count();
    let _ = fs::remove_dir_all(&count_dir);
    assert!(
        total_ops > 30,
        "the workload must exercise a healthy spread of I/O (saw {total_ops})"
    );

    // Pass 2: the sweep.  Exhaustive in release; debug builds stride so
    // the dev loop stays quick (CI runs the release leg).
    let stride = if cfg!(debug_assertions) { 5 } else { 1 };
    for n in (0..total_ops).step_by(stride) {
        let kinds = [
            FaultKind::TransientError,
            FaultKind::PermanentError,
            FaultKind::TornWrite {
                bytes: 1 + (n as usize * 997) % 4000,
            },
            FaultKind::BitFlip {
                byte: (n as usize * 131) % 8192,
            },
        ];
        for kind in kinds {
            let dir = tmp(&format!("fault-{n}-{kind:?}"));
            let inj = FaultInjector::new();
            let ok = run_workload(&dir, &inj, n, kind);
            let first_failed = ok.iter().position(|&b| !b);
            match Database::open(&dir) {
                Ok(db) => {
                    // A statement that fails mid-flight still burns logical
                    // clock ticks the oracle never sees, so the comparison
                    // ignores clock-derived fields.
                    let got = clockless_fingerprint(&db);
                    let clean = oracle_with_failures(&ok, None);
                    let matched = got == clean
                        || first_failed.is_some_and(|f| got == oracle_with_failures(&ok, Some(f)));
                    assert!(
                        matched,
                        "fault {kind:?} at op {n}: recovered state matches no \
                         oracle\nstatement outcomes: {ok:?}\ngot:\n{got}\n\
                         oracle(successes only):\n{clean}"
                    );
                }
                Err(e) => {
                    assert!(
                        matches!(kind, FaultKind::BitFlip { .. }),
                        "fault {kind:?} at op {n}: only silent corruption may \
                         survive to reopen, got error: {e}"
                    );
                    assert_eq!(
                        e.code(),
                        bdbms_common::ErrorCode::Corrupt,
                        "a flipped bit must be *detected*, not mangled: {e}"
                    );
                }
            }
            let _ = fs::remove_dir_all(&dir);
        }
    }
}

/// A transient commit-path failure is retried and the statement
/// *succeeds* — the retry loop in `wal_commit` absorbs one-shot faults.
#[test]
fn transient_commit_fault_is_absorbed_by_retry() {
    let dir = tmp("transient-retry");
    let inj = FaultInjector::new();
    let mut db = Database::create_with(&dir, fault_opts(Some(inj.clone()))).unwrap();
    db.execute("CREATE TABLE T (K INT)").unwrap();
    // the first insert allocates the heap page; the second then performs
    // exactly one I/O — its commit's WAL flush, the retryable barrier
    db.execute("INSERT INTO T VALUES (1)").unwrap();
    inj.arm(0, FaultKind::TransientError);
    db.execute("INSERT INTO T VALUES (2)")
        .expect("a transient I/O blip must not fail the statement");
    assert!(inj.fired(), "the fault must actually have fired");
    inj.disarm();
    db.simulate_crash();
    let mut db = Database::open(&dir).unwrap();
    let r = db.execute("SELECT K FROM T").unwrap();
    assert_eq!(r.rows.len(), 2, "the retried commit is durable");
    let _ = fs::remove_dir_all(&dir);
}

/// A permanent device failure exhausts the bounded retry, the statement
/// rolls back, and the error is an I/O error — not a panic, not silent.
#[test]
fn permanent_commit_fault_rolls_back_after_bounded_retry() {
    let dir = tmp("permanent-retry");
    let inj = FaultInjector::new();
    let mut db = Database::create_with(&dir, fault_opts(Some(inj.clone()))).unwrap();
    db.execute("CREATE TABLE T (K INT)").unwrap();
    inj.arm(0, FaultKind::PermanentError);
    let err = db.execute("INSERT INTO T VALUES (1)").unwrap_err();
    assert_eq!(err.code(), bdbms_common::ErrorCode::Io, "got: {err}");
    // rolled back in memory: the table is still empty
    let r = db.execute("SELECT K FROM T");
    assert!(r.is_err() || r.unwrap().rows.is_empty());
    inj.disarm();
    let r = db.execute("SELECT K FROM T").unwrap();
    assert_eq!(r.rows.len(), 0, "the failed insert must not resurface");
    db.simulate_crash();
    let db = Database::open(&dir).unwrap();
    assert_eq!(
        database_fingerprint(&db),
        oracle_fingerprint(&["CREATE TABLE T (K INT)"]),
        "after reopen the failed insert stays gone"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn double_crash_recovery_is_idempotent() {
    // crash, reopen, crash again immediately (before any new work), and
    // reopen again: recovery must be stable under repetition
    let dir = tmp("double");
    {
        let mut db = Database::create(&dir).unwrap();
        for s in &SCRIPT[..8] {
            db.execute(s).unwrap();
        }
        db.simulate_crash();
    }
    let fp1 = {
        let db = Database::open(&dir).unwrap();
        let fp = database_fingerprint(&db);
        db.simulate_crash();
        fp
    };
    let db = Database::open(&dir).unwrap();
    assert_eq!(database_fingerprint(&db), fp1);
    // the second open had nothing to replay: the first one checkpointed
    let rec = db.last_recovery().unwrap();
    assert_eq!(rec.replayed_commits, 0);
    assert_eq!(rec.torn_bytes, 0);
    let _ = fs::remove_dir_all(&dir);
}
