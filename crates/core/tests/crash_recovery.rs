//! Crash-recovery injection harness.
//!
//! The contract under test (ISSUE 5's acceptance criterion): a database
//! created via `Database::create(path)`, populated, and dropped without
//! a checkpoint recovers on `Database::open(path)` with **all committed
//! transactions visible and all uncommitted work gone**, byte-identical
//! to an oracle that executed exactly the committed prefix.
//!
//! Two injection axes:
//!
//! * **statement granularity** — the workload script is cut at every
//!   statement boundary, the process "dies" (`simulate_crash`: no
//!   checkpoint, no shutdown flush), and the reopened database is
//!   fingerprint-compared against an in-memory oracle that ran the same
//!   prefix (rolling back its open transaction, as a crash would);
//! * **byte granularity (mid-commit)** — the final commit's WAL frames
//!   are truncated at *every byte offset*, simulating a torn write in
//!   the middle of the commit sequence; recovery must come up clean at
//!   either the previous or the final commit point, never in between,
//!   never with a panic.

use std::fs;
use std::path::{Path, PathBuf};

use bdbms_core::Database;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bdbms-crash-{}-{name}.bdbms", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            fs::copy(entry.path(), &to).unwrap();
        }
    }
}

/// The workload: DDL, multi-row DML, an index, annotations in both
/// schemes, an archive, a deletion (feeding the deletion log), a
/// savepoint rollback inside a committed transaction, and a trailing
/// explicit transaction.  Statements run as admin.
const SCRIPT: &[&str] = &[
    "CREATE TABLE Gene (GID TEXT, GName TEXT, Len INT)",
    "INSERT INTO Gene VALUES ('JW0080','mraW',11), ('JW0082','ftsI',42)",
    "CREATE INDEX len_idx ON Gene (Len)",
    "CREATE ANNOTATION TABLE Curation ON Gene",
    "CREATE ANNOTATION TABLE Notes ON Gene SCHEME CELL",
    "ADD ANNOTATION TO Gene.Curation VALUE '<Annotation>checked</Annotation> ' \
     ON (SELECT G.GName FROM Gene G)",
    "INSERT INTO Gene VALUES ('JW0055','yabP',7)",
    "UPDATE Gene SET Len = 13 WHERE GID = 'JW0080'",
    "ADD ANNOTATION TO Gene.Notes VALUE 'cell note' \
     ON (SELECT G.GID FROM Gene G WHERE Len = 42)",
    "ARCHIVE ANNOTATION FROM Gene.Curation ON (SELECT G.GName FROM Gene G WHERE Len = 13)",
    "DELETE FROM Gene WHERE GID = 'JW0055'",
    "BEGIN",
    "INSERT INTO Gene VALUES ('JW0090','fruR',20)",
    "SAVEPOINT s",
    "INSERT INTO Gene VALUES ('JW0091','doomed',21)",
    "ROLLBACK TO s",
    "COMMIT",
    "BEGIN",
    "UPDATE Gene SET GName = 'renamed' WHERE Len = 42",
    "INSERT INTO Gene VALUES ('JW0099','tail',99)",
    "COMMIT",
];

/// Everything observable about every table, concatenated in name order.
fn database_fingerprint(db: &Database) -> String {
    let mut out = String::new();
    for t in db.catalog().tables() {
        let rows = t.scan().unwrap();
        let indexes: Vec<(String, usize, usize)> = t
            .indexes()
            .iter()
            .map(|i| (i.name.clone(), i.column, i.len()))
            .collect();
        #[allow(clippy::type_complexity)]
        let anns: Vec<(String, usize, Vec<(u64, bool, String, u64, String)>)> = t
            .ann_sets
            .iter()
            .map(|s| {
                (
                    s.name.clone(),
                    s.attachment_records(),
                    s.iter()
                        .map(|a| {
                            (
                                a.id.raw(),
                                a.archived,
                                a.raw.clone(),
                                a.created,
                                a.creator.clone(),
                            )
                        })
                        .collect(),
                )
            })
            .collect();
        let outdated: Vec<(usize, usize)> = t.outdated.iter_set().collect();
        let deleted: Vec<String> = t
            .deleted_log
            .iter()
            .map(|d| {
                format!(
                    "{}:{:?}:{:?}@{}by{}",
                    d.row_no, d.values, d.annotation, d.time, d.user
                )
            })
            .collect();
        out.push_str(&format!(
            "table={} rows={rows:?} indexes={indexes:?} anns={anns:?} \
             outdated={outdated:?} deleted={deleted:?}\n",
            t.name
        ));
    }
    out
}

/// The oracle: an in-memory database that executed `statements` and then
/// "crashed" (its open transaction, if any, rolls back — uncommitted
/// work is gone).
fn oracle_fingerprint(statements: &[&str]) -> String {
    let mut db = Database::new_in_memory();
    for s in statements {
        db.execute(s).unwrap();
    }
    if db.in_transaction() {
        db.execute("ROLLBACK").unwrap();
    }
    database_fingerprint(&db)
}

#[test]
fn crash_after_every_statement_recovers_the_committed_prefix() {
    for cut in 0..=SCRIPT.len() {
        let dir = tmp(&format!("stmt-{cut}"));
        {
            let mut db = Database::create(&dir).unwrap();
            for s in &SCRIPT[..cut] {
                db.execute(s).unwrap();
            }
            db.simulate_crash();
        }
        let db = Database::open(&dir).unwrap();
        assert_eq!(
            database_fingerprint(&db),
            oracle_fingerprint(&SCRIPT[..cut]),
            "crash after statement {cut} (`{}`) diverged",
            if cut == 0 {
                "<create>"
            } else {
                SCRIPT[cut - 1]
            }
        );
        drop(db);
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn torn_write_at_every_byte_of_the_final_commit() {
    // Build the full workload once; the final explicit transaction (two
    // statements) is the torn-write victim.
    let master = tmp("torn-master");
    {
        let mut db = Database::create(&master).unwrap();
        for s in SCRIPT {
            db.execute(s).unwrap();
        }
        db.simulate_crash();
    }
    let full = oracle_fingerprint(SCRIPT);
    // oracle for "the final transaction never committed"
    let prev = oracle_fingerprint(&SCRIPT[..SCRIPT.len() - 4]);
    assert_ne!(full, prev, "the final transaction must be observable");

    // the WAL has exactly one segment here; find it and its length
    let wal_dir = master.join("wal");
    let seg: PathBuf = fs::read_dir(&wal_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|x| x == "log"))
        .expect("one WAL segment");
    let seg_len = fs::metadata(&seg).unwrap().len();
    // Cut the log at every byte offset across the final transaction's
    // frames (2 row records + the commit record fit well inside the last
    // 200 bytes).  A cut of 0 keeps the commit record → the final
    // transaction survives; every deeper cut tears some part of the
    // commit sequence → recovery must come up at exactly the previous
    // commit point: never a partial transaction, never a panic.
    let window = 200.min(seg_len - 16);
    let mut tails_reported = 0u32;
    for cut in 0..=window {
        let dir = tmp("torn-case");
        copy_dir(&master, &dir);
        let seg_copy = dir.join("wal").join(seg.file_name().unwrap());
        let f = fs::OpenOptions::new().write(true).open(&seg_copy).unwrap();
        f.set_len(seg_len - cut).unwrap();
        f.sync_all().unwrap();
        drop(f);
        let db = Database::open(&dir).unwrap();
        let got = database_fingerprint(&db);
        let rec = db.last_recovery().unwrap();
        if cut == 0 {
            assert_eq!(got, full, "an intact log keeps the final transaction");
        } else {
            assert_eq!(
                got, prev,
                "torn write at -{cut} bytes must recover to the previous \
                 commit point, nothing in between"
            );
            assert!(
                rec.discarded_ops > 0 || rec.torn_bytes > 0,
                "a torn mid-commit tail must be reported (cut={cut})"
            );
            if rec.discarded_ops > 0 {
                // the commit record was torn but whole op frames
                // survived: the classic "uncommitted tail discarded" case
                tails_reported += 1;
            }
        }
        drop(db);
        let _ = fs::remove_dir_all(&dir);
    }
    assert!(
        tails_reported > 0,
        "some cuts must leave intact op frames with no commit record"
    );
    let _ = fs::remove_dir_all(&master);
}

#[test]
fn in_flight_transaction_is_invisible_after_crash() {
    let dir = tmp("inflight");
    {
        let mut db = Database::create(&dir).unwrap();
        db.execute("CREATE TABLE T (K INT)").unwrap();
        db.execute("INSERT INTO T VALUES (1)").unwrap();
        db.execute("BEGIN").unwrap();
        db.execute("INSERT INTO T VALUES (2)").unwrap();
        db.execute("INSERT INTO T VALUES (3)").unwrap();
        // no COMMIT: the records never reached the WAL at all
        db.simulate_crash();
    }
    let mut db = Database::open(&dir).unwrap();
    let r = db.execute("SELECT K FROM T").unwrap();
    assert_eq!(r.rows.len(), 1, "uncommitted work must be gone");
    assert_eq!(db.last_recovery().unwrap().discarded_ops, 0);
    let _ = fs::remove_dir_all(&dir);
}

/// Regression: a crash in the window between the checkpoint's image
/// rename and its WAL truncation leaves the *new* image next to the
/// *old* (pre-checkpoint) log.  The image's WAL frontier makes recovery
/// skip those already-folded entries instead of double-applying them
/// (which used to fail the open with "row already exists" → Corrupt).
#[test]
fn crash_between_image_rename_and_wal_truncation() {
    let dir = tmp("rename-window");
    let pre_ckpt_wal = tmp("rename-window-walcopy");
    {
        let mut db = Database::create(&dir).unwrap();
        db.execute("CREATE TABLE T (K INT, V TEXT)").unwrap();
        db.execute("INSERT INTO T VALUES (1,'one'), (2,'two')")
            .unwrap();
        db.execute("UPDATE T SET V = 'uno' WHERE K = 1").unwrap();
        // preserve the pre-checkpoint log, then checkpoint (which folds
        // it into the image and truncates it)
        copy_dir(&dir.join("wal"), &pre_ckpt_wal);
        db.checkpoint().unwrap();
        db.simulate_crash();
    }
    // reconstruct the crash window: new image + old WAL
    fs::remove_dir_all(dir.join("wal")).unwrap();
    copy_dir(&pre_ckpt_wal, &dir.join("wal"));
    let mut db = Database::open(&dir).unwrap();
    let rec = db.last_recovery().unwrap();
    assert_eq!(
        rec.replayed_commits, 0,
        "entries below the image's WAL frontier are already applied"
    );
    let r = db.execute("SELECT K, V FROM T").unwrap();
    assert_eq!(r.rows.len(), 2, "no double-apply, no lost rows");
    assert_eq!(
        db.execute("SELECT V FROM T WHERE K = 1").unwrap().rows[0].values[0],
        bdbms_common::Value::Text("uno".into())
    );
    drop(db);
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&pre_ckpt_wal);
}

#[test]
fn double_crash_recovery_is_idempotent() {
    // crash, reopen, crash again immediately (before any new work), and
    // reopen again: recovery must be stable under repetition
    let dir = tmp("double");
    {
        let mut db = Database::create(&dir).unwrap();
        for s in &SCRIPT[..8] {
            db.execute(s).unwrap();
        }
        db.simulate_crash();
    }
    let fp1 = {
        let db = Database::open(&dir).unwrap();
        let fp = database_fingerprint(&db);
        db.simulate_crash();
        fp
    };
    let db = Database::open(&dir).unwrap();
    assert_eq!(database_fingerprint(&db), fp1);
    // the second open had nothing to replay: the first one checkpointed
    let rec = db.last_recovery().unwrap();
    assert_eq!(rec.replayed_commits, 0);
    assert_eq!(rec.torn_bytes, 0);
    let _ = fs::remove_dir_all(&dir);
}
