//! Local dependency tracking: Procedural Dependencies (§5).
//!
//! The paper extends functional dependencies to *procedural dependencies*:
//! `src columns —(procedure)→ dst column`, where the procedure is
//! annotated *executable* (the DBMS can re-run it) or not (a lab
//! experiment), and *invertible* or not.  This module manages the rule
//! set and implements the reasoning the paper calls for:
//!
//! * **conflict detection** — a column may be derived by at most one rule;
//! * **cycle detection** — the rule graph must stay a DAG;
//! * **closure of an attribute** — every column transitively affected by a
//!   change to the given column;
//! * **closure of a procedure** — every column transitively affected by a
//!   change to the given procedure (e.g. upgrading BLAST-2.2.15);
//! * **derived rules** — chains of rules composed end-to-end (the paper's
//!   Rule 4: gene sequence → protein function via prediction tool + lab
//!   experiment, non-executable because one link is non-executable).
//!
//! The *instance-level* cascade (recomputing executable targets, marking
//! non-executable ones outdated in the Figure 10 bitmaps) is driven by the
//! `Database`, which owns the tables; the rule reasoning lives here.

use std::collections::{HashMap, HashSet, VecDeque};
use std::rc::Rc;

use bdbms_common::ids::RuleId;
use bdbms_common::{BdbmsError, Result, Value};

/// A column reference `(table, column)`, lowercased for identity.
pub type ColRef = (String, String);

fn colref(table: &str, col: &str) -> ColRef {
    (table.to_ascii_lowercase(), col.to_ascii_lowercase())
}

/// One procedural dependency rule.
#[derive(Debug, Clone)]
pub struct DependencyRule {
    /// Rule id.
    pub id: RuleId,
    /// Rule name (unique).
    pub name: String,
    /// Source table (all source columns live here).
    pub src_table: String,
    /// Source column names.
    pub src_cols: Vec<String>,
    /// Target table.
    pub dst_table: String,
    /// Target column.
    pub dst_col: String,
    /// Procedure name (e.g. `BLAST-2.2.15`, `P`, `lab-experiment`).
    pub procedure: String,
    /// Can the DBMS execute the procedure (§5)?
    pub executable: bool,
    /// Is the procedure invertible (§5)?
    pub invertible: bool,
    /// Row linkage: `(src link column, dst link column)`; `None` links
    /// rows of the same table by identity.
    pub link: Option<(String, String)>,
}

impl DependencyRule {
    /// Source column references.
    pub fn srcs(&self) -> Vec<ColRef> {
        self.src_cols
            .iter()
            .map(|c| colref(&self.src_table, c))
            .collect()
    }

    /// Target column reference.
    pub fn dst(&self) -> ColRef {
        colref(&self.dst_table, &self.dst_col)
    }
}

/// A rule derived by chaining base rules (the paper's Rule 4).
#[derive(Debug, Clone)]
pub struct DerivedRule {
    /// Ultimate source columns (the chain head's sources).
    pub src: Vec<ColRef>,
    /// Ultimate target column.
    pub dst: ColRef,
    /// Procedure chain, head first.
    pub chain: Vec<String>,
    /// Executable iff *every* link is executable (§5: "the chain is
    /// non-executable because at least one of the procedures [...] is
    /// non-executable").
    pub executable: bool,
    /// Invertible iff every link is invertible.
    pub invertible: bool,
}

/// A registered executable procedure body.
pub type ProcFn = Rc<dyn Fn(&[Value]) -> Value>;

/// The dependency manager.
#[derive(Default)]
pub struct DependencyManager {
    rules: Vec<DependencyRule>,
    procedures: HashMap<String, ProcFn>,
    next_id: u64,
}

impl DependencyManager {
    /// Empty manager.
    pub fn new() -> Self {
        DependencyManager::default()
    }

    /// Register the body of an executable procedure.
    pub fn register_procedure(&mut self, name: &str, f: impl Fn(&[Value]) -> Value + 'static) {
        self.procedures.insert(name.to_string(), Rc::new(f));
    }

    /// The registered body for a procedure, if any.
    pub fn procedure(&self, name: &str) -> Option<ProcFn> {
        self.procedures.get(name).cloned()
    }

    /// The id the next rule would be assigned (recorded by transaction
    /// snapshots so a rolled-back `CREATE DEPENDENCY RULE` also rewinds
    /// the allocator).
    pub(crate) fn next_rule_id(&self) -> u64 {
        self.next_id
    }

    /// Rewind the rule-id allocator (transaction rollback).
    pub(crate) fn set_next_rule_id(&mut self, next_id: u64) {
        self.next_id = next_id;
    }

    /// Position of a rule in the evaluation order, if present.
    pub(crate) fn rule_position(&self, name: &str) -> Option<usize> {
        self.rules
            .iter()
            .position(|r| r.name.eq_ignore_ascii_case(name))
    }

    /// Reinsert a dropped rule at its old position (transaction rollback
    /// undoing `DROP DEPENDENCY RULE`; order matters for cascades).
    pub(crate) fn insert_rule_at(&mut self, pos: usize, rule: DependencyRule) {
        self.rules.insert(pos.min(self.rules.len()), rule);
    }

    /// Rebuild the rule set from a checkpoint snapshot (validation was
    /// done when the rules were first created).  Registered procedure
    /// bodies are *not* persisted — re-register them after opening.
    pub(crate) fn restore(&mut self, rules: Vec<DependencyRule>, next_id: u64) {
        self.rules = rules;
        self.next_id = next_id;
    }

    /// Re-append a rule with its original id (WAL replay).
    pub(crate) fn replay_rule(&mut self, rule: DependencyRule) {
        self.next_id = self.next_id.max(rule.id.raw() + 1);
        self.rules.push(rule);
    }

    /// All rules.
    pub fn rules(&self) -> &[DependencyRule] {
        &self.rules
    }

    /// Rules whose source columns include `(table, col)`.
    pub fn rules_from(&self, table: &str, col: &str) -> Vec<&DependencyRule> {
        let probe = colref(table, col);
        self.rules
            .iter()
            .filter(|r| r.srcs().contains(&probe))
            .collect()
    }

    /// The rule by name.
    pub fn rule_by_name(&self, name: &str) -> Option<&DependencyRule> {
        self.rules
            .iter()
            .find(|r| r.name.eq_ignore_ascii_case(name))
    }

    /// Add a rule, enforcing uniqueness, single-derivation (conflicts),
    /// and acyclicity (§5: "detect conflicts and cycles among dependency
    /// rules").
    pub fn add_rule(&mut self, mut rule: DependencyRule) -> Result<RuleId> {
        if self.rule_by_name(&rule.name).is_some() {
            return Err(BdbmsError::already_exists(format!(
                "dependency rule `{}`",
                rule.name
            )));
        }
        // conflict: a column derived by two different rules
        if self.rules.iter().any(|r| r.dst() == rule.dst()) {
            return Err(BdbmsError::dependency(format!(
                "conflict: column {}.{} is already derived by another rule",
                rule.dst_table, rule.dst_col
            )));
        }
        // self-dependency
        if rule.srcs().contains(&rule.dst()) {
            return Err(BdbmsError::dependency(format!(
                "rule `{}` makes {}.{} depend on itself",
                rule.name, rule.dst_table, rule.dst_col
            )));
        }
        // cycle: dst must not already (transitively) feed any src
        let downstream = self.closure_of_attribute(&rule.dst_table, &rule.dst_col);
        for src in rule.srcs() {
            if downstream.contains(&src) {
                return Err(BdbmsError::dependency(format!(
                    "cycle: {}.{} transitively depends on {}.{}",
                    src.0, src.1, rule.dst_table, rule.dst_col
                )));
            }
        }
        let id = RuleId(self.next_id);
        self.next_id += 1;
        rule.id = id;
        self.rules.push(rule);
        Ok(id)
    }

    /// Remove a rule by name.
    pub fn drop_rule(&mut self, name: &str) -> Result<DependencyRule> {
        let pos = self
            .rules
            .iter()
            .position(|r| r.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| BdbmsError::not_found(format!("dependency rule `{name}`")))?;
        Ok(self.rules.remove(pos))
    }

    /// Closure of an attribute: all columns transitively derived from
    /// `(table, col)` (BFS over the rule graph).
    pub fn closure_of_attribute(&self, table: &str, col: &str) -> Vec<ColRef> {
        let start = colref(table, col);
        let mut seen: HashSet<ColRef> = HashSet::new();
        let mut queue: VecDeque<ColRef> = VecDeque::new();
        queue.push_back(start);
        let mut out = Vec::new();
        while let Some(cur) = queue.pop_front() {
            for r in &self.rules {
                if r.srcs().contains(&cur) {
                    let dst = r.dst();
                    if seen.insert(dst.clone()) {
                        out.push(dst.clone());
                        queue.push_back(dst);
                    }
                }
            }
        }
        out
    }

    /// Closure of a procedure: all columns transitively affected when the
    /// procedure changes (e.g. a new BLAST version) — the direct targets
    /// of its rules plus everything downstream.
    pub fn closure_of_procedure(&self, procedure: &str) -> Vec<ColRef> {
        let mut seen: HashSet<ColRef> = HashSet::new();
        let mut out = Vec::new();
        for r in &self.rules {
            if r.procedure.eq_ignore_ascii_case(procedure) {
                let dst = r.dst();
                if seen.insert(dst.clone()) {
                    out.push(dst.clone());
                }
                for c in self.closure_of_attribute(&r.dst_table, &r.dst_col) {
                    if seen.insert(c.clone()) {
                        out.push(c);
                    }
                }
            }
        }
        out
    }

    /// All derived rules: every simple chain of ≥ 2 base rules where each
    /// rule's target is a source of the next (the paper's Rule 4).
    pub fn derived_rules(&self) -> Vec<DerivedRule> {
        let mut out = Vec::new();
        // DFS from every rule; the rule graph is a DAG so paths are finite.
        for (i, first) in self.rules.iter().enumerate() {
            let mut stack = vec![(i, vec![i])];
            while let Some((last_idx, path)) = stack.pop() {
                let last = &self.rules[last_idx];
                for (j, next) in self.rules.iter().enumerate() {
                    if next.srcs().contains(&last.dst()) {
                        let mut p = path.clone();
                        p.push(j);
                        out.push(DerivedRule {
                            src: first.srcs(),
                            dst: next.dst(),
                            chain: p.iter().map(|&k| self.rules[k].procedure.clone()).collect(),
                            executable: p.iter().all(|&k| self.rules[k].executable),
                            invertible: p.iter().all(|&k| self.rules[k].invertible),
                        });
                        stack.push((j, p));
                    }
                }
            }
        }
        out
    }
}

/// Build the paper's Figure 9 rule set (used by tests, examples, and E09).
pub fn figure9_rules() -> Vec<DependencyRule> {
    let blank = |name: &str,
                 src_table: &str,
                 src_cols: &[&str],
                 dst_table: &str,
                 dst_col: &str,
                 procedure: &str,
                 executable: bool,
                 link: Option<(&str, &str)>| {
        DependencyRule {
            id: RuleId(0),
            name: name.to_string(),
            src_table: src_table.to_string(),
            src_cols: src_cols.iter().map(|s| s.to_string()).collect(),
            dst_table: dst_table.to_string(),
            dst_col: dst_col.to_string(),
            procedure: procedure.to_string(),
            executable,
            invertible: false,
            link: link.map(|(a, b)| (a.to_string(), b.to_string())),
        }
    };
    vec![
        // Rule 1: Gene.GSequence →(P, executable)→ Protein.PSequence
        blank(
            "r1",
            "Gene",
            &["GSequence"],
            "Protein",
            "PSequence",
            "P",
            true,
            Some(("GID", "GID")),
        ),
        // Rule 2: Protein.PSequence →(lab, non-executable)→ Protein.PFunction
        blank(
            "r2",
            "Protein",
            &["PSequence"],
            "Protein",
            "PFunction",
            "lab-experiment",
            false,
            None,
        ),
        // Rule 3: GeneMatching.{Gene1,Gene2} →(BLAST-2.2.15)→ Evalue
        blank(
            "r3",
            "GeneMatching",
            &["Gene1", "Gene2"],
            "GeneMatching",
            "Evalue",
            "BLAST-2.2.15",
            true,
            None,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> DependencyManager {
        let mut m = DependencyManager::new();
        for r in figure9_rules() {
            m.add_rule(r).unwrap();
        }
        m
    }

    #[test]
    fn closure_of_attribute_paper_example() {
        let m = mgr();
        // Changing Gene.GSequence affects PSequence then PFunction.
        let c = m.closure_of_attribute("Gene", "GSequence");
        assert_eq!(
            c,
            vec![
                ("protein".to_string(), "psequence".to_string()),
                ("protein".to_string(), "pfunction".to_string()),
            ]
        );
        // Changing Evalue affects nothing.
        assert!(m.closure_of_attribute("GeneMatching", "Evalue").is_empty());
    }

    #[test]
    fn closure_of_procedure_blast() {
        let m = mgr();
        let c = m.closure_of_procedure("BLAST-2.2.15");
        assert_eq!(c, vec![("genematching".to_string(), "evalue".to_string())]);
        // the prediction tool's closure includes the downstream lab result
        let c = m.closure_of_procedure("P");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn derived_rule4_from_paper() {
        let m = mgr();
        let derived = m.derived_rules();
        // Rule 4: Gene.GSequence → Protein.PFunction via (P, lab), non-executable
        assert_eq!(derived.len(), 1);
        let d = &derived[0];
        assert_eq!(d.src, vec![("gene".to_string(), "gsequence".to_string())]);
        assert_eq!(d.dst, ("protein".to_string(), "pfunction".to_string()));
        assert_eq!(d.chain, vec!["P".to_string(), "lab-experiment".to_string()]);
        assert!(
            !d.executable,
            "chain with a lab experiment is non-executable"
        );
        assert!(!d.invertible);
    }

    #[test]
    fn conflict_detected() {
        let mut m = mgr();
        let mut dup = figure9_rules()[0].clone();
        dup.name = "r1b".to_string();
        dup.procedure = "OtherTool".to_string();
        let err = m.add_rule(dup).unwrap_err();
        assert_eq!(err.kind(), "dependency");
        assert!(err.message().contains("conflict"));
    }

    #[test]
    fn cycle_detected() {
        let mut m = mgr();
        // PFunction → Gene.GSequence would close the loop
        let cyc = DependencyRule {
            id: RuleId(0),
            name: "bad".to_string(),
            src_table: "Protein".to_string(),
            src_cols: vec!["PFunction".to_string()],
            dst_table: "Gene".to_string(),
            dst_col: "GSequence".to_string(),
            procedure: "X".to_string(),
            executable: false,
            invertible: false,
            link: None,
        };
        let err = m.add_rule(cyc).unwrap_err();
        assert!(err.message().contains("cycle"));
    }

    #[test]
    fn self_dependency_rejected() {
        let mut m = DependencyManager::new();
        let bad = DependencyRule {
            id: RuleId(0),
            name: "selfloop".to_string(),
            src_table: "T".to_string(),
            src_cols: vec!["a".to_string()],
            dst_table: "T".to_string(),
            dst_col: "A".to_string(),
            procedure: "X".to_string(),
            executable: false,
            invertible: false,
            link: None,
        };
        assert!(m.add_rule(bad).is_err());
    }

    #[test]
    fn drop_rule_and_duplicate_names() {
        let mut m = mgr();
        assert!(m.drop_rule("r2").is_ok());
        assert!(m.drop_rule("r2").is_err());
        assert!(m.closure_of_attribute("Gene", "GSequence").len() == 1);
        let mut again = figure9_rules()[1].clone();
        again.name = "R1".to_string(); // name clash, case-insensitive
        assert!(m.add_rule(again).is_err());
    }

    #[test]
    fn procedures_registry() {
        let mut m = DependencyManager::new();
        m.register_procedure("P", |args| Value::Text(format!("translated:{}", args[0])));
        let f = m.procedure("P").unwrap();
        assert_eq!(
            f(&[Value::Text("ATG".into())]),
            Value::Text("translated:ATG".into())
        );
        assert!(m.procedure("missing").is_none());
    }

    #[test]
    fn rules_from_multi_source() {
        let m = mgr();
        assert_eq!(m.rules_from("GeneMatching", "Gene1").len(), 1);
        assert_eq!(m.rules_from("GeneMatching", "Gene2").len(), 1);
        assert_eq!(m.rules_from("GeneMatching", "Evalue").len(), 0);
    }
}
