//! Query results: annotated tuples.
//!
//! The defining trait of A-SQL results is that every output *cell* carries
//! its propagated annotations (§3.4).  [`AnnRow`] therefore pairs each
//! value vector with a per-column list of annotation snapshots.

use std::fmt;
use std::rc::Rc;

use bdbms_common::Value;

use crate::xml::XmlNode;

/// Snapshot of an annotation as it travels through a query pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnOut {
    /// User table the annotation's cell lives in.
    pub source_table: String,
    /// Name of the annotation table (category) it came from.
    pub ann_table: String,
    /// Annotation id within that table.
    pub id: u64,
    /// Original body text.
    pub raw: String,
    /// Parsed body.
    pub body: XmlNode,
    /// Creation timestamp.
    pub created: u64,
}

impl AnnOut {
    /// Flattened body text (for CONTAINS predicates and display).
    pub fn text(&self) -> String {
        self.body.full_text()
    }

    /// Identity of the underlying annotation record: a record is the same
    /// only if it comes from the same user table, the same annotation
    /// table, and has the same id there.
    pub fn identity(&self) -> (&str, &str, u64) {
        (&self.source_table, &self.ann_table, self.id)
    }
}

/// Shared annotation reference (annotations dedupe heavily across cells —
/// the paper's A2 covers twelve cells).
pub type AnnRef = Rc<AnnOut>;

/// One output tuple: values plus per-column annotation lists.
#[derive(Debug, Clone, Default)]
pub struct AnnRow {
    /// Column values.
    pub values: Vec<Value>,
    /// `anns[i]` = annotations attached to column `i`.
    pub anns: Vec<Vec<AnnRef>>,
}

impl AnnRow {
    /// A row with no annotations.
    pub fn plain(values: Vec<Value>) -> AnnRow {
        let n = values.len();
        AnnRow {
            values,
            anns: vec![Vec::new(); n],
        }
    }

    /// Every annotation on the tuple (all columns, deduped by identity).
    pub fn all_anns(&self) -> Vec<AnnRef> {
        let mut out: Vec<AnnRef> = Vec::new();
        for col in &self.anns {
            for a in col {
                if !out.iter().any(|x| x.identity() == a.identity()) {
                    out.push(a.clone());
                }
            }
        }
        out
    }

    /// Merge another row's annotations into this one column-wise
    /// (the paper's annotation-union `+` operator used by duplicate
    /// elimination, GROUP BY, and the set operations).
    pub fn union_anns_from(&mut self, other: &AnnRow) {
        for (mine, theirs) in self.anns.iter_mut().zip(&other.anns) {
            for a in theirs {
                if !mine.iter().any(|x| x.identity() == a.identity()) {
                    mine.push(a.clone());
                }
            }
        }
    }
}

/// The result of executing a statement.
#[derive(Debug, Clone, Default)]
pub struct QueryResult {
    /// Output column names (empty for DML/DDL).
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<AnnRow>,
    /// Rows affected by DML.
    pub affected: usize,
    /// Informational message (DDL confirmations etc.).
    pub message: Option<String>,
    /// Execution statistics for the statement, when the executing
    /// surface collects them (SELECTs run through [`crate::Database`]
    /// one-shots and [`crate::Session`] cursors).  `None` for DML/DDL
    /// and for results deserialized from the wire protocol.
    pub stats: Option<crate::executor::ExecStats>,
}

impl QueryResult {
    /// An empty result carrying a message.
    pub fn message(msg: impl Into<String>) -> QueryResult {
        QueryResult {
            message: Some(msg.into()),
            ..Default::default()
        }
    }

    /// A DML result.
    pub fn affected(n: usize) -> QueryResult {
        QueryResult {
            affected: n,
            ..Default::default()
        }
    }

    /// Values of one column, by name.  Lookup follows SQL identifier
    /// semantics (case-insensitive, like the catalog and the schema);
    /// when two output columns differ only by case, an exact-case match
    /// wins over the first case-insensitive one.
    pub fn column_values(&self, name: &str) -> Option<Vec<&Value>> {
        let idx = self.columns.iter().position(|c| c == name).or_else(|| {
            self.columns
                .iter()
                .position(|c| c.eq_ignore_ascii_case(name))
        })?;
        Some(self.rows.iter().map(|r| &r.values[idx]).collect())
    }

    /// Render as an aligned text table with annotations shown inline as
    /// `value {ann1; ann2}` — how the examples print query answers.
    pub fn to_table(&self) -> String {
        if self.columns.is_empty() {
            return match (&self.message, self.affected) {
                (Some(m), _) => m.clone(),
                (None, n) => format!("{n} row(s) affected"),
            };
        }
        let render_cell = |row: &AnnRow, i: usize| -> String {
            let mut s = truncate(&row.values[i].to_string(), 40);
            if !row.anns[i].is_empty() {
                let anns: Vec<String> = row.anns[i]
                    .iter()
                    .map(|a| truncate(&a.text(), 30))
                    .collect();
                s.push_str(&format!(" {{{}}}", anns.join("; ")));
            }
            s
        };
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(self.rows.len());
        for row in &self.rows {
            let mut line = Vec::with_capacity(widths.len());
            for (i, w) in widths.iter_mut().enumerate() {
                let s = render_cell(row, i);
                *w = (*w).max(s.len());
                line.push(s);
            }
            cells.push(line);
        }
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        out.push('\n');
        for (i, _) in self.columns.iter().enumerate() {
            out.push_str(&"-".repeat(widths[i]));
            out.push_str("  ");
        }
        out.push('\n');
        for line in cells {
            for (i, s) in line.iter().enumerate() {
                out.push_str(&format!("{:<w$}  ", s, w = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let cut: String = s.chars().take(max.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

impl fmt::Display for QueryResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ann(table: &str, id: u64, text: &str) -> AnnRef {
        Rc::new(AnnOut {
            source_table: "T".to_string(),
            ann_table: table.to_string(),
            id,
            raw: text.to_string(),
            body: XmlNode::leaf("Annotation", text),
            created: 1,
        })
    }

    #[test]
    fn union_anns_dedupes() {
        let mut a = AnnRow::plain(vec![Value::Int(1), Value::Int(2)]);
        a.anns[0].push(ann("c", 1, "A1"));
        let mut b = AnnRow::plain(vec![Value::Int(1), Value::Int(2)]);
        b.anns[0].push(ann("c", 1, "A1"));
        b.anns[1].push(ann("c", 2, "A2"));
        a.union_anns_from(&b);
        assert_eq!(a.anns[0].len(), 1);
        assert_eq!(a.anns[1].len(), 1);
    }

    #[test]
    fn all_anns_across_columns() {
        let mut r = AnnRow::plain(vec![Value::Int(1), Value::Int(2)]);
        r.anns[0].push(ann("c", 1, "A1"));
        r.anns[1].push(ann("c", 1, "A1"));
        r.anns[1].push(ann("p", 1, "B1"));
        assert_eq!(r.all_anns().len(), 2);
    }

    #[test]
    fn table_rendering_shows_annotations() {
        let mut r = AnnRow::plain(vec![Value::Text("JW0080".into())]);
        r.anns[0].push(ann("GAnnotation", 0, "obtained from GenoBase"));
        let qr = QueryResult {
            columns: vec!["GID".into()],
            rows: vec![r],
            affected: 0,
            message: None,
            stats: None,
        };
        let t = qr.to_table();
        assert!(t.contains("JW0080"));
        assert!(t.contains("obtained from GenoBase"));
    }

    #[test]
    fn message_results() {
        assert_eq!(QueryResult::message("ok").to_table(), "ok");
        assert_eq!(QueryResult::affected(3).to_table(), "3 row(s) affected");
    }

    #[test]
    fn column_values_lookup() {
        let qr = QueryResult {
            columns: vec!["a".into(), "b".into()],
            rows: vec![AnnRow::plain(vec![Value::Int(1), Value::Int(2)])],
            affected: 0,
            message: None,
            stats: None,
        };
        assert_eq!(qr.column_values("B").unwrap(), vec![&Value::Int(2)]);
        assert_eq!(qr.column_values("b").unwrap(), vec![&Value::Int(2)]);
        assert!(qr.column_values("z").is_none());
    }

    #[test]
    fn column_values_prefers_exact_case_on_collision() {
        // `SELECT Gid AS gid, GID AS GID …`-style outputs can collide
        // case-insensitively; an exact-case request must pick its column
        let qr = QueryResult {
            columns: vec!["gid".into(), "GID".into()],
            rows: vec![AnnRow::plain(vec![Value::Int(1), Value::Int(2)])],
            affected: 0,
            message: None,
            stats: None,
        };
        assert_eq!(qr.column_values("GID").unwrap(), vec![&Value::Int(2)]);
        assert_eq!(qr.column_values("gid").unwrap(), vec![&Value::Int(1)]);
        // no exact match: first case-insensitive hit wins
        assert_eq!(qr.column_values("Gid").unwrap(), vec![&Value::Int(1)]);
    }
}
