//! The catalog: tables, their heaps, annotation sets, and outdated bitmaps.

use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;
use std::sync::Arc;

use bdbms_common::bitmap::CellBitmap;
use bdbms_common::{BdbmsError, DataType, Result, Schema, Value};
use bdbms_index::BPlusTree;
use bdbms_seq::{SbcTree, StringBTree};
use bdbms_storage::{BufferPool, HeapFile, Rid};

use crate::annotation::AnnotationSet;
use crate::ast::SeqIndexKind;
use crate::durability::{disabled_redo_sink, RedoSink, WalRecord};
use crate::stats::TableStats;

/// A secondary B+-tree index over one column, kept in sync by every
/// [`Table`] write path (plain DML, approval inverses, dependency
/// cascades — they all funnel through `insert_with_row_no` / `update` /
/// `delete`).
///
/// NULL values are not indexed: no SQL comparison is ever true against
/// NULL, so equality/range probes — the only lookups the executor issues —
/// can never need them.
pub struct TableIndex {
    /// Index name (unique per table, case-insensitive).
    pub name: String,
    /// Indexed column position.
    pub column: usize,
    tree: BPlusTree<Value, u64>,
}

impl TableIndex {
    fn new(name: impl Into<String>, column: usize) -> TableIndex {
        TableIndex {
            name: name.into(),
            column,
            tree: BPlusTree::new(),
        }
    }

    fn add(&mut self, value: &Value, row_no: u64) {
        if !value.is_null() {
            self.tree.insert(value.clone(), row_no);
        }
    }

    fn remove(&mut self, value: &Value, row_no: u64) {
        if !value.is_null() {
            self.tree.delete(value, &row_no);
        }
    }

    /// Row numbers whose indexed value falls within the bounds, sorted
    /// ascending (scan order), deduplicated.
    ///
    /// The tree orders [`Value`]s by their *total* order, which coarsens
    /// SQL comparison on a few numeric edge cases (e.g. `i64` beyond
    /// 2^53 collapsing under the float interleave), so callers must
    /// re-check the originating predicate on the returned rows — the
    /// index is a candidate pruner, not an oracle.
    pub fn probe(&self, lo: Bound<&Value>, hi: Bound<&Value>) -> Vec<u64> {
        self.probe_entries(lo, hi)
            .into_iter()
            .map(|(row_no, _)| row_no)
            .collect()
    }

    /// Like [`probe`](Self::probe), but also returns each row's indexed
    /// key value, enabling *index-only* scans: when a query touches no
    /// column but the indexed one, the executor reconstructs the visible
    /// part of the tuple from the key and skips the heap fetch entirely.
    /// Same order contract as `probe` (ascending row number).
    pub fn probe_entries(&self, lo: Bound<&Value>, hi: Bound<&Value>) -> Vec<(u64, Value)> {
        let mut rows: Vec<(u64, Value)> = self
            .tree
            .scan_bounds(lo, hi)
            .into_iter()
            .map(|(k, r)| (r, k))
            .collect();
        rows.sort_unstable_by_key(|&(row_no, _)| row_no);
        rows.dedup_by(|a, b| a.0 == b.0);
        rows
    }

    /// Every `(key, row_no)` entry in tree order.  `CHECK` walks this to
    /// verify key ordering and index↔heap agreement; it is not a query
    /// path (use [`probe`](Self::probe) there).
    pub fn entries(&self) -> Vec<(Value, u64)> {
        self.tree.iter_all()
    }

    /// Number of indexed (non-NULL) entries.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True when no entries are indexed.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Replace the tree wholesale from key-sorted entries (bulk load's
    /// deferred index build).  Ascending insertion keeps every split on
    /// the rightmost path, so this beats the shuffled per-row inserts a
    /// 50k-record `COPY` would otherwise issue.
    fn rebuild_sorted(&mut self, entries: Vec<(Value, u64)>) {
        debug_assert!(entries.windows(2).all(|w| w[0].0 <= w[1].0), "sorted");
        let mut tree = BPlusTree::new();
        for (value, row_no) in entries {
            if !value.is_null() {
                tree.insert(value, row_no);
            }
        }
        self.tree = tree;
    }
}

/// The physical structure behind a sequence index: the paper's SBC-tree
/// (RLE-compressed suffixes, queried without decompression) or the plain
/// String B-tree baseline it is benchmarked against.
enum SeqBackend {
    Sbc(SbcTree),
    Suffix(StringBTree),
}

impl SeqBackend {
    fn new(kind: SeqIndexKind) -> SeqBackend {
        match kind {
            SeqIndexKind::Sbc => SeqBackend::Sbc(SbcTree::new()),
            SeqIndexKind::Suffix => SeqBackend::Suffix(StringBTree::new()),
        }
    }

    fn insert_text(&mut self, text: &[u8]) -> u32 {
        match self {
            SeqBackend::Sbc(t) => t.insert_sequence(text),
            SeqBackend::Suffix(t) => t.insert_text(text),
        }
    }

    /// Text ids containing `pattern` as a substring, deduplicated.
    fn matching_texts(&self, pattern: &[u8]) -> Vec<u32> {
        let mut ids: Vec<u32> = match self {
            SeqBackend::Sbc(t) => t
                .substring_search(pattern)
                .into_iter()
                .map(|occ| occ.text)
                .collect(),
            SeqBackend::Suffix(t) => t
                .substring_search(pattern)
                .into_iter()
                .map(|(text, _)| text)
                .collect(),
        };
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

/// A sequence index (`CREATE SEQUENCE INDEX … USING SBC|SUFFIX`) over one
/// TEXT column, answering `CONTAINS SEQ` probes from the suffix structure
/// instead of a full scan.
///
/// Neither backend supports deletion, so updates and deletes *tombstone*:
/// the row↔text maps drop their entries (making the stale text
/// unreachable from any probe result) while the suffix structure keeps
/// the dead text's nodes.  Like [`TableIndex`], the probe result is a
/// candidate set — the executor re-checks the originating predicate, so
/// over-approximation is safe and NULLs are simply never entered.
pub struct SeqIndex {
    /// Index name (unique per table across seq indexes, case-insensitive).
    pub name: String,
    /// Indexed column position (always a TEXT column).
    pub column: usize,
    /// Which backend structure this index uses.
    pub kind: SeqIndexKind,
    backend: SeqBackend,
    text_of_row: BTreeMap<u64, u32>,
    row_of_text: HashMap<u32, u64>,
}

impl SeqIndex {
    fn new(name: impl Into<String>, column: usize, kind: SeqIndexKind) -> SeqIndex {
        SeqIndex {
            name: name.into(),
            column,
            kind,
            backend: SeqBackend::new(kind),
            text_of_row: BTreeMap::new(),
            row_of_text: HashMap::new(),
        }
    }

    fn add(&mut self, value: &Value, row_no: u64) {
        if let Value::Text(s) = value {
            let id = self.backend.insert_text(s.as_bytes());
            self.text_of_row.insert(row_no, id);
            self.row_of_text.insert(id, row_no);
        }
    }

    fn remove(&mut self, row_no: u64) {
        if let Some(id) = self.text_of_row.remove(&row_no) {
            self.row_of_text.remove(&id);
        }
    }

    /// Row numbers whose sequence contains `pattern`, sorted ascending
    /// (scan order).  An empty pattern matches nothing, mirroring the
    /// `CONTAINS SEQ ''` evaluation rule.
    pub fn probe(&self, pattern: &str) -> Vec<u64> {
        if pattern.is_empty() {
            return Vec::new();
        }
        let mut rows: Vec<u64> = self
            .backend
            .matching_texts(pattern.as_bytes())
            .into_iter()
            .filter_map(|id| self.row_of_text.get(&id).copied())
            .collect();
        rows.sort_unstable();
        rows
    }

    /// Number of live (non-tombstoned) indexed rows.
    pub fn len(&self) -> usize {
        self.text_of_row.len()
    }

    /// True when no live rows are indexed.
    pub fn is_empty(&self) -> bool {
        self.text_of_row.is_empty()
    }
}

/// A row preserved in the deletion log (§3.2: *"the deleted tuples will be
/// stored in separate log tables along with the annotation that specifies
/// why these tuples have been deleted"*).
#[derive(Debug, Clone)]
pub struct DeletedRow {
    /// The row number the tuple had while alive.
    pub row_no: u64,
    /// The tuple values at deletion time.
    pub values: Vec<Value>,
    /// The "why deleted" annotation, if the deletion was issued through
    /// `ADD ANNOTATION … ON (DELETE …)`.
    pub annotation: Option<String>,
    /// Deletion timestamp.
    pub time: u64,
    /// Who deleted it.
    pub user: String,
}

/// One user table.
pub struct Table {
    /// Case-preserved name.
    pub name: String,
    /// Relation schema.
    pub schema: Schema,
    /// Owner (may GRANT, start approval, drop).
    pub owner: String,
    heap: HeapFile,
    rows: BTreeMap<u64, Rid>,
    next_row: u64,
    /// Annotation tables attached to this relation (§3.1).
    pub ann_sets: Vec<AnnotationSet>,
    /// Outdated-cell bitmap (§5, Figure 10), indexed `[row_no][col]`.
    pub outdated: CellBitmap,
    /// Deletion log.
    pub deleted_log: Vec<DeletedRow>,
    /// Secondary indexes (`CREATE INDEX … ON …`).
    indexes: Vec<TableIndex>,
    /// Sequence indexes (`CREATE SEQUENCE INDEX … ON …`).
    seq_indexes: Vec<SeqIndex>,
    /// Planner statistics, maintained incrementally by every write path
    /// and rebuilt exactly by `ANALYZE`.
    stats: TableStats,
    /// Redo sink for durable databases: every logical mutation of this
    /// table appends a [`WalRecord`] here (disabled and record-free for
    /// in-memory databases — see `crate::durability`).
    redo: RedoSink,
}

impl Table {
    /// Create an empty table on the shared buffer pool.
    pub fn create(
        name: impl Into<String>,
        schema: Schema,
        owner: impl Into<String>,
        pool: Arc<BufferPool>,
    ) -> Result<Table> {
        let arity = schema.arity();
        Ok(Table {
            name: name.into(),
            schema,
            owner: owner.into(),
            heap: HeapFile::create(pool)?,
            rows: BTreeMap::new(),
            next_row: 0,
            ann_sets: Vec::new(),
            outdated: CellBitmap::new(0, arity),
            deleted_log: Vec::new(),
            indexes: Vec::new(),
            seq_indexes: Vec::new(),
            stats: TableStats::new(arity),
            redo: disabled_redo_sink(),
        })
    }

    /// Rebuild a table from its persisted parts (database open).  The
    /// heap is already attached to the live buffer pool; statistics are
    /// recomputed exactly (a reopen is an implicit `ANALYZE`) and the
    /// secondary indexes are backfilled from the heap — index *payloads*
    /// are never persisted, only their definitions.
    #[allow(clippy::too_many_arguments)] // mirrors the persisted fields
    pub(crate) fn from_parts(
        name: String,
        schema: Schema,
        owner: String,
        heap: HeapFile,
        rows: BTreeMap<u64, Rid>,
        next_row: u64,
        ann_sets: Vec<AnnotationSet>,
        outdated: CellBitmap,
        deleted_log: Vec<DeletedRow>,
        index_defs: &[(String, usize)],
        seq_index_defs: &[(String, usize, SeqIndexKind)],
    ) -> Result<Table> {
        let arity = schema.arity();
        let mut t = Table {
            name,
            schema,
            owner,
            heap,
            rows,
            next_row,
            ann_sets,
            outdated,
            deleted_log,
            indexes: Vec::new(),
            seq_indexes: Vec::new(),
            stats: TableStats::new(arity),
            redo: disabled_redo_sink(),
        };
        t.analyze()?;
        for (index, col) in index_defs {
            let column = t
                .schema
                .columns()
                .get(*col)
                .ok_or_else(|| {
                    BdbmsError::corrupt(format!(
                        "index `{index}` references column {col} beyond the schema"
                    ))
                })?
                .name
                .clone();
            t.create_index(index, &column)?;
        }
        for (index, col, kind) in seq_index_defs {
            let column = t
                .schema
                .columns()
                .get(*col)
                .ok_or_else(|| {
                    BdbmsError::corrupt(format!(
                        "sequence index `{index}` references column {col} beyond the schema"
                    ))
                })?
                .name
                .clone();
            t.create_seq_index(index, &column, *kind)?;
        }
        Ok(t)
    }

    /// Attach the shared redo sink (durable databases).
    pub(crate) fn set_redo(&mut self, redo: RedoSink) {
        self.redo = redo;
    }

    /// Copy every live row into a fresh heap on `pool` (checkpoint),
    /// returning the new heap and rid map.
    pub(crate) fn write_rows_to(
        &self,
        pool: Arc<BufferPool>,
    ) -> Result<(HeapFile, BTreeMap<u64, Rid>)> {
        let mut heap = HeapFile::create(pool)?;
        let mut rows = BTreeMap::new();
        for entry in self.iter_rows() {
            let (row_no, values) = entry?;
            rows.insert(row_no, heap.insert(&Self::encode_row(row_no, &values))?);
        }
        Ok((heap, rows))
    }

    /// Adopt a freshly written heap + rid map (the checkpoint just moved
    /// this table's rows onto a new page file).
    pub(crate) fn swap_storage(&mut self, heap: HeapFile, rows: BTreeMap<u64, Rid>) {
        debug_assert_eq!(rows.len(), self.rows.len());
        self.heap = heap;
        self.rows = rows;
    }

    fn encode_row(row_no: u64, values: &[Value]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16 + values.len() * 8);
        buf.extend_from_slice(&row_no.to_le_bytes());
        for v in values {
            v.encode(&mut buf);
        }
        buf
    }

    fn decode_row(buf: &[u8], arity: usize) -> Result<(u64, Vec<Value>)> {
        if buf.len() < 8 {
            return Err(BdbmsError::storage("row record too short"));
        }
        let row_no = u64::from_le_bytes(buf[..8].try_into().unwrap());
        let mut pos = 8;
        let mut values = Vec::with_capacity(arity);
        for _ in 0..arity {
            values.push(Value::decode(buf, &mut pos)?);
        }
        Ok((row_no, values))
    }

    /// Decode only the columns in `keep` (ascending); every other slot is
    /// filled with NULL and its encoding merely skipped — TEXT payloads
    /// are never copied or validated.  Once `keep` is exhausted the rest
    /// of the record is not even walked.
    fn decode_row_pruned(buf: &[u8], arity: usize, keep: &[usize]) -> Result<(u64, Vec<Value>)> {
        if buf.len() < 8 {
            return Err(BdbmsError::storage("row record too short"));
        }
        let row_no = u64::from_le_bytes(buf[..8].try_into().unwrap());
        let mut pos = 8;
        let mut values = vec![Value::Null; arity];
        let mut next = keep.iter().peekable();
        for (col, slot) in values.iter_mut().enumerate() {
            match next.peek() {
                None => break,
                Some(&&k) if k == col => {
                    next.next();
                    *slot = Value::decode(buf, &mut pos)?;
                }
                Some(_) => Value::skip(buf, &mut pos)?,
            }
        }
        Ok((row_no, values))
    }

    /// Insert a row (validated/coerced against the schema); returns its
    /// stable row number.
    pub fn insert(&mut self, values: Vec<Value>) -> Result<u64> {
        let values = self.schema.check_row(values)?;
        let row_no = self.next_row;
        self.insert_with_row_no(row_no, values)
    }

    /// Insert preserving a specific row number (used by disapproval
    /// inverses restoring deleted rows).
    pub fn insert_with_row_no(&mut self, row_no: u64, values: Vec<Value>) -> Result<u64> {
        if self.rows.contains_key(&row_no) {
            return Err(BdbmsError::invalid(format!(
                "row {row_no} already exists in {}",
                self.name
            )));
        }
        let values = self.schema.check_row(values)?;
        let rid = self.heap.insert(&Self::encode_row(row_no, &values))?;
        self.rows.insert(row_no, rid);
        self.next_row = self.next_row.max(row_no + 1);
        if self.outdated.rows() <= row_no as usize {
            self.outdated.grow_rows(row_no as usize + 1);
        }
        for idx in &mut self.indexes {
            idx.add(&values[idx.column], row_no);
        }
        for sidx in &mut self.seq_indexes {
            sidx.add(&values[sidx.column], row_no);
        }
        self.stats.observe_row(&values);
        self.redo.borrow_mut().push(|| WalRecord::RowInsert {
            table: self.name.clone(),
            row_no,
            values: values.clone(),
        });
        Ok(row_no)
    }

    /// Fetch a row by number.
    pub fn get(&self, row_no: u64) -> Result<Vec<Value>> {
        let rid = *self
            .rows
            .get(&row_no)
            .ok_or_else(|| BdbmsError::not_found(format!("row {row_no} in {}", self.name)))?;
        let buf = self.heap.get(rid)?;
        let (no, values) = Self::decode_row(&buf, self.schema.arity())?;
        debug_assert_eq!(no, row_no);
        Ok(values)
    }

    /// Overwrite a row in place.
    pub fn update(&mut self, row_no: u64, values: Vec<Value>) -> Result<()> {
        // index and stats maintenance both need the old values
        let old = self.get(row_no)?;
        self.update_inner(row_no, &old, values)
    }

    /// Overwrite a row whose current values the caller already holds
    /// (UPDATE's row-selection pass materializes them), saving the heap
    /// re-read that index maintenance would otherwise need.
    pub fn update_with_old(
        &mut self,
        row_no: u64,
        old: &[Value],
        values: Vec<Value>,
    ) -> Result<()> {
        self.update_inner(row_no, old, values)
    }

    fn update_inner(&mut self, row_no: u64, old: &[Value], values: Vec<Value>) -> Result<()> {
        let values = self.schema.check_row(values)?;
        let rid = *self
            .rows
            .get(&row_no)
            .ok_or_else(|| BdbmsError::not_found(format!("row {row_no} in {}", self.name)))?;
        let new_rid = self.heap.update(rid, &Self::encode_row(row_no, &values))?;
        self.rows.insert(row_no, new_rid);
        for idx in &mut self.indexes {
            if old[idx.column] != values[idx.column] {
                idx.remove(&old[idx.column], row_no);
                idx.add(&values[idx.column], row_no);
            }
        }
        for sidx in &mut self.seq_indexes {
            if old[sidx.column] != values[sidx.column] {
                sidx.remove(row_no);
                sidx.add(&values[sidx.column], row_no);
            }
        }
        for (col, (o, n)) in old.iter().zip(&values).enumerate() {
            if o != n {
                self.stats.update_cell(col, o, n);
            }
        }
        self.redo.borrow_mut().push(|| WalRecord::RowUpdate {
            table: self.name.clone(),
            row_no,
            values: values.clone(),
        });
        Ok(())
    }

    /// Delete a row; returns its last values.
    pub fn delete(&mut self, row_no: u64) -> Result<Vec<Value>> {
        let values = self.get(row_no)?;
        let rid = self.rows.remove(&row_no).expect("checked by get");
        self.heap.delete(rid)?;
        // clear outdated bits of the dead row
        for c in 0..self.schema.arity() {
            self.outdated.clear(row_no as usize, c);
        }
        for idx in &mut self.indexes {
            idx.remove(&values[idx.column], row_no);
        }
        for sidx in &mut self.seq_indexes {
            sidx.remove(row_no);
        }
        self.stats.retire_row(&values);
        self.redo.borrow_mut().push(|| WalRecord::RowDelete {
            table: self.name.clone(),
            row_no,
        });
        Ok(values)
    }

    /// Append an entry to the deletion log (§3.2).  Routed through a
    /// method (rather than pushing on the public field) so durable
    /// databases get a redo record.
    pub(crate) fn push_deleted(&mut self, row: DeletedRow) {
        self.redo.borrow_mut().push(|| WalRecord::DeletedLogPush {
            table: self.name.clone(),
            row: row.clone(),
        });
        self.deleted_log.push(row);
    }

    /// All `(row_no, values)` pairs in row-number order.
    pub fn scan(&self) -> Result<Vec<(u64, Vec<Value>)>> {
        self.rows
            .keys()
            .map(|&no| self.get(no).map(|v| (no, v)))
            .collect()
    }

    /// Lazy variant of [`scan`](Self::scan): rows are fetched from the
    /// heap one at a time as the iterator is advanced, so a consumer that
    /// stops early (LIMIT-style) or filters cheaply never materializes
    /// the whole table.
    pub fn iter_rows(&self) -> impl Iterator<Item = Result<(u64, Vec<Value>)>> + '_ {
        self.rows
            .keys()
            .map(move |&no| self.get(no).map(|v| (no, v)))
    }

    /// Vectorized scan step for the batch executor: decode up to `want`
    /// rows with row numbers `>= from` into `out`, materializing only
    /// the columns in `keep` (source-local, ascending; `None` = all).
    /// Skipped slots are filled with NULL — the caller's plan must prove
    /// them unread, the same contract index-only scans rely on.  Records
    /// are decoded in place in the buffer pool, one page pin per run of
    /// same-page rows (no per-row record copy, pool lock, or LRU
    /// bookkeeping).  Returns the row number to resume from, or `None`
    /// when the table is exhausted.  On error, rows decoded before the
    /// failure remain in `out`.
    pub(crate) fn scan_chunk(
        &self,
        from: u64,
        want: usize,
        keep: Option<&[usize]>,
        out: &mut Vec<(u64, Vec<Value>)>,
    ) -> Result<Option<u64>> {
        let arity = self.schema.arity();
        let mut nos: Vec<u64> = Vec::with_capacity(want);
        let mut rids: Vec<Rid> = Vec::with_capacity(want);
        let mut resume = None;
        for (&no, &rid) in self.rows.range(from..) {
            if nos.len() == want {
                resume = Some(no);
                break;
            }
            nos.push(no);
            rids.push(rid);
        }
        self.heap.with_records(&rids, |k, buf| {
            let (decoded_no, values) = match keep {
                None => Self::decode_row(buf, arity),
                Some(cols) => Self::decode_row_pruned(buf, arity, cols),
            }?;
            debug_assert_eq!(decoded_no, nos[k]);
            out.push((nos[k], values));
            Ok(())
        })?;
        Ok(resume)
    }

    // ---- secondary indexes ----

    /// Create a secondary index named `name` over `column`, backfilling
    /// it from the live rows.
    pub fn create_index(&mut self, name: &str, column: &str) -> Result<()> {
        if self.index_named(name).is_some() {
            return Err(BdbmsError::already_exists(format!(
                "index `{name}` on `{}`",
                self.name
            )));
        }
        let col = self.schema.require(column)?;
        let mut idx = TableIndex::new(name, col);
        for entry in self.iter_rows() {
            let (row_no, values) = entry?;
            idx.add(&values[col], row_no);
        }
        self.indexes.push(idx);
        self.redo.borrow_mut().push(|| WalRecord::IndexCreate {
            table: self.name.clone(),
            index: name.to_string(),
            column: column.to_string(),
        });
        Ok(())
    }

    /// Drop the index named `name`.
    pub fn drop_index(&mut self, name: &str) -> Result<()> {
        let before = self.indexes.len();
        self.indexes.retain(|i| !i.name.eq_ignore_ascii_case(name));
        if self.indexes.len() == before {
            return Err(BdbmsError::not_found(format!(
                "index `{name}` on `{}`",
                self.name
            )));
        }
        self.redo.borrow_mut().push(|| WalRecord::IndexDrop {
            table: self.name.clone(),
            index: name.to_string(),
        });
        Ok(())
    }

    /// Find an index by name (case-insensitive).
    pub fn index_named(&self, name: &str) -> Option<&TableIndex> {
        self.indexes
            .iter()
            .find(|i| i.name.eq_ignore_ascii_case(name))
    }

    /// Find an index over the given column position, if any.
    pub fn index_on(&self, column: usize) -> Option<&TableIndex> {
        self.indexes.iter().find(|i| i.column == column)
    }

    /// All indexes on this table.
    pub fn indexes(&self) -> &[TableIndex] {
        &self.indexes
    }

    // ---- sequence indexes ----

    /// Create a sequence index named `name` over the TEXT column
    /// `column`, backfilling it from the live rows.
    pub fn create_seq_index(&mut self, name: &str, column: &str, kind: SeqIndexKind) -> Result<()> {
        if self.seq_index_named(name).is_some() {
            return Err(BdbmsError::already_exists(format!(
                "sequence index `{name}` on `{}`",
                self.name
            )));
        }
        let col = self.schema.require(column)?;
        if self.schema.columns()[col].ty != DataType::Text {
            return Err(BdbmsError::invalid(format!(
                "sequence index `{name}` requires a TEXT column, but `{column}` is {:?}",
                self.schema.columns()[col].ty
            )));
        }
        let mut sidx = SeqIndex::new(name, col, kind);
        for entry in self.iter_rows() {
            let (row_no, values) = entry?;
            sidx.add(&values[col], row_no);
        }
        self.seq_indexes.push(sidx);
        self.redo.borrow_mut().push(|| WalRecord::SeqIndexCreate {
            table: self.name.clone(),
            index: name.to_string(),
            column: column.to_string(),
            kind,
        });
        Ok(())
    }

    /// Drop the sequence index named `name`.
    pub fn drop_seq_index(&mut self, name: &str) -> Result<()> {
        let before = self.seq_indexes.len();
        self.seq_indexes
            .retain(|i| !i.name.eq_ignore_ascii_case(name));
        if self.seq_indexes.len() == before {
            return Err(BdbmsError::not_found(format!(
                "sequence index `{name}` on `{}`",
                self.name
            )));
        }
        self.redo.borrow_mut().push(|| WalRecord::SeqIndexDrop {
            table: self.name.clone(),
            index: name.to_string(),
        });
        Ok(())
    }

    /// Find a sequence index by name (case-insensitive).
    pub fn seq_index_named(&self, name: &str) -> Option<&SeqIndex> {
        self.seq_indexes
            .iter()
            .find(|i| i.name.eq_ignore_ascii_case(name))
    }

    /// Find a sequence index over the given column position, if any.
    pub fn seq_index_on(&self, column: usize) -> Option<&SeqIndex> {
        self.seq_indexes.iter().find(|i| i.column == column)
    }

    /// All sequence indexes on this table.
    pub fn seq_indexes(&self) -> &[SeqIndex] {
        &self.seq_indexes
    }

    // ---- bulk load (COPY) ----

    /// `COPY` fast path: append one row, deferring index maintenance,
    /// statistics, and redo logging to [`finish_bulk`](Self::finish_bulk)
    /// / the single logical `BulkLoad` WAL record.  The table is in a
    /// *scan-correct but index-stale* state between the first
    /// `bulk_append` and `finish_bulk`; `crate::ingest` owns that window
    /// and never lets a query see it.
    pub(crate) fn bulk_append(&mut self, values: Vec<Value>) -> Result<u64> {
        let values = self.schema.check_row(values)?;
        let row_no = self.next_row;
        let rid = self.heap.insert(&Self::encode_row(row_no, &values))?;
        self.rows.insert(row_no, rid);
        self.next_row = row_no + 1;
        Ok(row_no)
    }

    /// Close out a bulk-append run that started at `first_row`: grow the
    /// outdated bitmap, rebuild every secondary B+-tree index by sorted
    /// bulk construction, append only the new rows to the sequence
    /// indexes (their backends are insert-only), and recompute exact
    /// statistics (the deferred `ANALYZE`).
    pub(crate) fn finish_bulk(&mut self, first_row: u64) -> Result<()> {
        if self.outdated.rows() < self.next_row as usize {
            self.outdated.grow_rows(self.next_row as usize);
        }
        let mut stats = TableStats::new(self.schema.arity());
        let mut per_index: Vec<Vec<(Value, u64)>> =
            self.indexes.iter().map(|_| Vec::new()).collect();
        let mut fresh: Vec<(u64, Vec<Value>)> = Vec::new();
        for entry in self.iter_rows() {
            let (row_no, values) = entry?;
            stats.observe_row(&values);
            for (slot, idx) in self.indexes.iter().enumerate() {
                per_index[slot].push((values[idx.column].clone(), row_no));
            }
            if row_no >= first_row && !self.seq_indexes.is_empty() {
                fresh.push((row_no, values));
            }
        }
        for (slot, mut entries) in per_index.into_iter().enumerate() {
            entries.sort_unstable();
            self.indexes[slot].rebuild_sorted(entries);
        }
        for sidx in &mut self.seq_indexes {
            for (row_no, values) in &fresh {
                sidx.add(&values[sidx.column], *row_no);
            }
        }
        self.stats = stats;
        Ok(())
    }

    /// Remove every row numbered `first_row` or above (bulk-load
    /// rollback).  Index entries that were never built (load failed
    /// before `finish_bulk`) are tolerated; statistics are restored
    /// wholesale by the accompanying first-touch snapshot, not here.
    pub(crate) fn truncate_rows_from(&mut self, first_row: u64) -> Result<()> {
        let doomed: Vec<u64> = self.rows.range(first_row..).map(|(&no, _)| no).collect();
        for row_no in doomed {
            let values = self.get(row_no)?;
            let rid = self.rows.remove(&row_no).expect("listed above");
            self.heap.delete(rid)?;
            for c in 0..self.schema.arity() {
                if (row_no as usize) < self.outdated.rows() {
                    self.outdated.clear(row_no as usize, c);
                }
            }
            for idx in &mut self.indexes {
                idx.remove(&values[idx.column], row_no);
            }
            for sidx in &mut self.seq_indexes {
                sidx.remove(row_no);
            }
        }
        self.set_next_row(first_row);
        Ok(())
    }

    // ---- planner statistics ----

    /// The table's planner statistics (always present; incrementally
    /// maintained, exact after [`analyze`](Self::analyze)).
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// Replace the statistics wholesale (transaction rollback restoring
    /// a first-touch snapshot — the KMV sketch cannot retract).
    pub(crate) fn set_stats(&mut self, stats: TableStats) {
        self.stats = stats;
    }

    /// The next row number an insert would allocate.
    pub(crate) fn peek_next_row(&self) -> u64 {
        self.next_row
    }

    /// Rewind the row-number allocator (transaction rollback; the rows
    /// past it have already been deleted by the row-level undo ops).
    pub(crate) fn set_next_row(&mut self, next_row: u64) {
        self.next_row = next_row;
    }

    /// Rebuild statistics exactly from the live rows (`ANALYZE`).
    /// Returns the number of rows scanned.
    pub fn analyze(&mut self) -> Result<u64> {
        let mut stats = TableStats::new(self.schema.arity());
        let mut scanned = 0u64;
        for entry in self.iter_rows() {
            let (_, values) = entry?;
            stats.observe_row(&values);
            scanned += 1;
        }
        self.stats = stats;
        Ok(scanned)
    }

    /// Live row numbers in order.
    pub fn row_numbers(&self) -> Vec<u64> {
        self.rows.keys().copied().collect()
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Is this row number live?
    pub fn contains_row(&self, row_no: u64) -> bool {
        self.rows.contains_key(&row_no)
    }

    /// Find the annotation set with this name (case-insensitive).
    pub fn ann_set(&self, name: &str) -> Option<&AnnotationSet> {
        self.ann_sets
            .iter()
            .find(|s| s.name.eq_ignore_ascii_case(name))
    }

    /// Mutable variant of [`ann_set`](Self::ann_set).
    pub fn ann_set_mut(&mut self, name: &str) -> Option<&mut AnnotationSet> {
        self.ann_sets
            .iter_mut()
            .find(|s| s.name.eq_ignore_ascii_case(name))
    }

    /// Attach a new annotation table (logged for durable databases —
    /// every annotation-set creation funnels through here).
    pub(crate) fn add_ann_set(&mut self, set: AnnotationSet) {
        self.redo.borrow_mut().push(|| WalRecord::AnnSetCreate {
            table: self.name.clone(),
            set: set.name.clone(),
            cell_scheme: set.is_cell_scheme(),
            system_only: set.system_only,
            schema_enforced: set.schema_enforced,
        });
        self.ann_sets.push(set);
    }

    /// Detach the annotation table at `pos` (DROP ANNOTATION TABLE).
    pub(crate) fn remove_ann_set_at(&mut self, pos: usize) -> AnnotationSet {
        let set = self.ann_sets.remove(pos);
        self.redo.borrow_mut().push(|| WalRecord::AnnSetDrop {
            table: self.name.clone(),
            set: set.name.clone(),
        });
        set
    }

    /// Add an annotation to the named set over `rows × cols` (logged).
    /// Returns `None` when the set does not exist.
    pub(crate) fn ann_add(
        &mut self,
        set: &str,
        raw: &str,
        creator: &str,
        created: u64,
        rows: &[u64],
        cols: &[usize],
    ) -> Option<bdbms_common::ids::AnnotationId> {
        // borrow dance: record first (name lookup is immutable), then add
        let exists = self.ann_set(set).is_some();
        if !exists {
            return None;
        }
        self.redo.borrow_mut().push(|| WalRecord::AnnAdd {
            table: self.name.clone(),
            set: set.to_string(),
            raw: raw.to_string(),
            creator: creator.to_string(),
            created,
            rows: rows.to_vec(),
            cols: cols.iter().map(|&c| c as u64).collect(),
        });
        let s = self.ann_set_mut(set).expect("checked above");
        Some(s.add(raw, creator, created, rows, cols))
    }

    /// Archive/restore annotations of the named set (logged).  Returns
    /// the change count, or `None` when the set does not exist.
    pub(crate) fn ann_set_archived(
        &mut self,
        set: &str,
        cells: &[(u64, usize)],
        between: Option<(u64, u64)>,
        archived: bool,
    ) -> Option<usize> {
        self.ann_set(set)?;
        self.redo.borrow_mut().push(|| WalRecord::AnnArchive {
            table: self.name.clone(),
            set: set.to_string(),
            cells: cells.iter().map(|&(r, c)| (r, c as u64)).collect(),
            between,
            archived,
        });
        let s = self.ann_set_mut(set).expect("checked above");
        Some(s.set_archived(cells, between, archived))
    }

    /// Mark a cell outdated (§5), growing the bitmap as needed.
    pub fn mark_outdated(&mut self, row_no: u64, col: usize) {
        if self.outdated.rows() <= row_no as usize {
            self.outdated.grow_rows(row_no as usize + 1);
        }
        self.outdated.set(row_no as usize, col);
        self.redo.borrow_mut().push(|| WalRecord::OutdatedMark {
            table: self.name.clone(),
            row_no,
            col: col as u64,
        });
    }

    /// Clear the outdated mark (revalidation — §5).
    pub fn clear_outdated(&mut self, row_no: u64, col: usize) {
        if (row_no as usize) < self.outdated.rows() {
            self.outdated.clear(row_no as usize, col);
            self.redo.borrow_mut().push(|| WalRecord::OutdatedClear {
                table: self.name.clone(),
                row_no,
                col: col as u64,
            });
        }
    }

    /// Is the cell marked outdated?
    pub fn is_outdated(&self, row_no: u64, col: usize) -> bool {
        (row_no as usize) < self.outdated.rows() && self.outdated.get(row_no as usize, col)
    }
}

/// The database catalog.
pub struct Catalog {
    tables: BTreeMap<String, Table>,
    /// Bumped by every DDL change (and `ANALYZE`) that can invalidate a
    /// cached query plan: table/index create/drop, stats rebuild.
    /// Prepared statements stamp their cached plans with this and replan
    /// when it moves.
    generation: u64,
    /// Process-unique catalog identity, stamped into cached plans so a
    /// prepared statement carried across `Database` instances can never
    /// replay one database's plan against another's schema (generation
    /// counters alone can coincide).
    id: u64,
}

impl Default for Catalog {
    fn default() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT_CATALOG_ID: AtomicU64 = AtomicU64::new(1);
        Catalog {
            tables: BTreeMap::new(),
            generation: 0,
            id: NEXT_CATALOG_ID.fetch_add(1, Ordering::Relaxed),
        }
    }
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    fn key(name: &str) -> String {
        name.to_ascii_lowercase()
    }

    /// The current plan-validity generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// This catalog's process-unique identity.
    pub fn instance_id(&self) -> u64 {
        self.id
    }

    /// Invalidate all cached plans (DDL / ANALYZE happened).
    pub fn bump_generation(&mut self) {
        self.generation += 1;
    }

    /// Register a new table.
    pub fn add_table(&mut self, table: Table) -> Result<()> {
        let key = Self::key(&table.name);
        if self.tables.contains_key(&key) {
            return Err(BdbmsError::already_exists(format!(
                "table `{}`",
                table.name
            )));
        }
        self.tables.insert(key, table);
        self.bump_generation();
        Ok(())
    }

    /// Drop a table.
    pub fn drop_table(&mut self, name: &str) -> Result<Table> {
        let t = self
            .tables
            .remove(&Self::key(name))
            .ok_or_else(|| BdbmsError::not_found(format!("table `{name}`")))?;
        self.bump_generation();
        Ok(t)
    }

    /// Case-insensitive lookup.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(&Self::key(name))
            .ok_or_else(|| BdbmsError::not_found(format!("table `{name}`")))
    }

    /// Mutable lookup.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(&Self::key(name))
            .ok_or_else(|| BdbmsError::not_found(format!("table `{name}`")))
    }

    /// Does the table exist?
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(&Self::key(name))
    }

    /// All tables in name order.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// All tables, mutably.
    pub fn tables_mut(&mut self) -> impl Iterator<Item = &mut Table> {
        self.tables.values_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdbms_common::DataType;
    use bdbms_storage::MemStore;

    fn pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::new(Box::new(MemStore::new()), 64))
    }

    fn gene_table() -> Table {
        Table::create(
            "Gene",
            Schema::of(&[
                ("GID", DataType::Text),
                ("GName", DataType::Text),
                ("GSequence", DataType::Text),
            ]),
            "admin",
            pool(),
        )
        .unwrap()
    }

    #[test]
    fn insert_get_update_delete() {
        let mut t = gene_table();
        let r0 = t
            .insert(vec!["JW0080".into(), "mraW".into(), "ATGATG".into()])
            .unwrap();
        let r1 = t
            .insert(vec!["JW0082".into(), "ftsI".into(), "ATGAAA".into()])
            .unwrap();
        assert_eq!(r0, 0);
        assert_eq!(r1, 1);
        assert_eq!(t.get(r0).unwrap()[1], Value::Text("mraW".into()));
        t.update(r0, vec!["JW0080".into(), "mraW".into(), "GTGGTG".into()])
            .unwrap();
        assert_eq!(t.get(r0).unwrap()[2], Value::Text("GTGGTG".into()));
        let old = t.delete(r1).unwrap();
        assert_eq!(old[0], Value::Text("JW0082".into()));
        assert!(t.get(r1).is_err());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn row_numbers_stable_after_delete() {
        let mut t = gene_table();
        for i in 0..5 {
            t.insert(vec![format!("JW{i:04}").into(), "x".into(), "ATG".into()])
                .unwrap();
        }
        t.delete(2).unwrap();
        let rows = t.row_numbers();
        assert_eq!(rows, vec![0, 1, 3, 4]);
        // new insert does not reuse row number 2
        let r = t
            .insert(vec!["JW9999".into(), "y".into(), "ATG".into()])
            .unwrap();
        assert_eq!(r, 5);
    }

    #[test]
    fn insert_with_row_no_restores() {
        let mut t = gene_table();
        t.insert(vec!["a".into(), "b".into(), "c".into()]).unwrap();
        let old = t.delete(0).unwrap();
        t.insert_with_row_no(0, old).unwrap();
        assert_eq!(t.get(0).unwrap()[0], Value::Text("a".into()));
        assert!(t
            .insert_with_row_no(0, vec!["x".into(), "y".into(), "z".into()])
            .is_err());
    }

    #[test]
    fn schema_violations_rejected() {
        let mut t = gene_table();
        assert!(t.insert(vec!["only-two".into(), "cols".into()]).is_err());
        assert!(t
            .insert(vec![Value::Int(1), "b".into(), "c".into()])
            .is_err());
    }

    #[test]
    fn outdated_bits() {
        let mut t = gene_table();
        t.insert(vec!["a".into(), "b".into(), "c".into()]).unwrap();
        assert!(!t.is_outdated(0, 2));
        t.mark_outdated(0, 2);
        assert!(t.is_outdated(0, 2));
        t.clear_outdated(0, 2);
        assert!(!t.is_outdated(0, 2));
        // growth beyond current rows
        t.mark_outdated(10, 1);
        assert!(t.is_outdated(10, 1));
    }

    #[test]
    fn index_stays_consistent_across_dml() {
        let mut t = gene_table();
        for i in 0..20 {
            t.insert(vec![format!("JW{i:04}").into(), "x".into(), "ATG".into()])
                .unwrap();
        }
        t.create_index("gid_idx", "GID").unwrap();
        assert_eq!(t.index_named("gid_idx").unwrap().len(), 20, "backfilled");
        let probe = |t: &Table, key: &str| -> Vec<u64> {
            let v = Value::Text(key.into());
            t.index_on(0)
                .unwrap()
                .probe(Bound::Included(&v), Bound::Included(&v))
        };
        assert_eq!(probe(&t, "JW0007"), vec![7]);
        // update moves the entry to the new key
        t.update(7, vec!["JW9999".into(), "x".into(), "ATG".into()])
            .unwrap();
        assert_eq!(probe(&t, "JW0007"), Vec::<u64>::new());
        assert_eq!(probe(&t, "JW9999"), vec![7]);
        // delete retires the entry
        t.delete(7).unwrap();
        assert_eq!(probe(&t, "JW9999"), Vec::<u64>::new());
        assert_eq!(t.index_on(0).unwrap().len(), 19);
        // re-insert with a preserved row number (approval inverse path)
        t.insert_with_row_no(7, vec!["JW0007".into(), "x".into(), "ATG".into()])
            .unwrap();
        assert_eq!(probe(&t, "JW0007"), vec![7]);
        // range probe is sorted scan order
        let lo = Value::Text("JW0003".into());
        let hi = Value::Text("JW0006".into());
        let rows = t
            .index_on(0)
            .unwrap()
            .probe(Bound::Included(&lo), Bound::Included(&hi));
        assert_eq!(rows, vec![3, 4, 5, 6]);
        t.drop_index("GID_IDX").unwrap();
        assert!(t.index_on(0).is_none());
        assert!(t.drop_index("gid_idx").is_err());
    }

    #[test]
    fn index_skips_nulls() {
        let mut t = Table::create(
            "N",
            Schema::of(&[("a", DataType::Int), ("b", DataType::Text)]),
            "admin",
            pool(),
        )
        .unwrap();
        t.insert(vec![Value::Int(1), Value::Null]).unwrap();
        t.insert(vec![Value::Null, "x".into()]).unwrap();
        t.create_index("a_idx", "a").unwrap();
        assert_eq!(t.index_named("a_idx").unwrap().len(), 1);
        // updating NULL → value adds an entry; value → NULL removes it
        t.update(1, vec![Value::Int(5), "x".into()]).unwrap();
        assert_eq!(t.index_named("a_idx").unwrap().len(), 2);
        t.update(0, vec![Value::Null, Value::Null]).unwrap();
        assert_eq!(t.index_named("a_idx").unwrap().len(), 1);
    }

    #[test]
    fn seq_index_stays_consistent_across_dml() {
        let mut t = gene_table();
        t.insert(vec!["JW0001".into(), "a".into(), "ATGCATGC".into()])
            .unwrap();
        t.insert(vec!["JW0002".into(), "b".into(), "GGGGCCCC".into()])
            .unwrap();
        t.create_seq_index("seq_idx", "GSequence", SeqIndexKind::Sbc)
            .unwrap();
        assert_eq!(t.seq_index_named("seq_idx").unwrap().len(), 2, "backfilled");
        let probe = |t: &Table, pat: &str| t.seq_index_on(2).unwrap().probe(pat);
        assert_eq!(probe(&t, "GCAT"), vec![0]);
        assert_eq!(probe(&t, "GGCC"), vec![1]);
        assert_eq!(probe(&t, ""), Vec::<u64>::new(), "empty pattern");
        // update tombstones the old text and indexes the new one
        t.update(0, vec!["JW0001".into(), "a".into(), "TTTTTTTT".into()])
            .unwrap();
        assert_eq!(probe(&t, "GCAT"), Vec::<u64>::new());
        assert_eq!(probe(&t, "TTT"), vec![0]);
        // delete tombstones
        t.delete(1).unwrap();
        assert_eq!(probe(&t, "GGCC"), Vec::<u64>::new());
        assert_eq!(t.seq_index_on(2).unwrap().len(), 1);
        // duplicate name / non-TEXT column / unknown column rejected
        assert!(t
            .create_seq_index("SEQ_IDX", "GSequence", SeqIndexKind::Suffix)
            .is_err());
        assert!(t
            .create_seq_index("nope", "missing", SeqIndexKind::Sbc)
            .is_err());
        t.drop_seq_index("SEQ_IDX").unwrap();
        assert!(t.seq_index_on(2).is_none());
        assert!(t.drop_seq_index("seq_idx").is_err());
    }

    #[test]
    fn seq_index_rejects_non_text_column() {
        let mut t = Table::create(
            "N",
            Schema::of(&[("a", DataType::Int), ("b", DataType::Text)]),
            "admin",
            pool(),
        )
        .unwrap();
        assert!(t.create_seq_index("sa", "a", SeqIndexKind::Sbc).is_err());
        assert!(t.create_seq_index("sb", "b", SeqIndexKind::Suffix).is_ok());
    }

    #[test]
    fn bulk_append_then_finish_matches_row_at_a_time() {
        let mut t = gene_table();
        t.insert(vec!["JW0000".into(), "pre".into(), "ACGT".into()])
            .unwrap();
        t.create_index("gid_idx", "GID").unwrap();
        t.create_seq_index("seq_idx", "GSequence", SeqIndexKind::Sbc)
            .unwrap();
        let first = t.peek_next_row();
        for i in 1..=10 {
            t.bulk_append(vec![
                format!("JW{i:04}").into(),
                "x".into(),
                format!("ACGT{}", "T".repeat(i)).into(),
            ])
            .unwrap();
        }
        t.finish_bulk(first).unwrap();
        assert_eq!(t.len(), 11);
        assert_eq!(t.index_named("gid_idx").unwrap().len(), 11, "rebuilt");
        assert_eq!(t.seq_index_named("seq_idx").unwrap().len(), 11, "appended");
        let v = Value::Text("JW0007".into());
        assert_eq!(
            t.index_on(0)
                .unwrap()
                .probe(Bound::Included(&v), Bound::Included(&v)),
            vec![7]
        );
        // "ACGT" + 9 extra T's already holds a 10-T run (the G is followed
        // by 1+9 T's), so both of the longest two rows match
        assert_eq!(t.seq_index_on(2).unwrap().probe("TTTTTTTTTT"), vec![9, 10]);
        assert_eq!(t.seq_index_on(2).unwrap().probe("TTTTTTTTTTT"), vec![10]);
        assert_eq!(t.stats().column(0).distinct(), 11, "stats recomputed");
        // rollback path: truncate removes exactly the bulk rows
        let first2 = t.peek_next_row();
        t.bulk_append(vec!["JW9998".into(), "y".into(), "GGG".into()])
            .unwrap();
        t.bulk_append(vec!["JW9999".into(), "y".into(), "GGG".into()])
            .unwrap();
        t.truncate_rows_from(first2).unwrap();
        assert_eq!(t.len(), 11);
        assert_eq!(t.peek_next_row(), first2);
        assert_eq!(t.index_named("gid_idx").unwrap().len(), 11);
    }

    #[test]
    fn catalog_case_insensitive() {
        let mut c = Catalog::new();
        c.add_table(gene_table()).unwrap();
        assert!(c.table("gene").is_ok());
        assert!(c.table("GENE").is_ok());
        assert!(c.has_table("Gene"));
        assert!(c.add_table(gene_table()).is_err(), "duplicate rejected");
        c.drop_table("GeNe").unwrap();
        assert!(!c.has_table("Gene"));
        assert!(c.drop_table("Gene").is_err());
    }

    #[test]
    fn long_sequences_overflow_pages() {
        let mut t = gene_table();
        let long_seq: String = "ACGT".repeat(10_000); // 40 KB
        t.insert(vec!["JW0001".into(), "big".into(), long_seq.clone().into()])
            .unwrap();
        assert_eq!(t.get(0).unwrap()[2], Value::Text(long_seq));
    }
}
