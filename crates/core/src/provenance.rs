//! Provenance management (§4, Figure 8).
//!
//! The paper treats provenance as *a kind of annotation* with two extra
//! requirements:
//!
//! 1. **Structure** — provenance bodies follow a predefined XML schema
//!    that the DBMS enforces (`<Annotation><source>…</source>
//!    <operation>…</operation>…</Annotation>`);
//! 2. **Authorization** — end-users cannot write provenance; only the
//!    system / integration tools may (modelled with the `PROVENANCE`
//!    privilege).
//!
//! Figure 8's question — *"what is the source of this value at time T?"* —
//! is answered by [`source_of`]: the latest provenance record attached to
//! the cell with timestamp ≤ T.

use bdbms_common::{BdbmsError, Result};

use crate::annotation::AnnotationSet;
use crate::catalog::Table;
use crate::xml::XmlNode;

/// Name of the reserved provenance annotation table on each relation.
pub const PROVENANCE_TABLE: &str = "provenance";

/// The operations Figure 8 depicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProvOp {
    /// Data copied in from an external source.
    Copy,
    /// Locally inserted.
    LocalInsert,
    /// Updated by a program.
    ProgramUpdate,
    /// Overwritten by data from another source.
    Overwrite,
}

impl ProvOp {
    /// Canonical text used in the XML body.
    pub fn as_str(self) -> &'static str {
        match self {
            ProvOp::Copy => "copy",
            ProvOp::LocalInsert => "local-insert",
            ProvOp::ProgramUpdate => "program-update",
            ProvOp::Overwrite => "overwrite",
        }
    }

    /// Parse the canonical text.
    pub fn parse(s: &str) -> Option<ProvOp> {
        match s {
            "copy" => Some(ProvOp::Copy),
            "local-insert" => Some(ProvOp::LocalInsert),
            "program-update" => Some(ProvOp::ProgramUpdate),
            "overwrite" => Some(ProvOp::Overwrite),
            _ => None,
        }
    }
}

/// One provenance record (a decoded provenance annotation).
#[derive(Debug, Clone, PartialEq)]
pub struct ProvenanceRecord {
    /// The source (database, program, or `local`).
    pub source: String,
    /// The operation that brought the value in.
    pub operation: ProvOp,
    /// Optional program/tool name.
    pub program: Option<String>,
    /// When it was recorded.
    pub time: u64,
}

impl ProvenanceRecord {
    /// Build the schema'd XML body.
    pub fn to_xml(&self) -> XmlNode {
        let mut children = vec![
            XmlNode::leaf("source", &self.source),
            XmlNode::leaf("operation", self.operation.as_str()),
        ];
        if let Some(p) = &self.program {
            children.push(XmlNode::leaf("program", p));
        }
        XmlNode::elem("Annotation", children)
    }

    /// Decode and validate a provenance body (§4: the schema is enforced).
    pub fn from_xml(body: &XmlNode, created: u64) -> Result<ProvenanceRecord> {
        let source = body
            .path_text("/Annotation/source")
            .ok_or_else(|| BdbmsError::invalid("provenance body missing <source>"))?
            .to_string();
        let op_text = body
            .path_text("/Annotation/operation")
            .ok_or_else(|| BdbmsError::invalid("provenance body missing <operation>"))?;
        let operation = ProvOp::parse(op_text).ok_or_else(|| {
            BdbmsError::invalid(format!("unknown provenance operation `{op_text}`"))
        })?;
        Ok(ProvenanceRecord {
            source,
            operation,
            program: body.path_text("/Annotation/program").map(|s| s.to_string()),
            time: created,
        })
    }
}

/// Validate a raw annotation body against the provenance schema; returns
/// the parse error the engine reports when schema enforcement is on.
pub fn validate_body(raw: &str) -> Result<()> {
    let body = XmlNode::parse(raw)
        .map_err(|e| BdbmsError::invalid(format!("provenance body must be XML: {e}")))?;
    ProvenanceRecord::from_xml(&body, 0).map(|_| ())
}

/// Ensure the table has its provenance annotation set (idempotent);
/// the set is flagged system-only and schema-enforced.
pub fn ensure_provenance_set(table: &mut Table) {
    if table.ann_set(PROVENANCE_TABLE).is_none() {
        let mut set = AnnotationSet::new(PROVENANCE_TABLE, false);
        set.system_only = true;
        set.schema_enforced = true;
        // add_ann_set (not a raw push) so durable databases redo-log it
        table.add_ann_set(set);
    }
}

/// The source of `(row, col)` at time `at` — the newest provenance record
/// with `time <= at` (Figure 8's query).  `None` when the cell has no
/// provenance that old.
pub fn source_of(table: &Table, row: u64, col: usize, at: u64) -> Option<ProvenanceRecord> {
    let set = table.ann_set(PROVENANCE_TABLE)?;
    let mut best: Option<ProvenanceRecord> = None;
    for id in set.ids_for_cell(row, col) {
        let ann = set.get(id)?;
        if ann.created > at {
            continue;
        }
        if let Ok(rec) = ProvenanceRecord::from_xml(&ann.body, ann.created) {
            if best.as_ref().is_none_or(|b| rec.time >= b.time) {
                best = Some(rec);
            }
        }
    }
    best
}

/// Full provenance history of a cell, oldest first.
pub fn history_of(table: &Table, row: u64, col: usize) -> Vec<ProvenanceRecord> {
    let Some(set) = table.ann_set(PROVENANCE_TABLE) else {
        return Vec::new();
    };
    let mut out: Vec<ProvenanceRecord> = set
        .ids_for_cell(row, col)
        .into_iter()
        .filter_map(|id| set.get(id))
        .filter_map(|a| ProvenanceRecord::from_xml(&a.body, a.created).ok())
        .collect();
    out.sort_by_key(|r| r.time);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdbms_common::{DataType, Schema};
    use bdbms_storage::{BufferPool, MemStore};
    use std::sync::Arc;

    fn table() -> Table {
        let pool = Arc::new(BufferPool::new(Box::new(MemStore::new()), 16));
        let mut t = Table::create(
            "Gene",
            Schema::of(&[("GID", DataType::Text), ("GSequence", DataType::Text)]),
            "admin",
            pool,
        )
        .unwrap();
        t.insert(vec!["JW0080".into(), "ATG".into()]).unwrap();
        ensure_provenance_set(&mut t);
        t
    }

    fn record(
        table: &mut Table,
        time: u64,
        source: &str,
        op: ProvOp,
        rows: &[u64],
        cols: &[usize],
    ) {
        let rec = ProvenanceRecord {
            source: source.to_string(),
            operation: op,
            program: None,
            time,
        };
        let xml = rec.to_xml().to_xml();
        table
            .ann_set_mut(PROVENANCE_TABLE)
            .unwrap()
            .add(&xml, "system", time, rows, cols);
    }

    #[test]
    fn record_roundtrip() {
        let rec = ProvenanceRecord {
            source: "RegulonDB".into(),
            operation: ProvOp::Copy,
            program: Some("loader-v2".into()),
            time: 7,
        };
        let xml = rec.to_xml();
        let back = ProvenanceRecord::from_xml(&xml, 7).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn schema_enforcement() {
        assert!(validate_body(
            "<Annotation><source>S1</source><operation>copy</operation></Annotation>"
        )
        .is_ok());
        assert!(validate_body("<Annotation><source>S1</source></Annotation>").is_err());
        assert!(validate_body("free text").is_err());
        assert!(validate_body(
            "<Annotation><source>S1</source><operation>teleport</operation></Annotation>"
        )
        .is_err());
    }

    #[test]
    fn figure8_source_at_time_t() {
        let mut t = table();
        // history: copied from S2 at t=1, updated by P1 at t=5,
        // overwritten from S3 at t=9
        record(&mut t, 1, "S2", ProvOp::Copy, &[0], &[1]);
        record(&mut t, 5, "P1", ProvOp::ProgramUpdate, &[0], &[1]);
        record(&mut t, 9, "S3", ProvOp::Overwrite, &[0], &[1]);
        assert_eq!(source_of(&t, 0, 1, 0), None);
        assert_eq!(source_of(&t, 0, 1, 1).unwrap().source, "S2");
        assert_eq!(source_of(&t, 0, 1, 4).unwrap().source, "S2");
        assert_eq!(source_of(&t, 0, 1, 5).unwrap().source, "P1");
        assert_eq!(source_of(&t, 0, 1, 100).unwrap().source, "S3");
        let hist = history_of(&t, 0, 1);
        assert_eq!(hist.len(), 3);
        assert!(hist.windows(2).all(|w| w[0].time <= w[1].time));
        // other cells untouched
        assert_eq!(source_of(&t, 0, 0, 100), None);
    }

    #[test]
    fn ensure_is_idempotent_and_flagged() {
        let mut t = table();
        ensure_provenance_set(&mut t);
        assert_eq!(
            t.ann_sets
                .iter()
                .filter(|s| s.name == PROVENANCE_TABLE)
                .count(),
            1
        );
        let set = t.ann_set(PROVENANCE_TABLE).unwrap();
        assert!(set.system_only);
        assert!(set.schema_enforced);
    }
}
