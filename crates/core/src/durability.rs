//! The durability subsystem: logical redo logging, checkpoint images,
//! and crash recovery (`Database::open(path)` / `Database::create(path)`).
//!
//! ## Architecture
//!
//! A durable database is a directory:
//!
//! ```text
//! mydb.bdbms/
//!   data.bdb        checkpoint image: a FileStore page file
//!   wal/wal-*.log   write-ahead log segments (bdbms_storage::wal)
//! ```
//!
//! **`data.bdb`** holds the last checkpoint: page 0 is a header (magic +
//! CRC + the record id of the metadata blob), each table's rows live in
//! their own heap-file pages (the existing slotted-page/overflow-chain
//! machinery), and one metadata record describes everything else — table
//! schemas, rid maps, annotation sets, outdated bitmaps, deletion logs,
//! index *definitions* (payloads are rebuilt on open), dependency rules,
//! auth and approval state, and the logical clock.
//!
//! **The WAL** holds logical redo records for every transaction committed
//! since that checkpoint.  Records are buffered in memory while a
//! transaction runs — mirroring the undo log's watermark discipline, so a
//! `ROLLBACK` (or a failed statement, or `ROLLBACK TO SAVEPOINT`) simply
//! truncates the buffer — and are appended + flushed at commit, *before*
//! the commit is acknowledged.  Under [`Durability::Full`] the flush
//! fsyncs; under [`Durability::NoSync`] it only reaches the OS.
//!
//! **WAL-before-data**: the buffer pool backing a durable database runs
//! in no-steal mode (`pin_dirty`) — dirty data pages are never written
//! outside a checkpoint — *and* carries the page-LSN flush gate, so even
//! a steal-mode write would flush the log first.  Between checkpoints the
//! on-disk image therefore stays exactly the last checkpoint.
//!
//! **Checkpoint** writes a complete fresh image to `data.bdb.tmp`
//! (shadow-style: new heaps, new metadata, new header), fsyncs, atomically
//! renames over `data.bdb`, swaps the live engine onto the new pages, and
//! truncates the WAL.  A crash at any instant leaves either the old image
//! + old WAL or the new image + empty WAL — both consistent.
//!
//! **Recovery** (`Database::open`) loads the image, rebuilds indexes and
//! statistics from the heaps (a reopen is an implicit `ANALYZE`), then
//! replays the WAL: records are buffered per transaction and applied only
//! when a `Commit` record is reached — ARIES-lite redo with committed
//! records replayed and the uncommitted tail discarded.  Torn frames
//! (bad CRC / short write) at the log's tail are truncated by the WAL
//! layer; damage *behind* durable data surfaces as
//! [`ErrorCode::Corrupt`].  Open always
//! ends with a checkpoint, so the WAL is empty and the image fresh.
//!
//! See `docs/STORAGE.md` for the byte-level formats.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fs::{self, File};
use std::path::{Path, PathBuf};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bdbms_common::{BdbmsError, DataType, ErrorCode, Result, Schema, Value};
use bdbms_storage::wal::{GroupCommitter, SharedWal, Wal, WalScan};
use bdbms_storage::{
    crc32, BufferPool, FaultInjector, FaultStore, FileStore, FlushGate, HeapFile, IoDecision,
    MemStore, PageId, PageStore, Rid,
};

pub use bdbms_storage::wal::{CommitTicket, Durability};

use crate::annotation::AnnotationSet;
use crate::approval::{ApprovalManager, InverseOp, LoggedOp, OpStatus};
use crate::ast::{CopyFormat, Privilege, SeqIndexKind};
use crate::auth::AuthManager;
use crate::catalog::{DeletedRow, Table};
use crate::codec::{self, Cur};
use crate::database::Database;
use crate::dependency::DependencyRule;

/// Data file name inside a database directory.
pub(crate) const DATA_FILE: &str = "data.bdb";
/// Temporary checkpoint image (renamed over [`DATA_FILE`] when complete).
const DATA_TMP: &str = "data.bdb.tmp";
/// WAL directory name inside a database directory.
pub(crate) const WAL_DIR: &str = "wal";

const HEADER_MAGIC: &[u8; 8] = b"BDBMSDB1";
// v2: per-table sequence-index definitions appended to the snapshot
const FORMAT_VERSION: u32 = 2;

// ---------------------------------------------------------------------
// Redo buffering
// ---------------------------------------------------------------------

/// The per-connection redo buffer: logical [`WalRecord`]s accumulated by
/// the open transaction.  Shared (via [`RedoSink`]) between the
/// transaction runtime (watermark truncation), every [`Table`] (row and
/// annotation mutations), and the [`Database`] (DDL, auth, approval).
///
/// Disabled for in-memory databases: `push` then never builds the record
/// (the closure is not called), so the legacy paths pay one branch.
pub(crate) struct RedoLog {
    recs: Vec<WalRecord>,
    /// Records are only collected when enabled (durable databases).
    pub(crate) enabled: bool,
    /// Non-zero while rollback applies undo ops: their table-level
    /// mutations must not re-log (the rolled-back records were already
    /// truncated from the buffer).
    suspended: u32,
}

impl RedoLog {
    /// Append a record (built lazily) unless disabled or suspended.
    pub(crate) fn push(&mut self, build: impl FnOnce() -> WalRecord) {
        if self.enabled && self.suspended == 0 {
            self.recs.push(build());
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.recs.len()
    }

    pub(crate) fn truncate(&mut self, len: usize) {
        self.recs.truncate(len);
    }

    pub(crate) fn clear(&mut self) {
        self.recs.clear();
    }

    pub(crate) fn take(&mut self) -> Vec<WalRecord> {
        std::mem::take(&mut self.recs)
    }

    pub(crate) fn suspend(&mut self) {
        self.suspended += 1;
    }

    pub(crate) fn resume(&mut self) {
        debug_assert!(self.suspended > 0);
        self.suspended -= 1;
    }
}

/// Shared handle to a [`RedoLog`].
pub(crate) type RedoSink = Rc<RefCell<RedoLog>>;

/// A fresh, collecting-capable sink (the transaction runtime owns one).
pub(crate) fn fresh_redo_sink() -> RedoSink {
    Rc::new(RefCell::new(RedoLog {
        recs: Vec::new(),
        enabled: false,
        suspended: 0,
    }))
}

/// The default sink a standalone [`Table`] starts with (disabled; the
/// engine swaps in the shared sink for durable databases).
pub(crate) fn disabled_redo_sink() -> RedoSink {
    fresh_redo_sink()
}

// ---------------------------------------------------------------------
// The logical redo vocabulary
// ---------------------------------------------------------------------

/// One logical redo operation.  The WAL for a committed transaction is
/// its surviving operations in execution order, terminated by
/// [`WalRecord::Commit`]; recovery replays them through the same engine
/// methods that produced them, so derived state (index entries, outdated
/// clears inside `delete`, schema coercion) re-derives identically.
#[derive(Debug, Clone)]
pub(crate) enum WalRecord {
    /// A row inserted (schema-coerced values, original row number).
    RowInsert {
        table: String,
        row_no: u64,
        values: Vec<Value>,
    },
    /// A row overwritten in place.
    RowUpdate {
        table: String,
        row_no: u64,
        values: Vec<Value>,
    },
    /// A row deleted.
    RowDelete { table: String, row_no: u64 },
    /// A cell marked outdated (§5 cascade).
    OutdatedMark {
        table: String,
        row_no: u64,
        col: u64,
    },
    /// A cell revalidated.
    OutdatedClear {
        table: String,
        row_no: u64,
        col: u64,
    },
    /// An entry appended to the deletion log (§3.2).
    DeletedLogPush { table: String, row: DeletedRow },
    /// `CREATE TABLE`.
    TableCreate {
        name: String,
        owner: String,
        schema: Schema,
    },
    /// `DROP TABLE`.
    TableDrop { name: String },
    /// `CREATE INDEX` (definition only; payload rebuilds on replay).
    IndexCreate {
        table: String,
        index: String,
        column: String,
    },
    /// `DROP INDEX`.
    IndexDrop { table: String, index: String },
    /// `CREATE ANNOTATION TABLE` (or the provenance set auto-creation).
    AnnSetCreate {
        table: String,
        set: String,
        cell_scheme: bool,
        system_only: bool,
        schema_enforced: bool,
    },
    /// `DROP ANNOTATION TABLE`.
    AnnSetDrop { table: String, set: String },
    /// `ADD ANNOTATION` over `rows × cols` cells.
    AnnAdd {
        table: String,
        set: String,
        raw: String,
        creator: String,
        created: u64,
        rows: Vec<u64>,
        cols: Vec<u64>,
    },
    /// `ARCHIVE`/`RESTORE ANNOTATION` over cells.
    AnnArchive {
        table: String,
        set: String,
        cells: Vec<(u64, u64)>,
        between: Option<(u64, u64)>,
        archived: bool,
    },
    /// `CREATE USER`.
    UserCreate { name: String, groups: Vec<String> },
    /// `GRANT`.
    Grant {
        grantee: String,
        table: String,
        privileges: Vec<Privilege>,
    },
    /// `REVOKE`.
    Revoke {
        grantee: String,
        table: String,
        privileges: Vec<Privilege>,
    },
    /// `START CONTENT APPROVAL`.
    ApprovalStart {
        table: String,
        columns: Option<Vec<String>>,
        approver: String,
    },
    /// `STOP CONTENT APPROVAL`.
    ApprovalStop { table: String, columns: Vec<String> },
    /// An operation appended to the approval log.
    ApprovalLogged { op: LoggedOp },
    /// An approval decision (the inverse's row effects have their own
    /// records; replay only flips the status).
    ApprovalDecide { id: u64, approve: bool },
    /// `CREATE DEPENDENCY RULE` (with its allocated id).
    RuleAdd { rule: DependencyRule },
    /// `DROP DEPENDENCY RULE`.
    RuleDrop { name: String },
    /// Transaction commit barrier; carries the logical clock.
    Commit { clock: u64 },
    /// A `COPY` bulk load: the WAL-bypass record.  Instead of one
    /// `RowInsert` per loaded row, the committed transaction carries
    /// this single logical record; replay re-runs the load from the
    /// source file and cross-checks the row count.  The forced
    /// checkpoint right after the commit keeps the replay window (in
    /// which the source file must still exist unchanged) to the crash
    /// of the loading process itself — see `docs/INGEST.md`.
    BulkLoad {
        table: String,
        path: String,
        format: CopyFormat,
        rows: u64,
    },
    /// `CREATE SEQUENCE INDEX` (definition only; payload rebuilds on
    /// replay, like `IndexCreate`).
    SeqIndexCreate {
        table: String,
        index: String,
        column: String,
        kind: SeqIndexKind,
    },
    /// `DROP SEQUENCE INDEX`.
    SeqIndexDrop { table: String, index: String },
}

fn put_copy_format(out: &mut Vec<u8>, f: CopyFormat) {
    codec::put_u8(
        out,
        match f {
            CopyFormat::Fasta => 0,
            CopyFormat::Tsv => 1,
        },
    );
}

fn get_copy_format(cur: &mut Cur<'_>) -> Result<CopyFormat> {
    Ok(match cur.u8()? {
        0 => CopyFormat::Fasta,
        1 => CopyFormat::Tsv,
        t => return Err(BdbmsError::corrupt(format!("unknown COPY format tag {t}"))),
    })
}

fn put_seq_kind(out: &mut Vec<u8>, k: SeqIndexKind) {
    codec::put_u8(
        out,
        match k {
            SeqIndexKind::Sbc => 0,
            SeqIndexKind::Suffix => 1,
        },
    );
}

fn get_seq_kind(cur: &mut Cur<'_>) -> Result<SeqIndexKind> {
    Ok(match cur.u8()? {
        0 => SeqIndexKind::Sbc,
        1 => SeqIndexKind::Suffix,
        t => {
            return Err(BdbmsError::corrupt(format!(
                "unknown sequence index kind tag {t}"
            )))
        }
    })
}

fn put_datatype(out: &mut Vec<u8>, ty: DataType) {
    codec::put_u8(
        out,
        match ty {
            DataType::Int => 1,
            DataType::Float => 2,
            DataType::Text => 3,
            DataType::Bool => 4,
            DataType::Timestamp => 5,
        },
    );
}

fn get_datatype(cur: &mut Cur<'_>) -> Result<DataType> {
    Ok(match cur.u8()? {
        1 => DataType::Int,
        2 => DataType::Float,
        3 => DataType::Text,
        4 => DataType::Bool,
        5 => DataType::Timestamp,
        t => return Err(BdbmsError::corrupt(format!("unknown data type tag {t}"))),
    })
}

fn put_schema(out: &mut Vec<u8>, schema: &Schema) {
    codec::put_u32(out, schema.arity() as u32);
    for c in schema.columns() {
        codec::put_str(out, &c.name);
        put_datatype(out, c.ty);
    }
}

fn get_schema(cur: &mut Cur<'_>) -> Result<Schema> {
    let n = cur.len()?;
    let mut cols = Vec::with_capacity(n);
    for _ in 0..n {
        let name = cur.str()?;
        let ty = get_datatype(cur)?;
        cols.push(bdbms_common::ColumnDef::new(name, ty));
    }
    Schema::new(cols).map_err(|e| BdbmsError::corrupt(e.message().to_string()))
}

fn put_privileges(out: &mut Vec<u8>, ps: &[Privilege]) {
    codec::put_u32(out, ps.len() as u32);
    for p in ps {
        codec::put_u8(
            out,
            match p {
                Privilege::Select => 0,
                Privilege::Insert => 1,
                Privilege::Update => 2,
                Privilege::Delete => 3,
                Privilege::Provenance => 4,
            },
        );
    }
}

fn get_privileges(cur: &mut Cur<'_>) -> Result<Vec<Privilege>> {
    let n = cur.len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(match cur.u8()? {
            0 => Privilege::Select,
            1 => Privilege::Insert,
            2 => Privilege::Update,
            3 => Privilege::Delete,
            4 => Privilege::Provenance,
            t => return Err(BdbmsError::corrupt(format!("unknown privilege tag {t}"))),
        });
    }
    Ok(out)
}

fn put_deleted_row(out: &mut Vec<u8>, row: &DeletedRow) {
    codec::put_u64(out, row.row_no);
    codec::put_values(out, &row.values);
    codec::put_opt_str(out, row.annotation.as_deref());
    codec::put_u64(out, row.time);
    codec::put_str(out, &row.user);
}

fn get_deleted_row(cur: &mut Cur<'_>) -> Result<DeletedRow> {
    Ok(DeletedRow {
        row_no: cur.u64()?,
        values: cur.values()?,
        annotation: cur.opt_str()?,
        time: cur.u64()?,
        user: cur.str()?,
    })
}

fn put_inverse(out: &mut Vec<u8>, inv: &InverseOp) {
    match inv {
        InverseOp::DeleteRow { row_no } => {
            codec::put_u8(out, 0);
            codec::put_u64(out, *row_no);
        }
        InverseOp::InsertRow { row_no, values } => {
            codec::put_u8(out, 1);
            codec::put_u64(out, *row_no);
            codec::put_values(out, values);
        }
        InverseOp::RestoreCells { row_no, old } => {
            codec::put_u8(out, 2);
            codec::put_u64(out, *row_no);
            codec::put_u32(out, old.len() as u32);
            for (col, v) in old {
                codec::put_u64(out, *col as u64);
                codec::put_value(out, v);
            }
        }
    }
}

fn get_inverse(cur: &mut Cur<'_>) -> Result<InverseOp> {
    Ok(match cur.u8()? {
        0 => InverseOp::DeleteRow { row_no: cur.u64()? },
        1 => InverseOp::InsertRow {
            row_no: cur.u64()?,
            values: cur.values()?,
        },
        2 => {
            let row_no = cur.u64()?;
            let n = cur.len()?;
            let mut old = Vec::with_capacity(n);
            for _ in 0..n {
                let col = cur.u64()? as usize;
                old.push((col, cur.value()?));
            }
            InverseOp::RestoreCells { row_no, old }
        }
        t => return Err(BdbmsError::corrupt(format!("unknown inverse tag {t}"))),
    })
}

fn put_status(out: &mut Vec<u8>, s: OpStatus) {
    codec::put_u8(
        out,
        match s {
            OpStatus::Pending => 0,
            OpStatus::Approved => 1,
            OpStatus::Disapproved => 2,
        },
    );
}

fn get_status(cur: &mut Cur<'_>) -> Result<OpStatus> {
    Ok(match cur.u8()? {
        0 => OpStatus::Pending,
        1 => OpStatus::Approved,
        2 => OpStatus::Disapproved,
        t => return Err(BdbmsError::corrupt(format!("unknown op status tag {t}"))),
    })
}

fn put_logged_op(out: &mut Vec<u8>, op: &LoggedOp) {
    codec::put_u64(out, op.id.raw());
    codec::put_str(out, &op.table);
    codec::put_str(out, &op.user);
    codec::put_u64(out, op.time);
    codec::put_str(out, &op.description);
    put_inverse(out, &op.inverse);
    put_status(out, op.status);
}

fn get_logged_op(cur: &mut Cur<'_>) -> Result<LoggedOp> {
    Ok(LoggedOp {
        id: bdbms_common::ids::OperationId(cur.u64()?),
        table: cur.str()?,
        user: cur.str()?,
        time: cur.u64()?,
        description: cur.str()?,
        inverse: get_inverse(cur)?,
        status: get_status(cur)?,
    })
}

fn put_rule(out: &mut Vec<u8>, r: &DependencyRule) {
    codec::put_u64(out, r.id.raw());
    codec::put_str(out, &r.name);
    codec::put_str(out, &r.src_table);
    codec::put_strs(out, &r.src_cols);
    codec::put_str(out, &r.dst_table);
    codec::put_str(out, &r.dst_col);
    codec::put_str(out, &r.procedure);
    codec::put_bool(out, r.executable);
    codec::put_bool(out, r.invertible);
    match &r.link {
        None => codec::put_bool(out, false),
        Some((a, b)) => {
            codec::put_bool(out, true);
            codec::put_str(out, a);
            codec::put_str(out, b);
        }
    }
}

fn get_rule(cur: &mut Cur<'_>) -> Result<DependencyRule> {
    Ok(DependencyRule {
        id: bdbms_common::ids::RuleId(cur.u64()?),
        name: cur.str()?,
        src_table: cur.str()?,
        src_cols: cur.strs()?,
        dst_table: cur.str()?,
        dst_col: cur.str()?,
        procedure: cur.str()?,
        executable: cur.bool()?,
        invertible: cur.bool()?,
        link: if cur.bool()? {
            Some((cur.str()?, cur.str()?))
        } else {
            None
        },
    })
}

fn put_opt_strs(out: &mut Vec<u8>, v: Option<&[String]>) {
    match v {
        None => codec::put_bool(out, false),
        Some(v) => {
            codec::put_bool(out, true);
            codec::put_strs(out, v);
        }
    }
}

fn get_opt_strs(cur: &mut Cur<'_>) -> Result<Option<Vec<String>>> {
    Ok(if cur.bool()? { Some(cur.strs()?) } else { None })
}

impl WalRecord {
    /// Serialize into `out` (tag byte + fields).
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::RowInsert {
                table,
                row_no,
                values,
            } => {
                codec::put_u8(out, 1);
                codec::put_str(out, table);
                codec::put_u64(out, *row_no);
                codec::put_values(out, values);
            }
            WalRecord::RowUpdate {
                table,
                row_no,
                values,
            } => {
                codec::put_u8(out, 2);
                codec::put_str(out, table);
                codec::put_u64(out, *row_no);
                codec::put_values(out, values);
            }
            WalRecord::RowDelete { table, row_no } => {
                codec::put_u8(out, 3);
                codec::put_str(out, table);
                codec::put_u64(out, *row_no);
            }
            WalRecord::OutdatedMark { table, row_no, col } => {
                codec::put_u8(out, 4);
                codec::put_str(out, table);
                codec::put_u64(out, *row_no);
                codec::put_u64(out, *col);
            }
            WalRecord::OutdatedClear { table, row_no, col } => {
                codec::put_u8(out, 5);
                codec::put_str(out, table);
                codec::put_u64(out, *row_no);
                codec::put_u64(out, *col);
            }
            WalRecord::DeletedLogPush { table, row } => {
                codec::put_u8(out, 6);
                codec::put_str(out, table);
                put_deleted_row(out, row);
            }
            WalRecord::TableCreate {
                name,
                owner,
                schema,
            } => {
                codec::put_u8(out, 7);
                codec::put_str(out, name);
                codec::put_str(out, owner);
                put_schema(out, schema);
            }
            WalRecord::TableDrop { name } => {
                codec::put_u8(out, 8);
                codec::put_str(out, name);
            }
            WalRecord::IndexCreate {
                table,
                index,
                column,
            } => {
                codec::put_u8(out, 9);
                codec::put_str(out, table);
                codec::put_str(out, index);
                codec::put_str(out, column);
            }
            WalRecord::IndexDrop { table, index } => {
                codec::put_u8(out, 10);
                codec::put_str(out, table);
                codec::put_str(out, index);
            }
            WalRecord::AnnSetCreate {
                table,
                set,
                cell_scheme,
                system_only,
                schema_enforced,
            } => {
                codec::put_u8(out, 11);
                codec::put_str(out, table);
                codec::put_str(out, set);
                codec::put_bool(out, *cell_scheme);
                codec::put_bool(out, *system_only);
                codec::put_bool(out, *schema_enforced);
            }
            WalRecord::AnnSetDrop { table, set } => {
                codec::put_u8(out, 12);
                codec::put_str(out, table);
                codec::put_str(out, set);
            }
            WalRecord::AnnAdd {
                table,
                set,
                raw,
                creator,
                created,
                rows,
                cols,
            } => {
                codec::put_u8(out, 13);
                codec::put_str(out, table);
                codec::put_str(out, set);
                codec::put_str(out, raw);
                codec::put_str(out, creator);
                codec::put_u64(out, *created);
                codec::put_u64s(out, rows);
                codec::put_u64s(out, cols);
            }
            WalRecord::AnnArchive {
                table,
                set,
                cells,
                between,
                archived,
            } => {
                codec::put_u8(out, 14);
                codec::put_str(out, table);
                codec::put_str(out, set);
                codec::put_u32(out, cells.len() as u32);
                for (r, c) in cells {
                    codec::put_u64(out, *r);
                    codec::put_u64(out, *c);
                }
                match between {
                    None => codec::put_bool(out, false),
                    Some((lo, hi)) => {
                        codec::put_bool(out, true);
                        codec::put_u64(out, *lo);
                        codec::put_u64(out, *hi);
                    }
                }
                codec::put_bool(out, *archived);
            }
            WalRecord::UserCreate { name, groups } => {
                codec::put_u8(out, 15);
                codec::put_str(out, name);
                codec::put_strs(out, groups);
            }
            WalRecord::Grant {
                grantee,
                table,
                privileges,
            } => {
                codec::put_u8(out, 16);
                codec::put_str(out, grantee);
                codec::put_str(out, table);
                put_privileges(out, privileges);
            }
            WalRecord::Revoke {
                grantee,
                table,
                privileges,
            } => {
                codec::put_u8(out, 17);
                codec::put_str(out, grantee);
                codec::put_str(out, table);
                put_privileges(out, privileges);
            }
            WalRecord::ApprovalStart {
                table,
                columns,
                approver,
            } => {
                codec::put_u8(out, 18);
                codec::put_str(out, table);
                put_opt_strs(out, columns.as_deref());
                codec::put_str(out, approver);
            }
            WalRecord::ApprovalStop { table, columns } => {
                codec::put_u8(out, 19);
                codec::put_str(out, table);
                codec::put_strs(out, columns);
            }
            WalRecord::ApprovalLogged { op } => {
                codec::put_u8(out, 20);
                put_logged_op(out, op);
            }
            WalRecord::ApprovalDecide { id, approve } => {
                codec::put_u8(out, 21);
                codec::put_u64(out, *id);
                codec::put_bool(out, *approve);
            }
            WalRecord::RuleAdd { rule } => {
                codec::put_u8(out, 22);
                put_rule(out, rule);
            }
            WalRecord::RuleDrop { name } => {
                codec::put_u8(out, 23);
                codec::put_str(out, name);
            }
            WalRecord::Commit { clock } => {
                codec::put_u8(out, 24);
                codec::put_u64(out, *clock);
            }
            WalRecord::BulkLoad {
                table,
                path,
                format,
                rows,
            } => {
                codec::put_u8(out, 25);
                codec::put_str(out, table);
                codec::put_str(out, path);
                put_copy_format(out, *format);
                codec::put_u64(out, *rows);
            }
            WalRecord::SeqIndexCreate {
                table,
                index,
                column,
                kind,
            } => {
                codec::put_u8(out, 26);
                codec::put_str(out, table);
                codec::put_str(out, index);
                codec::put_str(out, column);
                put_seq_kind(out, *kind);
            }
            WalRecord::SeqIndexDrop { table, index } => {
                codec::put_u8(out, 27);
                codec::put_str(out, table);
                codec::put_str(out, index);
            }
        }
    }

    /// Decode one record from a WAL frame payload.
    pub(crate) fn decode(buf: &[u8]) -> Result<WalRecord> {
        let mut cur = Cur::new(buf);
        let rec = match cur.u8()? {
            1 => WalRecord::RowInsert {
                table: cur.str()?,
                row_no: cur.u64()?,
                values: cur.values()?,
            },
            2 => WalRecord::RowUpdate {
                table: cur.str()?,
                row_no: cur.u64()?,
                values: cur.values()?,
            },
            3 => WalRecord::RowDelete {
                table: cur.str()?,
                row_no: cur.u64()?,
            },
            4 => WalRecord::OutdatedMark {
                table: cur.str()?,
                row_no: cur.u64()?,
                col: cur.u64()?,
            },
            5 => WalRecord::OutdatedClear {
                table: cur.str()?,
                row_no: cur.u64()?,
                col: cur.u64()?,
            },
            6 => WalRecord::DeletedLogPush {
                table: cur.str()?,
                row: get_deleted_row(&mut cur)?,
            },
            7 => WalRecord::TableCreate {
                name: cur.str()?,
                owner: cur.str()?,
                schema: get_schema(&mut cur)?,
            },
            8 => WalRecord::TableDrop { name: cur.str()? },
            9 => WalRecord::IndexCreate {
                table: cur.str()?,
                index: cur.str()?,
                column: cur.str()?,
            },
            10 => WalRecord::IndexDrop {
                table: cur.str()?,
                index: cur.str()?,
            },
            11 => WalRecord::AnnSetCreate {
                table: cur.str()?,
                set: cur.str()?,
                cell_scheme: cur.bool()?,
                system_only: cur.bool()?,
                schema_enforced: cur.bool()?,
            },
            12 => WalRecord::AnnSetDrop {
                table: cur.str()?,
                set: cur.str()?,
            },
            13 => WalRecord::AnnAdd {
                table: cur.str()?,
                set: cur.str()?,
                raw: cur.str()?,
                creator: cur.str()?,
                created: cur.u64()?,
                rows: cur.u64s()?,
                cols: cur.u64s()?,
            },
            14 => {
                let table = cur.str()?;
                let set = cur.str()?;
                let n = cur.len()?;
                let mut cells = Vec::with_capacity(n);
                for _ in 0..n {
                    cells.push((cur.u64()?, cur.u64()?));
                }
                let between = if cur.bool()? {
                    Some((cur.u64()?, cur.u64()?))
                } else {
                    None
                };
                WalRecord::AnnArchive {
                    table,
                    set,
                    cells,
                    between,
                    archived: cur.bool()?,
                }
            }
            15 => WalRecord::UserCreate {
                name: cur.str()?,
                groups: cur.strs()?,
            },
            16 => WalRecord::Grant {
                grantee: cur.str()?,
                table: cur.str()?,
                privileges: get_privileges(&mut cur)?,
            },
            17 => WalRecord::Revoke {
                grantee: cur.str()?,
                table: cur.str()?,
                privileges: get_privileges(&mut cur)?,
            },
            18 => WalRecord::ApprovalStart {
                table: cur.str()?,
                columns: get_opt_strs(&mut cur)?,
                approver: cur.str()?,
            },
            19 => WalRecord::ApprovalStop {
                table: cur.str()?,
                columns: cur.strs()?,
            },
            20 => WalRecord::ApprovalLogged {
                op: get_logged_op(&mut cur)?,
            },
            21 => WalRecord::ApprovalDecide {
                id: cur.u64()?,
                approve: cur.bool()?,
            },
            22 => WalRecord::RuleAdd {
                rule: get_rule(&mut cur)?,
            },
            23 => WalRecord::RuleDrop { name: cur.str()? },
            24 => WalRecord::Commit { clock: cur.u64()? },
            25 => WalRecord::BulkLoad {
                table: cur.str()?,
                path: cur.str()?,
                format: get_copy_format(&mut cur)?,
                rows: cur.u64()?,
            },
            26 => WalRecord::SeqIndexCreate {
                table: cur.str()?,
                index: cur.str()?,
                column: cur.str()?,
                kind: get_seq_kind(&mut cur)?,
            },
            27 => WalRecord::SeqIndexDrop {
                table: cur.str()?,
                index: cur.str()?,
            },
            t => return Err(BdbmsError::corrupt(format!("unknown WAL record tag {t}"))),
        };
        Ok(rec)
    }
}

// ---------------------------------------------------------------------
// Options, reports, handles
// ---------------------------------------------------------------------

/// Tuning knobs for a durable database.
#[derive(Debug, Clone)]
pub struct DurabilityOptions {
    /// Fsync policy at commit ([`Durability::Full`] by default).
    pub durability: Durability,
    /// Checkpoint automatically after this many committed transactions.
    pub checkpoint_every_commits: u64,
    /// WAL segment rotation threshold in bytes.
    pub wal_segment_bytes: u64,
    /// Buffer-pool capacity in pages.
    pub pool_pages: usize,
    /// Deterministic fault injection over the write paths (page writes,
    /// fsyncs, WAL flushes, the checkpoint rename).  `None` in
    /// production; the crash-recovery harness arms it.
    pub fault_injector: Option<Arc<FaultInjector>>,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        DurabilityOptions {
            durability: Durability::Full,
            checkpoint_every_commits: 1024,
            wal_segment_bytes: bdbms_storage::wal::DEFAULT_SEGMENT_BYTES,
            pool_pages: 1024,
            fault_injector: None,
        }
    }
}

impl DurabilityOptions {
    /// Default options with [`Durability::NoSync`] (bulk loads, benches).
    pub fn no_sync() -> Self {
        DurabilityOptions {
            durability: Durability::NoSync,
            ..Default::default()
        }
    }
}

/// What `Database::open` replayed and discarded (see
/// [`Database::last_recovery`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Committed transactions replayed from the WAL.
    pub replayed_commits: u64,
    /// Logical operations applied during replay.
    pub replayed_ops: u64,
    /// Operations after the last commit record — an uncommitted tail —
    /// discarded.
    pub discarded_ops: u64,
    /// Physically damaged tail bytes truncated by the WAL scan.
    pub torn_bytes: u64,
    /// Salvage mode only: tables quarantined (dropped from the catalog)
    /// because their heaps could not be fully read.  Empty on a normal
    /// open.
    pub quarantined_tables: Vec<String>,
    /// Salvage mode only: WAL records skipped because they could not be
    /// decoded or applied (e.g. they target a quarantined table).
    pub skipped_wal_records: u64,
    /// Salvage mode only: the checkpoint image was unreadable (bad
    /// header or snapshot) and every table in it was lost; recovery
    /// restarted from an empty state plus whatever the WAL could rebuild.
    pub image_lost: bool,
    /// Salvage mode only: the WAL chain was unreadable and was discarded
    /// rather than replayed.
    pub wal_lost: bool,
}

/// The durable half of a [`Database`]: paths, the WAL, and checkpoint
/// bookkeeping.  `None` on in-memory databases.
pub(crate) struct PersistentStorage {
    dir: PathBuf,
    wal: SharedWal,
    /// The WAL's reserved-LSN frontier, mirrored for page stamping.
    lsn_source: Arc<AtomicU64>,
    opts: DurabilityOptions,
    commits_since_checkpoint: u64,
    last_recovery: Option<RecoveryReport>,
    /// Set by `close` / `simulate_crash`: the drop hook must not
    /// checkpoint.
    skip_shutdown: bool,
    /// Group-commit gate, armed by [`Database::enable_group_commit`].
    /// When present, `wal_commit` appends without flushing and parks a
    /// [`CommitTicket`] in `pending_ticket`; the background flusher
    /// amortizes one fsync over every commit queued behind it.
    group: Option<GroupCommitter>,
    /// The ticket of the most recent deferred commit, picked up by
    /// [`Database::take_commit_ticket`] (the server engine collects it
    /// after each statement and acknowledges the client only once it
    /// resolves).
    pending_ticket: Option<CommitTicket>,
}

// ---------------------------------------------------------------------
// Header page
// ---------------------------------------------------------------------

fn write_header(pg: &mut [u8], meta: Rid) {
    pg[..8].copy_from_slice(HEADER_MAGIC);
    pg[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    pg[12..20].copy_from_slice(&meta.page.0.to_le_bytes());
    pg[20..22].copy_from_slice(&meta.slot.to_le_bytes());
    let crc = crc32(&pg[..22]);
    pg[22..26].copy_from_slice(&crc.to_le_bytes());
}

fn read_header(pg: &[u8]) -> Result<Rid> {
    if &pg[..8] != HEADER_MAGIC {
        return Err(BdbmsError::corrupt(
            "bad magic in database header page (not a bdbms database?)",
        ));
    }
    let crc = u32::from_le_bytes(pg[22..26].try_into().unwrap());
    if crc32(&pg[..22]) != crc {
        return Err(BdbmsError::corrupt(
            "database header page checksum mismatch",
        ));
    }
    let version = u32::from_le_bytes(pg[8..12].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(BdbmsError::corrupt(format!(
            "unsupported database format version {version}"
        )));
    }
    Ok(Rid {
        page: PageId(u64::from_le_bytes(pg[12..20].try_into().unwrap())),
        slot: u16::from_le_bytes(pg[20..22].try_into().unwrap()),
    })
}

// ---------------------------------------------------------------------
// Snapshot (checkpoint image metadata)
// ---------------------------------------------------------------------

/// Serialize the whole engine state, with each table's rows already moved
/// into `moved` heaps (page lists + rid maps refer to the *new* store).
fn encode_snapshot(
    db: &Database,
    moved: &[(String, HeapFile, BTreeMap<u64, Rid>)],
    wal_frontier: u64,
) -> Vec<u8> {
    let mut body = Vec::new();
    codec::put_u64(&mut body, db.clock.now());
    // every WAL entry with an LSN below this is already folded into the
    // image; recovery skips them.  This is what makes the checkpoint's
    // rename → WAL-truncate sequence crash-safe: a crash between the
    // two leaves the new image + the old (pre-checkpoint) log, whose
    // entries are all below the frontier and are ignored, instead of
    // being double-applied.
    codec::put_u64(&mut body, wal_frontier);

    let (users, grants) = db.auth.snapshot();
    codec::put_u32(&mut body, users.len() as u32);
    for (user, groups) in &users {
        codec::put_str(&mut body, user);
        codec::put_strs(&mut body, groups);
    }
    codec::put_u32(&mut body, grants.len() as u32);
    for (grantee, table, privs) in &grants {
        codec::put_str(&mut body, grantee);
        codec::put_str(&mut body, table);
        put_privileges(&mut body, privs);
    }

    let (configs, log, next_op_id) = db.approval.snapshot();
    codec::put_u32(&mut body, configs.len() as u32);
    for (table, columns, approver) in &configs {
        codec::put_str(&mut body, table);
        put_opt_strs(&mut body, columns.as_deref());
        codec::put_str(&mut body, approver);
    }
    codec::put_u32(&mut body, log.len() as u32);
    for op in log {
        put_logged_op(&mut body, op);
    }
    codec::put_u64(&mut body, next_op_id);

    let rules = db.deps.rules();
    codec::put_u32(&mut body, rules.len() as u32);
    for r in rules {
        put_rule(&mut body, r);
    }
    codec::put_u64(&mut body, db.deps.next_rule_id());

    codec::put_u32(&mut body, moved.len() as u32);
    for ((name, heap, rows), t) in moved.iter().zip(db.catalog.tables()) {
        debug_assert!(t.name.eq_ignore_ascii_case(name));
        codec::put_str(&mut body, &t.name);
        codec::put_str(&mut body, &t.owner);
        put_schema(&mut body, &t.schema);
        codec::put_u64(&mut body, t.peek_next_row());
        let pages: Vec<u64> = heap.pages().iter().map(|p| p.0).collect();
        codec::put_u64s(&mut body, &pages);
        codec::put_u32(&mut body, rows.len() as u32);
        for (row_no, rid) in rows {
            codec::put_u64(&mut body, *row_no);
            codec::put_u64(&mut body, rid.page.0);
            codec::put_u16(&mut body, rid.slot);
        }
        let indexes = t.indexes();
        codec::put_u32(&mut body, indexes.len() as u32);
        for idx in indexes {
            codec::put_str(&mut body, &idx.name);
            codec::put_u32(&mut body, idx.column as u32);
        }
        let seq_indexes = t.seq_indexes();
        codec::put_u32(&mut body, seq_indexes.len() as u32);
        for sidx in seq_indexes {
            codec::put_str(&mut body, &sidx.name);
            codec::put_u32(&mut body, sidx.column as u32);
            put_seq_kind(&mut body, sidx.kind);
        }
        // outdated bitmap, sparse
        codec::put_u64(&mut body, t.outdated.rows() as u64);
        codec::put_u64(&mut body, t.outdated.cols() as u64);
        let set_cells: Vec<(usize, usize)> = t.outdated.iter_set().collect();
        codec::put_u32(&mut body, set_cells.len() as u32);
        for (r, c) in set_cells {
            codec::put_u64(&mut body, r as u64);
            codec::put_u64(&mut body, c as u64);
        }
        codec::put_u32(&mut body, t.deleted_log.len() as u32);
        for row in &t.deleted_log {
            put_deleted_row(&mut body, row);
        }
        codec::put_u32(&mut body, t.ann_sets.len() as u32);
        for set in &t.ann_sets {
            set.encode(&mut body);
        }
    }

    let mut out = Vec::with_capacity(body.len() + 12);
    codec::put_u32(&mut out, FORMAT_VERSION);
    codec::put_u32(&mut out, crc32(&body));
    codec::put_u64(&mut out, body.len() as u64);
    out.extend_from_slice(&body);
    out
}

/// Decode a snapshot blob into a fresh `db` whose pool already serves
/// the image's pages (table heaps attach to it), returning the WAL
/// frontier: log entries below it are already part of the image.
///
/// Without a quarantine list every failure is fatal (normal open).
/// With one (salvage mode), a table that fails to *rebuild* is itemized
/// and skipped instead — rebuilding reads the whole heap (statistics,
/// index backfill), so a damaged heap page surfaces here.  The snapshot
/// cursor has fully consumed the table's bytes before the rebuild, so
/// skipping one table cannot desync the next; decode errors of the blob
/// itself stay fatal in both modes (the caller treats that as image
/// loss).
fn decode_snapshot_mode(
    db: &mut Database,
    blob: &[u8],
    pool: &Arc<BufferPool>,
    mut quarantine: Option<&mut Vec<String>>,
) -> Result<u64> {
    let mut head = Cur::new(blob);
    let version = head.u32()?;
    if version != FORMAT_VERSION {
        return Err(BdbmsError::corrupt(format!(
            "unsupported snapshot version {version}"
        )));
    }
    let crc = head.u32()?;
    let len = head.u64()? as usize;
    let body = blob
        .get(16..16 + len)
        .ok_or_else(|| BdbmsError::corrupt("snapshot shorter than its declared length"))?;
    if crc32(body) != crc {
        return Err(BdbmsError::corrupt("snapshot checksum mismatch"));
    }
    let mut cur = Cur::new(body);

    db.clock.advance_to(cur.u64()?);
    let wal_frontier = cur.u64()?;

    let n = cur.len()?;
    let mut users = Vec::with_capacity(n);
    for _ in 0..n {
        users.push((cur.str()?, cur.strs()?));
    }
    let n = cur.len()?;
    let mut grants = Vec::with_capacity(n);
    for _ in 0..n {
        grants.push((cur.str()?, cur.str()?, get_privileges(&mut cur)?));
    }
    db.auth = AuthManager::restore(users, grants);

    let n = cur.len()?;
    let mut configs = Vec::with_capacity(n);
    for _ in 0..n {
        configs.push((cur.str()?, get_opt_strs(&mut cur)?, cur.str()?));
    }
    let n = cur.len()?;
    let mut log = Vec::with_capacity(n);
    for _ in 0..n {
        log.push(get_logged_op(&mut cur)?);
    }
    let next_op_id = cur.u64()?;
    db.approval = ApprovalManager::restore(configs, log, next_op_id);

    let n = cur.len()?;
    let mut rules = Vec::with_capacity(n);
    for _ in 0..n {
        rules.push(get_rule(&mut cur)?);
    }
    let next_rule_id = cur.u64()?;
    db.deps.restore(rules, next_rule_id);

    let n_tables = cur.len()?;
    for _ in 0..n_tables {
        let name = cur.str()?;
        let owner = cur.str()?;
        let schema = get_schema(&mut cur)?;
        let next_row = cur.u64()?;
        let pages: Vec<PageId> = cur.u64s()?.into_iter().map(PageId).collect();
        let n = cur.len()?;
        let mut rows = BTreeMap::new();
        for _ in 0..n {
            let row_no = cur.u64()?;
            let page = PageId(cur.u64()?);
            let slot = cur.u16()?;
            rows.insert(row_no, Rid { page, slot });
        }
        let n = cur.len()?;
        let mut index_defs = Vec::with_capacity(n);
        for _ in 0..n {
            index_defs.push((cur.str()?, cur.u32()? as usize));
        }
        let n = cur.len()?;
        let mut seq_index_defs = Vec::with_capacity(n);
        for _ in 0..n {
            seq_index_defs.push((cur.str()?, cur.u32()? as usize, get_seq_kind(&mut cur)?));
        }
        let bm_rows = cur.u64()? as usize;
        let bm_cols = cur.u64()? as usize;
        // the dimensions drive an allocation, so cap them before trusting
        // them: a corrupt blob must not be able to overflow `rows * cols`
        // or reserve gigabytes
        if bm_rows
            .checked_mul(bm_cols)
            .is_none_or(|bits| bits > 1 << 30)
        {
            return Err(BdbmsError::corrupt(format!(
                "implausible outdated bitmap {bm_rows}x{bm_cols}"
            )));
        }
        let mut outdated = bdbms_common::bitmap::CellBitmap::new(bm_rows, bm_cols);
        let n = cur.len()?;
        for _ in 0..n {
            let r = cur.u64()? as usize;
            let c = cur.u64()? as usize;
            if r >= bm_rows || c >= bm_cols {
                return Err(BdbmsError::corrupt("outdated bit outside its bitmap"));
            }
            outdated.set(r, c);
        }
        let n = cur.len()?;
        let mut deleted_log = Vec::with_capacity(n);
        for _ in 0..n {
            deleted_log.push(get_deleted_row(&mut cur)?);
        }
        let n = cur.len()?;
        let mut ann_sets = Vec::with_capacity(n);
        for _ in 0..n {
            ann_sets.push(AnnotationSet::decode(&mut cur)?);
        }
        let heap = HeapFile::attach(pool.clone(), pages);
        let table = Table::from_parts(
            name.clone(),
            schema,
            owner,
            heap,
            rows,
            next_row,
            ann_sets,
            outdated,
            deleted_log,
            &index_defs,
            &seq_index_defs,
        );
        match table {
            Ok(table) => db
                .catalog
                .add_table(table)
                .map_err(|e| BdbmsError::corrupt(e.message().to_string()))?,
            Err(e) => match &mut quarantine {
                Some(q) => q.push(name),
                None => return Err(e),
            },
        }
    }
    if !cur.is_empty() {
        return Err(BdbmsError::corrupt("trailing bytes after snapshot"));
    }
    Ok(wal_frontier)
}

// ---------------------------------------------------------------------
// Database: open / create / checkpoint / recovery
// ---------------------------------------------------------------------

impl Database {
    /// Create a new durable database directory at `path` with default
    /// [`DurabilityOptions`].  Errors with `AlreadyExists` if a database
    /// is already there.
    pub fn create(path: impl AsRef<Path>) -> Result<Database> {
        Self::create_with(path, DurabilityOptions::default())
    }

    /// [`create`](Self::create) with explicit options.
    pub fn create_with(path: impl AsRef<Path>, opts: DurabilityOptions) -> Result<Database> {
        let dir = path.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        if dir.join(DATA_FILE).exists() {
            return Err(BdbmsError::already_exists(format!(
                "database at `{}`",
                dir.display()
            )));
        }
        let (mut wal, _stale) =
            Wal::open_sized(dir.join(WAL_DIR), opts.durability, opts.wal_segment_bytes)?;
        if let Some(inj) = &opts.fault_injector {
            wal.set_fault_injector(inj.clone());
        }
        // a WAL without a data file is debris from an interrupted create
        wal.reset()?;
        let wal = SharedWal::new(wal);
        let lsn_source = Arc::new(AtomicU64::new(wal.with(|w| w.reserved_lsn())));
        let mut db = Database::with_pool(Arc::new(BufferPool::new(
            Box::new(MemStore::new()),
            opts.pool_pages,
        )));
        db.storage = Some(PersistentStorage {
            dir,
            wal,
            lsn_source,
            opts,
            commits_since_checkpoint: 0,
            last_recovery: None,
            skip_shutdown: false,
            group: None,
            pending_ticket: None,
        });
        // the first checkpoint writes the empty image and swaps the pool
        // onto the new FileStore
        db.checkpoint_inner()?;
        db.attach_redo();
        Ok(db)
    }

    /// [`open`](Self::open) the database at `path` if a data file is
    /// already there, otherwise [`create`](Self::create) it — the
    /// server's boot behavior.
    pub fn open_or_create(path: impl AsRef<Path>) -> Result<Database> {
        let dir = path.as_ref();
        if dir.join(DATA_FILE).exists() {
            Self::open(dir)
        } else {
            Self::create(dir)
        }
    }

    /// Open an existing durable database, replaying the WAL: committed
    /// transactions become visible, the uncommitted tail is discarded,
    /// and a fresh checkpoint is written before the database is handed
    /// back (so the WAL is empty and the image current).
    pub fn open(path: impl AsRef<Path>) -> Result<Database> {
        Self::open_with(path, DurabilityOptions::default())
    }

    /// [`open`](Self::open) with explicit options.
    pub fn open_with(path: impl AsRef<Path>, opts: DurabilityOptions) -> Result<Database> {
        let dir = path.as_ref().to_path_buf();
        let data = dir.join(DATA_FILE);
        if !data.exists() {
            return Err(BdbmsError::not_found(format!(
                "no database at `{}`",
                dir.display()
            )));
        }
        let (mut db, wal_frontier) = Self::load_image(&data, &opts, None)?;

        let (mut wal, scan) =
            Wal::open_sized(dir.join(WAL_DIR), opts.durability, opts.wal_segment_bytes)?;
        if let Some(inj) = &opts.fault_injector {
            wal.set_fault_injector(inj.clone());
        }
        let report = db.replay(scan, wal_frontier)?;
        let wal = SharedWal::new(wal);
        let lsn_source = Arc::new(AtomicU64::new(wal.with(|w| w.reserved_lsn())));
        db.storage = Some(PersistentStorage {
            dir,
            wal,
            lsn_source,
            opts,
            commits_since_checkpoint: 0,
            last_recovery: Some(report),
            skip_shutdown: false,
            group: None,
            pending_ticket: None,
        });
        // fold the replayed state into a fresh image; truncates the WAL
        // (dropping the uncommitted tail for good)
        db.checkpoint_inner()?;
        db.attach_redo();
        Ok(db)
    }

    /// Load the checkpoint image: a buffer pool over the data file, the
    /// header page, and the snapshot blob decoded into a fresh engine.
    /// Returns the table-level state and the WAL frontier.  With a
    /// quarantine list (salvage mode), tables that fail to rebuild are
    /// itemized there instead of failing the load.
    fn load_image(
        data: &Path,
        opts: &DurabilityOptions,
        quarantine: Option<&mut Vec<String>>,
    ) -> Result<(Database, u64)> {
        let store: Box<dyn PageStore> = match &opts.fault_injector {
            Some(inj) => Box::new(FaultStore::new(
                Box::new(FileStore::open(data)?),
                inj.clone(),
            )),
            None => Box::new(FileStore::open(data)?),
        };
        let pool = Arc::new(BufferPool::new(store, opts.pool_pages));
        // no page of the image may be overwritten while we recover on it
        pool.set_pin_dirty(true);
        if pool.num_pages() == 0 {
            return Err(BdbmsError::corrupt(format!(
                "database file `{}` is empty",
                data.display()
            )));
        }
        let meta_rid = pool.with_page(PageId(0), read_header)??;
        let meta_heap = HeapFile::attach(pool.clone(), Vec::new());
        let blob = meta_heap
            .get(meta_rid)
            .map_err(|e| BdbmsError::corrupt(format!("unreadable snapshot record: {e}")))?;
        let mut db = Database::with_pool(pool.clone());
        let wal_frontier = decode_snapshot_mode(&mut db, &blob, &pool, quarantine)?;
        Ok((db, wal_frontier))
    }

    /// Open a damaged database, salvaging what can still be read instead
    /// of refusing.  Where [`open`](Self::open) fails on the first
    /// corruption, salvage degrades gracefully:
    ///
    /// * a table whose heap cannot be fully read is **quarantined** —
    ///   dropped from the catalog and itemized in the returned
    ///   [`RecoveryReport::quarantined_tables`] — while every untouched
    ///   table opens normally;
    /// * an unreadable checkpoint image (bad header, snapshot checksum)
    ///   loses all tables ([`RecoveryReport::image_lost`]) but recovery
    ///   still proceeds from empty state plus the WAL;
    /// * WAL records that cannot be decoded or applied are skipped and
    ///   counted, not fatal; an unreadable WAL chain is discarded
    ///   ([`RecoveryReport::wal_lost`]).
    ///
    /// On return the surviving state has been re-checkpointed, so the
    /// on-disk image is clean again.  A committed transaction touching a
    /// quarantined table may be partially applied to the survivors —
    /// salvage trades atomicity for availability, which is why it is a
    /// separate entry point and never the default.
    pub fn open_salvage(path: impl AsRef<Path>) -> Result<Database> {
        Self::open_salvage_with(path, DurabilityOptions::default())
    }

    /// [`open_salvage`](Self::open_salvage) with explicit options.
    pub fn open_salvage_with(path: impl AsRef<Path>, opts: DurabilityOptions) -> Result<Database> {
        let dir = path.as_ref().to_path_buf();
        let data = dir.join(DATA_FILE);
        if !data.exists() {
            return Err(BdbmsError::not_found(format!(
                "no database at `{}`",
                dir.display()
            )));
        }
        let mut report = RecoveryReport::default();

        let (mut db, wal_frontier) =
            match Self::load_image(&data, &opts, Some(&mut report.quarantined_tables)) {
                Ok(v) => v,
                Err(_) => {
                    report.image_lost = true;
                    report.quarantined_tables.clear();
                    let db = Database::with_pool(Arc::new(BufferPool::new(
                        Box::new(MemStore::new()),
                        opts.pool_pages,
                    )));
                    // frontier 0: let the WAL rebuild everything it can
                    (db, 0)
                }
            };

        // Quarantine any table whose rows cannot all be read back (a
        // damaged heap page surfaces here as a checksum/decode error).
        let damaged: Vec<String> = db
            .catalog
            .tables()
            .filter(|t| t.iter_rows().any(|r| r.is_err()))
            .map(|t| t.name.clone())
            .collect();
        for name in damaged {
            let _ = db.catalog.drop_table(&name);
            report.quarantined_tables.push(name);
        }

        let wal_dir = dir.join(WAL_DIR);
        let (mut wal, scan) =
            match Wal::open_sized(&wal_dir, opts.durability, opts.wal_segment_bytes) {
                Ok(v) => v,
                Err(_) => {
                    // the chain is unreadable mid-stream: discard it and
                    // start a fresh log (the image state still stands)
                    report.wal_lost = true;
                    fs::remove_dir_all(&wal_dir)?;
                    Wal::open_sized(&wal_dir, opts.durability, opts.wal_segment_bytes)?
                }
            };
        if let Some(inj) = &opts.fault_injector {
            wal.set_fault_injector(inj.clone());
        }
        report.torn_bytes = scan.torn_bytes;
        db.replay_salvage(scan, wal_frontier, &mut report);

        let wal = SharedWal::new(wal);
        let lsn_source = Arc::new(AtomicU64::new(wal.with(|w| w.reserved_lsn())));
        db.storage = Some(PersistentStorage {
            dir,
            wal,
            lsn_source,
            opts,
            commits_since_checkpoint: 0,
            last_recovery: Some(report),
            skip_shutdown: false,
            group: None,
            pending_ticket: None,
        });
        // re-checkpoint the survivors: the on-disk image is clean again
        db.checkpoint_inner()?;
        db.attach_redo();
        Ok(db)
    }

    /// [`replay`](Self::replay) in salvage mode: undecodable or
    /// unappliable records are counted and skipped instead of aborting
    /// the open.
    fn replay_salvage(&mut self, scan: WalScan, frontier: u64, report: &mut RecoveryReport) {
        let mut pending: Vec<WalRecord> = Vec::new();
        for entry in scan.entries {
            if entry.lsn < frontier {
                continue;
            }
            match WalRecord::decode(&entry.payload) {
                Ok(WalRecord::Commit { clock }) => {
                    for r in pending.drain(..) {
                        match self.apply_wal_record(r) {
                            Ok(()) => report.replayed_ops += 1,
                            Err(_) => report.skipped_wal_records += 1,
                        }
                    }
                    self.clock.advance_to(clock);
                    report.replayed_commits += 1;
                }
                Ok(rec) => pending.push(rec),
                Err(_) => report.skipped_wal_records += 1,
            }
        }
        report.discarded_ops = pending.len() as u64;
    }

    /// Replay scanned WAL entries: buffer records, apply on each commit.
    /// Entries below `frontier` are already folded into the checkpoint
    /// image (a crash hit the window between the image rename and the
    /// WAL truncation) and are skipped, not double-applied.
    fn replay(&mut self, scan: WalScan, frontier: u64) -> Result<RecoveryReport> {
        let mut report = RecoveryReport {
            torn_bytes: scan.torn_bytes,
            ..Default::default()
        };
        let mut pending: Vec<WalRecord> = Vec::new();
        for entry in scan.entries {
            if entry.lsn < frontier {
                continue;
            }
            let rec = WalRecord::decode(&entry.payload)?;
            if let WalRecord::Commit { clock } = rec {
                for r in pending.drain(..) {
                    self.apply_wal_record(r).map_err(|e| {
                        BdbmsError::corrupt(format!(
                            "WAL replay diverged from the checkpoint image: {e}"
                        ))
                    })?;
                    report.replayed_ops += 1;
                }
                self.clock.advance_to(clock);
                report.replayed_commits += 1;
            } else {
                pending.push(rec);
            }
        }
        report.discarded_ops = pending.len() as u64;
        Ok(report)
    }

    /// Apply one committed redo record against the live state, through
    /// the same engine methods that produced it.
    fn apply_wal_record(&mut self, rec: WalRecord) -> Result<()> {
        match rec {
            WalRecord::RowInsert {
                table,
                row_no,
                values,
            } => {
                self.catalog
                    .table_mut(&table)?
                    .insert_with_row_no(row_no, values)?;
            }
            WalRecord::RowUpdate {
                table,
                row_no,
                values,
            } => {
                self.catalog.table_mut(&table)?.update(row_no, values)?;
            }
            WalRecord::RowDelete { table, row_no } => {
                self.catalog.table_mut(&table)?.delete(row_no)?;
            }
            WalRecord::OutdatedMark { table, row_no, col } => {
                self.catalog
                    .table_mut(&table)?
                    .mark_outdated(row_no, col as usize);
            }
            WalRecord::OutdatedClear { table, row_no, col } => {
                self.catalog
                    .table_mut(&table)?
                    .clear_outdated(row_no, col as usize);
            }
            WalRecord::DeletedLogPush { table, row } => {
                self.catalog.table_mut(&table)?.push_deleted(row);
            }
            WalRecord::TableCreate {
                name,
                owner,
                schema,
            } => {
                let table = Table::create(name, schema, owner, self.pool.clone())?;
                self.catalog.add_table(table)?;
            }
            WalRecord::TableDrop { name } => {
                self.catalog.drop_table(&name)?;
            }
            WalRecord::IndexCreate {
                table,
                index,
                column,
            } => {
                self.catalog
                    .table_mut(&table)?
                    .create_index(&index, &column)?;
            }
            WalRecord::IndexDrop { table, index } => {
                self.catalog.table_mut(&table)?.drop_index(&index)?;
            }
            WalRecord::AnnSetCreate {
                table,
                set,
                cell_scheme,
                system_only,
                schema_enforced,
            } => {
                let mut s = AnnotationSet::new(set, cell_scheme);
                s.system_only = system_only;
                s.schema_enforced = schema_enforced;
                self.catalog.table_mut(&table)?.add_ann_set(s);
            }
            WalRecord::AnnSetDrop { table, set } => {
                let t = self.catalog.table_mut(&table)?;
                let pos = t
                    .ann_sets
                    .iter()
                    .position(|s| s.name.eq_ignore_ascii_case(&set))
                    .ok_or_else(|| {
                        BdbmsError::not_found(format!("annotation table `{set}` on `{table}`"))
                    })?;
                t.remove_ann_set_at(pos);
            }
            WalRecord::AnnAdd {
                table,
                set,
                raw,
                creator,
                created,
                rows,
                cols,
            } => {
                let cols: Vec<usize> = cols.into_iter().map(|c| c as usize).collect();
                self.catalog
                    .table_mut(&table)?
                    .ann_add(&set, &raw, &creator, created, &rows, &cols)
                    .ok_or_else(|| {
                        BdbmsError::not_found(format!("annotation table `{set}` on `{table}`"))
                    })?;
            }
            WalRecord::AnnArchive {
                table,
                set,
                cells,
                between,
                archived,
            } => {
                let cells: Vec<(u64, usize)> =
                    cells.into_iter().map(|(r, c)| (r, c as usize)).collect();
                self.catalog
                    .table_mut(&table)?
                    .ann_set_archived(&set, &cells, between, archived)
                    .ok_or_else(|| {
                        BdbmsError::not_found(format!("annotation table `{set}` on `{table}`"))
                    })?;
            }
            WalRecord::UserCreate { name, groups } => {
                self.auth.create_user(&name, &groups)?;
            }
            WalRecord::Grant {
                grantee,
                table,
                privileges,
            } => {
                self.auth.grant(&grantee, &table, &privileges);
            }
            WalRecord::Revoke {
                grantee,
                table,
                privileges,
            } => {
                self.auth.revoke(&grantee, &table, &privileges);
            }
            WalRecord::ApprovalStart {
                table,
                columns,
                approver,
            } => {
                self.approval.start(&table, columns, &approver);
            }
            WalRecord::ApprovalStop { table, columns } => {
                self.approval.stop(&table, &columns);
            }
            WalRecord::ApprovalLogged { op } => {
                self.approval.restore_log_entry(op);
            }
            WalRecord::ApprovalDecide { id, approve } => {
                self.approval
                    .decide(bdbms_common::ids::OperationId(id), approve)?;
            }
            WalRecord::RuleAdd { rule } => {
                self.deps.replay_rule(rule);
            }
            WalRecord::RuleDrop { name } => {
                self.deps.drop_rule(&name)?;
            }
            WalRecord::Commit { clock } => {
                self.clock.advance_to(clock);
            }
            WalRecord::BulkLoad {
                table,
                path,
                format,
                rows,
            } => {
                let t = self.catalog.table_mut(&table)?;
                let loaded = crate::ingest::bulk_load(t, Path::new(&path), format)?;
                if loaded != rows {
                    return Err(BdbmsError::corrupt(format!(
                        "bulk-load replay of `{path}` into `{table}` yielded {loaded} \
                         rows, the committed load had {rows} (source file changed?)"
                    )));
                }
            }
            WalRecord::SeqIndexCreate {
                table,
                index,
                column,
                kind,
            } => {
                self.catalog
                    .table_mut(&table)?
                    .create_seq_index(&index, &column, kind)?;
            }
            WalRecord::SeqIndexDrop { table, index } => {
                self.catalog.table_mut(&table)?.drop_seq_index(&index)?;
            }
        }
        Ok(())
    }

    /// Enable redo collection and share the sink with every table.
    fn attach_redo(&mut self) {
        let sink = self.txn.redo_sink();
        sink.borrow_mut().enabled = true;
        for t in self.catalog.tables_mut() {
            t.set_redo(sink.clone());
        }
        self.register_wal_metrics();
    }

    /// Publish the WAL's instruments (owned by [`Wal`], which lives in
    /// the storage crate and knows nothing of the registry) under their
    /// engine-wide names.  Every durable open/create path funnels through
    /// [`attach_redo`](Self::attach_redo), so this runs exactly once per
    /// attached WAL.
    fn register_wal_metrics(&self) {
        let Some(ps) = &self.storage else { return };
        let wm = ps.wal.with(|w| w.metrics());
        self.metrics.register_counter("wal.appends", wm.appends);
        self.metrics.register_counter("wal.fsyncs", wm.fsyncs);
        self.metrics
            .register_histogram("wal.fsync_latency_ns", wm.fsync_latency_ns);
    }

    /// Is this database backed by files (vs. purely in-memory)?
    pub fn is_persistent(&self) -> bool {
        self.storage.is_some()
    }

    /// The database directory, if persistent.
    pub fn path(&self) -> Option<&Path> {
        self.storage.as_ref().map(|s| s.dir.as_path())
    }

    /// What the last `open` replayed/discarded (`None` for in-memory
    /// databases and fresh `create`s).
    pub fn last_recovery(&self) -> Option<&RecoveryReport> {
        self.storage.as_ref().and_then(|s| s.last_recovery.as_ref())
    }

    /// Live WAL segment files (observability: checkpoints truncate them).
    pub fn wal_segment_count(&self) -> Option<usize> {
        self.storage
            .as_ref()
            .map(|s| s.wal.with(|w| w.segment_count()))
            .transpose()
            .ok()
            .flatten()
    }

    /// Write a checkpoint: a complete fresh image of the database,
    /// atomically renamed over the old one, after which the WAL is
    /// truncated.  No-op for in-memory databases; `TxnState` error inside
    /// an open transaction (the image must be transaction-consistent).
    pub fn checkpoint(&mut self) -> Result<()> {
        if self.storage.is_none() {
            return Ok(());
        }
        if self.in_transaction() {
            return Err(BdbmsError::txn_state(
                "CHECKPOINT cannot run inside an open transaction",
            ));
        }
        self.checkpoint_inner()
    }

    /// The checkpoint body (callers have verified preconditions).
    pub(crate) fn checkpoint_inner(&mut self) -> Result<()> {
        let cp_started = std::time::Instant::now();
        let (dir, pool_pages, wal, lsn_source, fault) = {
            let ps = self.storage.as_ref().expect("checkpoint of durable db");
            (
                ps.dir.clone(),
                ps.opts.pool_pages,
                ps.wal.clone(),
                ps.lsn_source.clone(),
                ps.opts.fault_injector.clone(),
            )
        };
        // make committed WAL records durable before the image rewrite:
        // if the rename below never happens, recovery needs them
        let wal_frontier = wal.with(|w| -> Result<u64> {
            w.flush()?;
            Ok(w.reserved_lsn())
        })?;
        let tmp = dir.join(DATA_TMP);
        let _ = fs::remove_file(&tmp);
        let tmp_store: Box<dyn PageStore> = match &fault {
            Some(inj) => Box::new(FaultStore::new(
                Box::new(FileStore::create(&tmp)?),
                inj.clone(),
            )),
            None => Box::new(FileStore::create(&tmp)?),
        };
        let new_pool = Arc::new(BufferPool::new(tmp_store, pool_pages));
        let header = new_pool.allocate()?;
        debug_assert_eq!(header, PageId(0));
        let mut moved: Vec<(String, HeapFile, BTreeMap<u64, Rid>)> = Vec::new();
        for t in self.catalog.tables() {
            let (heap, rows) = t.write_rows_to(new_pool.clone())?;
            moved.push((t.name.clone(), heap, rows));
        }
        let blob = encode_snapshot(self, &moved, wal_frontier);
        let mut meta_heap = HeapFile::create(new_pool.clone())?;
        let meta_rid = meta_heap.insert(&blob)?;
        new_pool.with_page_mut(PageId(0), |pg| write_header(pg, meta_rid))?;
        new_pool.flush_all()?;
        new_pool.sync_store()?;
        if let Some(inj) = &fault {
            // a rename either happens or doesn't — data-shaped faults
            // degrade to an error, leaving the old image in place
            if inj.next_op() != IoDecision::Proceed {
                return Err(FaultInjector::injected_error("checkpoint image rename"));
            }
        }
        fs::rename(&tmp, dir.join(DATA_FILE))?;
        if let Ok(d) = File::open(&dir) {
            let _ = d.sync_all();
        }
        // adopt the new image as the live storage
        for (name, heap, rows) in moved {
            self.catalog.table_mut(&name)?.swap_storage(heap, rows);
        }
        new_pool.set_pin_dirty(true);
        new_pool.set_flush_gate(Arc::new(wal.clone()) as Arc<dyn FlushGate>);
        new_pool.set_lsn_source(lsn_source);
        self.pool = new_pool;
        // Truncating the log is pure space reclamation at this point:
        // the image's WAL frontier makes recovery skip the old entries
        // whether or not the files disappear, so a failure here must not
        // fail the (already effective) checkpoint.
        let _ = wal.with(|w| w.reset());
        let ps = self.storage.as_mut().expect("still durable");
        ps.commits_since_checkpoint = 0;
        self.engine_metrics.checkpoints.inc();
        self.engine_metrics
            .checkpoint_duration_ns
            .record(cp_started.elapsed().as_nanos() as u64);
        if let Ok(md) = fs::metadata(dir.join(DATA_FILE)) {
            self.engine_metrics.checkpoint_bytes.add(md.len());
        }
        Ok(())
    }

    /// Checkpoint if the auto-checkpoint interval has elapsed.
    /// Best-effort: the triggering commit is already durable in the WAL,
    /// so a checkpoint failure (say, no space for the image rewrite)
    /// must not turn a successful commit into an error — the counter
    /// stays past the threshold and the next commit retries.
    pub(crate) fn maybe_checkpoint(&mut self) {
        let due = match &self.storage {
            Some(ps) => ps.commits_since_checkpoint >= ps.opts.checkpoint_every_commits,
            None => false,
        };
        if due {
            let _ = self.checkpoint_inner();
        }
    }

    /// Append the open transaction's redo records + a commit record to
    /// the WAL and flush per the durability policy.  Called *before* the
    /// in-memory commit; an error here means the transaction must roll
    /// back (the partial WAL tail has no commit record and is discarded
    /// by the next recovery).
    ///
    /// With [group commit](Database::enable_group_commit) armed, the
    /// flush is *deferred*: the records are appended and the commit LSN
    /// queued at the group-commit gate, and the resulting
    /// [`CommitTicket`] is parked for [`Database::take_commit_ticket`].
    /// `Ok` then means "appended, durability pending" — the caller must
    /// not acknowledge the commit to a client until the ticket resolves.
    pub(crate) fn wal_commit(&mut self) -> Result<()> {
        if self.storage.is_none() {
            return Ok(());
        }
        let recs = self.txn.redo_take();
        if recs.is_empty() {
            return Ok(()); // read-only transaction: no WAL traffic
        }
        let clock = self.clock.now();
        let ps = self.storage.as_mut().expect("checked above");
        let group = &ps.group;
        let ticket = ps.wal.with(|w| -> Result<Option<CommitTicket>> {
            // on any failure the half-written commit is rewound out of
            // the log: left in place, a *later* successful commit would
            // make these frames replayable and resurrect a transaction
            // the caller is about to roll back.  (If the rewind itself
            // fails the WAL latches damaged and refuses further writes
            // until reopen.)
            let pos = w.position();
            let append_all = |w: &mut bdbms_storage::Wal| -> Result<()> {
                let mut buf = Vec::new();
                for r in &recs {
                    buf.clear();
                    r.encode(&mut buf);
                    w.append(&buf)?;
                }
                buf.clear();
                WalRecord::Commit { clock }.encode(&mut buf);
                w.append(&buf)?;
                // grouped commits leave the flush to the gate's flusher
                // thread — one fsync covers every commit queued there
                if group.is_some() {
                    Ok(())
                } else {
                    w.flush()
                }
            };
            // Bounded deterministic retry: a *transient* I/O failure
            // (ErrorCode::Io — a flaky fsync, not logical damage) is
            // retried up to twice more after rewinding the half-written
            // frames.  Anything else, a failed rewind, or exhaustion
            // escalates to the caller's rollback.
            let mut last_err = None;
            for _ in 0..3 {
                match append_all(w) {
                    Ok(()) => {
                        last_err = None;
                        break;
                    }
                    Err(e) => {
                        let rewound = w.rewind(pos).is_ok();
                        let transient = e.code() == ErrorCode::Io;
                        last_err = Some(e);
                        if !rewound || !transient {
                            break;
                        }
                    }
                }
            }
            if let Some(e) = last_err {
                return Err(e);
            }
            ps.lsn_source.store(w.reserved_lsn(), Ordering::Release);
            // the commit record is the last frame appended
            Ok(group.as_ref().map(|g| g.submit(w.reserved_lsn() - 1)))
        })?;
        ps.pending_ticket = ticket;
        ps.commits_since_checkpoint += 1;
        Ok(())
    }

    /// Arm group commit: commits append their WAL frames and queue at
    /// the flush gate instead of fsyncing inline, and a background
    /// flusher resolves every queued commit with one fsync.  Returns
    /// `false` (and does nothing) for in-memory databases.
    ///
    /// After every successful commit the caller **must** collect the
    /// pending [`CommitTicket`] via [`Database::take_commit_ticket`]
    /// and wait on it before
    /// acknowledging the commit externally — this is how the server
    /// keeps the durability contract while amortizing the barrier.
    /// In-process callers that don't collect tickets still get correct
    /// recovery semantics (unflushed commits are simply not yet
    /// durable), which is why this is opt-in rather than default.
    pub fn enable_group_commit(&mut self) -> bool {
        match self.storage.as_mut() {
            Some(ps) => {
                if ps.group.is_none() {
                    let group = GroupCommitter::new(ps.wal.clone());
                    let gm = group.metrics();
                    self.metrics.register_histogram("group.sizes", gm.group_sizes);
                    self.metrics
                        .register_gauge("group.fsync_ema_ns", gm.fsync_ema_ns);
                    ps.group = Some(group);
                }
                true
            }
            None => false,
        }
    }

    /// Is the group-commit gate armed?
    pub fn group_commit_enabled(&self) -> bool {
        self.storage.as_ref().is_some_and(|ps| ps.group.is_some())
    }

    /// Take the ticket of the most recent deferred commit, if any.
    /// Present only after a commit that ran with group commit armed and
    /// actually wrote WAL records (read-only commits and in-memory
    /// databases never produce one).
    pub fn take_commit_ticket(&mut self) -> Option<CommitTicket> {
        self.storage
            .as_mut()
            .and_then(|ps| ps.pending_ticket.take())
    }

    /// Total fsyncs issued against the WAL so far (`None` in-memory).
    /// The e14 experiment divides this by acknowledged commits to
    /// measure group commit's amortization.
    pub fn wal_fsync_count(&self) -> Option<u64> {
        self.storage
            .as_ref()
            .map(|ps| ps.wal.with(|w| w.sync_count()))
    }

    /// Shared handle to the WAL's fsync counter (`None` in-memory).
    /// Lets the server observe fsync totals from other threads while
    /// the database stays pinned to its engine thread.
    pub fn wal_sync_counter(&self) -> Option<Arc<AtomicU64>> {
        self.storage
            .as_ref()
            .map(|ps| ps.wal.with(|w| w.sync_counter()))
    }

    /// Checkpoint and shut down cleanly.  (Dropping a durable database
    /// also checkpoints, best-effort; `close` surfaces the error.)
    pub fn close(mut self) -> Result<()> {
        if self.in_transaction() {
            let _ = self.txn_rollback();
        }
        let r = self.checkpoint();
        if let Some(ps) = self.storage.as_mut() {
            ps.skip_shutdown = true;
        }
        r
    }

    /// Drop the database *without* the shutdown checkpoint — exactly what
    /// a `kill -9` leaves behind: the last checkpoint image plus the WAL
    /// as flushed by committed transactions.  The crash-recovery suite is
    /// built on this.
    pub fn simulate_crash(mut self) {
        if let Some(ps) = self.storage.as_mut() {
            ps.skip_shutdown = true;
        }
    }
}

impl Drop for Database {
    fn drop(&mut self) {
        let Some(ps) = &self.storage else { return };
        if ps.skip_shutdown {
            return;
        }
        if self.in_transaction() {
            let _ = self.txn_rollback();
        }
        let _ = self.checkpoint_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One record of every variant — shared by the roundtrip test and
    /// the mutation fuzz below.
    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::RowInsert {
                table: "Gene".into(),
                row_no: 3,
                values: vec![Value::Text("JW0080".into()), Value::Int(11), Value::Null],
            },
            WalRecord::RowUpdate {
                table: "Gene".into(),
                row_no: 3,
                values: vec![Value::Float(2.5)],
            },
            WalRecord::RowDelete {
                table: "Gene".into(),
                row_no: 9,
            },
            WalRecord::OutdatedMark {
                table: "Gene".into(),
                row_no: 1,
                col: 2,
            },
            WalRecord::OutdatedClear {
                table: "Gene".into(),
                row_no: 1,
                col: 2,
            },
            WalRecord::DeletedLogPush {
                table: "Gene".into(),
                row: DeletedRow {
                    row_no: 4,
                    values: vec![Value::Bool(true)],
                    annotation: Some("why".into()),
                    time: 8,
                    user: "alice".into(),
                },
            },
            WalRecord::TableCreate {
                name: "Gene".into(),
                owner: "admin".into(),
                schema: Schema::of(&[("GID", DataType::Text), ("Len", DataType::Int)]),
            },
            WalRecord::TableDrop {
                name: "Gene".into(),
            },
            WalRecord::IndexCreate {
                table: "Gene".into(),
                index: "len_idx".into(),
                column: "Len".into(),
            },
            WalRecord::IndexDrop {
                table: "Gene".into(),
                index: "len_idx".into(),
            },
            WalRecord::AnnSetCreate {
                table: "Gene".into(),
                set: "Curation".into(),
                cell_scheme: false,
                system_only: true,
                schema_enforced: true,
            },
            WalRecord::AnnSetDrop {
                table: "Gene".into(),
                set: "Curation".into(),
            },
            WalRecord::AnnAdd {
                table: "Gene".into(),
                set: "Curation".into(),
                raw: "<Annotation>x</Annotation>".into(),
                creator: "bob".into(),
                created: 12,
                rows: vec![0, 1, 5],
                cols: vec![2],
            },
            WalRecord::AnnArchive {
                table: "Gene".into(),
                set: "Curation".into(),
                cells: vec![(0, 2), (1, 2)],
                between: Some((3, 9)),
                archived: true,
            },
            WalRecord::UserCreate {
                name: "alice".into(),
                groups: vec!["lab1".into()],
            },
            WalRecord::Grant {
                grantee: "alice".into(),
                table: "Gene".into(),
                privileges: vec![Privilege::Select, Privilege::Provenance],
            },
            WalRecord::Revoke {
                grantee: "alice".into(),
                table: "Gene".into(),
                privileges: vec![Privilege::Update],
            },
            WalRecord::ApprovalStart {
                table: "Gene".into(),
                columns: Some(vec!["gsequence".into()]),
                approver: "labadmin".into(),
            },
            WalRecord::ApprovalStop {
                table: "Gene".into(),
                columns: vec![],
            },
            WalRecord::ApprovalLogged {
                op: LoggedOp {
                    id: bdbms_common::ids::OperationId(5),
                    table: "Gene".into(),
                    user: "alice".into(),
                    time: 44,
                    description: "UPDATE Gene".into(),
                    inverse: InverseOp::RestoreCells {
                        row_no: 2,
                        old: vec![(1, Value::Int(7))],
                    },
                    status: OpStatus::Pending,
                },
            },
            WalRecord::ApprovalDecide {
                id: 5,
                approve: false,
            },
            WalRecord::RuleAdd {
                rule: DependencyRule {
                    id: bdbms_common::ids::RuleId(2),
                    name: "r1".into(),
                    src_table: "Gene".into(),
                    src_cols: vec!["GSequence".into()],
                    dst_table: "Protein".into(),
                    dst_col: "PSequence".into(),
                    procedure: "translate".into(),
                    executable: true,
                    invertible: false,
                    link: Some(("GID".into(), "GID".into())),
                },
            },
            WalRecord::RuleDrop { name: "r1".into() },
            WalRecord::Commit { clock: 99 },
            WalRecord::BulkLoad {
                table: "Gene".into(),
                path: "/tmp/genes.fasta".into(),
                format: CopyFormat::Fasta,
                rows: 50_000,
            },
            WalRecord::SeqIndexCreate {
                table: "Gene".into(),
                index: "seq_idx".into(),
                column: "GSequence".into(),
                kind: SeqIndexKind::Sbc,
            },
            WalRecord::SeqIndexDrop {
                table: "Gene".into(),
                index: "seq_idx".into(),
            },
        ]
    }

    #[test]
    fn wal_record_roundtrip_every_variant() {
        for rec in sample_records() {
            let mut buf = Vec::new();
            rec.encode(&mut buf);
            let back = WalRecord::decode(&buf).unwrap();
            // LoggedOp/DeletedRow/DependencyRule don't implement
            // PartialEq wholesale; compare re-encodings instead
            let mut buf2 = Vec::new();
            back.encode(&mut buf2);
            assert_eq!(buf, buf2, "roundtrip drift for {rec:?}");
        }
    }

    #[test]
    fn wal_record_decode_rejects_garbage() {
        assert!(WalRecord::decode(&[]).is_err());
        assert!(WalRecord::decode(&[200]).is_err());
        let mut buf = Vec::new();
        WalRecord::Commit { clock: 7 }.encode(&mut buf);
        buf.truncate(buf.len() - 2);
        assert!(WalRecord::decode(&buf).is_err());
    }

    use proptest::prelude::*;

    /// A genuine snapshot body (the bytes under the version/CRC frame),
    /// captured once from a real checkpoint so the mutation fuzz
    /// exercises the deep decoders, not just the framing.
    fn real_snapshot_body() -> &'static [u8] {
        use std::sync::OnceLock;
        static BODY: OnceLock<Vec<u8>> = OnceLock::new();
        BODY.get_or_init(|| {
            let dir =
                std::env::temp_dir().join(format!("bdbms-snapfuzz-{}.bdbms", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            let mut db = Database::create(&dir).unwrap();
            db.execute("CREATE TABLE Gene (GID TEXT, Len INT)").unwrap();
            db.execute("INSERT INTO Gene VALUES ('JW0080', 11), ('JW0081', 9)")
                .unwrap();
            db.execute("CREATE INDEX len_idx ON Gene (Len)").unwrap();
            db.execute("CREATE ANNOTATION TABLE Curation ON Gene")
                .unwrap();
            db.execute(
                "ADD ANNOTATION TO Gene.Curation VALUE '<A>x</A>' \
                 ON (SELECT G.GID FROM Gene G)",
            )
            .unwrap();
            db.close().unwrap();
            // pull the meta blob back off the image and strip its frame
            let pool = Arc::new(BufferPool::new(
                Box::new(FileStore::open(dir.join(DATA_FILE)).unwrap()),
                64,
            ));
            let meta_rid = pool.with_page(PageId(0), read_header).unwrap().unwrap();
            let blob = HeapFile::attach(pool.clone(), Vec::new())
                .get(meta_rid)
                .unwrap();
            drop(pool);
            let _ = fs::remove_dir_all(&dir);
            blob[16..].to_vec()
        })
    }

    fn frame_body(body: &[u8]) -> Vec<u8> {
        let mut blob = Vec::with_capacity(body.len() + 16);
        codec::put_u32(&mut blob, FORMAT_VERSION);
        codec::put_u32(&mut blob, crc32(body));
        codec::put_u64(&mut blob, body.len() as u64);
        blob.extend_from_slice(body);
        blob
    }

    fn decode_fresh(blob: &[u8]) -> Result<u64> {
        let pool = Arc::new(BufferPool::new(Box::new(MemStore::new()), 64));
        let mut db = Database::with_pool(pool.clone());
        decode_snapshot_mode(&mut db, blob, &pool, None)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// WAL payloads come off disk: arbitrary bytes must decode to
        /// `Err`, never panic or over-allocate.
        #[test]
        fn wal_record_decode_never_panics(
            bytes in prop::collection::vec(any::<u8>(), 0..96),
        ) {
            let _ = WalRecord::decode(&bytes);
        }

        /// Single-byte mutations of every record variant: decode may
        /// succeed (the flip hit a don't-care byte) or fail, but never
        /// panic.
        #[test]
        fn mutated_wal_records_never_panic(pos_seed in any::<u64>(), flip in 1u8..=255) {
            for rec in sample_records() {
                let mut buf = Vec::new();
                rec.encode(&mut buf);
                let pos = (pos_seed % buf.len() as u64) as usize;
                buf[pos] ^= flip;
                let _ = WalRecord::decode(&buf);
            }
        }

        /// Framed garbage with a *valid* CRC (so the fuzz reaches the
        /// field decoders rather than dying at the checksum gate) must
        /// surface `Err`, never panic.
        #[test]
        fn snapshot_decode_never_panics(
            body in prop::collection::vec(any::<u8>(), 0..256),
        ) {
            let _ = decode_fresh(&frame_body(&body));
        }

        /// Single-byte mutations of a real checkpoint body, re-framed
        /// with a matching CRC: every deep decoder (auth, approval,
        /// dependency rules, tables, bitmaps, annotation sets) must
        /// reject or tolerate the damage without panicking.
        #[test]
        fn mutated_real_snapshot_never_panics(pos_seed in any::<u64>(), flip in 1u8..=255) {
            let mut body = real_snapshot_body().to_vec();
            let pos = (pos_seed % body.len() as u64) as usize;
            body[pos] ^= flip;
            let _ = decode_fresh(&frame_body(&body));
        }
    }
}
