//! The session API: prepared statements, parameter binding, and
//! streaming cursors.
//!
//! [`Database::execute`] re-lexes, re-parses, and re-plans every call
//! and materializes the whole result — fine for one-off statements,
//! wasteful for the workload the paper describes: biologists issuing
//! near-identical queries over and over.  A [`Session`] separates
//! *prepare* from *execute* the way production engines do (SQLite's
//! `sqlite3_prepare` / `sqlite3_step` model):
//!
//! ```
//! use bdbms_core::Database;
//! use bdbms_common::Value;
//!
//! let mut db = Database::new_in_memory();
//! db.execute("CREATE TABLE Gene (GID TEXT, Len INT)").unwrap();
//! db.execute("INSERT INTO Gene VALUES ('JW0080', 11), ('JW0082', 42)").unwrap();
//!
//! let session = db.session("admin");
//! // parsed once, cached by SQL text, parameterized with `?` / `$n`
//! let stmt = session.prepare("SELECT GID FROM Gene WHERE Len = ?").unwrap();
//! let mut cursor = session.query(&stmt, &[Value::Int(42)]).unwrap();
//! // rows stream off the executor pipeline — nothing is materialized
//! let row = cursor.next_row().unwrap().unwrap();
//! assert_eq!(row.values[0], Value::Text("JW0082".into()));
//! assert!(cursor.next_row().unwrap().is_none());
//! ```
//!
//! Each [`Prepared`] caches its parsed AST for the statement's lifetime
//! and, for simple SELECTs, the executor's [`SelectPlan`] stamped with
//! the catalog generation it was derived under — repeated executions
//! skip parse *and* plan until DDL or `ANALYZE` bumps the generation,
//! at which point the next execution transparently replans.
//!
//! Rust note: the issue-sheet sketch `Prepared::query(&params)` needs a
//! database handle to run against; borrows flow through the session, so
//! the canonical spelling is `session.query(&stmt, &params)` (or the
//! equivalent sugar `stmt.query(&session, &params)`).  DML goes through
//! [`Session::execute`], which takes the session mutably.
//!
//! Sessions also drive the transaction state machine:
//! `BEGIN`/`COMMIT`/`ROLLBACK` and savepoints flow through
//! [`Session::run`]/[`Session::execute`] (or the method mirrors
//! [`Session::begin`] and friends), with the undo log living on the
//! [`Database`] — see `docs/TRANSACTIONS.md` and [`crate::txn`].

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use bdbms_common::{BdbmsError, Result, Value};

use crate::ast::{AnnTarget, Expr, Projection, Select, SelectItem, Statement};
use crate::database::Database;
use crate::executor::{open_select_cursor, ExecOptions, ExecStats, SelectPlan};
use crate::parser::parse_prepared;
use crate::result::{AnnRow, QueryResult};

/// A user-scoped handle for preparing and running statements against a
/// [`Database`].  Created by [`Database::session`]; holds a per-session
/// statement cache keyed by SQL text.
pub struct Session<'db> {
    db: &'db mut Database,
    user: String,
    cache: RefCell<HashMap<String, Rc<PreparedInner>>>,
}

/// The cached guts of one prepared statement: the parsed AST, the
/// declared parameter-slot count, and (for simple SELECTs) the last
/// generation-stamped plan.
struct PreparedInner {
    sql: String,
    stmt: Statement,
    param_count: usize,
    plan: RefCell<Option<SelectPlan>>,
}

/// A prepared statement: a cheap, clonable handle over the cached parse
/// (and plan).  Obtained from [`Session::prepare`]; run it with
/// [`Session::query`] (SELECT) or [`Session::execute`] (anything).
#[derive(Clone)]
pub struct Prepared {
    inner: Rc<PreparedInner>,
}

impl Prepared {
    /// The SQL text this statement was prepared from.
    pub fn sql(&self) -> &str {
        &self.inner.sql
    }

    /// Number of parameter slots (`?` / `$n`) the statement declares.
    pub fn param_count(&self) -> usize {
        self.inner.param_count
    }

    /// Does this statement currently hold a cached execution plan?
    /// (Observability for tests and tooling; the cache is consulted and
    /// refreshed automatically.)
    pub fn has_cached_plan(&self) -> bool {
        self.inner.plan.borrow().is_some()
    }

    /// Sugar for [`Session::query`].
    pub fn query<'s>(&self, session: &'s Session<'_>, params: &[Value]) -> Result<RowCursor<'s>> {
        session.query(self, params)
    }

    /// Sugar for [`Session::execute`].
    pub fn execute(&self, session: &mut Session<'_>, params: &[Value]) -> Result<QueryResult> {
        session.execute(self, params)
    }

    /// Error unless `params` matches the declared slot count.
    fn check_params(&self, params: &[Value]) -> Result<()> {
        if params.len() != self.inner.param_count {
            return Err(BdbmsError::param_mismatch(format!(
                "statement expects {} parameter(s), got {}",
                self.inner.param_count,
                params.len()
            )));
        }
        Ok(())
    }

    /// Bind `params` into the cached AST, checking the count.
    fn bind(&self, params: &[Value]) -> Result<Statement> {
        self.check_params(params)?;
        Ok(if params.is_empty() {
            self.inner.stmt.clone()
        } else {
            bind_statement(&self.inner.stmt, params)
        })
    }
}

/// A pull-based cursor over a SELECT's annotated output rows.
///
/// For streamable queries the underlying scan advances only as rows are
/// pulled — interrupting the iteration (or a pushed `LIMIT`) means the
/// heap is never walked past the last row consumed.  Blocking queries
/// (grouping, DISTINCT, ORDER BY, set operations) buffer first and the
/// cursor walks the buffered rows.  [`RowCursor::stats`] exposes the
/// executor counters accumulated *so far*, which is how the tests pin
/// the no-materialization guarantee.
pub struct RowCursor<'s> {
    columns: Vec<String>,
    stream: Box<dyn Iterator<Item = Result<AnnRow>> + 's>,
    stats: Rc<RefCell<ExecStats>>,
}

impl std::fmt::Debug for RowCursor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RowCursor")
            .field("columns", &self.columns)
            .finish_non_exhaustive()
    }
}

impl<'s> RowCursor<'s> {
    /// Output column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Pull the next row (`Ok(None)` = exhausted).
    pub fn next_row(&mut self) -> Result<Option<AnnRow>> {
        self.stream.next().transpose()
    }

    /// Snapshot of the executor counters accumulated so far.
    pub fn stats(&self) -> ExecStats {
        self.stats.borrow().clone()
    }

    /// Drain the remaining rows into a materialized [`QueryResult`].
    /// The result carries the cursor's final executor counters in
    /// [`QueryResult::stats`].
    pub fn into_result(self) -> Result<QueryResult> {
        let started = std::time::Instant::now();
        let rows = self.stream.collect::<Result<Vec<AnnRow>>>()?;
        let mut stats = self.stats.borrow().clone();
        stats.exec_ns = stats
            .exec_ns
            .saturating_add(started.elapsed().as_nanos() as u64);
        Ok(QueryResult {
            columns: self.columns,
            rows,
            affected: 0,
            message: None,
            stats: Some(stats),
        })
    }
}

impl Iterator for RowCursor<'_> {
    type Item = Result<AnnRow>;

    fn next(&mut self) -> Option<Self::Item> {
        self.stream.next()
    }
}

impl<'db> Session<'db> {
    pub(crate) fn new(db: &'db mut Database, user: &str) -> Session<'db> {
        Session {
            db,
            user: user.to_string(),
            cache: RefCell::new(HashMap::new()),
        }
    }

    /// The user this session acts as.
    pub fn user(&self) -> &str {
        &self.user
    }

    /// Switch the user subsequent statements are authorized as.  Cached
    /// statements stay valid — authorization is checked at execution
    /// time, not at prepare time.
    pub fn set_user(&mut self, user: &str) {
        self.user = user.to_string();
    }

    /// The underlying database (for the [`crate::client::Connection`]
    /// escape hatch).
    pub(crate) fn database_mut(&mut self) -> &mut Database {
        self.db
    }

    /// Parse (or fetch from the session cache) a statement.  Parameter
    /// placeholders: `?` takes the next positional slot, `$n` names slot
    /// `n` (1-based); both may appear anywhere an expression may.
    pub fn prepare(&self, sql: &str) -> Result<Prepared> {
        if let Some(inner) = self.cache.borrow().get(sql) {
            return Ok(Prepared {
                inner: inner.clone(),
            });
        }
        let (stmt, param_count) = parse_prepared(sql)?;
        let inner = Rc::new(PreparedInner {
            sql: sql.to_string(),
            stmt,
            param_count,
            plan: RefCell::new(None),
        });
        self.cache
            .borrow_mut()
            .insert(sql.to_string(), inner.clone());
        Ok(Prepared { inner })
    }

    /// Run a prepared SELECT with the given parameters, returning a
    /// streaming [`RowCursor`].  Reuses the statement's cached plan when
    /// the catalog generation still matches, and re-caches the plan the
    /// executor actually used.
    pub fn query<'s>(&'s self, stmt: &Prepared, params: &[Value]) -> Result<RowCursor<'s>> {
        open_cursor(self.db, &self.user, stmt, params)
    }

    /// Run a prepared statement of any kind (DML, DDL, A-SQL commands,
    /// transaction control — SELECTs work too, materialized) with the
    /// given parameters.
    pub fn execute(&mut self, stmt: &Prepared, params: &[Value]) -> Result<QueryResult> {
        let started = std::time::Instant::now();
        let bound = stmt.bind(params)?;
        let res = self.dispatch(bound);
        self.db
            .note_statement(&stmt.inner.sql, &self.user, started.elapsed(), res.as_ref().ok());
        res
    }

    /// Parse and execute a parameter-less statement in one step — the
    /// path the legacy [`Database::execute`] entry points wrap.
    pub fn run(&mut self, sql: &str) -> Result<QueryResult> {
        let started = std::time::Instant::now();
        let (stmt, param_count) = parse_prepared(sql)?;
        let parse_ns = started.elapsed().as_nanos() as u64;
        if param_count > 0 {
            return Err(BdbmsError::param_mismatch(format!(
                "statement expects {param_count} parameter(s); prepare it and \
                 pass them through query/execute"
            )));
        }
        let mut res = self.dispatch(stmt);
        if let Ok(qr) = &mut res {
            if let Some(st) = &mut qr.stats {
                st.parse_ns = parse_ns;
            }
        }
        self.db
            .note_statement(sql, &self.user, started.elapsed(), res.as_ref().ok());
        res
    }

    /// The session's transaction state machine: transaction-control
    /// statements drive it directly; everything else executes against
    /// the current transaction (explicit, or the implicit per-statement
    /// one — see `docs/TRANSACTIONS.md`).
    fn dispatch(&mut self, stmt: Statement) -> Result<QueryResult> {
        match stmt {
            Statement::Begin => self.begin(),
            Statement::Commit => self.commit(),
            Statement::Rollback => self.rollback(),
            Statement::Savepoint { name } => self.savepoint(&name),
            Statement::RollbackTo { name } => self.rollback_to(&name),
            Statement::Release { name } => self.release(&name),
            other => self.db.execute_stmt(other, &self.user),
        }
    }

    // ---- transaction state machine (docs/TRANSACTIONS.md) ----

    /// Is an explicit transaction open?
    pub fn in_transaction(&self) -> bool {
        self.db.in_transaction()
    }

    /// `BEGIN`: open an explicit transaction.  `TxnState` error if one
    /// is already open (no nesting — use [`savepoint`](Self::savepoint)).
    pub fn begin(&mut self) -> Result<QueryResult> {
        self.db.txn_begin()
    }

    /// `COMMIT`: make the open transaction permanent.  `TxnState` error
    /// outside a transaction.
    pub fn commit(&mut self) -> Result<QueryResult> {
        self.db.txn_commit()
    }

    /// `ROLLBACK`: undo everything since `BEGIN` — rows, DDL, stats,
    /// annotations, provenance, dependency edges.  `TxnState` error
    /// outside a transaction.
    pub fn rollback(&mut self) -> Result<QueryResult> {
        self.db.txn_rollback()
    }

    /// `SAVEPOINT name`: mark a partial-rollback point.  Names may
    /// shadow earlier savepoints.
    pub fn savepoint(&mut self, name: &str) -> Result<QueryResult> {
        self.db.txn_savepoint(name)
    }

    /// `ROLLBACK TO name`: undo back to the savepoint, keeping the
    /// transaction (and the savepoint) open.  `TxnState` error if the
    /// name is unknown.
    pub fn rollback_to(&mut self, name: &str) -> Result<QueryResult> {
        self.db.txn_rollback_to(name)
    }

    /// `RELEASE name`: forget the savepoint (and all later ones) without
    /// undoing anything.
    pub fn release(&mut self, name: &str) -> Result<QueryResult> {
        self.db.txn_release(name)
    }
}

/// The engine half of [`Session::query`], with the borrow anchored to the
/// [`Database`] rather than a session: binds `params`, checks SELECT
/// authorization, opens the streaming cursor, and refreshes the
/// statement's cached plan.  Shared with [`crate::client::LocalConnection`],
/// whose cursors must borrow the connection-owned database (a transient
/// session would not live long enough).
pub(crate) fn open_cursor<'d>(
    db: &'d Database,
    user: &str,
    stmt: &Prepared,
    params: &[Value],
) -> Result<RowCursor<'d>> {
    stmt.check_params(params)?;
    let not_select =
        || BdbmsError::invalid("query expects a SELECT statement (run DML/DDL through execute)");
    // owned storage for the parameter-bound copy; with no parameters
    // the cached AST is borrowed as-is (no per-call deep clone)
    let bound;
    let sel: &Select = if params.is_empty() {
        match &stmt.inner.stmt {
            Statement::Select(sel) => sel,
            _ => return Err(not_select()),
        }
    } else {
        bound = bind_statement(&stmt.inner.stmt, params);
        match &bound {
            Statement::Select(sel) => sel,
            _ => return Err(not_select()),
        }
    };
    db.check_select_auth(sel, user)?;
    let st = Rc::new(RefCell::new(ExecStats::default()));
    let hints = stmt.inner.plan.borrow().clone();
    let (cursor, plan) = open_select_cursor(
        db.catalog(),
        sel,
        &ExecOptions::default(),
        st.clone(),
        hints.as_ref(),
    )?;
    // cache-outcome classification: a replayed plan that comes back
    // unchanged is a hit; a changed one means the catalog generation
    // moved underneath it (invalidation); no hints at all is a miss
    let em = db.engine_metrics();
    match (&hints, &plan) {
        (Some(h), Some(p)) if h == p => em.plan_cache_hits.inc(),
        (Some(_), _) => em.plan_cache_invalidations.inc(),
        (None, _) => em.plan_cache_misses.inc(),
    }
    if let Some(p) = plan {
        // replayed plans come back unchanged — only genuinely new
        // decisions are written to the cache
        let mut cached = stmt.inner.plan.borrow_mut();
        if cached.as_ref() != Some(&p) {
            *cached = Some(p);
        }
    }
    Ok(RowCursor {
        columns: cursor.columns,
        stream: cursor.stream,
        stats: st,
    })
}

// ---- parameter substitution ----

/// Substitute every [`Expr::Param`] with its literal.  Slot bounds were
/// checked by [`Prepared::bind`].
fn bind_expr(e: &Expr, params: &[Value]) -> Expr {
    match e {
        Expr::Param(i) => Expr::Literal(params[*i].clone()),
        Expr::Literal(_) | Expr::Column(..) => e.clone(),
        Expr::Unary(op, a) => Expr::Unary(*op, Box::new(bind_expr(a, params))),
        Expr::Binary(a, op, b) => Expr::Binary(
            Box::new(bind_expr(a, params)),
            *op,
            Box::new(bind_expr(b, params)),
        ),
        Expr::IsNull(a, neg) => Expr::IsNull(Box::new(bind_expr(a, params)), *neg),
        Expr::Like(a, pat, neg) => Expr::Like(Box::new(bind_expr(a, params)), pat.clone(), *neg),
        Expr::ContainsSeq(a, pat, neg) => {
            Expr::ContainsSeq(Box::new(bind_expr(a, params)), pat.clone(), *neg)
        }
        Expr::InList(a, items, neg) => Expr::InList(
            Box::new(bind_expr(a, params)),
            items.iter().map(|i| bind_expr(i, params)).collect(),
            *neg,
        ),
        Expr::Call(name, args) => Expr::Call(
            name.clone(),
            args.iter().map(|a| bind_expr(a, params)).collect(),
        ),
        Expr::Aggregate(f, arg) => {
            Expr::Aggregate(*f, arg.as_ref().map(|a| Box::new(bind_expr(a, params))))
        }
    }
}

fn bind_select(s: &Select, params: &[Value]) -> Select {
    Select {
        distinct: s.distinct,
        projection: match &s.projection {
            Projection::Star(a) => Projection::Star(a.clone()),
            Projection::Items(items) => Projection::Items(
                items
                    .iter()
                    .map(|i| SelectItem {
                        expr: bind_expr(&i.expr, params),
                        alias: i.alias.clone(),
                        promote: i.promote.clone(),
                    })
                    .collect(),
            ),
        },
        from: s.from.clone(),
        where_clause: s.where_clause.as_ref().map(|e| bind_expr(e, params)),
        awhere: s.awhere.clone(),
        group_by: s.group_by.clone(),
        having: s.having.as_ref().map(|e| bind_expr(e, params)),
        ahaving: s.ahaving.clone(),
        filter: s.filter.clone(),
        order_by: s.order_by.clone(),
        limit: s.limit,
        set_op: s
            .set_op
            .as_ref()
            .map(|(op, right)| (*op, Box::new(bind_select(right, params)))),
    }
}

fn bind_statement(stmt: &Statement, params: &[Value]) -> Statement {
    match stmt {
        Statement::Select(s) => Statement::Select(bind_select(s, params)),
        Statement::Insert { table, rows } => Statement::Insert {
            table: table.clone(),
            rows: rows
                .iter()
                .map(|r| r.iter().map(|e| bind_expr(e, params)).collect())
                .collect(),
        },
        Statement::Update {
            table,
            sets,
            where_clause,
        } => Statement::Update {
            table: table.clone(),
            sets: sets
                .iter()
                .map(|(c, e)| (c.clone(), bind_expr(e, params)))
                .collect(),
            where_clause: where_clause.as_ref().map(|e| bind_expr(e, params)),
        },
        Statement::Delete {
            table,
            where_clause,
        } => Statement::Delete {
            table: table.clone(),
            where_clause: where_clause.as_ref().map(|e| bind_expr(e, params)),
        },
        Statement::Validate {
            table,
            columns,
            where_clause,
        } => Statement::Validate {
            table: table.clone(),
            columns: columns.clone(),
            where_clause: where_clause.as_ref().map(|e| bind_expr(e, params)),
        },
        Statement::AddAnnotation { to, value, on } => Statement::AddAnnotation {
            to: to.clone(),
            value: value.clone(),
            on: match on {
                AnnTarget::Select(s) => AnnTarget::Select(Box::new(bind_select(s, params))),
                AnnTarget::Insert(s) => AnnTarget::Insert(Box::new(bind_statement(s, params))),
                AnnTarget::Update(s) => AnnTarget::Update(Box::new(bind_statement(s, params))),
                AnnTarget::Delete(s) => AnnTarget::Delete(Box::new(bind_statement(s, params))),
            },
        },
        Statement::ArchiveAnnotation { from, between, on } => Statement::ArchiveAnnotation {
            from: from.clone(),
            between: *between,
            on: bind_select(on, params),
        },
        Statement::RestoreAnnotation { from, between, on } => Statement::RestoreAnnotation {
            from: from.clone(),
            between: *between,
            on: bind_select(on, params),
        },
        Statement::Explain { analyze, stmt } => Statement::Explain {
            analyze: *analyze,
            stmt: Box::new(bind_statement(stmt, params)),
        },
        // every other statement form is parameter-free by construction
        // (the parser only plants Expr::Param inside expressions)
        other => other.clone(),
    }
}
