//! The transport-agnostic client API.
//!
//! The paper's prototype exposes bdbms the way PostgreSQL does: a server
//! process speaking a wire protocol, plus an embedded path for tools that
//! link the engine directly.  This module is the seam between the two —
//! everything above it (the REPL, the CLI, bench drivers) programs
//! against [`Connection`] and never learns whether statements execute in
//! this process or across a socket:
//!
//! * [`LocalConnection`] owns a [`Database`] and executes in-process —
//!   the embedded path.
//! * `RemoteConnection` (in the `bdbms-client` crate) speaks the wire
//!   protocol to a `bdbms-serve` process — see `docs/SERVER.md`.
//! * [`Session`] implements [`Connection`] too, so existing code that
//!   borrows a database for a scope can hand a `&mut dyn Connection` to
//!   trait-generic helpers without giving up ownership.
//!
//! The trait mirrors the client lifecycle the wire protocol frames:
//! connect → [`prepare`](Connection::prepare) →
//! [`execute`](Connection::execute)/[`query`](Connection::query) (bind +
//! run) → fetch rows → transaction control → close.  Statement handles
//! ([`StatementHandle`]) are backend-tagged: a handle prepared on one
//! connection cannot be executed on another.
//!
//! ```
//! use bdbms_core::client::{Connection, LocalConnection};
//! use bdbms_common::Value;
//!
//! fn count_genes(conn: &mut dyn Connection) -> u64 {
//!     let stmt = conn.prepare("SELECT GID FROM Gene WHERE Len > ?").unwrap();
//!     let mut rows = conn.query(&stmt, &[Value::Int(10)]).unwrap();
//!     let mut n = 0;
//!     while rows.next_row().unwrap().is_some() {
//!         n += 1;
//!     }
//!     n
//! }
//!
//! let mut conn = LocalConnection::in_memory("admin");
//! conn.run("CREATE TABLE Gene (GID TEXT, Len INT)").unwrap();
//! conn.run("INSERT INTO Gene VALUES ('JW0080', 11), ('JW0082', 9)").unwrap();
//! assert_eq!(count_genes(&mut conn), 1);
//! ```

use std::path::Path;

use bdbms_common::metrics::MetricsSnapshot;
use bdbms_common::{BdbmsError, Result, Value};

use crate::database::Database;
use crate::result::{AnnRow, QueryResult};
use crate::session::{open_cursor, Prepared, RowCursor, Session};

/// A prepared statement handle, tagged with the backend that prepared
/// it.  Local handles carry the cached parse/plan directly; remote
/// handles carry the server-assigned statement id.
#[derive(Clone)]
pub struct StatementHandle {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    Local(Prepared),
    Remote {
        id: u64,
        param_count: usize,
        sql: String,
    },
}

impl StatementHandle {
    /// Wrap an in-process [`Prepared`] statement.
    pub fn local(stmt: Prepared) -> StatementHandle {
        StatementHandle {
            repr: Repr::Local(stmt),
        }
    }

    /// Wrap a server-assigned statement id (constructed by the remote
    /// connection from a `PrepareOk` frame).
    pub fn remote(id: u64, param_count: usize, sql: impl Into<String>) -> StatementHandle {
        StatementHandle {
            repr: Repr::Remote {
                id,
                param_count,
                sql: sql.into(),
            },
        }
    }

    /// The SQL text this handle was prepared from.
    pub fn sql(&self) -> &str {
        match &self.repr {
            Repr::Local(p) => p.sql(),
            Repr::Remote { sql, .. } => sql,
        }
    }

    /// Number of parameter slots (`?` / `$n`) the statement declares.
    pub fn param_count(&self) -> usize {
        match &self.repr {
            Repr::Local(p) => p.param_count(),
            Repr::Remote { param_count, .. } => *param_count,
        }
    }

    /// The in-process statement, if this is a local handle.
    pub fn as_local(&self) -> Option<&Prepared> {
        match &self.repr {
            Repr::Local(p) => Some(p),
            Repr::Remote { .. } => None,
        }
    }

    /// The server-assigned statement id, if this is a remote handle.
    pub fn remote_id(&self) -> Option<u64> {
        match &self.repr {
            Repr::Local(_) => None,
            Repr::Remote { id, .. } => Some(*id),
        }
    }

    fn expect_local(&self) -> Result<&Prepared> {
        self.as_local().ok_or_else(backend_mismatch)
    }
}

impl std::fmt::Debug for StatementHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.repr {
            Repr::Local(p) => f
                .debug_struct("StatementHandle::Local")
                .field("sql", &p.sql())
                .finish_non_exhaustive(),
            Repr::Remote { id, sql, .. } => f
                .debug_struct("StatementHandle::Remote")
                .field("id", id)
                .field("sql", sql)
                .finish_non_exhaustive(),
        }
    }
}

fn backend_mismatch() -> BdbmsError {
    BdbmsError::invalid("statement was prepared on a different connection backend")
}

/// A pull-based stream of result rows, the trait-object face of
/// [`RowCursor`].  Local backends stream straight off the executor
/// pipeline; remote backends page batches over the wire as rows are
/// pulled.
pub trait Rows {
    /// Output column names.
    fn columns(&self) -> &[String];

    /// Pull the next row (`Ok(None)` = exhausted).
    fn next_row(&mut self) -> Result<Option<AnnRow>>;

    /// Drain the remaining rows into a materialized [`QueryResult`].
    fn collect_result(&mut self) -> Result<QueryResult> {
        let columns = self.columns().to_vec();
        let mut rows = Vec::new();
        while let Some(row) = self.next_row()? {
            rows.push(row);
        }
        Ok(QueryResult {
            columns,
            rows,
            affected: 0,
            message: None,
            stats: None,
        })
    }
}

impl Rows for RowCursor<'_> {
    fn columns(&self) -> &[String] {
        RowCursor::columns(self)
    }

    fn next_row(&mut self) -> Result<Option<AnnRow>> {
        RowCursor::next_row(self)
    }

    // local cursors can attach their executor counters to the
    // materialized result, like `RowCursor::into_result`
    fn collect_result(&mut self) -> Result<QueryResult> {
        let columns = self.columns().to_vec();
        let mut rows = Vec::new();
        while let Some(row) = self.next_row()? {
            rows.push(row);
        }
        Ok(QueryResult {
            columns,
            rows,
            affected: 0,
            message: None,
            stats: Some(RowCursor::stats(self)),
        })
    }
}

/// A client connection to a bdbms engine, local or remote.
///
/// Object-safe: tools hold a `Box<dyn Connection>` and work identically
/// against an embedded [`Database`] or a `bdbms-serve` process.  All
/// errors cross the boundary as [`BdbmsError`] — the wire protocol
/// round-trips code, message, and source span losslessly.
pub trait Connection {
    /// Human-readable description of the backend (shown by the REPL).
    fn describe(&self) -> String;

    /// The user this connection acts as.
    fn user(&self) -> &str;

    /// Switch the acting user for subsequent statements.
    fn set_user(&mut self, user: &str) -> Result<()>;

    /// Parse (local) or register (remote) a statement with `?` / `$n`
    /// parameter placeholders.
    fn prepare(&mut self, sql: &str) -> Result<StatementHandle>;

    /// Bind `params` and execute a prepared statement of any kind,
    /// materializing the result.
    fn execute(&mut self, stmt: &StatementHandle, params: &[Value]) -> Result<QueryResult>;

    /// Bind `params` and run a prepared SELECT, streaming rows back.
    fn query<'c>(
        &'c mut self,
        stmt: &StatementHandle,
        params: &[Value],
    ) -> Result<Box<dyn Rows + 'c>>;

    /// Parse and execute a parameter-less statement in one step.
    fn run(&mut self, sql: &str) -> Result<QueryResult>;

    /// Is an explicit transaction open on this connection?
    fn in_transaction(&self) -> bool;

    /// Snapshot the engine's metrics registry (local backends read it
    /// directly; remote backends issue a `Metrics` wire request).
    fn metrics(&mut self) -> Result<MetricsSnapshot>;

    /// Release the connection (sends `Quit` on remote backends).
    /// Idempotent; dropping the connection closes it implicitly.
    fn close(&mut self) -> Result<()>;

    /// `BEGIN` — sugar over [`run`](Connection::run).
    fn begin(&mut self) -> Result<QueryResult> {
        self.run("BEGIN")
    }

    /// `COMMIT` — sugar over [`run`](Connection::run).
    fn commit(&mut self) -> Result<QueryResult> {
        self.run("COMMIT")
    }

    /// `ROLLBACK` — sugar over [`run`](Connection::run).
    fn rollback(&mut self) -> Result<QueryResult> {
        self.run("ROLLBACK")
    }

    /// Engine-level escape hatch for embedded backends; `None` on
    /// remote connections.  The REPL's `.checkpoint` / `.demo` /
    /// `.tables` dot-commands reach the engine through this.
    fn local_database(&mut self) -> Option<&mut Database> {
        None
    }
}

/// The embedded backend: a [`Connection`] that owns its [`Database`]
/// and executes statements in-process through transient sessions.
///
/// Statement handles stay valid for the connection's lifetime (a
/// [`Prepared`] carries its own parse and plan cache, independent of
/// any session).  The owned database remains reachable through
/// [`database`](LocalConnection::database) /
/// [`database_mut`](LocalConnection::database_mut) for tools that need
/// engine-level hooks (checkpointing, integrity checks, demo seeding).
pub struct LocalConnection {
    db: Database,
    user: String,
}

impl LocalConnection {
    /// Wrap an already-constructed database.
    pub fn new(db: Database, user: &str) -> LocalConnection {
        LocalConnection {
            db,
            user: user.to_string(),
        }
    }

    /// A fresh in-memory database (no durability).
    pub fn in_memory(user: &str) -> LocalConnection {
        LocalConnection::new(Database::new_in_memory(), user)
    }

    /// Open an existing on-disk database (see [`Database::open`]).
    pub fn open(path: impl AsRef<Path>, user: &str) -> Result<LocalConnection> {
        Ok(LocalConnection::new(Database::open(path)?, user))
    }

    /// Create a new on-disk database (see [`Database::create`]).
    pub fn create(path: impl AsRef<Path>, user: &str) -> Result<LocalConnection> {
        Ok(LocalConnection::new(Database::create(path)?, user))
    }

    /// The owned database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The owned database, mutably.
    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Unwrap back into the owned database.
    pub fn into_database(self) -> Database {
        self.db
    }
}

impl Connection for LocalConnection {
    fn describe(&self) -> String {
        "embedded database (in-process)".to_string()
    }

    fn user(&self) -> &str {
        &self.user
    }

    fn set_user(&mut self, user: &str) -> Result<()> {
        self.user = user.to_string();
        Ok(())
    }

    fn prepare(&mut self, sql: &str) -> Result<StatementHandle> {
        self.db
            .session(&self.user)
            .prepare(sql)
            .map(StatementHandle::local)
    }

    fn execute(&mut self, stmt: &StatementHandle, params: &[Value]) -> Result<QueryResult> {
        let prepared = stmt.expect_local()?.clone();
        self.db.session(&self.user).execute(&prepared, params)
    }

    fn query<'c>(
        &'c mut self,
        stmt: &StatementHandle,
        params: &[Value],
    ) -> Result<Box<dyn Rows + 'c>> {
        let prepared = stmt.expect_local()?;
        let cursor = open_cursor(&self.db, &self.user, prepared, params)?;
        Ok(Box::new(cursor))
    }

    fn run(&mut self, sql: &str) -> Result<QueryResult> {
        self.db.session(&self.user).run(sql)
    }

    fn in_transaction(&self) -> bool {
        self.db.in_transaction()
    }

    fn metrics(&mut self) -> Result<MetricsSnapshot> {
        Ok(self.db.metrics_snapshot())
    }

    fn close(&mut self) -> Result<()> {
        Ok(())
    }

    fn local_database(&mut self) -> Option<&mut Database> {
        Some(&mut self.db)
    }
}

impl Connection for Session<'_> {
    fn describe(&self) -> String {
        "in-process session".to_string()
    }

    fn user(&self) -> &str {
        Session::user(self)
    }

    fn set_user(&mut self, user: &str) -> Result<()> {
        Session::set_user(self, user);
        Ok(())
    }

    fn prepare(&mut self, sql: &str) -> Result<StatementHandle> {
        Session::prepare(self, sql).map(StatementHandle::local)
    }

    fn execute(&mut self, stmt: &StatementHandle, params: &[Value]) -> Result<QueryResult> {
        let prepared = stmt.expect_local()?.clone();
        Session::execute(self, &prepared, params)
    }

    fn query<'c>(
        &'c mut self,
        stmt: &StatementHandle,
        params: &[Value],
    ) -> Result<Box<dyn Rows + 'c>> {
        let prepared = stmt.expect_local()?;
        let cursor = Session::query(self, prepared, params)?;
        Ok(Box::new(cursor))
    }

    fn run(&mut self, sql: &str) -> Result<QueryResult> {
        Session::run(self, sql)
    }

    fn in_transaction(&self) -> bool {
        Session::in_transaction(self)
    }

    fn metrics(&mut self) -> Result<MetricsSnapshot> {
        Ok(self.database_mut().metrics_snapshot())
    }

    fn close(&mut self) -> Result<()> {
        Ok(())
    }

    fn local_database(&mut self) -> Option<&mut Database> {
        Some(self.database_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded() -> LocalConnection {
        let mut conn = LocalConnection::in_memory("admin");
        conn.run("CREATE TABLE Gene (GID TEXT, Len INT)").unwrap();
        conn.run("INSERT INTO Gene VALUES ('JW0080', 11), ('JW0082', 42)")
            .unwrap();
        conn
    }

    /// One generic body runs against both in-process backends.
    fn drive(conn: &mut dyn Connection) {
        let stmt = conn.prepare("SELECT GID FROM Gene WHERE Len = ?").unwrap();
        assert_eq!(stmt.param_count(), 1);
        let mut rows = conn.query(&stmt, &[Value::Int(42)]).unwrap();
        assert_eq!(rows.columns(), ["GID"]);
        let row = rows.next_row().unwrap().unwrap();
        assert_eq!(row.values[0], Value::Text("JW0082".into()));
        assert!(rows.next_row().unwrap().is_none());
        drop(rows);

        let ins = conn.prepare("INSERT INTO Gene VALUES (?, ?)").unwrap();
        let r = conn
            .execute(&ins, &[Value::Text("JW0090".into()), Value::Int(7)])
            .unwrap();
        assert_eq!(r.affected, 1);

        assert!(!conn.in_transaction());
        conn.begin().unwrap();
        assert!(conn.in_transaction());
        conn.run("DELETE FROM Gene WHERE GID = 'JW0090'").unwrap();
        conn.rollback().unwrap();
        assert!(!conn.in_transaction());
        let back = conn
            .run("SELECT GID FROM Gene WHERE GID = 'JW0090'")
            .unwrap();
        assert_eq!(back.rows.len(), 1);
        conn.close().unwrap();
    }

    #[test]
    fn local_connection_drives_generic_client_code() {
        let mut conn = seeded();
        drive(&mut conn);
    }

    #[test]
    fn session_drives_generic_client_code() {
        let mut conn = seeded();
        let db = conn.database_mut();
        let mut session = db.session("admin");
        drive(&mut session);
    }

    #[test]
    fn remote_handle_rejected_by_local_backend() {
        let mut conn = seeded();
        let fake = StatementHandle::remote(7, 0, "SELECT GID FROM Gene");
        let err = conn.execute(&fake, &[]).unwrap_err();
        assert!(err.to_string().contains("different connection backend"));
        assert!(conn.query(&fake, &[]).is_err());
    }

    #[test]
    fn rows_collect_result_materializes() {
        let mut conn = seeded();
        let stmt = conn.prepare("SELECT GID FROM Gene").unwrap();
        let mut rows = conn.query(&stmt, &[]).unwrap();
        let qr = rows.collect_result().unwrap();
        assert_eq!(qr.rows.len(), 2);
        assert_eq!(qr.columns, ["GID"]);
    }

    #[test]
    fn set_user_switches_authorization_scope() {
        let mut conn = seeded();
        conn.run("CREATE USER alice").unwrap();
        conn.set_user("alice").unwrap();
        assert_eq!(conn.user(), "alice");
        // alice has no SELECT grant on Gene
        assert!(conn.run("SELECT GID FROM Gene").is_err());
        conn.set_user("admin").unwrap();
        assert!(conn.run("SELECT GID FROM Gene").is_ok());
    }
}
