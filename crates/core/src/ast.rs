//! Abstract syntax for SQL and the paper's A-SQL extension.
//!
//! The A-SQL grammar is taken directly from the paper's figures:
//! Figure 4 (`CREATE/DROP ANNOTATION TABLE`), Figure 6 (`ADD / ARCHIVE /
//! RESTORE ANNOTATION`), Figure 7 (extended `SELECT` with `ANNOTATION`,
//! `PROMOTE`, `AWHERE`, `AHAVING`, `FILTER`), and Figure 11
//! (`START/STOP CONTENT APPROVAL`).  A handful of commands the paper
//! describes in prose but gives no syntax for (approval decisions,
//! dependency rules, outdated inspection) are defined here and documented
//! as extensions in DESIGN.md.

use bdbms_common::{DataType, Value};

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal constant.
    Literal(Value),
    /// Prepared-statement parameter placeholder (`?` or `$n`), stored as
    /// a 0-based slot index.  Bound to a literal before execution; an
    /// unbound parameter reaching evaluation is a
    /// [`bdbms_common::ErrorCode::ParamMismatch`] error.
    Param(usize),
    /// Column reference, optionally qualified (`G.GSequence`).
    Column(Option<String>, String),
    /// Unary operators.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operators.
    Binary(Box<Expr>, BinaryOp, Box<Expr>),
    /// `expr IS [NOT] NULL`.
    IsNull(Box<Expr>, bool),
    /// `expr [NOT] LIKE 'pattern'` (SQL `%`/`_` wildcards).
    Like(Box<Expr>, String, bool),
    /// `expr [NOT] CONTAINS SEQ 'pattern'` — exact substring match over a
    /// sequence column.  The pattern is a parse-time literal (never a
    /// parameter) so plans stay value-independent; the planner routes the
    /// positive form through a sequence index when one covers the column.
    ContainsSeq(Box<Expr>, String, bool),
    /// `expr [NOT] IN (v1, v2, ...)`.
    InList(Box<Expr>, Vec<Expr>, bool),
    /// Scalar function call (`LENGTH`, `UPPER`, `LOWER`, `ABS`, `SUBSTR`).
    Call(String, Vec<Expr>),
    /// Aggregate call inside SELECT/HAVING (`COUNT(*)` = `Count` + `None`).
    Aggregate(AggFunc, Option<Box<Expr>>),
}

impl std::fmt::Display for Expr {
    /// SQL-ish rendering used by `EXPLAIN` plan trees and the slow-query
    /// log.  Binary expressions are fully parenthesized rather than
    /// precedence-aware — unambiguous output matters more than pretty
    /// output, and the text is never re-parsed.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Expr::Literal(Value::Text(s)) => write!(f, "'{s}'"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Param(i) => write!(f, "${}", i + 1),
            Expr::Column(Some(q), c) => write!(f, "{q}.{c}"),
            Expr::Column(None, c) => f.write_str(c),
            Expr::Unary(UnaryOp::Not, e) => write!(f, "NOT ({e})"),
            Expr::Unary(UnaryOp::Neg, e) => write!(f, "-({e})"),
            Expr::Binary(l, op, r) => write!(f, "({l} {op} {r})"),
            Expr::IsNull(e, false) => write!(f, "{e} IS NULL"),
            Expr::IsNull(e, true) => write!(f, "{e} IS NOT NULL"),
            Expr::Like(e, p, false) => write!(f, "{e} LIKE '{p}'"),
            Expr::Like(e, p, true) => write!(f, "{e} NOT LIKE '{p}'"),
            Expr::ContainsSeq(e, p, false) => write!(f, "{e} CONTAINS SEQ '{p}'"),
            Expr::ContainsSeq(e, p, true) => write!(f, "{e} NOT CONTAINS SEQ '{p}'"),
            Expr::InList(e, list, neg) => {
                write!(f, "{e} {}IN (", if *neg { "NOT " } else { "" })?;
                for (i, item) in list.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str(")")
            }
            Expr::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
            Expr::Aggregate(func, arg) => match arg {
                Some(a) => write!(f, "{func}({a})"),
                None => write!(f, "{func}(*)"),
            },
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Logical negation.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// Comparison operators.
    Eq,
    /// `<>` / `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// Logical.
    And,
    /// Logical.
    Or,
    /// Arithmetic.
    Add,
    /// Arithmetic.
    Sub,
    /// Arithmetic.
    Mul,
    /// Arithmetic.
    Div,
    /// Arithmetic remainder.
    Mod,
    /// String concatenation (`||`).
    Concat,
}

impl std::fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BinaryOp::Eq => "=",
            BinaryOp::Ne => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Concat => "||",
        };
        f.write_str(s)
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(expr)` / `COUNT(*)`.
    Count,
    /// `SUM`.
    Sum,
    /// `AVG`.
    Avg,
    /// `MIN`.
    Min,
    /// `MAX`.
    Max,
}

impl std::fmt::Display for AggFunc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        };
        f.write_str(s)
    }
}

/// One item in a SELECT projection list.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The projected expression (`*` is expanded by the planner).
    pub expr: Expr,
    /// `AS alias`.
    pub alias: Option<String>,
    /// `PROMOTE (Cj, Ck, …)`: copy annotations from these columns onto
    /// this projected column (Figure 7).
    pub promote: Vec<(Option<String>, String)>,
}

/// Wildcard marker used before expansion.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `SELECT *` (optionally `alias.*`).
    Star(Option<String>),
    /// Explicit item list.
    Items(Vec<SelectItem>),
}

/// A table reference in FROM.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table name.
    pub table: String,
    /// Optional alias.
    pub alias: Option<String>,
    /// `ANNOTATION(S1, S2, …)` — which annotation tables to propagate
    /// from this relation (Figure 7).  Empty = no annotation propagation.
    pub annotations: Vec<String>,
}

/// Annotation predicates for AWHERE / AHAVING / FILTER.
#[derive(Debug, Clone, PartialEq)]
pub enum AnnExpr {
    /// Annotation body (full text) contains the substring.
    Contains(String),
    /// Annotation came from the named annotation table (category check).
    FromTable(String),
    /// XML path comparison: `PATH '/Annotation/source' = 'RegulonDB'`.
    PathEq(String, String),
    /// Annotation timestamp strictly before `t`.
    Before(u64),
    /// Annotation timestamp at or after `t`.
    After(u64),
    /// Conjunction.
    And(Box<AnnExpr>, Box<AnnExpr>),
    /// Disjunction.
    Or(Box<AnnExpr>, Box<AnnExpr>),
    /// Negation.
    Not(Box<AnnExpr>),
}

/// The extended SELECT of Figure 7.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// `DISTINCT`?
    pub distinct: bool,
    /// Projection list.
    pub projection: Projection,
    /// FROM tables (comma = cross product constrained by WHERE).
    pub from: Vec<TableRef>,
    /// Data predicate.
    pub where_clause: Option<Expr>,
    /// Annotation predicate over input tuples (Figure 7: AWHERE).
    pub awhere: Option<AnnExpr>,
    /// Grouping columns.
    pub group_by: Vec<(Option<String>, String)>,
    /// Post-grouping data predicate.
    pub having: Option<Expr>,
    /// Post-grouping annotation predicate (Figure 7: AHAVING).
    pub ahaving: Option<AnnExpr>,
    /// Annotation filter: keeps tuples, drops non-matching annotations
    /// (Figure 7: FILTER).
    pub filter: Option<AnnExpr>,
    /// `ORDER BY col [DESC]` (extension for deterministic output).
    pub order_by: Vec<((Option<String>, String), bool)>,
    /// `LIMIT n` — cap the final output at `n` rows.  Without ORDER BY
    /// the kept subset follows pipeline order (standard SQL leaves it
    /// unspecified), and the executor pushes the limit into the pipeline
    /// for early termination when no blocking operator intervenes.
    pub limit: Option<u64>,
    /// Trailing set operation, e.g. `… INTERSECT SELECT …`.
    pub set_op: Option<(SetOp, Box<Select>)>,
}

/// Set operations with annotation-union semantics (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    /// Bag-union then duplicate elimination, annotations unioned.
    Union,
    /// Tuples in both inputs, annotations unioned from both (the paper's
    /// gene-table example).
    Intersect,
    /// Tuples in the left only; left annotations kept.
    Except,
}

/// Target of an `ADD ANNOTATION … ON (…)` statement.
#[derive(Debug, Clone, PartialEq)]
pub enum AnnTarget {
    /// Annotate the output cells of a SELECT.
    Select(Box<Select>),
    /// Insert-and-annotate (§3.2: link annotations to operations).
    Insert(Box<Statement>),
    /// Update-and-annotate.
    Update(Box<Statement>),
    /// Delete-and-annotate: deleted tuples go to the table's deletion log
    /// together with the annotation.
    Delete(Box<Statement>),
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col type, …)`.
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<(String, DataType)>,
    },
    /// `DROP TABLE name`.
    DropTable {
        /// Table name.
        name: String,
    },
    /// `CREATE INDEX name ON table (column)` — a secondary B+-tree index
    /// the executor routes equality/range predicates through.
    CreateIndex {
        /// Index name.
        name: String,
        /// Indexed table.
        table: String,
        /// Indexed column.
        column: String,
    },
    /// `DROP INDEX name ON table`.
    DropIndex {
        /// Index name.
        name: String,
        /// Indexed table.
        table: String,
    },
    /// `CREATE SEQUENCE INDEX name ON table (column) [USING SBC|SUFFIX]` —
    /// a substring-search index over a TEXT sequence column, backed by the
    /// paper's SBC-tree (RLE-compressed suffixes, the default) or by an
    /// uncompressed String B-tree baseline.
    CreateSequenceIndex {
        /// Index name.
        name: String,
        /// Indexed table.
        table: String,
        /// Indexed column.
        column: String,
        /// Backing structure.
        kind: SeqIndexKind,
    },
    /// `DROP SEQUENCE INDEX name ON table`.
    DropSequenceIndex {
        /// Index name.
        name: String,
        /// Indexed table.
        table: String,
    },
    /// `COPY table FROM 'path' [FORMAT FASTA|TSV]` — bulk load from a file
    /// through the deferred-index, WAL-bypassing ingest engine
    /// (`crate::ingest`; docs/INGEST.md).
    Copy {
        /// Target table.
        table: String,
        /// Source file path (server-side for remote connections).
        path: String,
        /// Input format; `None` = infer from the file extension
        /// (`.fa`/`.fasta` → FASTA, everything else → TSV).
        format: Option<CopyFormat>,
    },
    /// `CREATE ANNOTATION TABLE ann ON tbl [SCHEME CELL|RECTANGLE]`
    /// (Figure 4; SCHEME is our ablation extension, default RECTANGLE).
    CreateAnnotationTable {
        /// Annotation table (category) name.
        name: String,
        /// User table it attaches to.
        on: String,
        /// `true` = per-cell scheme (Figure 3), `false` = compact
        /// rectangle scheme (Figure 5).
        cell_scheme: bool,
    },
    /// `DROP ANNOTATION TABLE ann ON tbl` (Figure 4).
    DropAnnotationTable {
        /// Annotation table name.
        name: String,
        /// User table.
        on: String,
    },
    /// `ADD ANNOTATION TO t.a[, t.b] VALUE 'body' ON (…)` (Figure 6a).
    AddAnnotation {
        /// `(user_table, annotation_table)` pairs receiving the annotation.
        to: Vec<(String, String)>,
        /// Annotation body (XML or free text).
        value: String,
        /// What to annotate.
        on: AnnTarget,
    },
    /// `ARCHIVE ANNOTATION FROM t.a[,…] [BETWEEN t1 AND t2] ON (SELECT …)`
    /// (Figure 6b).
    ArchiveAnnotation {
        /// Annotation tables to archive from.
        from: Vec<(String, String)>,
        /// Optional timestamp window.
        between: Option<(u64, u64)>,
        /// Cells whose annotations are archived.
        on: Select,
    },
    /// `RESTORE ANNOTATION …` (Figure 6c).
    RestoreAnnotation {
        /// Annotation tables to restore into.
        from: Vec<(String, String)>,
        /// Optional timestamp window.
        between: Option<(u64, u64)>,
        /// Cells whose annotations are restored.
        on: Select,
    },
    /// A (possibly compound) SELECT.
    Select(Select),
    /// `INSERT INTO t VALUES (…), (…)`.
    Insert {
        /// Target table.
        table: String,
        /// Row literals.
        rows: Vec<Vec<Expr>>,
    },
    /// `UPDATE t SET c = e, … [WHERE …]`.
    Update {
        /// Target table.
        table: String,
        /// Assignments.
        sets: Vec<(String, Expr)>,
        /// Row predicate.
        where_clause: Option<Expr>,
    },
    /// `DELETE FROM t [WHERE …]`.
    Delete {
        /// Target table.
        table: String,
        /// Row predicate.
        where_clause: Option<Expr>,
    },
    /// `CREATE USER name [IN GROUP g]`.
    CreateUser {
        /// User name.
        name: String,
        /// Optional group memberships.
        groups: Vec<String>,
    },
    /// `GRANT priv[, …] ON t TO user` (§6: the classic model bdbms keeps).
    Grant {
        /// Privileges.
        privileges: Vec<Privilege>,
        /// Table.
        table: String,
        /// Grantee (user or group).
        to: String,
    },
    /// `REVOKE priv[, …] ON t FROM user`.
    Revoke {
        /// Privileges.
        privileges: Vec<Privilege>,
        /// Table.
        table: String,
        /// Target.
        from: String,
    },
    /// `START CONTENT APPROVAL ON t [COLUMNS c,…] APPROVED BY u` (Fig 11).
    StartContentApproval {
        /// Monitored table.
        table: String,
        /// Monitored columns (empty = all).
        columns: Vec<String>,
        /// Approver (user or group).
        approved_by: String,
    },
    /// `STOP CONTENT APPROVAL ON t [COLUMNS c,…]` (Figure 11).
    StopContentApproval {
        /// Table.
        table: String,
        /// Columns (empty = all).
        columns: Vec<String>,
    },
    /// `APPROVE OPERATION n` (extension: the paper describes the decision
    /// but gives no syntax).
    ApproveOperation {
        /// Pending operation id.
        id: u64,
    },
    /// `DISAPPROVE OPERATION n` — executes the stored inverse statement.
    DisapproveOperation {
        /// Pending operation id.
        id: u64,
    },
    /// `SHOW PENDING OPERATIONS [ON t]` (extension).
    ShowPending {
        /// Optional table filter.
        table: Option<String>,
    },
    /// `CREATE DEPENDENCY RULE name FROM t.c[, t.c2] TO t2.c3 VIA
    /// PROCEDURE 'p' [EXECUTABLE] [INVERTIBLE] [LINK t.k = t2.k2]`
    /// (§5 Procedural Dependencies; syntax is our extension).
    CreateDependencyRule {
        /// Rule name.
        name: String,
        /// Source columns (single table).
        from: Vec<(String, String)>,
        /// Target column.
        to: (String, String),
        /// Procedure name.
        procedure: String,
        /// Can the DBMS run the procedure (§5: executable)?
        executable: bool,
        /// Is the procedure invertible (§5)?
        invertible: bool,
        /// Row linkage `src_col = dst_col`; `None` = same row.
        link: Option<(String, String)>,
    },
    /// `DROP DEPENDENCY RULE name`.
    DropDependencyRule {
        /// Rule name.
        name: String,
    },
    /// `SHOW OUTDATED [ON t]` — report outdated cells (§5).
    ShowOutdated {
        /// Optional table filter.
        table: Option<String>,
    },
    /// `CHECK [TABLE t]` — online integrity verification: page
    /// checksums of the durable image, B+-tree key order, index↔heap
    /// agreement, annotation-attachment and outdated-bitmap
    /// cross-checks, and WAL chain continuity.  Read-only; reports
    /// problems instead of failing on the first one.
    Check {
        /// Optional table filter (storage-wide legs still run).
        table: Option<String>,
    },
    /// `ANALYZE t` — rebuild the table's planner statistics (row count,
    /// per-column min/max, NULL counts, distinct-value estimates) from a
    /// full scan.  Stats are otherwise maintained incrementally by DML.
    Analyze {
        /// Table to re-analyze.
        table: String,
    },
    /// `VALIDATE t [WHERE …]` — revalidate outdated cells (§5:
    /// "Validating outdated data").
    Validate {
        /// Table.
        table: String,
        /// Which columns to revalidate (empty = all).
        columns: Vec<String>,
        /// Row predicate.
        where_clause: Option<Expr>,
    },
    /// `EXPLAIN [ANALYZE] <statement>` — render the plan the executor
    /// would choose (access paths with estimated rows, join order,
    /// pushed conjuncts, LIMIT pushdown) as a one-column result.  With
    /// `ANALYZE` the statement is *executed* through the instrumented
    /// batch pipeline and each node is annotated with actual rows,
    /// batches, and wall time (docs/OBSERVABILITY.md).  Only SELECT
    /// statements are explainable.
    Explain {
        /// Execute and report actuals?
        analyze: bool,
        /// The explained statement.
        stmt: Box<Statement>,
    },
    /// `SHOW SLOW QUERIES` — dump the engine's slow-query ring buffer
    /// (statements whose wall time exceeded the configured threshold).
    ShowSlowQueries,
    /// `BEGIN [TRANSACTION | WORK]` — open an explicit transaction.
    /// Until `COMMIT`/`ROLLBACK`, every statement's effects are recorded
    /// in the session's undo log (see `crate::txn`).
    Begin,
    /// `COMMIT [TRANSACTION | WORK]` — make the open transaction's
    /// effects permanent and discard its undo log.
    Commit,
    /// `ROLLBACK [TRANSACTION | WORK]` — undo everything since `BEGIN`.
    Rollback,
    /// `SAVEPOINT name` — mark a rollback point inside the open
    /// transaction.  Names may shadow earlier savepoints.
    Savepoint {
        /// Savepoint name.
        name: String,
    },
    /// `ROLLBACK TO [SAVEPOINT] name` — undo back to the savepoint,
    /// keeping the transaction (and the savepoint itself) open.
    RollbackTo {
        /// Savepoint name.
        name: String,
    },
    /// `RELEASE [SAVEPOINT] name` — forget the savepoint (and any
    /// savepoints created after it) without undoing anything.
    Release {
        /// Savepoint name.
        name: String,
    },
}

/// Backing structure for a sequence index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqIndexKind {
    /// RLE-compressed SBC-tree (the paper's §7.2 structure; default).
    Sbc,
    /// Uncompressed String B-tree baseline.
    Suffix,
}

impl SeqIndexKind {
    /// Keyword used in SQL (`USING SBC` / `USING SUFFIX`).
    pub fn as_str(&self) -> &'static str {
        match self {
            SeqIndexKind::Sbc => "SBC",
            SeqIndexKind::Suffix => "SUFFIX",
        }
    }
}

/// Input format of a `COPY` statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyFormat {
    /// `>header` lines followed by sequence lines; loads two TEXT columns
    /// (header, sequence).
    Fasta,
    /// Tab-separated positional columns coerced to the table schema.
    Tsv,
}

impl CopyFormat {
    /// Keyword used in SQL (`FORMAT FASTA` / `FORMAT TSV`).
    pub fn as_str(&self) -> &'static str {
        match self {
            CopyFormat::Fasta => "FASTA",
            CopyFormat::Tsv => "TSV",
        }
    }
}

/// Table privileges of the GRANT/REVOKE model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Privilege {
    /// Read rows.
    Select,
    /// Insert rows.
    Insert,
    /// Update cells.
    Update,
    /// Delete rows.
    Delete,
    /// Insert/maintain provenance annotations (§4: provenance writes are
    /// restricted to integration tools).
    Provenance,
}

impl Privilege {
    /// Parse a privilege keyword.
    pub fn parse(s: &str) -> Option<Privilege> {
        match s.to_ascii_uppercase().as_str() {
            "SELECT" => Some(Privilege::Select),
            "INSERT" => Some(Privilege::Insert),
            "UPDATE" => Some(Privilege::Update),
            "DELETE" => Some(Privilege::Delete),
            "PROVENANCE" => Some(Privilege::Provenance),
            _ => None,
        }
    }
}

impl std::fmt::Display for Privilege {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Privilege::Select => "SELECT",
            Privilege::Insert => "INSERT",
            Privilege::Update => "UPDATE",
            Privilege::Delete => "DELETE",
            Privilege::Provenance => "PROVENANCE",
        };
        f.write_str(s)
    }
}
