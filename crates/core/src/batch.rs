//! Batch-at-a-time (vectorized) operators.
//!
//! The Volcano pipeline in [`crate::executor`] pays a virtual call, a
//! stats borrow, and an interpreted expression walk *per row per
//! operator*.  This module is the MonetDB/X100-style alternative the
//! `batch` toggle of [`ExecOptions`](crate::executor::ExecOptions)
//! selects (the default): every operator implements
//!
//! ```text
//! fn next_batch(&mut self, demand: usize) -> Result<Option<Batch>>
//! ```
//!
//! and moves up to [`BATCH_SIZE`] tuples per call, so dispatch and
//! bookkeeping amortize across the batch and predicates run as
//! per-conjunct tight loops over a selection vector.  `demand` makes the
//! pull *demand-driven*: a pushed `LIMIT k` asks its child for exactly
//! `k` tuples, which keeps filterless scans' fetch counts as exact as
//! the row path's.
//!
//! Plan decisions, result multisets, and error values are identical to
//! the row path (the differential proptest suite pins this); the row
//! counters in `ExecStats` advance in batch granularity instead of row
//! granularity.  See `docs/EXECUTOR.md` for the operator catalog and
//! how to add one.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use bdbms_common::{BdbmsError, Result, Value};

use crate::ast::{AggFunc, AnnExpr, Expr, Select, SelectItem};
use crate::executor::{
    concat_pipe, eval_ann, has_aggregate, item_ann_columns, ExecStats, PipeRow, RowValueStream,
    SourceAttach,
};
use crate::expr::{compile, eval_compiled, resolve_column, CExpr, ColBinding};
use crate::result::{AnnRef, AnnRow};

/// Target tuples per operator pull.  Large enough to amortize dispatch,
/// small enough that a batch of wide rows stays cache- and
/// allocation-friendly.
pub const BATCH_SIZE: usize = 1024;

/// A batch of pipeline tuples plus a **selection vector**: `sel` lists
/// the indexes of the live rows in ascending order.  Filters shrink
/// `sel` instead of moving rows; dead rows are simply never read again.
pub(crate) struct Batch {
    /// Row storage; only the positions named by `sel` are live.
    pub(crate) rows: Vec<PipeRow>,
    /// Live row indexes, ascending.
    pub(crate) sel: Vec<usize>,
}

impl Batch {
    /// A batch with every row live.
    pub(crate) fn full(rows: Vec<PipeRow>) -> Batch {
        let sel = (0..rows.len()).collect();
        Batch { rows, sel }
    }

    /// Number of live rows.
    pub(crate) fn live(&self) -> usize {
        self.sel.len()
    }

    /// Consume the batch, yielding the live rows in order (compaction —
    /// used when a consumer materializes).
    pub(crate) fn into_rows(self) -> Vec<PipeRow> {
        if self.sel.len() == self.rows.len() {
            return self.rows;
        }
        let mut sel = self.sel.into_iter().peekable();
        self.rows
            .into_iter()
            .enumerate()
            .filter_map(|(i, r)| {
                if sel.peek() == Some(&i) {
                    sel.next();
                    Some(r)
                } else {
                    None
                }
            })
            .collect()
    }
}

/// The vectorized operator interface.  `demand` is how many live tuples
/// the caller wants at most (clamped to `1..=BATCH_SIZE`); an operator
/// may return fewer — including an empty batch, which means "made
/// progress, pull again" — and returns `Ok(None)` only at exhaustion.
/// An `Err` aborts the current batch; partially fetched tuples are
/// dropped with it.
pub(crate) trait BatchOp<'a> {
    /// Pull the next batch.
    fn next_batch(&mut self, demand: usize) -> Result<Option<Batch>>;
}

impl<'a> BatchOp<'a> for Box<dyn BatchOp<'a> + 'a> {
    fn next_batch(&mut self, demand: usize) -> Result<Option<Batch>> {
        (**self).next_batch(demand)
    }
}

// ---------------------------------------------------------------------------
// Scan
// ---------------------------------------------------------------------------

/// A scan's access path, chosen at assembly time by the executor's
/// `scan_base_batch`.
pub(crate) enum ScanBase<'a> {
    /// Index/seq-index probes (and value-dependent probes): the same
    /// row-at-a-time streams the row pipeline uses.
    Stream(RowValueStream<'a>),
    /// Vectorized full scan: [`BatchScan`] asks the table for a whole
    /// chunk per pull, decoded in place in the buffer pool and pruned to
    /// `keep` (the planner's value columns — every other slot is
    /// provably unread and left NULL).  This is where the batch pipeline
    /// stops paying the row path's per-row record copy and full decode.
    Chunk {
        table: &'a crate::catalog::Table,
        /// Next row number to fetch.
        next: u64,
        /// Source-local columns whose values the query reads, ascending
        /// (`None` = unknown, decode all).
        keep: Option<Vec<usize>>,
    },
}

/// Scan: wraps the access path chosen at assembly time
/// ([`crate::executor`]'s `scan_base_batch`), fetches up to `demand`
/// tuples — a whole chunk at once on full scans —
/// then re-checks the pushed conjuncts in per-conjunct tight loops over
/// the selection vector.  Eager annotation mode attaches to survivors
/// here (matching the row path, which attaches pre-filter but only
/// observably differs in `anns_attached` totals when rows are rejected —
/// which eager runs of the regression suite pin, so survivors-only is
/// wrong there: see below).
pub(crate) struct BatchScan<'a> {
    base: ScanBase<'a>,
    pushed: Vec<CExpr>,
    /// Eager-mode attacher (applied pre-filter for row-path parity of
    /// `anns_attached`).
    attach: Option<SourceAttach<'a>>,
    arity: usize,
    st: Rc<RefCell<ExecStats>>,
    done: bool,
}

impl<'a> BatchScan<'a> {
    pub(crate) fn new(
        base: ScanBase<'a>,
        pushed: Vec<CExpr>,
        attach: Option<SourceAttach<'a>>,
        arity: usize,
        st: Rc<RefCell<ExecStats>>,
    ) -> Self {
        BatchScan {
            base,
            pushed,
            attach,
            arity,
            st,
            done: false,
        }
    }
}

impl<'a> BatchOp<'a> for BatchScan<'a> {
    fn next_batch(&mut self, demand: usize) -> Result<Option<Batch>> {
        if self.done {
            return Ok(None);
        }
        let want = demand.clamp(1, BATCH_SIZE);
        let mut fetched: Vec<(u64, Vec<Value>)> = Vec::with_capacity(want);
        match &mut self.base {
            ScanBase::Stream(base) => {
                while fetched.len() < want {
                    match base.next() {
                        None => {
                            self.done = true;
                            break;
                        }
                        Some(Err(e)) => {
                            self.done = true;
                            self.st.borrow_mut().rows_fetched += fetched.len() as u64;
                            return Err(e);
                        }
                        Some(Ok(rv)) => fetched.push(rv),
                    }
                }
            }
            ScanBase::Chunk { table, next, keep } => {
                match table.scan_chunk(*next, want, keep.as_deref(), &mut fetched) {
                    Err(e) => {
                        self.done = true;
                        self.st.borrow_mut().rows_fetched += fetched.len() as u64;
                        return Err(e);
                    }
                    Ok(Some(n)) => *next = n,
                    Ok(None) => self.done = true,
                }
            }
        }
        if fetched.is_empty() {
            return Ok(None);
        }
        let mut attached = 0u64;
        let arity = self.arity;
        let attach = &mut self.attach;
        let rows: Vec<PipeRow> = fetched
            .into_iter()
            .map(|(row_no, values)| {
                // eager mode attaches pre-filter, like the row path
                let anns = attach.as_mut().map(|a| {
                    let mut slots = vec![Vec::new(); arity];
                    attached += a.attach_into_buf(row_no, &mut slots);
                    slots
                });
                PipeRow {
                    values,
                    rows: vec![row_no],
                    anns,
                }
            })
            .collect();
        {
            let mut s = self.st.borrow_mut();
            s.rows_fetched += rows.len() as u64;
            s.scan_batches += 1;
            if attached > 0 {
                s.anns_attached += attached;
            }
        }
        let mut batch = Batch::full(rows);
        // per-conjunct tight loops: each conjunct sweeps the survivors
        // of the previous one
        let mut filtered = 0u64;
        for conjunct in &self.pushed {
            if batch.sel.is_empty() {
                break;
            }
            let mut kept = Vec::with_capacity(batch.sel.len());
            for &i in &batch.sel {
                match eval_compiled(conjunct, &batch.rows[i].values) {
                    Err(e) => {
                        self.done = true;
                        if filtered > 0 {
                            self.st.borrow_mut().rows_scan_filtered += filtered;
                        }
                        return Err(e);
                    }
                    Ok(v) if !v.is_true() => filtered += 1,
                    Ok(_) => kept.push(i),
                }
            }
            batch.sel = kept;
        }
        if filtered > 0 {
            self.st.borrow_mut().rows_scan_filtered += filtered;
        }
        Ok(Some(batch))
    }
}

/// Drain a build-side scan to its live rows (assembly-time
/// materialization of hash-join build sides, matching the row path's
/// error timing).
pub(crate) fn drain_build<'a>(mut scan: impl BatchOp<'a>) -> Result<Vec<PipeRow>> {
    let mut out = Vec::new();
    while let Some(b) = scan.next_batch(BATCH_SIZE)? {
        out.extend(b.into_rows());
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Join
// ---------------------------------------------------------------------------

/// Join against a materialized build side: hash join on an equi-key
/// (NULL keys never match, per SQL) or cross product without one.
/// Matches that overflow `demand` buffer in `pending` and drain on the
/// next pull.
pub(crate) struct BatchJoin<'a> {
    left: Box<dyn BatchOp<'a> + 'a>,
    build: Vec<PipeRow>,
    /// `Some((probe column, build-side hash))` for an equi-join.
    key: Option<(usize, HashMap<Value, Vec<usize>>)>,
    pending: VecDeque<PipeRow>,
    left_done: bool,
}

impl<'a> BatchJoin<'a> {
    pub(crate) fn new(
        left: Box<dyn BatchOp<'a> + 'a>,
        build: Vec<PipeRow>,
        key: Option<(usize, usize)>,
    ) -> Self {
        let key = key.map(|(lcol, rcol)| {
            let mut map: HashMap<Value, Vec<usize>> = HashMap::new();
            for (ri, r) in build.iter().enumerate() {
                if !r.values[rcol].is_null() {
                    map.entry(r.values[rcol].clone()).or_default().push(ri);
                }
            }
            (lcol, map)
        });
        BatchJoin {
            left,
            build,
            key,
            pending: VecDeque::new(),
            left_done: false,
        }
    }
}

impl<'a> BatchOp<'a> for BatchJoin<'a> {
    fn next_batch(&mut self, demand: usize) -> Result<Option<Batch>> {
        let want = demand.clamp(1, BATCH_SIZE);
        let mut out: Vec<PipeRow> = Vec::with_capacity(want.min(self.pending.len().max(16)));
        loop {
            while out.len() < want {
                match self.pending.pop_front() {
                    Some(r) => out.push(r),
                    None => break,
                }
            }
            if out.len() >= want || self.left_done {
                break;
            }
            match self.left.next_batch(want)? {
                None => self.left_done = true,
                Some(b) => {
                    for &i in &b.sel {
                        let l = &b.rows[i];
                        match &self.key {
                            Some((lcol, map)) => {
                                if l.values[*lcol].is_null() {
                                    continue;
                                }
                                if let Some(idxs) = map.get(&l.values[*lcol]) {
                                    for &ri in idxs {
                                        let joined = concat_pipe(l, &self.build[ri]);
                                        if out.len() < want {
                                            out.push(joined);
                                        } else {
                                            self.pending.push_back(joined);
                                        }
                                    }
                                }
                            }
                            None => {
                                for r in &self.build {
                                    let joined = concat_pipe(l, r);
                                    if out.len() < want {
                                        out.push(joined);
                                    } else {
                                        self.pending.push_back(joined);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        if out.is_empty() && self.left_done && self.pending.is_empty() {
            return Ok(None);
        }
        Ok(Some(Batch::full(out)))
    }
}

// ---------------------------------------------------------------------------
// Filter / attach / AWHERE / limit
// ---------------------------------------------------------------------------

/// Residual WHERE: cross-source conjuncts (or, with pushdown disabled,
/// the whole predicate) swept over the joined batch in per-conjunct
/// tight loops.
pub(crate) struct BatchFilter<'a> {
    child: Box<dyn BatchOp<'a> + 'a>,
    conjuncts: Vec<CExpr>,
}

impl<'a> BatchFilter<'a> {
    pub(crate) fn new(child: Box<dyn BatchOp<'a> + 'a>, conjuncts: Vec<CExpr>) -> Self {
        BatchFilter { child, conjuncts }
    }
}

impl<'a> BatchOp<'a> for BatchFilter<'a> {
    fn next_batch(&mut self, demand: usize) -> Result<Option<Batch>> {
        let Some(mut batch) = self.child.next_batch(demand)? else {
            return Ok(None);
        };
        for conjunct in &self.conjuncts {
            if batch.sel.is_empty() {
                break;
            }
            let mut kept = Vec::with_capacity(batch.sel.len());
            for &i in &batch.sel {
                match eval_compiled(conjunct, &batch.rows[i].values) {
                    Err(e) => return Err(e),
                    Ok(v) if !v.is_true() => {}
                    Ok(_) => kept.push(i),
                }
            }
            batch.sel = kept;
        }
        Ok(Some(batch))
    }
}

/// Lazy annotation attachment: fills each survivor's annotation slots
/// from the per-source attachers (post-join, post-filter — survivors
/// only), bumping `anns_attached` once per batch.
pub(crate) struct BatchAttach<'a> {
    child: Box<dyn BatchOp<'a> + 'a>,
    attachers: Vec<SourceAttach<'a>>,
    total_arity: usize,
    st: Rc<RefCell<ExecStats>>,
}

impl<'a> BatchAttach<'a> {
    pub(crate) fn new(
        child: Box<dyn BatchOp<'a> + 'a>,
        attachers: Vec<SourceAttach<'a>>,
        total_arity: usize,
        st: Rc<RefCell<ExecStats>>,
    ) -> Self {
        BatchAttach {
            child,
            attachers,
            total_arity,
            st,
        }
    }
}

impl<'a> BatchOp<'a> for BatchAttach<'a> {
    fn next_batch(&mut self, demand: usize) -> Result<Option<Batch>> {
        let Some(mut batch) = self.child.next_batch(demand)? else {
            return Ok(None);
        };
        let mut attached = 0u64;
        for &i in &batch.sel {
            let row = &mut batch.rows[i];
            if row.anns.is_none() {
                let mut slots = vec![Vec::new(); self.total_arity];
                for (si, attacher) in self.attachers.iter_mut().enumerate() {
                    attached += attacher.attach_into_buf(row.rows[si], &mut slots);
                }
                row.anns = Some(slots);
            }
        }
        if attached > 0 {
            self.st.borrow_mut().anns_attached += attached;
        }
        Ok(Some(batch))
    }
}

/// AWHERE: a tuple survives when *some* of its annotations satisfies
/// the predicate (§3.4).  Runs after attachment, so every live row has
/// its slots filled.
pub(crate) struct BatchAWhere<'a> {
    child: Box<dyn BatchOp<'a> + 'a>,
    cond: AnnExpr,
}

impl<'a> BatchAWhere<'a> {
    pub(crate) fn new(child: Box<dyn BatchOp<'a> + 'a>, cond: AnnExpr) -> Self {
        BatchAWhere { child, cond }
    }
}

impl<'a> BatchOp<'a> for BatchAWhere<'a> {
    fn next_batch(&mut self, demand: usize) -> Result<Option<Batch>> {
        let Some(mut batch) = self.child.next_batch(demand)? else {
            return Ok(None);
        };
        let cond = &self.cond;
        let rows = &batch.rows;
        batch.sel.retain(|&i| match &rows[i].anns {
            Some(slots) => slots.iter().flatten().any(|a| eval_ann(cond, a)),
            None => false,
        });
        Ok(Some(batch))
    }
}

/// Pushed LIMIT: caps its demand on the child at the remaining budget
/// and truncates the final batch, so upstream scans never fetch past
/// the k-th surviving tuple (plus at most the current batch's
/// overshoot when filters intervene).
pub(crate) struct BatchLimit<'a> {
    child: Box<dyn BatchOp<'a> + 'a>,
    remaining: usize,
}

impl<'a> BatchLimit<'a> {
    pub(crate) fn new(child: Box<dyn BatchOp<'a> + 'a>, k: usize) -> Self {
        BatchLimit {
            child,
            remaining: k,
        }
    }
}

impl<'a> BatchOp<'a> for BatchLimit<'a> {
    fn next_batch(&mut self, demand: usize) -> Result<Option<Batch>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let want = demand.clamp(1, BATCH_SIZE).min(self.remaining);
        let Some(mut batch) = self.child.next_batch(want)? else {
            self.remaining = 0;
            return Ok(None);
        };
        if batch.sel.len() > self.remaining {
            batch.sel.truncate(self.remaining);
        }
        self.remaining -= batch.sel.len();
        Ok(Some(batch))
    }
}

// ---------------------------------------------------------------------------
// Projection
// ---------------------------------------------------------------------------

/// Project one pipeline row through compiled item expressions, merging
/// each item's referenced (plus PROMOTEd) columns' annotations —
/// the compiled counterpart of the executor's `project_row`.
fn project_pipe_row(
    compiled: &[CExpr],
    item_cols: &[Vec<usize>],
    filter: Option<&AnnExpr>,
    row: &PipeRow,
) -> Result<AnnRow> {
    let mut values = Vec::with_capacity(compiled.len());
    for c in compiled {
        values.push(eval_compiled(c, &row.values)?);
    }
    let mut anns = Vec::with_capacity(compiled.len());
    for cols in item_cols {
        let mut merged: Vec<AnnRef> = Vec::new();
        if let Some(slots) = &row.anns {
            for &c in cols {
                for a in &slots[c] {
                    if !merged.iter().any(|x| x.identity() == a.identity()) {
                        merged.push(a.clone());
                    }
                }
            }
        }
        if let Some(cond) = filter {
            merged.retain(|a| eval_ann(cond, a));
        }
        anns.push(merged);
    }
    Ok(AnnRow { values, anns })
}

/// Project a batch's live rows into `out`.  On error, rows projected
/// before the failing one remain in `out` (the cursor path yields them
/// before surfacing the error, like the row path's per-row ordering).
pub(crate) fn project_batch_into(
    compiled: &[CExpr],
    item_cols: &[Vec<usize>],
    batch: &Batch,
    filter: Option<&AnnExpr>,
    out: &mut Vec<AnnRow>,
) -> Result<()> {
    for &i in &batch.sel {
        out.push(project_pipe_row(
            compiled,
            item_cols,
            filter,
            &batch.rows[i],
        )?);
    }
    Ok(())
}

/// Drain an operator tree into materialized [`AnnRow`]s (the batch
/// fallback for output stages that reuse row-path code).
pub(crate) fn drain_rows<'a>(op: &mut dyn BatchOp<'a>, total_arity: usize) -> Result<Vec<AnnRow>> {
    let mut out = Vec::new();
    while let Some(b) = op.next_batch(BATCH_SIZE)? {
        for row in b.into_rows() {
            let anns = row.anns.unwrap_or_else(|| vec![Vec::new(); total_arity]);
            out.push(AnnRow {
                values: row.values,
                anns,
            });
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Streaming cursor adapter
// ---------------------------------------------------------------------------

/// Adapts an operator tree to the row-iterator shape `SelectCursor`
/// expects: pulls a batch per refill, projects it eagerly, and hands
/// out rows one at a time.  Construction pulls **nothing** — the first
/// batch is fetched on the first `next()` (the session tests pin
/// `rows_fetched == 0` right after opening a cursor).  Per-row
/// projection errors are buffered in sequence, exactly like the row
/// path's per-row map.
pub(crate) struct BatchCursorStream<'a> {
    op: Box<dyn BatchOp<'a> + 'a>,
    compiled: Vec<CExpr>,
    item_cols: Vec<Vec<usize>>,
    filter: Option<AnnExpr>,
    buf: VecDeque<Result<AnnRow>>,
    done: bool,
}

impl<'a> BatchCursorStream<'a> {
    pub(crate) fn new(
        op: Box<dyn BatchOp<'a> + 'a>,
        compiled: Vec<CExpr>,
        item_cols: Vec<Vec<usize>>,
        filter: Option<AnnExpr>,
    ) -> Self {
        BatchCursorStream {
            op,
            compiled,
            item_cols,
            filter,
            buf: VecDeque::new(),
            done: false,
        }
    }
}

impl Iterator for BatchCursorStream<'_> {
    type Item = Result<AnnRow>;

    fn next(&mut self) -> Option<Result<AnnRow>> {
        loop {
            if let Some(entry) = self.buf.pop_front() {
                return Some(entry);
            }
            if self.done {
                return None;
            }
            match self.op.next_batch(BATCH_SIZE) {
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
                Ok(None) => {
                    self.done = true;
                    return None;
                }
                Ok(Some(b)) => {
                    for &i in &b.sel {
                        self.buf.push_back(project_pipe_row(
                            &self.compiled,
                            &self.item_cols,
                            self.filter.as_ref(),
                            &b.rows[i],
                        ));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Streaming aggregation
// ---------------------------------------------------------------------------

/// What one SELECT item contributes to the accumulator fast path.
enum ItemKind {
    /// Non-aggregate expression: evaluated once on the group's first row
    /// (group-by keys are constant within a group).
    Key(CExpr),
    /// A top-level aggregate over an optional argument expression.
    Agg(AggFunc, Option<CExpr>),
}

/// Incremental replica of the row path's per-group aggregate evaluation
/// (`eval_group`): counts non-null inputs, tracks int-ness and the
/// float total the same way, and keeps min/max by `Ord`.
struct AggAcc {
    f: AggFunc,
    /// Non-null input count (COUNT(*) counts every row via `Int(1)`).
    n: u64,
    all_int: bool,
    /// Sum over `as_float()`-convertible inputs (others contribute 0,
    /// like the row path's `filter_map(as_float)`).
    total: f64,
    /// Running min/max (only maintained for Min/Max).
    best: Option<Value>,
    /// First evaluation error, deferred to finalization (row-path error
    /// timing: errors surface after the pipeline is fully drained).
    err: Option<BdbmsError>,
}

impl AggAcc {
    fn new(f: AggFunc) -> Self {
        AggAcc {
            f,
            n: 0,
            all_int: true,
            // -0.0 is `<f64 as Sum>`'s identity: an empty row-path sum
            // (e.g. SUM over values with no float form) yields -0.0,
            // and the batch path must reproduce it bit-for-bit
            total: -0.0,
            best: None,
            err: None,
        }
    }

    fn update(&mut self, v: Value) {
        self.n += 1;
        if !matches!(v, Value::Int(_)) {
            self.all_int = false;
        }
        match self.f {
            AggFunc::Min => match &self.best {
                Some(b) if *b <= v => {}
                _ => self.best = Some(v),
            },
            AggFunc::Max => match &self.best {
                Some(b) if *b >= v => {}
                _ => self.best = Some(v),
            },
            _ => {
                if let Some(x) = v.as_float() {
                    self.total += x;
                }
            }
        }
    }

    fn finalize(self) -> Value {
        match self.f {
            AggFunc::Count => Value::Int(self.n as i64),
            AggFunc::Sum | AggFunc::Avg => {
                if self.n == 0 {
                    Value::Null
                } else if matches!(self.f, AggFunc::Sum) {
                    if self.all_int {
                        Value::Int(self.total as i64)
                    } else {
                        Value::Float(self.total)
                    }
                } else {
                    Value::Float(self.total / self.n as f64)
                }
            }
            AggFunc::Min | AggFunc::Max => self.best.unwrap_or(Value::Null),
        }
    }
}

/// Per-item state of one group.
enum ItemState {
    Key(std::result::Result<Value, BdbmsError>),
    Agg(AggAcc),
}

struct Group {
    states: Vec<ItemState>,
    /// Merged annotations per item (identity-deduped union across the
    /// group's rows, §3.4).
    anns: Vec<Vec<AnnRef>>,
}

/// Streaming GROUP BY over batches: groups keyed in insertion order,
/// one accumulator per aggregate item — no per-row `AnnRow`
/// materialization and no interpreted expression walks.
///
/// Eligible when there is no HAVING/AHAVING, the GROUP BY keys resolve,
/// and every item is either aggregate-free or a *top-level* aggregate;
/// anything else returns `None` from [`try_new`](Self::try_new) and the
/// executor falls back to materializing + the row path's group stage,
/// which preserves row-path error ordering exactly.
pub(crate) struct BatchAggregator {
    key_idxs: Vec<usize>,
    kinds: Vec<ItemKind>,
    /// Annotation columns per item; errors deferred to finalization.
    item_cols: Vec<std::result::Result<Vec<usize>, BdbmsError>>,
    index: HashMap<Vec<Value>, usize>,
    groups: Vec<Group>,
    group_by_empty: bool,
    arity: usize,
}

impl BatchAggregator {
    /// Build the fast path if this SELECT's shape allows it.
    pub(crate) fn try_new(
        sel: &Select,
        items: &[SelectItem],
        bindings: &[ColBinding],
    ) -> Option<Self> {
        if sel.having.is_some() || sel.ahaving.is_some() {
            return None;
        }
        let key_idxs: Vec<usize> = sel
            .group_by
            .iter()
            .map(|(q, n)| resolve_column(bindings, q.as_deref(), n).ok())
            .collect::<Option<_>>()?;
        let kinds: Vec<ItemKind> = items
            .iter()
            .map(|item| match &item.expr {
                Expr::Aggregate(f, arg) => Some(ItemKind::Agg(
                    *f,
                    arg.as_deref().map(|a| compile(a, bindings)),
                )),
                e if !has_aggregate(e) => Some(ItemKind::Key(compile(e, bindings))),
                _ => None,
            })
            .collect::<Option<_>>()?;
        let item_cols = items
            .iter()
            .map(|i| item_ann_columns(i, bindings))
            .collect();
        Some(BatchAggregator {
            key_idxs,
            kinds,
            item_cols,
            index: HashMap::new(),
            groups: Vec::new(),
            group_by_empty: sel.group_by.is_empty(),
            arity: bindings.len(),
        })
    }

    fn new_group(&self, first: &[Value]) -> Group {
        let states = self
            .kinds
            .iter()
            .map(|kind| match kind {
                ItemKind::Key(c) => ItemState::Key(eval_compiled(c, first)),
                ItemKind::Agg(f, _) => ItemState::Agg(AggAcc::new(*f)),
            })
            .collect();
        Group {
            states,
            anns: vec![Vec::new(); self.kinds.len()],
        }
    }

    /// Fold a batch's live rows into the groups.
    pub(crate) fn consume(&mut self, batch: &Batch) {
        for &i in &batch.sel {
            let row = &batch.rows[i];
            let g = if self.group_by_empty {
                // global aggregates: one group, no per-row key hashing
                if self.groups.is_empty() {
                    let group = self.new_group(&row.values);
                    self.groups.push(group);
                }
                0
            } else {
                let key: Vec<Value> = self
                    .key_idxs
                    .iter()
                    .map(|&k| row.values[k].clone())
                    .collect();
                match self.index.get(&key) {
                    Some(&g) => g,
                    None => {
                        let g = self.groups.len();
                        self.index.insert(key, g);
                        let group = self.new_group(&row.values);
                        self.groups.push(group);
                        g
                    }
                }
            };
            let group = &mut self.groups[g];
            for (kind, state) in self.kinds.iter().zip(group.states.iter_mut()) {
                if let (ItemKind::Agg(_, arg), ItemState::Agg(acc)) = (kind, state) {
                    if acc.err.is_some() {
                        continue;
                    }
                    let v = match arg {
                        None => Value::Int(1),
                        Some(c) => match eval_compiled(c, &row.values) {
                            Ok(v) => v,
                            Err(e) => {
                                acc.err = Some(e);
                                continue;
                            }
                        },
                    };
                    if !v.is_null() {
                        acc.update(v);
                    }
                }
            }
            // annotation union across the group, per item (§3.4)
            if let Some(slots) = &row.anns {
                for (cols, merged) in self.item_cols.iter().zip(group.anns.iter_mut()) {
                    let Ok(cols) = cols else { continue };
                    for &c in cols {
                        for a in &slots[c] {
                            if !merged.iter().any(|x| x.identity() == a.identity()) {
                                merged.push(a.clone());
                            }
                        }
                    }
                }
            }
        }
    }

    /// Finalize: surface deferred errors in row-path order (groups in
    /// insertion order; per item, the value error before the
    /// annotation-column error) and emit one row per group.
    pub(crate) fn finish(mut self) -> Result<Vec<AnnRow>> {
        if self.groups.is_empty() && self.group_by_empty {
            // global aggregates over empty input: one group over NULLs
            let nulls = vec![Value::Null; self.arity];
            let group = self.new_group(&nulls);
            self.groups.push(group);
        }
        let mut out = Vec::with_capacity(self.groups.len());
        for group in self.groups {
            let Group { states, anns } = group;
            let mut values = Vec::with_capacity(states.len());
            let mut out_anns = Vec::with_capacity(states.len());
            for ((state, cols), merged) in states.into_iter().zip(self.item_cols.iter()).zip(anns) {
                match state {
                    ItemState::Key(res) => values.push(res?),
                    ItemState::Agg(acc) => {
                        if let Some(e) = acc.err {
                            return Err(e);
                        }
                        values.push(acc.finalize());
                    }
                }
                if let Err(e) = cols {
                    return Err(e.clone());
                }
                out_anns.push(merged);
            }
            out.push(AnnRow {
                values,
                anns: out_anns,
            });
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Profiling (EXPLAIN ANALYZE)
// ---------------------------------------------------------------------------

/// Per-operator actuals collected by [`BatchProfiler`]: rows and batches
/// emitted, and wall time spent inside the operator (inclusive of its
/// children — subtract a child's total for self time).
#[derive(Debug, Clone, Default)]
pub(crate) struct OpProfile {
    pub label: String,
    pub rows: u64,
    pub batches: u64,
    pub elapsed_ns: u64,
}

/// The set of profiled operators of one pipeline, in assembly (leaf to
/// root) order.  `EXPLAIN ANALYZE` hands one of these to the batch
/// assembler; normal execution passes `None` and no wrapper is ever
/// constructed — the disabled path is zero-cost by absence, not by a
/// branch per batch.
#[derive(Default)]
pub(crate) struct PipelineProfile {
    pub ops: Vec<Rc<RefCell<OpProfile>>>,
}

impl PipelineProfile {
    /// Interpose a [`BatchProfiler`] recording under `label`.
    pub(crate) fn wrap<'a>(
        &mut self,
        op: Box<dyn BatchOp<'a> + 'a>,
        label: impl Into<String>,
    ) -> Box<dyn BatchOp<'a> + 'a> {
        let cell = Rc::new(RefCell::new(OpProfile {
            label: label.into(),
            ..OpProfile::default()
        }));
        self.ops.push(cell.clone());
        Box::new(BatchProfiler { child: op, cell })
    }
}

/// Transparent [`BatchOp`] wrapper that times every pull and counts the
/// rows and batches flowing out of its child.
pub(crate) struct BatchProfiler<'a> {
    child: Box<dyn BatchOp<'a> + 'a>,
    cell: Rc<RefCell<OpProfile>>,
}

impl<'a> BatchOp<'a> for BatchProfiler<'a> {
    fn next_batch(&mut self, demand: usize) -> Result<Option<Batch>> {
        let started = std::time::Instant::now();
        let out = self.child.next_batch(demand);
        let mut p = self.cell.borrow_mut();
        p.elapsed_ns += started.elapsed().as_nanos() as u64;
        if let Ok(Some(b)) = &out {
            p.batches += 1;
            p.rows += b.live() as u64;
        }
        out
    }
}
