//! Bulk ingestion: the engine behind `COPY <table> FROM '<path>'`.
//!
//! The paper's flagship scenario is curating annotated gene/protein
//! records at scale (§7.2) — whole FASTA dumps arriving at once, not one
//! `INSERT` at a time.  Row-at-a-time inserts pay per-row secondary-index
//! maintenance, per-row statistics upkeep, and (on durable databases) one
//! redo record per row.  `COPY` amortizes all three:
//!
//! * rows go to the heap through [`Table::bulk_append`] — no index or
//!   stats work per row;
//! * after the last row, [`Table::finish_bulk`] rebuilds every secondary
//!   B+-tree index by *sorted bulk construction* (one heap scan, one sort
//!   per index, ascending inserts), appends only the new rows to the
//!   sequence indexes, and recomputes exact statistics (the deferred
//!   `ANALYZE`);
//! * the WAL sees a single logical [`BulkLoad`](crate::durability)
//!   record instead of 50k `RowInsert` frames.  Atomicity under crash
//!   recovery comes from the commit protocol, not per-row logging: a
//!   crash before the commit record leaves nothing replayable (zero
//!   rows), a crash after it replays the load from the source file, and
//!   the forced checkpoint right after the commit closes that replay
//!   window.  See `docs/INGEST.md` for the full contract.
//!
//! Two file formats are supported (`FORMAT FASTA | TSV`, inferred from
//! the extension when omitted):
//!
//! * **FASTA** — `>header` lines, each followed by sequence lines that
//!   are concatenated.  The header goes to the table's first column, the
//!   sequence to the second; any further columns are NULL.
//! * **TSV** — one row per line, tab-separated, values parsed against
//!   the declared column types; empty fields and `\N` are NULL.

use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

use bdbms_common::{BdbmsError, DataType, Result, Value};

use crate::ast::CopyFormat;
use crate::catalog::Table;

/// Resolve the effective format: an explicit `FORMAT` clause wins,
/// otherwise `.fa`/`.fasta` (case-insensitive) means FASTA and anything
/// else TSV.
pub(crate) fn resolve_format(path: &Path, explicit: Option<CopyFormat>) -> CopyFormat {
    if let Some(f) = explicit {
        return f;
    }
    match path.extension().and_then(|e| e.to_str()) {
        Some(ext) if ext.eq_ignore_ascii_case("fa") || ext.eq_ignore_ascii_case("fasta") => {
            CopyFormat::Fasta
        }
        _ => CopyFormat::Tsv,
    }
}

/// Load `path` into `table`, returning the number of rows appended.
///
/// On error the table may hold a partial heap-only append (indexes and
/// stats untouched); the caller owns cleanup — the `COPY` statement path
/// rolls back via its `UnBulkLoad` undo op, and WAL replay treats the
/// error as divergence.
pub(crate) fn bulk_load(table: &mut Table, path: &Path, format: CopyFormat) -> Result<u64> {
    let file = File::open(path)
        .map_err(|e| BdbmsError::invalid(format!("COPY cannot open `{}`: {e}", path.display())))?;
    let reader = BufReader::new(file);
    let first_row = table.peek_next_row();
    let rows = match format {
        CopyFormat::Fasta => load_fasta(table, reader)?,
        CopyFormat::Tsv => load_tsv(table, reader)?,
    };
    table.finish_bulk(first_row)?;
    Ok(rows)
}

fn load_fasta(table: &mut Table, reader: impl BufRead) -> Result<u64> {
    let arity = table.schema.arity();
    if arity < 2 {
        return Err(BdbmsError::invalid(format!(
            "FASTA COPY into `{}` needs at least 2 columns (header, sequence)",
            table.name
        )));
    }
    let mut rows = 0u64;
    let mut header: Option<String> = None;
    let mut sequence = String::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| BdbmsError::invalid(format!("COPY read error: {e}")))?;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(h) = line.strip_prefix('>') {
            if let Some(hdr) = header.take() {
                append_fasta_row(table, arity, hdr, std::mem::take(&mut sequence))?;
                rows += 1;
            }
            header = Some(h.trim().to_string());
            sequence.clear();
        } else if header.is_some() {
            sequence.push_str(line.trim());
        } else {
            return Err(BdbmsError::invalid(format!(
                "FASTA line {} has sequence data before any `>` header",
                lineno + 1
            )));
        }
    }
    if let Some(hdr) = header.take() {
        append_fasta_row(table, arity, hdr, sequence)?;
        rows += 1;
    }
    Ok(rows)
}

fn append_fasta_row(
    table: &mut Table,
    arity: usize,
    header: String,
    sequence: String,
) -> Result<()> {
    let mut values = vec![Value::Null; arity];
    values[0] = Value::Text(header);
    values[1] = Value::Text(sequence);
    table.bulk_append(values).map(|_| ())
}

fn load_tsv(table: &mut Table, reader: impl BufRead) -> Result<u64> {
    let types: Vec<DataType> = table.schema.columns().iter().map(|c| c.ty).collect();
    let mut rows = 0u64;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| BdbmsError::invalid(format!("COPY read error: {e}")))?;
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != types.len() {
            return Err(BdbmsError::invalid(format!(
                "TSV line {} has {} fields, `{}` has {} columns",
                lineno + 1,
                fields.len(),
                table.name,
                types.len()
            )));
        }
        let mut values = Vec::with_capacity(types.len());
        for (field, &ty) in fields.iter().zip(&types) {
            values.push(parse_field(field, ty).map_err(|e| {
                BdbmsError::invalid(format!("TSV line {}: {}", lineno + 1, e.message()))
            })?);
        }
        table.bulk_append(values)?;
        rows += 1;
    }
    Ok(rows)
}

/// Parse one TSV field against its declared type.  Empty fields and the
/// PostgreSQL-style `\N` marker are NULL.
fn parse_field(field: &str, ty: DataType) -> Result<Value> {
    if field.is_empty() || field == "\\N" {
        return Ok(Value::Null);
    }
    Ok(match ty {
        DataType::Text => Value::Text(field.to_string()),
        DataType::Int => Value::Int(
            field
                .parse::<i64>()
                .map_err(|_| BdbmsError::invalid(format!("`{field}` is not an INT")))?,
        ),
        DataType::Float => Value::Float(
            field
                .parse::<f64>()
                .map_err(|_| BdbmsError::invalid(format!("`{field}` is not a FLOAT")))?,
        ),
        DataType::Bool => match field.to_ascii_lowercase().as_str() {
            "true" | "t" | "1" => Value::Bool(true),
            "false" | "f" | "0" => Value::Bool(false),
            _ => return Err(BdbmsError::invalid(format!("`{field}` is not a BOOL"))),
        },
        DataType::Timestamp => Value::Timestamp(
            field
                .parse::<u64>()
                .map_err(|_| BdbmsError::invalid(format!("`{field}` is not a TIMESTAMP")))?,
        ),
    })
}
