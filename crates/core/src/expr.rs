//! Scalar expression evaluation.

use bdbms_common::{BdbmsError, Result, Value};
use bdbms_index::regex::Regex;

use crate::ast::{BinaryOp, Expr, UnaryOp};

/// One column binding in scope: optional qualifier (table name or alias,
/// lowercased) + column name.
#[derive(Debug, Clone)]
pub struct ColBinding {
    /// Qualifier this column answers to (alias if given, else table name).
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
}

impl ColBinding {
    /// New binding.
    pub fn new(qualifier: Option<&str>, name: &str) -> ColBinding {
        ColBinding {
            qualifier: qualifier.map(|q| q.to_ascii_lowercase()),
            name: name.to_string(),
        }
    }
}

/// Resolve a (possibly qualified) column reference to its index.
pub fn resolve_column(
    bindings: &[ColBinding],
    qualifier: Option<&str>,
    name: &str,
) -> Result<usize> {
    let q = qualifier.map(|q| q.to_ascii_lowercase());
    let matches: Vec<usize> = bindings
        .iter()
        .enumerate()
        .filter(|(_, b)| {
            b.name.eq_ignore_ascii_case(name)
                && match &q {
                    None => true,
                    Some(q) => b.qualifier.as_deref() == Some(q.as_str()),
                }
        })
        .map(|(i, _)| i)
        .collect();
    match matches.len() {
        0 => Err(BdbmsError::not_found(format!(
            "column `{}{}`",
            qualifier.map(|q| format!("{q}.")).unwrap_or_default(),
            name
        ))),
        1 => Ok(matches[0]),
        _ => Err(BdbmsError::invalid(format!(
            "ambiguous column `{name}` (qualify it)"
        ))),
    }
}

/// All column indexes referenced by an expression (for annotation
/// propagation through projections).
pub fn referenced_columns(
    expr: &Expr,
    bindings: &[ColBinding],
    out: &mut Vec<usize>,
) -> Result<()> {
    match expr {
        Expr::Literal(_) | Expr::Param(_) => Ok(()),
        Expr::Column(q, n) => {
            out.push(resolve_column(bindings, q.as_deref(), n)?);
            Ok(())
        }
        Expr::Unary(_, e)
        | Expr::IsNull(e, _)
        | Expr::Like(e, _, _)
        | Expr::ContainsSeq(e, _, _) => referenced_columns(e, bindings, out),
        Expr::Binary(l, _, r) => {
            referenced_columns(l, bindings, out)?;
            referenced_columns(r, bindings, out)
        }
        Expr::InList(e, items, _) => {
            referenced_columns(e, bindings, out)?;
            for i in items {
                referenced_columns(i, bindings, out)?;
            }
            Ok(())
        }
        Expr::Call(_, args) => {
            for a in args {
                referenced_columns(a, bindings, out)?;
            }
            Ok(())
        }
        Expr::Aggregate(_, arg) => {
            if let Some(a) = arg {
                referenced_columns(a, bindings, out)?;
            }
            Ok(())
        }
    }
}

/// Evaluate an expression over one row.  Aggregates are rejected here —
/// the executor computes them per group.
pub fn eval(expr: &Expr, bindings: &[ColBinding], values: &[Value]) -> Result<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Param(i) => Err(BdbmsError::param_mismatch(format!(
            "unbound parameter ${} (bind it through a prepared statement)",
            i + 1
        ))),
        Expr::Column(q, n) => {
            let idx = resolve_column(bindings, q.as_deref(), n)?;
            Ok(values[idx].clone())
        }
        Expr::Unary(UnaryOp::Not, e) => {
            let v = eval(e, bindings, values)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Bool(b) => Ok(Value::Bool(!b)),
                other => Err(BdbmsError::eval(format!(
                    "NOT applied to {}",
                    other.type_name()
                ))),
            }
        }
        Expr::Unary(UnaryOp::Neg, e) => {
            let v = eval(e, bindings, values)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(-i)),
                Value::Float(f) => Ok(Value::Float(-f)),
                other => Err(BdbmsError::eval(format!(
                    "negation of {}",
                    other.type_name()
                ))),
            }
        }
        Expr::IsNull(e, negated) => {
            let v = eval(e, bindings, values)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Like(e, pattern, negated) => {
            let v = eval(e, bindings, values)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Text(s) => {
                    let hit = like_match(&s, pattern)?;
                    Ok(Value::Bool(hit != *negated))
                }
                other => Err(BdbmsError::eval(format!(
                    "LIKE applied to {}",
                    other.type_name()
                ))),
            }
        }
        Expr::ContainsSeq(e, pattern, negated) => {
            let v = eval(e, bindings, values)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Text(s) => {
                    let hit = !pattern.is_empty() && s.contains(pattern.as_str());
                    Ok(Value::Bool(hit != *negated))
                }
                other => Err(BdbmsError::eval(format!(
                    "CONTAINS SEQ applied to {}",
                    other.type_name()
                ))),
            }
        }
        Expr::InList(e, items, negated) => {
            let v = eval(e, bindings, values)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut found = false;
            for item in items {
                let iv = eval(item, bindings, values)?;
                if v.sql_cmp(&iv) == Some(std::cmp::Ordering::Equal) {
                    found = true;
                    break;
                }
            }
            Ok(Value::Bool(found != *negated))
        }
        Expr::Binary(l, op, r) => eval_binary(l, *op, r, bindings, values),
        Expr::Call(name, args) => {
            let vals: Vec<Value> = args
                .iter()
                .map(|a| eval(a, bindings, values))
                .collect::<Result<_>>()?;
            eval_function(name, &vals)
        }
        Expr::Aggregate(..) => Err(BdbmsError::eval("aggregate used outside GROUP BY context")),
    }
}

fn eval_binary(
    l: &Expr,
    op: BinaryOp,
    r: &Expr,
    bindings: &[ColBinding],
    values: &[Value],
) -> Result<Value> {
    // short-circuit logic with SQL three-valued semantics
    if matches!(op, BinaryOp::And | BinaryOp::Or) {
        let lv = eval(l, bindings, values)?;
        match (op, &lv) {
            (BinaryOp::And, Value::Bool(false)) => return Ok(Value::Bool(false)),
            (BinaryOp::Or, Value::Bool(true)) => return Ok(Value::Bool(true)),
            _ => {}
        }
        let rv = eval(r, bindings, values)?;
        return match (op, lv, rv) {
            (BinaryOp::And, Value::Bool(a), Value::Bool(b)) => Ok(Value::Bool(a && b)),
            (BinaryOp::Or, Value::Bool(a), Value::Bool(b)) => Ok(Value::Bool(a || b)),
            (BinaryOp::And, Value::Null, Value::Bool(false))
            | (BinaryOp::And, Value::Bool(false), Value::Null) => Ok(Value::Bool(false)),
            (BinaryOp::Or, Value::Null, Value::Bool(true))
            | (BinaryOp::Or, Value::Bool(true), Value::Null) => Ok(Value::Bool(true)),
            (_, Value::Null, _) | (_, _, Value::Null) => Ok(Value::Null),
            (_, a, b) => Err(BdbmsError::eval(format!(
                "logic over {} and {}",
                a.type_name(),
                b.type_name()
            ))),
        };
    }
    let lv = eval(l, bindings, values)?;
    let rv = eval(r, bindings, values)?;
    match op {
        BinaryOp::Eq | BinaryOp::Ne | BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge => {
            let cmp = lv.sql_cmp(&rv);
            let Some(ord) = cmp else {
                return Ok(Value::Null);
            };
            let b = match op {
                BinaryOp::Eq => ord.is_eq(),
                BinaryOp::Ne => ord.is_ne(),
                BinaryOp::Lt => ord.is_lt(),
                BinaryOp::Le => ord.is_le(),
                BinaryOp::Gt => ord.is_gt(),
                BinaryOp::Ge => ord.is_ge(),
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
        BinaryOp::Concat => match (lv, rv) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (a, b) => Ok(Value::Text(format!("{a}{b}"))),
        },
        BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => {
            arith(op, lv, rv)
        }
        BinaryOp::And | BinaryOp::Or => unreachable!("handled above"),
    }
}

fn arith(op: BinaryOp, lv: Value, rv: Value) -> Result<Value> {
    if lv.is_null() || rv.is_null() {
        return Ok(Value::Null);
    }
    // integer arithmetic when both are ints (except division by zero)
    if let (Value::Int(a), Value::Int(b)) = (&lv, &rv) {
        return match op {
            BinaryOp::Add => Ok(Value::Int(a.wrapping_add(*b))),
            BinaryOp::Sub => Ok(Value::Int(a.wrapping_sub(*b))),
            BinaryOp::Mul => Ok(Value::Int(a.wrapping_mul(*b))),
            BinaryOp::Div => {
                if *b == 0 {
                    Err(BdbmsError::eval("division by zero"))
                } else {
                    Ok(Value::Int(a / b))
                }
            }
            BinaryOp::Mod => {
                if *b == 0 {
                    Err(BdbmsError::eval("modulo by zero"))
                } else {
                    Ok(Value::Int(a % b))
                }
            }
            _ => unreachable!(),
        };
    }
    let (a, b) = match (lv.as_float(), rv.as_float()) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(BdbmsError::eval(format!(
                "arithmetic over {} and {}",
                lv.type_name(),
                rv.type_name()
            )))
        }
    };
    let out = match op {
        BinaryOp::Add => a + b,
        BinaryOp::Sub => a - b,
        BinaryOp::Mul => a * b,
        BinaryOp::Div => {
            if b == 0.0 {
                return Err(BdbmsError::eval("division by zero"));
            }
            a / b
        }
        BinaryOp::Mod => a % b,
        _ => unreachable!(),
    };
    Ok(Value::Float(out))
}

fn eval_function(name: &str, args: &[Value]) -> Result<Value> {
    let argc = |n: usize| -> Result<()> {
        if args.len() == n {
            Ok(())
        } else {
            Err(BdbmsError::eval(format!(
                "{name} expects {n} argument(s), got {}",
                args.len()
            )))
        }
    };
    match name {
        "LENGTH" => {
            argc(1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Text(s) => Ok(Value::Int(s.chars().count() as i64)),
                other => Err(BdbmsError::eval(format!("LENGTH of {}", other.type_name()))),
            }
        }
        "UPPER" | "LOWER" => {
            argc(1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Text(s) => Ok(Value::Text(if name == "UPPER" {
                    s.to_uppercase()
                } else {
                    s.to_lowercase()
                })),
                other => Err(BdbmsError::eval(format!("{name} of {}", other.type_name()))),
            }
        }
        "ABS" => {
            argc(1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(i.abs())),
                Value::Float(f) => Ok(Value::Float(f.abs())),
                other => Err(BdbmsError::eval(format!("ABS of {}", other.type_name()))),
            }
        }
        "SUBSTR" => {
            argc(3)?;
            match (&args[0], &args[1], &args[2]) {
                (Value::Null, _, _) => Ok(Value::Null),
                (Value::Text(s), Value::Int(start), Value::Int(len)) => {
                    let start = (*start).max(1) as usize - 1;
                    let len = (*len).max(0) as usize;
                    Ok(Value::Text(s.chars().skip(start).take(len).collect()))
                }
                _ => Err(BdbmsError::eval("SUBSTR(text, int, int) expected")),
            }
        }
        "SUBSEQ" => {
            // SUBSEQ(seq, lo, hi): the 1-based inclusive character range
            // [lo, hi] of a sequence — the paper's subsequence extraction,
            // evaluated over the SQL-visible (uncompressed) column value.
            argc(3)?;
            match (&args[0], &args[1], &args[2]) {
                (Value::Null, _, _) => Ok(Value::Null),
                (Value::Text(s), Value::Int(lo), Value::Int(hi)) => {
                    if *lo < 1 || *hi < *lo {
                        return Err(BdbmsError::eval(format!(
                            "SUBSEQ range [{lo}, {hi}] must satisfy 1 <= lo <= hi"
                        )));
                    }
                    let start = (*lo - 1) as usize;
                    let len = (*hi - *lo + 1) as usize;
                    Ok(Value::Text(s.chars().skip(start).take(len).collect()))
                }
                _ => Err(BdbmsError::eval("SUBSEQ(text, int, int) expected")),
            }
        }
        "TRIM" => {
            argc(1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Text(s) => Ok(Value::Text(s.trim().to_string())),
                other => Err(BdbmsError::eval(format!("TRIM of {}", other.type_name()))),
            }
        }
        other => Err(BdbmsError::eval(format!("unknown function `{other}`"))),
    }
}

/// SQL LIKE via the workspace regex engine: `%` → `.*`, `_` → `.`,
/// everything else escaped.
pub fn like_match(s: &str, pattern: &str) -> Result<bool> {
    Ok(like_regex(pattern)?.is_match(s.as_bytes()))
}

/// Compile a LIKE pattern into the workspace regex engine.
pub fn like_regex(pattern: &str) -> Result<Regex> {
    let mut re = String::with_capacity(pattern.len() * 2);
    for ch in pattern.chars() {
        match ch {
            '%' => re.push_str(".*"),
            '_' => re.push('.'),
            c if "\\.*+?()[]|".contains(c) => {
                re.push('\\');
                re.push(c);
            }
            c => re.push(c),
        }
    }
    Regex::compile(&re).map_err(|e| BdbmsError::eval(format!("bad LIKE pattern: {e}")))
}

// ---------------------------------------------------------------------------
// Compiled expressions
// ---------------------------------------------------------------------------

/// A scalar expression compiled against a fixed binding list: column
/// references are pre-resolved to value indexes and LIKE patterns are
/// compiled once, so the batch executor's tight loops skip the per-row
/// name resolution and regex compilation that [`eval`] pays.
///
/// Compilation never fails: anything that cannot be evaluated (an
/// unresolvable column, an unbound parameter, a bare aggregate) becomes a
/// [`CExpr::Err`] node whose error surfaces at *evaluation* time, exactly
/// when the interpreted path would have surfaced it.  An `Err` node under
/// a short-circuited branch therefore never fires — same as [`eval`].
pub enum CExpr {
    /// Constant.
    Literal(Value),
    /// Pre-resolved column: an index into the row's value slice.
    Column(usize),
    /// Unary operator.
    Unary(UnaryOp, Box<CExpr>),
    /// `IS [NOT] NULL`.
    IsNull(Box<CExpr>, bool),
    /// `[NOT] LIKE` with the pattern pre-compiled; a bad pattern is kept
    /// as the error it would raise, surfaced only when a text value is
    /// actually matched (NULL inputs still yield NULL first).
    Like(
        Box<CExpr>,
        Box<std::result::Result<Regex, BdbmsError>>,
        bool,
    ),
    /// `[NOT] CONTAINS SEQ`.
    ContainsSeq(Box<CExpr>, String, bool),
    /// `[NOT] IN (…)`.
    InList(Box<CExpr>, Vec<CExpr>, bool),
    /// Binary operator.
    Binary(Box<CExpr>, BinaryOp, Box<CExpr>),
    /// Scalar function call.
    Call(String, Vec<CExpr>),
    /// Deferred evaluation error (unresolvable column, parameter, …).
    Err(BdbmsError),
}

/// Compile `expr` against `bindings`.  Infallible — resolution failures
/// become deferred [`CExpr::Err`] nodes (see the type docs).
pub fn compile(expr: &Expr, bindings: &[ColBinding]) -> CExpr {
    match expr {
        Expr::Literal(v) => CExpr::Literal(v.clone()),
        Expr::Param(i) => CExpr::Err(BdbmsError::param_mismatch(format!(
            "unbound parameter ${} (bind it through a prepared statement)",
            i + 1
        ))),
        Expr::Column(q, n) => match resolve_column(bindings, q.as_deref(), n) {
            Ok(idx) => CExpr::Column(idx),
            Err(e) => CExpr::Err(e),
        },
        Expr::Unary(op, e) => CExpr::Unary(*op, Box::new(compile(e, bindings))),
        Expr::IsNull(e, negated) => CExpr::IsNull(Box::new(compile(e, bindings)), *negated),
        Expr::Like(e, pattern, negated) => CExpr::Like(
            Box::new(compile(e, bindings)),
            Box::new(like_regex(pattern)),
            *negated,
        ),
        Expr::ContainsSeq(e, pattern, negated) => {
            CExpr::ContainsSeq(Box::new(compile(e, bindings)), pattern.clone(), *negated)
        }
        Expr::InList(e, items, negated) => CExpr::InList(
            Box::new(compile(e, bindings)),
            items.iter().map(|i| compile(i, bindings)).collect(),
            *negated,
        ),
        Expr::Binary(l, op, r) => CExpr::Binary(
            Box::new(compile(l, bindings)),
            *op,
            Box::new(compile(r, bindings)),
        ),
        Expr::Call(name, args) => CExpr::Call(
            name.clone(),
            args.iter().map(|a| compile(a, bindings)).collect(),
        ),
        Expr::Aggregate(..) => {
            CExpr::Err(BdbmsError::eval("aggregate used outside GROUP BY context"))
        }
    }
}

/// Evaluate a compiled expression over one row's values.  Semantics are
/// identical to [`eval`] on the source expression, error-for-error.
pub fn eval_compiled(expr: &CExpr, values: &[Value]) -> Result<Value> {
    match expr {
        CExpr::Literal(v) => Ok(v.clone()),
        CExpr::Column(idx) => Ok(values[*idx].clone()),
        CExpr::Err(e) => Err(e.clone()),
        CExpr::Unary(UnaryOp::Not, e) => {
            let v = eval_compiled(e, values)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Bool(b) => Ok(Value::Bool(!b)),
                other => Err(BdbmsError::eval(format!(
                    "NOT applied to {}",
                    other.type_name()
                ))),
            }
        }
        CExpr::Unary(UnaryOp::Neg, e) => {
            let v = eval_compiled(e, values)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(-i)),
                Value::Float(f) => Ok(Value::Float(-f)),
                other => Err(BdbmsError::eval(format!(
                    "negation of {}",
                    other.type_name()
                ))),
            }
        }
        CExpr::IsNull(e, negated) => {
            let v = eval_compiled(e, values)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        CExpr::Like(e, regex, negated) => {
            let v = eval_compiled(e, values)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Text(s) => match regex.as_ref() {
                    Ok(re) => Ok(Value::Bool(re.is_match(s.as_bytes()) != *negated)),
                    Err(e) => Err(e.clone()),
                },
                other => Err(BdbmsError::eval(format!(
                    "LIKE applied to {}",
                    other.type_name()
                ))),
            }
        }
        CExpr::ContainsSeq(e, pattern, negated) => {
            let v = eval_compiled(e, values)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Text(s) => {
                    let hit = !pattern.is_empty() && s.contains(pattern.as_str());
                    Ok(Value::Bool(hit != *negated))
                }
                other => Err(BdbmsError::eval(format!(
                    "CONTAINS SEQ applied to {}",
                    other.type_name()
                ))),
            }
        }
        CExpr::InList(e, items, negated) => {
            let v = eval_compiled(e, values)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut found = false;
            for item in items {
                let iv = eval_compiled(item, values)?;
                if v.sql_cmp(&iv) == Some(std::cmp::Ordering::Equal) {
                    found = true;
                    break;
                }
            }
            Ok(Value::Bool(found != *negated))
        }
        CExpr::Binary(l, op, r) => eval_compiled_binary(l, *op, r, values),
        CExpr::Call(name, args) => {
            let vals: Vec<Value> = args
                .iter()
                .map(|a| eval_compiled(a, values))
                .collect::<Result<_>>()?;
            eval_function(name, &vals)
        }
    }
}

fn eval_compiled_binary(l: &CExpr, op: BinaryOp, r: &CExpr, values: &[Value]) -> Result<Value> {
    // short-circuit logic with SQL three-valued semantics
    if matches!(op, BinaryOp::And | BinaryOp::Or) {
        let lv = eval_compiled(l, values)?;
        match (op, &lv) {
            (BinaryOp::And, Value::Bool(false)) => return Ok(Value::Bool(false)),
            (BinaryOp::Or, Value::Bool(true)) => return Ok(Value::Bool(true)),
            _ => {}
        }
        let rv = eval_compiled(r, values)?;
        return match (op, lv, rv) {
            (BinaryOp::And, Value::Bool(a), Value::Bool(b)) => Ok(Value::Bool(a && b)),
            (BinaryOp::Or, Value::Bool(a), Value::Bool(b)) => Ok(Value::Bool(a || b)),
            (BinaryOp::And, Value::Null, Value::Bool(false))
            | (BinaryOp::And, Value::Bool(false), Value::Null) => Ok(Value::Bool(false)),
            (BinaryOp::Or, Value::Null, Value::Bool(true))
            | (BinaryOp::Or, Value::Bool(true), Value::Null) => Ok(Value::Bool(true)),
            (_, Value::Null, _) | (_, _, Value::Null) => Ok(Value::Null),
            (_, a, b) => Err(BdbmsError::eval(format!(
                "logic over {} and {}",
                a.type_name(),
                b.type_name()
            ))),
        };
    }
    let lv = eval_compiled(l, values)?;
    let rv = eval_compiled(r, values)?;
    match op {
        BinaryOp::Eq | BinaryOp::Ne | BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge => {
            let cmp = lv.sql_cmp(&rv);
            let Some(ord) = cmp else {
                return Ok(Value::Null);
            };
            let b = match op {
                BinaryOp::Eq => ord.is_eq(),
                BinaryOp::Ne => ord.is_ne(),
                BinaryOp::Lt => ord.is_lt(),
                BinaryOp::Le => ord.is_le(),
                BinaryOp::Gt => ord.is_gt(),
                BinaryOp::Ge => ord.is_ge(),
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
        BinaryOp::Concat => match (lv, rv) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (a, b) => Ok(Value::Text(format!("{a}{b}"))),
        },
        BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => {
            arith(op, lv, rv)
        }
        BinaryOp::And | BinaryOp::Or => unreachable!("handled above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Statement;
    use crate::parser::parse;

    fn where_expr(sql: &str) -> Expr {
        match parse(&format!("SELECT * FROM t WHERE {sql}")).unwrap() {
            Statement::Select(s) => s.where_clause.unwrap(),
            _ => panic!(),
        }
    }

    fn ctx() -> (Vec<ColBinding>, Vec<Value>) {
        (
            vec![
                ColBinding::new(Some("g"), "GID"),
                ColBinding::new(Some("g"), "len"),
                ColBinding::new(Some("g"), "score"),
                ColBinding::new(Some("g"), "note"),
            ],
            vec![
                Value::Text("JW0080".into()),
                Value::Int(12),
                Value::Float(2.5),
                Value::Null,
            ],
        )
    }

    fn run(sql: &str) -> Value {
        let (b, v) = ctx();
        eval(&where_expr(sql), &b, &v).unwrap()
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(run("len > 10 AND score < 3"), Value::Bool(true));
        assert_eq!(run("len > 10 AND score > 3"), Value::Bool(false));
        assert_eq!(run("len = 12 OR 1 = 2"), Value::Bool(true));
        assert_eq!(run("NOT len = 12"), Value::Bool(false));
        assert_eq!(run("GID = 'JW0080'"), Value::Bool(true));
        assert_eq!(run("g.GID <> 'JW0080'"), Value::Bool(false));
    }

    #[test]
    fn null_semantics() {
        assert_eq!(run("note = 'x'"), Value::Null);
        assert_eq!(run("note IS NULL"), Value::Bool(true));
        assert_eq!(run("note IS NOT NULL"), Value::Bool(false));
        assert_eq!(run("note = 'x' OR len = 12"), Value::Bool(true));
        assert_eq!(run("note = 'x' AND 1 = 2"), Value::Bool(false));
        assert!(!run("note = 'x'").is_true());
    }

    #[test]
    fn arithmetic() {
        assert_eq!(run("len + 1 = 13"), Value::Bool(true));
        assert_eq!(run("len * 2 - 4 = 20"), Value::Bool(true));
        assert_eq!(run("len / 5 = 2"), Value::Bool(true), "integer division");
        assert_eq!(run("len % 5 = 2"), Value::Bool(true));
        assert_eq!(run("score * 2 = 5.0"), Value::Bool(true));
        let (b, v) = ctx();
        assert!(eval(&where_expr("len / 0 = 1"), &b, &v).is_err());
    }

    #[test]
    fn like_patterns() {
        assert_eq!(run("GID LIKE 'JW%'"), Value::Bool(true));
        assert_eq!(run("GID LIKE 'JW___0'"), Value::Bool(true));
        assert_eq!(run("GID LIKE 'JW___9'"), Value::Bool(false));
        assert_eq!(run("GID LIKE 'JW00_0'"), Value::Bool(true));
        assert_eq!(run("GID NOT LIKE '%99'"), Value::Bool(true));
        assert_eq!(run("GID LIKE '%008%'"), Value::Bool(true));
    }

    #[test]
    fn in_list() {
        assert_eq!(run("GID IN ('JW0080', 'JW0082')"), Value::Bool(true));
        assert_eq!(run("len NOT IN (1, 2, 3)"), Value::Bool(true));
        assert_eq!(run("note IN ('a')"), Value::Null);
    }

    #[test]
    fn functions() {
        assert_eq!(run("LENGTH(GID) = 6"), Value::Bool(true));
        assert_eq!(run("UPPER('atg') = 'ATG'"), Value::Bool(true));
        assert_eq!(run("SUBSTR(GID, 1, 2) = 'JW'"), Value::Bool(true));
        assert_eq!(run("ABS(0 - len) = 12"), Value::Bool(true));
        assert_eq!(run("TRIM('  x ') = 'x'"), Value::Bool(true));
        assert_eq!(run("GID || '!' = 'JW0080!'"), Value::Bool(true));
    }

    #[test]
    fn contains_seq_and_subseq() {
        assert_eq!(run("GID CONTAINS SEQ 'W00'"), Value::Bool(true));
        assert_eq!(run("GID CONTAINS SEQ 'XYZ'"), Value::Bool(false));
        assert_eq!(run("GID NOT CONTAINS SEQ 'XYZ'"), Value::Bool(true));
        assert_eq!(run("note CONTAINS SEQ 'x'"), Value::Null);
        assert_eq!(run("GID CONTAINS SEQ ''"), Value::Bool(false));
        assert_eq!(run("SUBSEQ(GID, 1, 2) = 'JW'"), Value::Bool(true));
        assert_eq!(run("SUBSEQ(GID, 3, 6) = '0080'"), Value::Bool(true));
        assert_eq!(run("SUBSEQ(note, 1, 2)"), Value::Null);
        let (b, v) = ctx();
        assert!(eval(&where_expr("len CONTAINS SEQ 'x'"), &b, &v).is_err());
        assert!(eval(&where_expr("SUBSEQ(GID, 0, 2) = 'J'"), &b, &v).is_err());
        assert!(eval(&where_expr("SUBSEQ(GID, 3, 2) = ''"), &b, &v).is_err());
    }

    #[test]
    fn resolution_errors() {
        let (b, v) = ctx();
        assert!(eval(&where_expr("missing = 1"), &b, &v).is_err());
        // ambiguity
        let b2 = vec![
            ColBinding::new(Some("a"), "x"),
            ColBinding::new(Some("b"), "x"),
        ];
        let e = where_expr("x = 1");
        assert!(eval(&e, &b2, &[Value::Int(1), Value::Int(2)]).is_err());
        let e = where_expr("b.x = 2");
        assert_eq!(
            eval(&e, &b2, &[Value::Int(1), Value::Int(2)]).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn compiled_matches_interpreted() {
        let (b, v) = ctx();
        for sql in [
            "len > 10 AND score < 3",
            "note = 'x' OR len = 12",
            "note = 'x' AND 1 = 2",
            "len + 1 = 13",
            "len / 0 = 1",
            "GID LIKE 'JW%'",
            "GID NOT LIKE '%99'",
            "note IS NULL",
            "GID IN ('JW0080', 'JW0082')",
            "note IN ('a')",
            "LENGTH(GID) = 6",
            "SUBSTR(GID, 1, 2) = 'JW'",
            "GID || '!' = 'JW0080!'",
            "GID CONTAINS SEQ 'W00'",
            "note CONTAINS SEQ 'x'",
            "len CONTAINS SEQ 'x'",
            "NOT len = 12",
            "0 - len = 0 - 12",
            "missing = 1",
            "a.b = 1",
        ] {
            let e = where_expr(sql);
            let interpreted = eval(&e, &b, &v);
            let compiled = eval_compiled(&compile(&e, &b), &v);
            assert_eq!(interpreted, compiled, "divergence on {sql}");
        }
    }

    #[test]
    fn compiled_defers_resolution_errors_past_short_circuits() {
        let (b, v) = ctx();
        // the unresolvable column sits behind a short-circuited OR arm, so
        // neither path ever surfaces it
        let e = where_expr("len = 12 OR missing = 1");
        assert_eq!(eval(&e, &b, &v).unwrap(), Value::Bool(true));
        assert_eq!(
            eval_compiled(&compile(&e, &b), &v).unwrap(),
            Value::Bool(true)
        );
        // evaluated directly, the deferred error fires with the same code
        let e = where_expr("missing = 1");
        let interp_err = eval(&e, &b, &v).unwrap_err();
        let comp_err = eval_compiled(&compile(&e, &b), &v).unwrap_err();
        assert_eq!(interp_err, comp_err);
    }

    #[test]
    fn referenced_columns_walks_everything() {
        let (b, _) = ctx();
        let e = where_expr("LENGTH(GID) + len > score");
        let mut cols = Vec::new();
        referenced_columns(&e, &b, &mut cols).unwrap();
        cols.sort_unstable();
        assert_eq!(cols, vec![0, 1, 2]);
    }
}
