//! # bdbms-core
//!
//! The bdbms engine — a reproduction of the system described in
//! *"bdbms: A Database Management System for Biological Data"*
//! (Eltabakh, Ouzzani, Aref — CIDR 2007).
//!
//! The paper's architecture (§2) names four managers layered over a
//! relational engine; each has a module here:
//!
//! | Paper component        | Module |
//! |------------------------|--------|
//! | Annotation manager (§3)| [`annotation`], surfaced through A-SQL |
//! | Provenance manager (§4)| [`provenance`] |
//! | Dependency manager (§5)| [`dependency`] + cascade logic in [`database`] |
//! | Authorization manager (§6) | [`auth`] (GRANT/REVOKE) + [`approval`] (content-based) |
//!
//! A-SQL — the paper's SQL extension (Figures 4, 6, 7, 11) — is lexed in
//! [`lexer`], parsed in [`parser`], and executed by [`executor`] /
//! [`database`].  Annotation bodies are XML ([`xml`]).
//!
//! ## Quick start
//!
//! ```
//! use bdbms_core::Database;
//!
//! let mut db = Database::new_in_memory();
//! db.execute("CREATE TABLE DB2_Gene (GID TEXT, GName TEXT, GSequence TEXT)").unwrap();
//! db.execute("CREATE ANNOTATION TABLE GAnnotation ON DB2_Gene").unwrap();
//! db.execute("INSERT INTO DB2_Gene VALUES ('JW0080', 'mraW', 'ATGATGGAAAA')").unwrap();
//! // the paper's §3.2 example: annotate the whole GSequence column
//! db.execute(
//!     "ADD ANNOTATION TO DB2_Gene.GAnnotation \
//!      VALUE '<Annotation>obtained from GenoBase</Annotation>' \
//!      ON (SELECT G.GSequence FROM DB2_Gene G)",
//! ).unwrap();
//! let r = db.execute(
//!     "SELECT GSequence FROM DB2_Gene ANNOTATION(GAnnotation)",
//! ).unwrap();
//! assert_eq!(r.rows[0].anns[0][0].text(), "obtained from GenoBase");
//! ```

pub mod annotation;
pub mod approval;
pub mod ast;
pub mod auth;
pub mod batch;
pub mod catalog;
pub mod check;
pub mod client;
pub(crate) mod codec;
pub mod database;
pub mod dependency;
pub mod durability;
pub mod executor;
pub mod expr;
pub(crate) mod ingest;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod provenance;
pub mod result;
pub mod session;
pub mod stats;
pub mod txn;
pub mod xml;

pub use check::CheckReport;
pub use client::{Connection, LocalConnection, Rows, StatementHandle};
pub use database::{Database, SlowQuery};
pub use durability::{CommitTicket, Durability, DurabilityOptions, RecoveryReport};
pub use result::{AnnOut, AnnRef, AnnRow, QueryResult};
pub use session::{Prepared, RowCursor, Session};
pub use txn::TxnStatus;
