//! Online integrity verification — the `CHECK [TABLE t]` statement and
//! [`Database::check`].
//!
//! Biological databases are long-lived curated artifacts: the paper's
//! motivating users (§1) accumulate years of annotations and provenance
//! that no upstream source can regenerate, so *silent* corruption is
//! strictly worse than an outage.  `CHECK` walks every consistency
//! invariant the engine can verify from a live handle and reports all
//! findings instead of stopping at the first:
//!
//! * page checksums of the durable image (`data.bdb`), read directly
//!   from disk so buffer-pool hits cannot mask a rotted page;
//! * row decodability of every table heap;
//! * secondary-index key order and index↔heap agreement;
//! * annotation attachments resolving to existing annotation records;
//! * outdated-bitmap shape (arity) and liveness (bits only on live rows);
//! * WAL chain continuity (segment numbering, header agreement, frame
//!   CRCs, dense LSNs) via [`verify_wal_dir`].
//!
//! The statement is read-only; it never repairs.  For opening a database
//! that `CHECK` (or open-time verification) has condemned, see salvage
//! mode in [`crate::durability`].

use std::path::Path;

use bdbms_common::{Result, Value};
use bdbms_storage::{
    verify_page_checksum, verify_wal_dir, FileStore, PageId, PageStore, PAGE_SIZE,
};

use crate::catalog::Table;
use crate::database::Database;
use crate::durability::{DATA_FILE, WAL_DIR};
use crate::result::{AnnRow, QueryResult};

/// What [`Database::check`] verified and what it found.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Pages of the durable image whose checksums were verified.
    pub pages_checked: u64,
    /// Rows decoded from table heaps.
    pub rows_checked: u64,
    /// Secondary-index entries verified (key order + heap agreement).
    pub index_entries_checked: u64,
    /// WAL segment files scanned.
    pub wal_segments: usize,
    /// WAL frames whose CRC chain was verified.
    pub wal_frames: usize,
    /// Everything wrong, one human-readable line per finding.
    pub problems: Vec<String>,
}

impl CheckReport {
    /// Did every check pass?
    pub fn is_ok(&self) -> bool {
        self.problems.is_empty()
    }
}

impl Database {
    /// Verify the whole database; see the module docs for the invariant
    /// list.  Returns `Err` only when verification itself cannot run
    /// (e.g. an unknown table filter) — findings are in the report.
    pub fn check(&self) -> Result<CheckReport> {
        self.check_filtered(None)
    }

    /// [`check`](Self::check) restricted to one table's logical legs.
    /// The storage-wide legs (page image, WAL) always run: a damaged
    /// page is a database problem regardless of which table owns it.
    pub fn check_table(&self, table: &str) -> Result<CheckReport> {
        self.check_filtered(Some(table))
    }

    fn check_filtered(&self, filter: Option<&str>) -> Result<CheckReport> {
        if let Some(f) = filter {
            self.catalog().table(f)?; // unknown filter is an error, not a finding
        }
        let mut rep = CheckReport::default();
        if let Some(dir) = self.path() {
            check_durable_image(dir, &mut rep);
        }
        for t in self.catalog().tables() {
            if let Some(f) = filter {
                if !t.name.eq_ignore_ascii_case(f) {
                    continue;
                }
            }
            check_table(t, &mut rep);
        }
        Ok(rep)
    }

    /// Execute the `CHECK` statement: run the checks and render the
    /// report as a result set, one row per leg plus one per problem.
    pub(crate) fn run_check(&self, filter: Option<&str>) -> Result<QueryResult> {
        let rep = self.check_filtered(filter)?;
        let mut qr = QueryResult {
            columns: vec!["check".into(), "detail".into()],
            ..Default::default()
        };
        let mut row = |check: &str, detail: String| {
            qr.rows.push(AnnRow::plain(vec![
                Value::Text(check.into()),
                Value::Text(detail),
            ]));
        };
        row(
            "pages",
            format!("{} page checksum(s) verified", rep.pages_checked),
        );
        row("rows", format!("{} row(s) decoded", rep.rows_checked));
        row(
            "indexes",
            format!("{} index entries verified", rep.index_entries_checked),
        );
        row(
            "wal",
            format!(
                "{} segment(s), {} frame(s)",
                rep.wal_segments, rep.wal_frames
            ),
        );
        for p in &rep.problems {
            row("problem", p.clone());
        }
        let message = if rep.is_ok() {
            "CHECK ok".to_string()
        } else {
            format!("CHECK found {} problem(s)", rep.problems.len())
        };
        Ok(QueryResult {
            message: Some(message),
            ..qr
        })
    }
}

/// Verify the on-disk artifacts: every page checksum of `data.bdb`
/// (bypassing the buffer pool — a cached frame would hide bit rot on
/// the medium) and the WAL segment chain.
fn check_durable_image(dir: &Path, rep: &mut CheckReport) {
    let data = dir.join(DATA_FILE);
    if data.exists() {
        match FileStore::open(&data) {
            Ok(mut store) => {
                let mut buf = vec![0u8; PAGE_SIZE];
                for id in 0..store.num_pages() {
                    let pid = PageId(id);
                    match store.read_page(pid, &mut buf) {
                        Ok(()) if verify_page_checksum(&buf) => rep.pages_checked += 1,
                        Ok(()) => rep.problems.push(format!(
                            "page checksum mismatch on {pid} of the durable image"
                        )),
                        Err(e) => rep.problems.push(format!("cannot read {pid}: {e}")),
                    }
                }
            }
            Err(e) => rep
                .problems
                .push(format!("cannot open the durable image: {e}")),
        }
    }
    match verify_wal_dir(dir.join(WAL_DIR)) {
        Ok(w) => {
            rep.wal_segments = w.segments;
            rep.wal_frames = w.frames;
            rep.problems.extend(w.problems);
        }
        Err(e) => rep.problems.push(format!("cannot scan WAL directory: {e}")),
    }
}

/// Verify one table's logical invariants against its live heap.
fn check_table(t: &Table, rep: &mut CheckReport) {
    let name = &t.name;
    // Row decodability.  Reads go through the live buffer pool, which
    // verifies page checksums on every cold fetch.
    let mut rows: Vec<(u64, Vec<Value>)> = Vec::with_capacity(t.len());
    for entry in t.iter_rows() {
        match entry {
            Ok(r) => {
                rep.rows_checked += 1;
                rows.push(r);
            }
            Err(e) => rep
                .problems
                .push(format!("table `{name}`: unreadable row: {e}")),
        }
    }
    // Secondary indexes: tree order, then exact agreement with the heap.
    for idx in t.indexes() {
        let entries = idx.entries();
        rep.index_entries_checked += entries.len() as u64;
        if entries.windows(2).any(|w| w[0].0 > w[1].0) {
            rep.problems.push(format!(
                "index `{}` on `{name}`: keys out of order",
                idx.name
            ));
        }
        let mut have = entries;
        have.sort_unstable();
        let mut want: Vec<(Value, u64)> = rows
            .iter()
            .filter(|(_, v)| !v[idx.column].is_null())
            .map(|(no, v)| (v[idx.column].clone(), *no))
            .collect();
        want.sort_unstable();
        if have != want {
            rep.problems.push(format!(
                "index `{}` on `{name}` disagrees with the heap \
                 ({} indexed vs {} expected entries)",
                idx.name,
                have.len(),
                want.len()
            ));
        }
    }
    // Annotation attachments must resolve.
    for s in &t.ann_sets {
        for id in s.referenced_ids() {
            if s.get(id).is_none() {
                rep.problems.push(format!(
                    "annotation set `{}` on `{name}`: attachment references \
                     missing annotation {}",
                    s.name,
                    id.raw()
                ));
            }
        }
    }
    // Outdated bitmap: right shape, bits only on live rows.
    if t.outdated.cols() != t.schema.arity() {
        rep.problems.push(format!(
            "table `{name}`: outdated bitmap has {} column(s), schema has {}",
            t.outdated.cols(),
            t.schema.arity()
        ));
    }
    for (r, c) in t.outdated.iter_set() {
        if !t.contains_row(r as u64) {
            rep.problems.push(format!(
                "table `{name}`: outdated bit on dead row {r}, column {c}"
            ));
        }
    }
}
