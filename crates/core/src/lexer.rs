//! Tokenizer for SQL / A-SQL.
//!
//! Every token carries the byte [`Span`] it was read from, so parse
//! errors can point at the offending region of the statement text, and
//! the lexer recognizes the prepared-statement parameter placeholders
//! `?` (positional) and `$n` (1-based numbered).

use bdbms_common::{BdbmsError, Result, Span};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (uppercased match, original preserved).
    Ident(String),
    /// String literal (single quotes, `''` escape).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Punctuation / operator (`?` is the positional parameter marker).
    Sym(&'static str),
    /// Numbered parameter placeholder `$n` (1-based, as written).
    Param(usize),
}

impl Token {
    /// Is this the identifier/keyword `kw` (case-insensitive)?
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// A token together with the byte range it occupies in the input.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Token,
    /// Byte range in the statement text.
    pub span: Span,
}

/// Tokenize an input statement, dropping the spans (convenience for
/// callers that only care about the token stream).
pub fn lex(input: &str) -> Result<Vec<Token>> {
    Ok(lex_spanned(input)?.into_iter().map(|s| s.tok).collect())
}

/// Tokenize an input statement, keeping each token's source span.
pub fn lex_spanned(input: &str) -> Result<Vec<Spanned>> {
    let b = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut push = |tok: Token, start: usize, end: usize| {
        out.push(Spanned {
            tok,
            span: Span::new(start, end),
        });
    };
    while i < b.len() {
        let c = b[i];
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // -- line comments
        if c == b'-' && b.get(i + 1) == Some(&b'-') {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            push(Token::Ident(input[start..i].to_string()), start, i);
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < b.len() && b[i].is_ascii_digit() {
                i += 1;
            }
            let mut is_float = false;
            if i < b.len() && b[i] == b'.' && b.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                is_float = true;
                i += 1;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
            }
            // scientific notation (BLAST E-values: 2e-04)
            if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
                let mut j = i + 1;
                if j < b.len() && (b[j] == b'+' || b[j] == b'-') {
                    j += 1;
                }
                if j < b.len() && b[j].is_ascii_digit() {
                    is_float = true;
                    i = j;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                }
            }
            let text = &input[start..i];
            if is_float {
                push(
                    Token::Float(text.parse().map_err(|_| {
                        BdbmsError::syntax_at(format!("bad float literal `{text}`"), start, i)
                    })?),
                    start,
                    i,
                );
            } else {
                push(
                    Token::Int(text.parse().map_err(|_| {
                        BdbmsError::syntax_at(format!("bad integer literal `{text}`"), start, i)
                    })?),
                    start,
                    i,
                );
            }
            continue;
        }
        if c == b'\'' {
            let start = i;
            let mut s = String::new();
            i += 1;
            loop {
                match b.get(i) {
                    None => {
                        return Err(BdbmsError::syntax_at(
                            "unterminated string literal",
                            start,
                            b.len(),
                        ))
                    }
                    Some(b'\'') if b.get(i + 1) == Some(&b'\'') => {
                        s.push('\'');
                        i += 2;
                    }
                    Some(b'\'') => {
                        i += 1;
                        break;
                    }
                    Some(_) => {
                        // consume a full UTF-8 scalar
                        let rest = &input[i..];
                        let ch = rest.chars().next().unwrap();
                        s.push(ch);
                        i += ch.len_utf8();
                    }
                }
            }
            push(Token::Str(s), start, i);
            continue;
        }
        // numbered parameter placeholder: $n
        if c == b'$' {
            let start = i;
            let mut j = i + 1;
            while j < b.len() && b[j].is_ascii_digit() {
                j += 1;
            }
            if j == i + 1 {
                return Err(BdbmsError::syntax_at(
                    "`$` must be followed by a parameter number (e.g. `$1`)",
                    start,
                    start + 1,
                ));
            }
            let n: usize = input[i + 1..j].parse().map_err(|_| {
                BdbmsError::syntax_at(format!("bad parameter number `{}`", &input[i..j]), start, j)
            })?;
            push(Token::Param(n), start, j);
            i = j;
            continue;
        }
        // multi-char operators first
        let two = &input[i..(i + 2).min(input.len())];
        let sym: &'static str = match two {
            "<=" => "<=",
            ">=" => ">=",
            "<>" => "<>",
            "!=" => "<>",
            "||" => "||",
            _ => "",
        };
        if !sym.is_empty() {
            push(Token::Sym(sym), i, i + 2);
            i += 2;
            continue;
        }
        let sym: &'static str = match c {
            b'(' => "(",
            b')' => ")",
            b',' => ",",
            b'.' => ".",
            b';' => ";",
            b'*' => "*",
            b'+' => "+",
            b'-' => "-",
            b'/' => "/",
            b'%' => "%",
            b'=' => "=",
            b'<' => "<",
            b'>' => ">",
            b'?' => "?",
            _ => {
                return Err(BdbmsError::syntax_at(
                    format!("unexpected character `{}`", c as char),
                    i,
                    i + 1,
                ))
            }
        };
        push(Token::Sym(sym), i, i + 1);
        i += 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_strings_numbers() {
        let toks = lex("SELECT GID FROM DB1_Gene WHERE E = 2e-04 AND n >= 3.5 -- tail").unwrap();
        assert!(toks[0].is_kw("select"));
        assert!(toks.contains(&Token::Float(2e-4)));
        assert!(toks.contains(&Token::Sym(">=")));
        assert!(toks.contains(&Token::Float(3.5)));
        // comment dropped
        assert!(!toks.iter().any(|t| t.is_kw("tail")));
    }

    #[test]
    fn string_escapes() {
        let toks = lex("'it''s a gene'").unwrap();
        assert_eq!(toks, vec![Token::Str("it's a gene".into())]);
    }

    #[test]
    fn xml_in_string() {
        let toks = lex("VALUE '<Annotation>obtained from GenoBase</Annotation>'").unwrap();
        assert_eq!(toks.len(), 2);
        match &toks[1] {
            Token::Str(s) => assert!(s.starts_with("<Annotation>")),
            t => panic!("unexpected {t:?}"),
        }
    }

    #[test]
    fn operators() {
        let toks = lex("a<>b != c || d").unwrap();
        assert_eq!(
            toks.iter().filter(|t| matches!(t, Token::Sym(_))).count(),
            3
        );
        assert!(toks.contains(&Token::Sym("||")));
    }

    #[test]
    fn parameter_placeholders() {
        let toks = lex("WHERE GID = ? AND Len >= $2").unwrap();
        assert!(toks.contains(&Token::Sym("?")));
        assert!(toks.contains(&Token::Param(2)));
        // a bare `$` is an error
        assert!(lex("a $ b").is_err());
    }

    #[test]
    fn errors_carry_spans() {
        let e = lex_spanned("'unterminated").unwrap_err();
        assert_eq!(e.span.map(|s| s.start), Some(0));
        let e = lex_spanned("ab @").unwrap_err();
        assert_eq!(e.span.map(|s| (s.start, s.end)), Some((3, 4)));
    }

    #[test]
    fn spans_cover_tokens() {
        let toks = lex_spanned("SELECT 'ab'").unwrap();
        assert_eq!((toks[0].span.start, toks[0].span.end), (0, 6));
        assert_eq!((toks[1].span.start, toks[1].span.end), (7, 11));
    }

    #[test]
    fn unicode_in_strings() {
        let toks = lex("'σ-factor'").unwrap();
        assert_eq!(toks, vec![Token::Str("σ-factor".into())]);
    }
}
