//! Tokenizer for SQL / A-SQL.

use bdbms_common::{BdbmsError, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (uppercased match, original preserved).
    Ident(String),
    /// String literal (single quotes, `''` escape).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Punctuation / operator.
    Sym(&'static str),
}

impl Token {
    /// Is this the identifier/keyword `kw` (case-insensitive)?
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize an input statement.
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let b = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // -- line comments
        if c == b'-' && b.get(i + 1) == Some(&b'-') {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            out.push(Token::Ident(input[start..i].to_string()));
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < b.len() && b[i].is_ascii_digit() {
                i += 1;
            }
            let mut is_float = false;
            if i < b.len() && b[i] == b'.' && b.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                is_float = true;
                i += 1;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
            }
            // scientific notation (BLAST E-values: 2e-04)
            if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
                let mut j = i + 1;
                if j < b.len() && (b[j] == b'+' || b[j] == b'-') {
                    j += 1;
                }
                if j < b.len() && b[j].is_ascii_digit() {
                    is_float = true;
                    i = j;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                }
            }
            let text = &input[start..i];
            if is_float {
                out.push(Token::Float(text.parse().map_err(|_| {
                    BdbmsError::Parse(format!("bad float literal `{text}`"))
                })?));
            } else {
                out.push(Token::Int(text.parse().map_err(|_| {
                    BdbmsError::Parse(format!("bad integer literal `{text}`"))
                })?));
            }
            continue;
        }
        if c == b'\'' {
            let mut s = String::new();
            i += 1;
            loop {
                match b.get(i) {
                    None => return Err(BdbmsError::Parse("unterminated string literal".into())),
                    Some(b'\'') if b.get(i + 1) == Some(&b'\'') => {
                        s.push('\'');
                        i += 2;
                    }
                    Some(b'\'') => {
                        i += 1;
                        break;
                    }
                    Some(_) => {
                        // consume a full UTF-8 scalar
                        let rest = &input[i..];
                        let ch = rest.chars().next().unwrap();
                        s.push(ch);
                        i += ch.len_utf8();
                    }
                }
            }
            out.push(Token::Str(s));
            continue;
        }
        // multi-char operators first
        let two = &input[i..(i + 2).min(input.len())];
        let sym: &'static str = match two {
            "<=" => "<=",
            ">=" => ">=",
            "<>" => "<>",
            "!=" => "<>",
            "||" => "||",
            _ => "",
        };
        if !sym.is_empty() {
            out.push(Token::Sym(sym));
            i += 2;
            continue;
        }
        let sym: &'static str = match c {
            b'(' => "(",
            b')' => ")",
            b',' => ",",
            b'.' => ".",
            b';' => ";",
            b'*' => "*",
            b'+' => "+",
            b'-' => "-",
            b'/' => "/",
            b'%' => "%",
            b'=' => "=",
            b'<' => "<",
            b'>' => ">",
            _ => {
                return Err(BdbmsError::Parse(format!(
                    "unexpected character `{}`",
                    c as char
                )))
            }
        };
        out.push(Token::Sym(sym));
        i += 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_strings_numbers() {
        let toks = lex("SELECT GID FROM DB1_Gene WHERE E = 2e-04 AND n >= 3.5 -- tail").unwrap();
        assert!(toks[0].is_kw("select"));
        assert!(toks.contains(&Token::Float(2e-4)));
        assert!(toks.contains(&Token::Sym(">=")));
        assert!(toks.contains(&Token::Float(3.5)));
        // comment dropped
        assert!(!toks.iter().any(|t| t.is_kw("tail")));
    }

    #[test]
    fn string_escapes() {
        let toks = lex("'it''s a gene'").unwrap();
        assert_eq!(toks, vec![Token::Str("it's a gene".into())]);
    }

    #[test]
    fn xml_in_string() {
        let toks = lex("VALUE '<Annotation>obtained from GenoBase</Annotation>'").unwrap();
        assert_eq!(toks.len(), 2);
        match &toks[1] {
            Token::Str(s) => assert!(s.starts_with("<Annotation>")),
            t => panic!("unexpected {t:?}"),
        }
    }

    #[test]
    fn operators() {
        let toks = lex("a<>b != c || d").unwrap();
        assert_eq!(
            toks.iter().filter(|t| matches!(t, Token::Sym(_))).count(),
            3
        );
        assert!(toks.contains(&Token::Sym("||")));
    }

    #[test]
    fn errors() {
        assert!(lex("'unterminated").is_err());
        assert!(lex("a ? b").is_err());
    }

    #[test]
    fn unicode_in_strings() {
        let toks = lex("'σ-factor'").unwrap();
        assert_eq!(toks, vec![Token::Str("σ-factor".into())]);
    }
}
