//! Scan planning: conjunct splitting, predicate-pushdown classification,
//! and index access-path selection.
//!
//! The streaming executor (see [`crate::executor`]) plans each FROM
//! source before any tuple is materialized:
//!
//! 1. the WHERE clause is split into top-level conjuncts
//!    ([`split_conjuncts`]);
//! 2. each conjunct whose columns all resolve inside one source is
//!    *pushed down* to that source's scan ([`classify_conjunct`]), so
//!    non-qualifying tuples are dropped before joins and before any
//!    annotation is attached;
//! 3. a pushed conjunct of the shape `column ⟨cmp⟩ constant` over an
//!    indexed column turns the scan into a B+-tree probe
//!    ([`choose_probe`]) instead of a full heap scan.
//!
//! Index probes are deliberately *approximate*: bounds are widened to
//! inclusive and the originating conjunct is still re-evaluated on every
//! candidate row, because [`Value`]'s total order (used as the tree key
//! order) coarsens SQL comparison on numeric edge cases (the float
//! interleave collapses `i64` values beyond 2^53).  Widening keeps the
//! candidate set a superset of the true result; re-evaluation trims the
//! false positives.
//!
//! ## Cost model
//!
//! When several indexes could serve a scan, [`choose_probe`] costs each
//! candidate with the table's [`crate::stats::TableStats`] and takes the
//! one expected to return the fewest rows: an equality probe is costed
//! at `rows / distinct(col)`, a range probe at the fraction of the
//! `[min, max]` span it covers (System R's 1/3 / 1/9 defaults when the
//! column is non-numeric).  [`estimate_scan_rows`] applies the same
//! per-conjunct selectivities to a whole pushed-conjunct set, which is
//! what the executor's greedy join ordering ranks sources by.  All
//! estimates are deterministic functions of the insert history, so plan
//! choices are stable and testable.

use std::ops::Bound;

use bdbms_common::{DataType, Result, Value};

use crate::ast::{BinaryOp, Expr};
use crate::catalog::Table;
use crate::expr::{eval, referenced_columns, ColBinding};
use crate::stats::ColumnStats;

/// Split a predicate into its top-level conjuncts, in evaluation order.
pub fn split_conjuncts(e: &Expr) -> Vec<Expr> {
    fn walk(e: &Expr, out: &mut Vec<Expr>) {
        match e {
            Expr::Binary(a, BinaryOp::And, b) => {
                walk(a, out);
                walk(b, out);
            }
            other => out.push(other.clone()),
        }
    }
    let mut out = Vec::new();
    walk(e, &mut out);
    out
}

/// Where a conjunct may be evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConjunctSite {
    /// All referenced columns live in one source: evaluate at its scan.
    Source(usize),
    /// Spans sources (or does not resolve cleanly): evaluate after joins.
    Residual,
}

/// Decide, for one conjunct, whether it can run at a single source's
/// scan.  `segments` gives each source's `(offset, arity)` within the
/// joined binding list.  Conjuncts that reference no column at all are
/// assigned to source 0 (they are constant; filtering the first scan
/// preserves the cross-product semantics).  Conjuncts whose columns do
/// not resolve are left residual so the original evaluation-time error
/// behavior is preserved.
pub fn classify_conjunct(
    conjunct: &Expr,
    bindings: &[ColBinding],
    segments: &[(usize, usize)],
) -> ConjunctSite {
    let mut cols = Vec::new();
    if referenced_columns(conjunct, bindings, &mut cols).is_err() {
        return ConjunctSite::Residual;
    }
    if cols.is_empty() {
        return ConjunctSite::Source(0);
    }
    for (i, &(off, arity)) in segments.iter().enumerate() {
        if cols.iter().all(|&c| c >= off && c < off + arity) {
            return ConjunctSite::Source(i);
        }
    }
    ConjunctSite::Residual
}

/// The access path chosen for one source's scan.
#[derive(Debug, Clone)]
pub enum Probe {
    /// Walk every live row.
    FullScan,
    /// The pushed predicate compares against NULL: no row can qualify.
    Empty,
    /// B+-tree probe over `column` (source-local position) with the given
    /// key bounds; candidates still re-checked against the predicate.
    Index {
        /// Source-local column position.
        column: usize,
        /// Lower key bound (inclusive or unbounded — see module docs).
        lo: Bound<Value>,
        /// Upper key bound (inclusive or unbounded).
        hi: Bound<Value>,
    },
    /// Sequence-index probe over `column`: the SBC-tree / String B-tree
    /// candidate rows whose text contains `pattern`.  Candidates are
    /// still re-checked against the pushed predicate (deleted-row
    /// tombstones and multi-conjunct filters are handled there).
    SeqIndex {
        /// Source-local column position.
        column: usize,
        /// The literal substring from `CONTAINS SEQ '<pattern>'`.
        pattern: String,
    },
}

/// Assumed fraction of rows matching a `CONTAINS SEQ` substring
/// predicate: sequence motifs are rare, so a sequence-index probe is
/// costed well below a full scan but above a unique-key equality probe.
const SEQ_MATCH_FRACTION: f64 = 0.05;

/// Is an index over a column of type `col` usable for a probe with a
/// constant of type `key`?  Requires that SQL comparison agree with the
/// B+-tree's total value order (up to the inclusive-bound widening).
fn probe_types_compatible(col: DataType, key: DataType) -> bool {
    use DataType::*;
    let numeric = |t: DataType| matches!(t, Int | Float | Timestamp);
    col == key || (numeric(col) && numeric(key))
}

/// Evaluate an expression that references no columns to a constant.
fn const_fold(e: &Expr) -> Option<Value> {
    eval(e, &[], &[]).ok()
}

/// Accumulated inclusive bounds for one indexed column.
#[derive(Default)]
struct ColBounds {
    lo: Option<Value>,
    hi: Option<Value>,
    has_eq: bool,
}

impl ColBounds {
    /// Tighten with another inclusive bound (keep the larger lower /
    /// smaller upper — SQL comparison and the tree's total order agree
    /// closely enough that picking by total order plus the residual
    /// re-check stays a superset).
    fn tighten_lo(&mut self, key: Value) {
        match &self.lo {
            Some(cur) if *cur >= key => {}
            _ => self.lo = Some(key),
        }
    }
    fn tighten_hi(&mut self, key: Value) {
        match &self.hi {
            Some(cur) if *cur <= key => {}
            _ => self.hi = Some(key),
        }
    }
}

/// The value-independent part of a probe decision: which access path a
/// source scan takes, with key bounds left to be recomputed from the
/// (possibly parameter-bound) conjuncts at execution time.  This is what
/// prepared statements cache and replay until the catalog generation
/// moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeChoice {
    /// Walk the heap.
    FullScan,
    /// Probe the index over this source-local column.
    Column(usize),
    /// Probe the sequence index over this source-local column; the
    /// pattern is re-read from the conjuncts at execution time.
    SeqIndex(usize),
}

/// Pick an index access path for one source given its pushed conjuncts.
///
/// All usable `column ⟨cmp⟩ constant` conjuncts over indexed columns are
/// collected and their bounds intersected per column (so `k >= a AND
/// k < b` probes the `[a, b]` range, not `[a, ∞)`); a column with an
/// equality wins over range-only columns.  `local_bindings` are the
/// source's own bindings, so resolved positions are source-local.
pub fn choose_probe(table: &Table, local_bindings: &[ColBinding], pushed: &[Expr]) -> Probe {
    choose_probe_with(table, local_bindings, pushed, None).0
}

/// Like [`choose_probe`], but optionally replaying a cached
/// [`ProbeChoice`] instead of re-costing the candidates, and returning
/// the choice actually taken alongside the concrete probe.  The
/// returned choice is `None` when any decision along the way depended
/// on a constant's *value* (a NULL or type-incompatible key, a constant
/// that failed to fold) — such a choice must not be cached, or a freak
/// first binding would pin a bad access path for every later execution.
///
/// A forced choice pins only the access *path*; key bounds are always
/// recomputed from the conjuncts at hand, so re-binding a prepared
/// statement with new parameter values probes the right keys.  A forced
/// choice that no longer fits the table (index dropped, conjunct shape
/// drifted) falls back to a live cost-based pick.
pub fn choose_probe_with(
    table: &Table,
    local_bindings: &[ColBinding],
    pushed: &[Expr],
    forced: Option<ProbeChoice>,
) -> (Probe, Option<ProbeChoice>) {
    // per-column accumulated bounds, in first-seen order
    let mut cols: Vec<(usize, ColBounds)> = Vec::new();
    let mut empty = false;
    let mut value_dependent = false;
    for conjunct in pushed {
        let Expr::Binary(l, op, r) = conjunct else {
            continue;
        };
        // only comparison conjuncts constrain an index — in particular
        // the NULL shortcut below is valid for `col ⟨cmp⟩ NULL` but NOT
        // for e.g. `col OR NULL`, which can still be true
        if !matches!(
            op,
            BinaryOp::Eq | BinaryOp::Ne | BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge
        ) {
            continue;
        }
        // column on one side, constant expression on the other
        let sides = [(l, *op, r), (r, mirror(*op), l)];
        for (col_side, op, const_side) in sides {
            let Expr::Column(q, n) = &**col_side else {
                continue;
            };
            let Ok(col) = crate::expr::resolve_column(local_bindings, q.as_deref(), n) else {
                continue;
            };
            let mut const_cols = Vec::new();
            if referenced_columns(const_side, local_bindings, &mut const_cols).is_err()
                || !const_cols.is_empty()
            {
                continue;
            }
            let Some(key) = const_fold(const_side) else {
                // a column-free side that fails to fold (e.g. `? / 0`)
                // is a value-level accident, not statement shape
                value_dependent = true;
                continue;
            };
            if table.index_on(col).is_none() {
                continue;
            }
            if key.is_null() {
                // `col ⟨cmp⟩ NULL` is never true, and the conjunct must
                // hold for a row to survive: the scan is provably empty.
                // (A value-dependent fact — never part of the cached
                // choice, which is why it is not an early return.)
                empty = true;
                value_dependent = true;
                continue;
            }
            let key_ty = key.data_type().expect("non-null");
            if !probe_types_compatible(table.schema.columns()[col].ty, key_ty) {
                // whether the key's type fits the index is a property of
                // the bound value, not of the statement
                value_dependent = true;
                continue;
            }
            let pos = match cols.iter().position(|(c, _)| *c == col) {
                Some(p) => p,
                None => {
                    cols.push((col, ColBounds::default()));
                    cols.len() - 1
                }
            };
            let entry = &mut cols[pos].1;
            // bounds widened to inclusive: see module docs
            match op {
                BinaryOp::Eq => {
                    entry.tighten_lo(key.clone());
                    entry.tighten_hi(key);
                    entry.has_eq = true;
                }
                BinaryOp::Gt | BinaryOp::Ge => entry.tighten_lo(key),
                BinaryOp::Lt | BinaryOp::Le => entry.tighten_hi(key),
                _ => {}
            }
            break; // a conjunct constrains via at most one side
        }
    }
    // `col CONTAINS SEQ '<pat>'` over a sequence-indexed column is a
    // candidate too (first-seen wins among several); the pattern is a
    // statement literal, so this is never value-dependent
    let mut seq_candidate: Option<(usize, &str)> = None;
    for conjunct in pushed {
        let Expr::ContainsSeq(col_side, pattern, false) = conjunct else {
            continue;
        };
        let Expr::Column(q, n) = &**col_side else {
            continue;
        };
        let Ok(col) = crate::expr::resolve_column(local_bindings, q.as_deref(), n) else {
            continue;
        };
        if table.seq_index_on(col).is_some() {
            seq_candidate = Some((col, pattern.as_str()));
            break;
        }
    }
    let bounded = |b: &ColBounds| b.lo.is_some() || b.hi.is_some();
    let concrete = |col: usize, b: &ColBounds| Probe::Index {
        column: col,
        lo: b.lo.clone().map_or(Bound::Unbounded, Bound::Included),
        hi: b.hi.clone().map_or(Bound::Unbounded, Bound::Included),
    };
    let seq_concrete = |col: usize, pat: &str| Probe::SeqIndex {
        column: col,
        pattern: pat.to_string(),
    };
    // a cached choice replays if it still fits the current shape
    let (probe, choice) = match forced {
        Some(ProbeChoice::FullScan) => (Probe::FullScan, ProbeChoice::FullScan),
        Some(ProbeChoice::Column(c))
            if table.index_on(c).is_some()
                && cols.iter().any(|(col, b)| *col == c && bounded(b)) =>
        {
            let b = &cols.iter().find(|(col, _)| *col == c).expect("checked").1;
            (concrete(c, b), ProbeChoice::Column(c))
        }
        Some(ProbeChoice::SeqIndex(c)) if seq_candidate.is_some_and(|(col, _)| col == c) => {
            let (col, pat) = seq_candidate.expect("checked");
            (seq_concrete(col, pat), ProbeChoice::SeqIndex(col))
        }
        // live cost-based choice (also the fallback for a stale forced
        // column): expected result rows per candidate, smallest wins;
        // ties prefer equality probes, then first-seen order (so the
        // choice is deterministic given fixed stats)
        _ => {
            let pick = cols
                .iter()
                .filter(|(_, b)| bounded(b))
                .map(|(col, b)| (col, b, estimate_bounds_rows(table, *col, b)))
                // `min_by` keeps the first of equal candidates → first-seen order
                .min_by(|(_, ab, ae), (_, bb, be)| {
                    ae.total_cmp(be).then_with(|| bb.has_eq.cmp(&ab.has_eq))
                });
            let seq_est = table.len() as f64 * SEQ_MATCH_FRACTION;
            match (seq_candidate, pick) {
                // the sequence probe competes on the same expected-rows
                // basis; ties go to the B+-tree (cheaper candidate walk)
                (Some((col, pat)), pick)
                    if pick
                        .as_ref()
                        .is_none_or(|(_, _, tree_est)| seq_est < *tree_est) =>
                {
                    (seq_concrete(col, pat), ProbeChoice::SeqIndex(col))
                }
                (_, Some((col, b, _))) => (concrete(*col, b), ProbeChoice::Column(*col)),
                _ => (Probe::FullScan, ProbeChoice::FullScan),
            }
        }
    };
    let probe = if empty { Probe::Empty } else { probe };
    (probe, (!value_dependent).then_some(choice))
}

/// Expected rows returned by a probe of `column` constrained to the
/// accumulated bounds.
fn estimate_bounds_rows(table: &Table, column: usize, b: &ColBounds) -> f64 {
    let n = table.len() as f64;
    let cs = table.stats().column(column);
    let nonnull = (n - cs.null_count as f64).max(0.0);
    if b.has_eq {
        return nonnull / cs.distinct().max(1) as f64;
    }
    nonnull * range_fraction(cs, b.lo.as_ref(), b.hi.as_ref())
}

/// Fraction of a column's `[min, max]` span covered by the bounds, when
/// the column is numeric; System R-style defaults (1/3 one-sided, 1/9
/// two-sided) otherwise.
fn range_fraction(cs: &ColumnStats, lo: Option<&Value>, hi: Option<&Value>) -> f64 {
    let bounds_numeric =
        lo.is_none_or(|v| v.as_float().is_some()) && hi.is_none_or(|v| v.as_float().is_some());
    let stats_numeric = (
        cs.min.as_ref().and_then(|v| v.as_float()),
        cs.max.as_ref().and_then(|v| v.as_float()),
    );
    if let (Some(min), Some(max)) = stats_numeric {
        if bounds_numeric {
            let span = max - min;
            if span <= 0.0 {
                // single-valued column: every row shares the one key
                return 1.0;
            }
            let lo_f = lo.and_then(|v| v.as_float()).unwrap_or(min).max(min);
            let hi_f = hi.and_then(|v| v.as_float()).unwrap_or(max).min(max);
            return ((hi_f - lo_f) / span).clamp(0.0, 1.0);
        }
    }
    match (lo, hi) {
        (Some(_), Some(_)) => 1.0 / 9.0,
        (None, None) => 1.0,
        _ => 1.0 / 3.0,
    }
}

/// Estimated selectivity of one conjunct evaluated at a single source's
/// scan (fraction of rows surviving), using the table's stats where the
/// conjunct has the `column ⟨cmp⟩ constant` shape and fixed defaults
/// elsewhere.
pub fn estimate_conjunct_selectivity(
    table: &Table,
    local_bindings: &[ColBinding],
    conjunct: &Expr,
) -> f64 {
    let n = table.len() as f64;
    match conjunct {
        Expr::Binary(l, op, r)
            if matches!(
                op,
                BinaryOp::Eq
                    | BinaryOp::Ne
                    | BinaryOp::Lt
                    | BinaryOp::Le
                    | BinaryOp::Gt
                    | BinaryOp::Ge
            ) =>
        {
            let sides = [(l, *op, r), (r, mirror(*op), l)];
            for (col_side, op, const_side) in sides {
                let Expr::Column(q, name) = &**col_side else {
                    continue;
                };
                let Ok(col) = crate::expr::resolve_column(local_bindings, q.as_deref(), name)
                else {
                    continue;
                };
                let mut const_cols = Vec::new();
                if referenced_columns(const_side, local_bindings, &mut const_cols).is_err()
                    || !const_cols.is_empty()
                {
                    continue;
                }
                let Some(key) = const_fold(const_side) else {
                    continue;
                };
                if key.is_null() {
                    return 0.0; // comparison with NULL is never true
                }
                let cs = table.stats().column(col);
                let nonnull_frac = if n > 0.0 {
                    ((n - cs.null_count as f64) / n).clamp(0.0, 1.0)
                } else {
                    1.0
                };
                let eq_sel = 1.0 / cs.distinct().max(1) as f64;
                return nonnull_frac
                    * match op {
                        BinaryOp::Eq => eq_sel,
                        BinaryOp::Ne => 1.0 - eq_sel,
                        BinaryOp::Lt | BinaryOp::Le => range_fraction(cs, None, Some(&key)),
                        BinaryOp::Gt | BinaryOp::Ge => range_fraction(cs, Some(&key), None),
                        _ => 1.0,
                    };
            }
            0.5 // column-vs-column / expression comparison
        }
        Expr::Binary(_, BinaryOp::And, _) => split_conjuncts(conjunct)
            .iter()
            .map(|c| estimate_conjunct_selectivity(table, local_bindings, c))
            .product(),
        Expr::Like(_, _, negated) => {
            if *negated {
                0.75
            } else {
                0.25
            }
        }
        Expr::ContainsSeq(_, _, negated) => {
            if *negated {
                1.0 - SEQ_MATCH_FRACTION
            } else {
                SEQ_MATCH_FRACTION
            }
        }
        Expr::IsNull(inner, negated) => {
            if let Expr::Column(q, name) = &**inner {
                if let Ok(col) = crate::expr::resolve_column(local_bindings, q.as_deref(), name) {
                    let null_frac = if n > 0.0 {
                        (table.stats().column(col).null_count as f64 / n).clamp(0.0, 1.0)
                    } else {
                        0.0
                    };
                    return if *negated { 1.0 - null_frac } else { null_frac };
                }
            }
            0.5
        }
        Expr::InList(inner, items, negated) => {
            let base = if let Expr::Column(q, name) = &**inner {
                match crate::expr::resolve_column(local_bindings, q.as_deref(), name) {
                    Ok(col) => {
                        let d = table.stats().column(col).distinct().max(1) as f64;
                        (items.len() as f64 / d).clamp(0.0, 1.0)
                    }
                    Err(_) => 0.5,
                }
            } else {
                0.5
            };
            if *negated {
                1.0 - base
            } else {
                base
            }
        }
        _ => 0.5,
    }
}

/// Estimated rows a source's scan yields after its pushed conjuncts,
/// assuming independent predicates.  This is the cardinality the greedy
/// join ordering ranks sources by.
pub fn estimate_scan_rows(table: &Table, local_bindings: &[ColBinding], pushed: &[Expr]) -> f64 {
    let mut est = table.len() as f64;
    for c in pushed {
        est *= estimate_conjunct_selectivity(table, local_bindings, c).clamp(0.0, 1.0);
    }
    est
}

/// Mirror a comparison so `const ⟨cmp⟩ col` reads as `col ⟨cmp'⟩ const`.
fn mirror(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::Le => BinaryOp::Ge,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::Ge => BinaryOp::Le,
        other => other,
    }
}

/// Filter one table's rows by a predicate, using conjunct pushdown and
/// any usable index.  This is the shared row-selection path for
/// annotation targeting (`select_cells`), UPDATE, DELETE, and VALIDATE —
/// the same planning the executor applies to SELECT scans.
///
/// Returns `(row_no, values)` pairs in row-number order (identical to a
/// filtered full scan).
pub fn filter_rows(
    table: &Table,
    qualifier: &str,
    where_clause: Option<&Expr>,
) -> Result<Vec<(u64, Vec<Value>)>> {
    let bindings: Vec<ColBinding> = table
        .schema
        .columns()
        .iter()
        .map(|c| ColBinding::new(Some(qualifier), &c.name))
        .collect();
    let Some(pred) = where_clause else {
        return table.scan();
    };
    // conjuncts that fail to resolve keep the whole predicate residual so
    // evaluation-time errors surface exactly as they would on a full scan
    let conjuncts = {
        let cs = split_conjuncts(pred);
        let mut cols = Vec::new();
        if cs
            .iter()
            .any(|c| referenced_columns(c, &bindings, &mut cols).is_err())
        {
            vec![pred.clone()]
        } else {
            cs
        }
    };
    let probe = choose_probe(table, &bindings, &conjuncts);
    let mut out = Vec::new();
    let mut keep_row = |row_no: u64, values: Vec<Value>| -> Result<()> {
        for c in &conjuncts {
            if !eval(c, &bindings, &values)?.is_true() {
                return Ok(());
            }
        }
        out.push((row_no, values));
        Ok(())
    };
    match probe {
        Probe::Empty => {}
        Probe::Index { column, lo, hi } => {
            let idx = table.index_on(column).expect("probe chose an index");
            for row_no in idx.probe(as_ref_bound(&lo), as_ref_bound(&hi)) {
                let values = table.get(row_no)?;
                keep_row(row_no, values)?;
            }
        }
        Probe::SeqIndex { column, pattern } => {
            let sidx = table.seq_index_on(column).expect("probe chose a seq index");
            for row_no in sidx.probe(&pattern) {
                let values = table.get(row_no)?;
                keep_row(row_no, values)?;
            }
        }
        Probe::FullScan => {
            for entry in table.iter_rows() {
                let (row_no, values) = entry?;
                keep_row(row_no, values)?;
            }
        }
    }
    Ok(out)
}

/// Borrow a bound's key.
pub fn as_ref_bound(b: &Bound<Value>) -> Bound<&Value> {
    match b {
        Bound::Included(v) => Bound::Included(v),
        Bound::Excluded(v) => Bound::Excluded(v),
        Bound::Unbounded => Bound::Unbounded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Statement;
    use crate::parser::parse;
    use bdbms_common::Schema;
    use bdbms_storage::{BufferPool, MemStore};
    use std::sync::Arc;

    fn where_of(sql: &str) -> Expr {
        match parse(sql).unwrap() {
            Statement::Select(s) => s.where_clause.unwrap(),
            _ => panic!(),
        }
    }

    fn test_table(with_index: bool) -> Table {
        let mut t = Table::create(
            "G",
            Schema::of(&[
                ("GID", DataType::Text),
                ("len", DataType::Int),
                ("score", DataType::Float),
            ]),
            "admin",
            Arc::new(BufferPool::new(Box::new(MemStore::new()), 64)),
        )
        .unwrap();
        for i in 0..100i64 {
            t.insert(vec![
                Value::Text(format!("JW{i:04}")),
                Value::Int(i),
                Value::Float(i as f64 / 2.0),
            ])
            .unwrap();
        }
        if with_index {
            t.create_index("len_idx", "len").unwrap();
        }
        t
    }

    #[test]
    fn conjunct_splitting_preserves_order() {
        let e = where_of("SELECT * FROM t WHERE a = 1 AND b = 2 AND (c = 3 OR d = 4)");
        let cs = split_conjuncts(&e);
        assert_eq!(cs.len(), 3);
        assert!(matches!(&cs[2], Expr::Binary(_, BinaryOp::Or, _)));
    }

    #[test]
    fn classification_by_segment() {
        let bindings = vec![
            ColBinding::new(Some("a"), "x"),
            ColBinding::new(Some("a"), "y"),
            ColBinding::new(Some("b"), "z"),
        ];
        let segs = [(0, 2), (2, 1)];
        let c = where_of("SELECT * FROM t WHERE a.x = 1 AND a.y = a.x");
        for conj in split_conjuncts(&c) {
            assert_eq!(
                classify_conjunct(&conj, &bindings, &segs),
                ConjunctSite::Source(0)
            );
        }
        let c = where_of("SELECT * FROM t WHERE b.z = 1");
        assert_eq!(
            classify_conjunct(&c, &bindings, &segs),
            ConjunctSite::Source(1)
        );
        let c = where_of("SELECT * FROM t WHERE a.x = b.z");
        assert_eq!(
            classify_conjunct(&c, &bindings, &segs),
            ConjunctSite::Residual
        );
        let c = where_of("SELECT * FROM t WHERE 1 = 2");
        assert_eq!(
            classify_conjunct(&c, &bindings, &segs),
            ConjunctSite::Source(0)
        );
        let c = where_of("SELECT * FROM t WHERE missing = 1");
        assert_eq!(
            classify_conjunct(&c, &bindings, &segs),
            ConjunctSite::Residual
        );
    }

    #[test]
    fn probe_selection_prefers_equality() {
        let t = test_table(true);
        let bindings: Vec<ColBinding> = t
            .schema
            .columns()
            .iter()
            .map(|c| ColBinding::new(Some("g"), &c.name))
            .collect();
        let cs = split_conjuncts(&where_of(
            "SELECT * FROM g WHERE len > 5 AND len = 42 AND GID LIKE 'JW%'",
        ));
        match choose_probe(&t, &bindings, &cs) {
            Probe::Index { column, lo, hi } => {
                assert_eq!(column, 1);
                assert_eq!(lo, Bound::Included(Value::Int(42)));
                assert_eq!(hi, Bound::Included(Value::Int(42)));
            }
            other => panic!("expected equality probe, got {other:?}"),
        }
        // no index on score → full scan
        let cs = split_conjuncts(&where_of("SELECT * FROM g WHERE score = 1.0"));
        assert!(matches!(choose_probe(&t, &bindings, &cs), Probe::FullScan));
        // reversed sides and ranges
        let cs = split_conjuncts(&where_of("SELECT * FROM g WHERE 10 >= len"));
        assert!(matches!(
            choose_probe(&t, &bindings, &cs),
            Probe::Index {
                column: 1,
                lo: Bound::Unbounded,
                hi: Bound::Included(Value::Int(10))
            }
        ));
        // NULL comparison → provably empty
        let cs = split_conjuncts(&where_of("SELECT * FROM g WHERE len = NULL"));
        assert!(matches!(choose_probe(&t, &bindings, &cs), Probe::Empty));
        // non-comparison operators never constrain (and never trip the
        // NULL shortcut: `len OR NULL` can still be true)
        let cs = split_conjuncts(&where_of("SELECT * FROM g WHERE len OR NULL"));
        assert!(matches!(choose_probe(&t, &bindings, &cs), Probe::FullScan));
        let cs = split_conjuncts(&where_of("SELECT * FROM g WHERE len + NULL"));
        assert!(matches!(choose_probe(&t, &bindings, &cs), Probe::FullScan));
        // type-incompatible constant → no index
        let cs = split_conjuncts(&where_of("SELECT * FROM g WHERE len = 'JW'"));
        assert!(matches!(choose_probe(&t, &bindings, &cs), Probe::FullScan));
    }

    #[test]
    fn contains_seq_routes_to_seq_index() {
        let mut t = test_table(true);
        t.create_seq_index("gid_seq", "GID", crate::ast::SeqIndexKind::Sbc)
            .unwrap();
        let bindings: Vec<ColBinding> = t
            .schema
            .columns()
            .iter()
            .map(|c| ColBinding::new(Some("g"), &c.name))
            .collect();
        let cs = split_conjuncts(&where_of("SELECT * FROM g WHERE GID CONTAINS SEQ 'JW00'"));
        match choose_probe(&t, &bindings, &cs) {
            Probe::SeqIndex { column, pattern } => {
                assert_eq!(column, 0);
                assert_eq!(pattern, "JW00");
            }
            other => panic!("expected seq probe, got {other:?}"),
        }
        // a unique-key equality probe is expected to yield fewer rows
        // than the assumed substring match fraction, so it wins
        let cs = split_conjuncts(&where_of(
            "SELECT * FROM g WHERE GID CONTAINS SEQ 'JW00' AND len = 42",
        ));
        assert!(matches!(
            choose_probe(&t, &bindings, &cs),
            Probe::Index { column: 1, .. }
        ));
        // NOT CONTAINS SEQ cannot use the candidate set (complement)
        let cs = split_conjuncts(&where_of(
            "SELECT * FROM g WHERE GID NOT CONTAINS SEQ 'JW00'",
        ));
        assert!(matches!(choose_probe(&t, &bindings, &cs), Probe::FullScan));
        // probe results match a naive scan
        let naive = test_table(false);
        for sql in [
            "SELECT * FROM g WHERE GID CONTAINS SEQ '004'",
            "SELECT * FROM g WHERE GID CONTAINS SEQ 'JW' AND len < 3",
            "SELECT * FROM g WHERE GID CONTAINS SEQ 'absent'",
        ] {
            let pred = where_of(sql);
            let a = filter_rows(&t, "G", Some(&pred)).unwrap();
            let b = filter_rows(&naive, "G", Some(&pred)).unwrap();
            assert_eq!(a, b, "{sql}");
        }
    }

    #[test]
    fn filter_rows_matches_full_scan() {
        let indexed = test_table(true);
        let naive = test_table(false);
        for sql in [
            "SELECT * FROM g WHERE len = 42",
            "SELECT * FROM g WHERE len > 90 AND G.GID LIKE 'JW%'",
            "SELECT * FROM g WHERE len >= 95 OR len < 2",
            "SELECT * FROM g WHERE len * 2 = 10",
            "SELECT * FROM g WHERE score > 40.0",
        ] {
            let pred = where_of(sql);
            let a = filter_rows(&indexed, "G", Some(&pred)).unwrap();
            let b = filter_rows(&naive, "G", Some(&pred)).unwrap();
            assert_eq!(a, b, "{sql}");
        }
        assert_eq!(filter_rows(&indexed, "G", None).unwrap().len(), 100);
    }
}
