//! A small XML subset parser for annotation bodies.
//!
//! §3.2 of the paper: *"we plan to support XML-formatted annotations [...]
//! users can (semi-)structure their annotations and make use of XML
//! querying capabilities over the annotations."*  §4 adds that provenance
//! records *"can follow a predefined XML schema that needs to be stored
//! and enforced by the database system."*
//!
//! A-SQL annotation conditions only need tag trees and path lookup, so the
//! supported subset is: nested elements, text content, and entity escapes
//! (`&lt; &gt; &amp; &quot; &apos;`).  Attributes, comments, and
//! processing instructions are intentionally out of scope.

use bdbms_common::{BdbmsError, Result};

/// One parsed XML element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlNode {
    /// Tag name.
    pub tag: String,
    /// Concatenated direct text content (trimmed).
    pub text: String,
    /// Child elements in document order.
    pub children: Vec<XmlNode>,
}

impl XmlNode {
    /// Parse a document with a single root element.
    pub fn parse(input: &str) -> Result<XmlNode> {
        let mut p = Parser {
            s: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let node = p.parse_element()?;
        p.skip_ws();
        if p.pos != p.s.len() {
            return Err(BdbmsError::syntax(format!(
                "trailing content after root element at byte {}",
                p.pos
            )));
        }
        Ok(node)
    }

    /// Wrap plain text in an `<Annotation>` root if it isn't XML already —
    /// the paper's commands always show annotation bodies inside
    /// `<Annotation>` tags, but free-text comments are common too.
    pub fn parse_or_wrap(input: &str) -> XmlNode {
        match Self::parse(input) {
            Ok(n) => n,
            Err(_) => XmlNode {
                tag: "Annotation".to_string(),
                text: input.trim().to_string(),
                children: Vec::new(),
            },
        }
    }

    /// Look up the first node at `path`, e.g. `/Annotation/source`.
    /// The leading component must match the root tag.
    pub fn path(&self, path: &str) -> Option<&XmlNode> {
        let mut parts = path.trim_matches('/').split('/');
        let root = parts.next()?;
        if !self.tag.eq_ignore_ascii_case(root) {
            return None;
        }
        let mut cur = self;
        for part in parts {
            cur = cur
                .children
                .iter()
                .find(|c| c.tag.eq_ignore_ascii_case(part))?;
        }
        Some(cur)
    }

    /// The text at `path`, if the node exists.
    pub fn path_text(&self, path: &str) -> Option<&str> {
        self.path(path).map(|n| n.text.as_str())
    }

    /// All text in the subtree (depth-first), space-joined — used by the
    /// `CONTAINS` annotation predicate.
    pub fn full_text(&self) -> String {
        let mut out = String::new();
        fn walk(n: &XmlNode, out: &mut String) {
            if !n.text.is_empty() {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(&n.text);
            }
            for c in &n.children {
                walk(c, out);
            }
        }
        walk(self, &mut out);
        out
    }

    /// Serialize back to XML text.
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        out.push('<');
        out.push_str(&self.tag);
        out.push('>');
        out.push_str(&escape(&self.text));
        for c in &self.children {
            c.write(out);
        }
        out.push_str("</");
        out.push_str(&self.tag);
        out.push('>');
    }

    /// Build a leaf element.
    pub fn leaf(tag: &str, text: &str) -> XmlNode {
        XmlNode {
            tag: tag.to_string(),
            text: text.to_string(),
            children: Vec::new(),
        }
    }

    /// Build an element with children.
    pub fn elem(tag: &str, children: Vec<XmlNode>) -> XmlNode {
        XmlNode {
            tag: tag.to_string(),
            text: String::new(),
            children,
        }
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

struct Parser<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.s.len() && self.s[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.s.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(BdbmsError::syntax(format!(
                "expected `{}` at byte {} of annotation XML",
                b as char, self.pos
            )))
        }
    }

    fn parse_name(&mut self) -> Result<String> {
        let start = self.pos;
        while self.pos < self.s.len()
            && (self.s[self.pos].is_ascii_alphanumeric()
                || self.s[self.pos] == b'_'
                || self.s[self.pos] == b'-')
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(BdbmsError::syntax(format!(
                "expected tag name at byte {}",
                self.pos
            )));
        }
        Ok(String::from_utf8_lossy(&self.s[start..self.pos]).into_owned())
    }

    fn parse_element(&mut self) -> Result<XmlNode> {
        self.expect(b'<')?;
        let tag = self.parse_name()?;
        self.skip_ws();
        // self-closing form
        if self.s.get(self.pos) == Some(&b'/') {
            self.pos += 1;
            self.expect(b'>')?;
            return Ok(XmlNode {
                tag,
                text: String::new(),
                children: Vec::new(),
            });
        }
        self.expect(b'>')?;
        let mut text = String::new();
        let mut children = Vec::new();
        loop {
            // text run until next '<'
            let start = self.pos;
            while self.pos < self.s.len() && self.s[self.pos] != b'<' {
                self.pos += 1;
            }
            if self.pos > start {
                text.push_str(&unescape(&String::from_utf8_lossy(
                    &self.s[start..self.pos],
                )));
            }
            if self.pos >= self.s.len() {
                return Err(BdbmsError::syntax(format!("unclosed <{tag}>")));
            }
            if self.s.get(self.pos + 1) == Some(&b'/') {
                // closing tag
                self.pos += 2;
                let close = self.parse_name()?;
                self.skip_ws();
                self.expect(b'>')?;
                if !close.eq_ignore_ascii_case(&tag) {
                    return Err(BdbmsError::syntax(format!(
                        "mismatched </{close}> for <{tag}>"
                    )));
                }
                return Ok(XmlNode {
                    tag,
                    text: text.trim().to_string(),
                    children,
                });
            }
            children.push(self.parse_element()?);
        }
    }
}

fn unescape(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_annotation() {
        let n = XmlNode::parse("<Annotation>obtained from GenoBase</Annotation>").unwrap();
        assert_eq!(n.tag, "Annotation");
        assert_eq!(n.text, "obtained from GenoBase");
        assert!(n.children.is_empty());
    }

    #[test]
    fn parses_structured_provenance() {
        let xml = "<Annotation><source>RegulonDB</source><operation>copy</operation>\
                   <time>42</time></Annotation>";
        let n = XmlNode::parse(xml).unwrap();
        assert_eq!(n.children.len(), 3);
        assert_eq!(n.path_text("/Annotation/source"), Some("RegulonDB"));
        assert_eq!(n.path_text("/Annotation/operation"), Some("copy"));
        assert_eq!(n.path_text("/Annotation/missing"), None);
        assert_eq!(n.path_text("/Wrong/source"), None);
    }

    #[test]
    fn nested_paths() {
        let xml = "<a><b><c>deep</c></b></a>";
        let n = XmlNode::parse(xml).unwrap();
        assert_eq!(n.path_text("/a/b/c"), Some("deep"));
        assert_eq!(n.path("/a/b").unwrap().children.len(), 1);
    }

    #[test]
    fn self_closing_and_whitespace() {
        let n = XmlNode::parse("  <a> hi <b/> there </a> ").unwrap();
        assert_eq!(n.tag, "a");
        assert_eq!(n.children.len(), 1);
        assert_eq!(n.children[0].tag, "b");
        assert!(n.text.contains("hi"));
    }

    #[test]
    fn escapes_roundtrip() {
        let n = XmlNode::parse("<a>1 &lt; 2 &amp;&amp; 3 &gt; 2</a>").unwrap();
        assert_eq!(n.text, "1 < 2 && 3 > 2");
        let back = XmlNode::parse(&n.to_xml()).unwrap();
        assert_eq!(back, n);
    }

    #[test]
    fn errors() {
        assert!(XmlNode::parse("<a>").is_err());
        assert!(XmlNode::parse("<a></b>").is_err());
        assert!(XmlNode::parse("<a></a><b></b>").is_err());
        assert!(XmlNode::parse("no tags").is_err());
        assert!(XmlNode::parse("<>x</>").is_err());
    }

    #[test]
    fn parse_or_wrap_falls_back() {
        let n = XmlNode::parse_or_wrap("These genes are published in Nature");
        assert_eq!(n.tag, "Annotation");
        assert_eq!(n.text, "These genes are published in Nature");
        let x = XmlNode::parse_or_wrap("<Annotation><source>S1</source></Annotation>");
        assert_eq!(x.path_text("/Annotation/source"), Some("S1"));
    }

    #[test]
    fn full_text_gathers_subtree() {
        let n = XmlNode::parse("<a>top<b>left</b><c><d>deep</d></c></a>").unwrap();
        assert_eq!(n.full_text(), "top left deep");
    }

    #[test]
    fn builders() {
        let n = XmlNode::elem(
            "Annotation",
            vec![
                XmlNode::leaf("source", "GenoBase"),
                XmlNode::leaf("kind", "lineage"),
            ],
        );
        assert_eq!(n.path_text("/Annotation/source"), Some("GenoBase"));
        let parsed = XmlNode::parse(&n.to_xml()).unwrap();
        assert_eq!(parsed, n);
    }
}
