//! The annotation-aware query executor (§3.4).
//!
//! Every operator follows the paper's extended semantics:
//!
//! * **scan** attaches each cell's (non-archived) annotations from the
//!   annotation tables named in `ANNOTATION(…)`, plus a synthetic
//!   `outdated` annotation for cells marked in the Figure 10 bitmap
//!   (§5: *"the database should propagate with those items an annotation
//!   specifying that the query answer may not be correct"*);
//! * **selection** (WHERE/HAVING) passes tuples *with all their
//!   annotations*;
//! * **projection** passes only the annotations of the projected columns;
//!   `PROMOTE` copies annotations from non-projected columns onto a
//!   projected one;
//! * **AWHERE / AHAVING** filter tuples by a predicate over their
//!   annotations (a tuple passes when *some* annotation satisfies it);
//! * **FILTER** keeps every tuple but drops non-matching annotations;
//! * **duplicate elimination, GROUP BY, UNION, INTERSECT, EXCEPT** union
//!   the annotations of the tuples they merge (the paper's `+` operator).

use std::collections::HashMap;
use std::rc::Rc;

use bdbms_common::{BdbmsError, Result, Value};

use crate::ast::{AnnExpr, Expr, Projection, Select, SelectItem, SetOp, TableRef};
use crate::catalog::{Catalog, Table};
use crate::expr::{eval, referenced_columns, resolve_column, ColBinding};
use crate::result::{AnnOut, AnnRef, AnnRow, QueryResult};
use crate::xml::XmlNode;

/// Category name of the synthetic annotations that flag outdated cells.
pub const OUTDATED_ANN_TABLE: &str = "outdated";

/// Evaluate an annotation predicate against one annotation.
pub fn eval_ann(cond: &AnnExpr, ann: &AnnOut) -> bool {
    match cond {
        AnnExpr::Contains(s) => ann.text().contains(s) || ann.raw.contains(s),
        AnnExpr::FromTable(t) => ann.ann_table.eq_ignore_ascii_case(t),
        AnnExpr::PathEq(path, value) => ann.body.path_text(path) == Some(value.as_str()),
        AnnExpr::Before(t) => ann.created < *t,
        AnnExpr::After(t) => ann.created >= *t,
        AnnExpr::And(a, b) => eval_ann(a, ann) && eval_ann(b, ann),
        AnnExpr::Or(a, b) => eval_ann(a, ann) || eval_ann(b, ann),
        AnnExpr::Not(a) => !eval_ann(a, ann),
    }
}

/// Scan one FROM entry, attaching annotations per the paper's semantics.
fn scan_source(
    catalog: &Catalog,
    tref: &TableRef,
) -> Result<(Vec<ColBinding>, Vec<AnnRow>)> {
    let table = catalog.table(&tref.table)?;
    // validate requested annotation tables up front
    for ann in &tref.annotations {
        if table.ann_set(ann).is_none() {
            return Err(BdbmsError::NotFound(format!(
                "annotation table `{}` on `{}`",
                ann, table.name
            )));
        }
    }
    let qualifier = tref.alias.as_deref().unwrap_or(&tref.table);
    let bindings: Vec<ColBinding> = table
        .schema
        .columns()
        .iter()
        .map(|c| ColBinding::new(Some(qualifier), &c.name))
        .collect();
    let arity = table.schema.arity();
    // snapshot cache so one annotation becomes one Rc shared by all cells
    let mut cache: HashMap<(String, u64), AnnRef> = HashMap::new();
    let mut rows = Vec::with_capacity(table.len());
    for (row_no, values) in table.scan()? {
        let mut anns: Vec<Vec<AnnRef>> = vec![Vec::new(); arity];
        for set_name in &tref.annotations {
            let set = table.ann_set(set_name).expect("validated above");
            for (col, slot) in anns.iter_mut().enumerate() {
                for a in set.for_cell(row_no, col) {
                    let key = (set.name.clone(), a.id.raw());
                    let snap = cache
                        .entry(key)
                        .or_insert_with(|| {
                            Rc::new(AnnOut {
                                source_table: table.name.clone(),
                                ann_table: set.name.clone(),
                                id: a.id.raw(),
                                raw: a.raw.clone(),
                                body: a.body.clone(),
                                created: a.created,
                            })
                        })
                        .clone();
                    slot.push(snap);
                }
            }
        }
        // outdated flags propagate as annotations (§5)
        for (col, slot) in anns.iter_mut().enumerate() {
            if table.is_outdated(row_no, col) {
                slot.push(Rc::new(AnnOut {
                    source_table: table.name.clone(),
                    ann_table: OUTDATED_ANN_TABLE.to_string(),
                    id: (row_no << 16) | col as u64,
                    raw: "outdated: value pending re-verification".to_string(),
                    body: XmlNode::leaf(
                        "Annotation",
                        "outdated: value pending re-verification",
                    ),
                    created: 0,
                }));
            }
        }
        rows.push(AnnRow { values, anns });
    }
    Ok((bindings, rows))
}

fn concat_rows(left: &AnnRow, right: &AnnRow) -> AnnRow {
    let mut values = left.values.clone();
    values.extend(right.values.iter().cloned());
    let mut anns = left.anns.clone();
    anns.extend(right.anns.iter().cloned());
    AnnRow { values, anns }
}

/// Split a predicate into its top-level conjuncts.
fn conjuncts(e: &Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::Binary(a, crate::ast::BinaryOp::And, b) => {
            conjuncts(a, out);
            conjuncts(b, out);
        }
        other => out.push(other.clone()),
    }
}

/// Join `acc` with `next`.  If a WHERE conjunct is an equi-join between a
/// column of `acc` and a column of `next`, use a hash join (cross products
/// over gene tables are quadratic); otherwise fall back to the cross
/// product.  The full WHERE predicate is re-applied afterwards, so using a
/// conjunct here is purely a speedup.
fn join_sources(
    mut acc: (Vec<ColBinding>, Vec<AnnRow>),
    next: (Vec<ColBinding>, Vec<AnnRow>),
    where_clause: Option<&Expr>,
) -> (Vec<ColBinding>, Vec<AnnRow>) {
    let (nb, nrows) = next;
    // look for a `left_col = right_col` conjunct; each side must resolve
    // on exactly one input to be a usable join key
    let mut key: Option<(usize, usize)> = None;
    if let Some(pred) = where_clause {
        let mut cs = Vec::new();
        conjuncts(pred, &mut cs);
        'outer: for c in cs {
            if let Expr::Binary(a, crate::ast::BinaryOp::Eq, b) = &c {
                if let (Expr::Column(qa, ca), Expr::Column(qb, cb)) = (&**a, &**b) {
                    for ((q1, c1), (q2, c2)) in [((qa, ca), (qb, cb)), ((qb, cb), (qa, ca))]
                    {
                        let l = resolve_column(&acc.0, q1.as_deref(), c1);
                        let r = resolve_column(&nb, q2.as_deref(), c2);
                        let l_unambiguous = resolve_column(&nb, q1.as_deref(), c1).is_err();
                        let r_unambiguous =
                            resolve_column(&acc.0, q2.as_deref(), c2).is_err();
                        if let (Ok(l), Ok(r)) = (l, r) {
                            if l_unambiguous && r_unambiguous {
                                key = Some((l, r));
                                break 'outer;
                            }
                        }
                    }
                }
            }
        }
    }
    let mut out = Vec::new();
    match key {
        Some((lcol, rcol)) => {
            // hash join (NULL keys never match, per SQL)
            let mut table: HashMap<&Value, Vec<usize>> = HashMap::new();
            for (i, r) in nrows.iter().enumerate() {
                if !r.values[rcol].is_null() {
                    table.entry(&r.values[rcol]).or_default().push(i);
                }
            }
            for left in &acc.1 {
                if left.values[lcol].is_null() {
                    continue;
                }
                if let Some(matches) = table.get(&left.values[lcol]) {
                    for &i in matches {
                        out.push(concat_rows(left, &nrows[i]));
                    }
                }
            }
        }
        None => {
            out.reserve(acc.1.len() * nrows.len().max(1));
            for left in &acc.1 {
                for right in &nrows {
                    out.push(concat_rows(left, right));
                }
            }
        }
    }
    acc.0.extend(nb);
    acc.1 = out;
    acc
}

/// Does the expression tree contain an aggregate?
fn has_aggregate(e: &Expr) -> bool {
    match e {
        Expr::Aggregate(..) => true,
        Expr::Literal(_) | Expr::Column(..) => false,
        Expr::Unary(_, a) | Expr::IsNull(a, _) | Expr::Like(a, _, _) => has_aggregate(a),
        Expr::Binary(a, _, b) => has_aggregate(a) || has_aggregate(b),
        Expr::InList(a, items, _) => {
            has_aggregate(a) || items.iter().any(has_aggregate)
        }
        Expr::Call(_, args) => args.iter().any(has_aggregate),
    }
}

/// Evaluate an expression over a *group* of rows: aggregates reduce the
/// group, everything else is evaluated on the group's first row (group-by
/// keys are constant within a group).  Empty groups (global aggregates
/// over empty input) see a row of NULLs.
fn eval_group(e: &Expr, bindings: &[ColBinding], group: &[AnnRow]) -> Result<Value> {
    let nulls: Vec<Value>;
    let first: &[Value] = match group.first() {
        Some(r) => &r.values,
        None => {
            nulls = vec![Value::Null; bindings.len()];
            &nulls
        }
    };
    match e {
        Expr::Aggregate(f, arg) => {
            use crate::ast::AggFunc::*;
            let mut vals: Vec<Value> = Vec::with_capacity(group.len());
            for row in group {
                match arg {
                    None => vals.push(Value::Int(1)),
                    Some(a) => {
                        let v = eval(a, bindings, &row.values)?;
                        if !v.is_null() {
                            vals.push(v);
                        }
                    }
                }
            }
            Ok(match f {
                Count => Value::Int(vals.len() as i64),
                Sum | Avg => {
                    if vals.is_empty() {
                        Value::Null
                    } else {
                        let all_int = vals.iter().all(|v| matches!(v, Value::Int(_)));
                        let total: f64 = vals.iter().filter_map(|v| v.as_float()).sum();
                        match f {
                            Sum if all_int => Value::Int(total as i64),
                            Sum => Value::Float(total),
                            _ => Value::Float(total / vals.len() as f64),
                        }
                    }
                }
                Min => vals.into_iter().min().unwrap_or(Value::Null),
                Max => vals.into_iter().max().unwrap_or(Value::Null),
            })
        }
        Expr::Binary(a, op, b) => {
            // rebuild with pre-evaluated aggregate subtrees
            let ea = Expr::Literal(eval_group(a, bindings, group)?);
            let eb = Expr::Literal(eval_group(b, bindings, group)?);
            eval(&Expr::Binary(Box::new(ea), *op, Box::new(eb)), bindings, first)
        }
        Expr::Unary(op, a) => {
            let ea = Expr::Literal(eval_group(a, bindings, group)?);
            eval(&Expr::Unary(*op, Box::new(ea)), bindings, first)
        }
        other => eval(other, bindings, first),
    }
}

/// Expand a projection into concrete items.
fn expand_projection(
    projection: &Projection,
    bindings: &[ColBinding],
) -> Result<Vec<SelectItem>> {
    match projection {
        Projection::Items(items) => Ok(items.clone()),
        Projection::Star(alias) => {
            let items: Vec<SelectItem> = bindings
                .iter()
                .filter(|b| match alias {
                    None => true,
                    Some(a) => b.qualifier.as_deref()
                        == Some(a.to_ascii_lowercase().as_str()),
                })
                .map(|b| SelectItem {
                    expr: Expr::Column(b.qualifier.clone(), b.name.clone()),
                    alias: None,
                    promote: Vec::new(),
                })
                .collect();
            if items.is_empty() {
                return Err(BdbmsError::Invalid(
                    "`*` matched no columns (bad alias?)".into(),
                ));
            }
            Ok(items)
        }
    }
}

fn item_name(item: &SelectItem) -> String {
    if let Some(a) = &item.alias {
        return a.clone();
    }
    match &item.expr {
        Expr::Column(_, n) => n.clone(),
        Expr::Aggregate(f, _) => format!("{f:?}").to_lowercase(),
        _ => "expr".to_string(),
    }
}

/// Annotations that flow into one projected item: the referenced columns'
/// annotations plus any PROMOTE sources (§3.4).
fn item_ann_columns(
    item: &SelectItem,
    bindings: &[ColBinding],
) -> Result<Vec<usize>> {
    let mut cols = Vec::new();
    referenced_columns(&item.expr, bindings, &mut cols)?;
    for (q, n) in &item.promote {
        cols.push(resolve_column(bindings, q.as_deref(), n)?);
    }
    cols.sort_unstable();
    cols.dedup();
    Ok(cols)
}

/// Merge rows with identical values, unioning annotations (the paper's
/// duplicate-elimination semantics).
fn dedup_union(rows: Vec<AnnRow>) -> Vec<AnnRow> {
    let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut out: Vec<AnnRow> = Vec::new();
    for row in rows {
        match index.get(&row.values) {
            Some(&i) => out[i].union_anns_from(&row),
            None => {
                index.insert(row.values.clone(), out.len());
                out.push(row);
            }
        }
    }
    out
}

/// Execute a (possibly compound) SELECT.
pub fn run_select(catalog: &Catalog, sel: &Select) -> Result<QueryResult> {
    let mut result = run_simple_select(catalog, sel)?;
    if let Some((op, right)) = &sel.set_op {
        let right_res = run_select(catalog, right)?;
        if right_res.columns.len() != result.columns.len() {
            return Err(BdbmsError::Invalid(format!(
                "set operation arity mismatch: {} vs {}",
                result.columns.len(),
                right_res.columns.len()
            )));
        }
        let left_rows = dedup_union(result.rows);
        let right_rows = dedup_union(right_res.rows);
        let right_index: HashMap<Vec<Value>, usize> = right_rows
            .iter()
            .enumerate()
            .map(|(i, r)| (r.values.clone(), i))
            .collect();
        let rows = match op {
            SetOp::Intersect => {
                // tuples in both; annotations unioned from both sides —
                // exactly the paper's DB1_Gene ∩ DB2_Gene example
                let mut out = Vec::new();
                for mut l in left_rows {
                    if let Some(&ri) = right_index.get(&l.values) {
                        l.union_anns_from(&right_rows[ri]);
                        out.push(l);
                    }
                }
                out
            }
            SetOp::Union => {
                let mut all = left_rows;
                all.extend(right_rows);
                dedup_union(all)
            }
            SetOp::Except => left_rows
                .into_iter()
                .filter(|l| !right_index.contains_key(&l.values))
                .collect(),
        };
        result.rows = rows;
    }
    // ORDER BY applies to the final output
    if !sel.order_by.is_empty() {
        let mut keys = Vec::new();
        for ((_, name), desc) in &sel.order_by {
            let idx = result
                .columns
                .iter()
                .position(|c| c.eq_ignore_ascii_case(name))
                .ok_or_else(|| {
                    BdbmsError::NotFound(format!("ORDER BY column `{name}`"))
                })?;
            keys.push((idx, *desc));
        }
        result.rows.sort_by(|a, b| {
            for (idx, desc) in &keys {
                let ord = a.values[*idx].cmp(&b.values[*idx]);
                let ord = if *desc { ord.reverse() } else { ord };
                if !ord.is_eq() {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    Ok(result)
}

fn run_simple_select(catalog: &Catalog, sel: &Select) -> Result<QueryResult> {
    if sel.from.is_empty() {
        return Err(BdbmsError::Invalid("SELECT requires FROM".into()));
    }
    // FROM: scan + join (hash join on equi-join conjuncts, else cross)
    let mut source = scan_source(catalog, &sel.from[0])?;
    for tref in &sel.from[1..] {
        source = join_sources(
            source,
            scan_source(catalog, tref)?,
            sel.where_clause.as_ref(),
        );
    }
    let (bindings, mut rows) = source;

    // WHERE: selection passes tuples with all their annotations
    if let Some(pred) = &sel.where_clause {
        let mut kept = Vec::with_capacity(rows.len());
        for row in rows {
            if eval(pred, &bindings, &row.values)?.is_true() {
                kept.push(row);
            }
        }
        rows = kept;
    }

    // AWHERE: annotation-based selection (some annotation satisfies)
    if let Some(cond) = &sel.awhere {
        rows.retain(|row| row.all_anns().iter().any(|a| eval_ann(cond, a)));
    }

    let items = expand_projection(&sel.projection, &bindings)?;
    let aggregated = !sel.group_by.is_empty()
        || items.iter().any(|i| has_aggregate(&i.expr))
        || sel.having.as_ref().is_some_and(has_aggregate);

    let mut out_rows: Vec<AnnRow>;
    let out_columns: Vec<String> = items.iter().map(item_name).collect();

    if aggregated {
        // group rows by the GROUP BY key
        let key_idxs: Vec<usize> = sel
            .group_by
            .iter()
            .map(|(q, n)| resolve_column(&bindings, q.as_deref(), n))
            .collect::<Result<_>>()?;
        let mut groups: Vec<(Vec<Value>, Vec<AnnRow>)> = Vec::new();
        let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
        for row in rows {
            let key: Vec<Value> = key_idxs.iter().map(|&i| row.values[i].clone()).collect();
            match index.get(&key) {
                Some(&g) => groups[g].1.push(row),
                None => {
                    index.insert(key.clone(), groups.len());
                    groups.push((key, vec![row]));
                }
            }
        }
        // empty input with no GROUP BY still yields one (empty) group for
        // global aggregates like COUNT(*)
        if groups.is_empty() && sel.group_by.is_empty() {
            groups.push((Vec::new(), Vec::new()));
        }
        out_rows = Vec::with_capacity(groups.len());
        for (_, group) in groups {
            // HAVING (data predicate over the group)
            if let Some(h) = &sel.having {
                if !eval_group(h, &bindings, &group)?.is_true() {
                    continue;
                }
            }
            // AHAVING: some annotation within the group satisfies
            if let Some(cond) = &sel.ahaving {
                let any = group
                    .iter()
                    .flat_map(|r| r.all_anns())
                    .any(|a| eval_ann(cond, &a));
                if !any {
                    continue;
                }
            }
            let mut values = Vec::with_capacity(items.len());
            let mut anns = Vec::with_capacity(items.len());
            for item in &items {
                values.push(eval_group(&item.expr, &bindings, &group)?);
                // annotations: union across the group of referenced cols
                let cols = item_ann_columns(item, &bindings)?;
                let mut merged: Vec<AnnRef> = Vec::new();
                for row in &group {
                    for &c in &cols {
                        for a in &row.anns[c] {
                            if !merged.iter().any(|x| x.identity() == a.identity()) {
                                merged.push(a.clone());
                            }
                        }
                    }
                }
                anns.push(merged);
            }
            out_rows.push(AnnRow { values, anns });
        }
    } else {
        if sel.having.is_some() || sel.ahaving.is_some() {
            return Err(BdbmsError::Invalid(
                "HAVING/AHAVING require GROUP BY or aggregates".into(),
            ));
        }
        // plain projection: pass only the projected columns' annotations
        let item_cols: Vec<Vec<usize>> = items
            .iter()
            .map(|i| item_ann_columns(i, &bindings))
            .collect::<Result<_>>()?;
        out_rows = Vec::with_capacity(rows.len());
        for row in rows {
            let mut values = Vec::with_capacity(items.len());
            let mut anns = Vec::with_capacity(items.len());
            for (item, cols) in items.iter().zip(&item_cols) {
                values.push(eval(&item.expr, &bindings, &row.values)?);
                let mut merged: Vec<AnnRef> = Vec::new();
                for &c in cols {
                    for a in &row.anns[c] {
                        if !merged.iter().any(|x| x.identity() == a.identity()) {
                            merged.push(a.clone());
                        }
                    }
                }
                anns.push(merged);
            }
            out_rows.push(AnnRow { values, anns });
        }
    }

    // DISTINCT: merge duplicates, unioning annotations (§3.4)
    if sel.distinct {
        out_rows = dedup_union(out_rows);
    }

    // FILTER: keep tuples, drop non-matching annotations (§3.4)
    if let Some(cond) = &sel.filter {
        for row in &mut out_rows {
            for col in &mut row.anns {
                col.retain(|a| eval_ann(cond, a));
            }
        }
    }

    Ok(QueryResult {
        columns: out_columns,
        rows: out_rows,
        affected: 0,
        message: None,
    })
}

/// Resolve an annotation-command target (`ADD/ARCHIVE/RESTORE … ON
/// (SELECT …)`) to concrete cells of one table.
///
/// The paper's granularity-selection queries are simple single-table
/// SELECTs (its §3.2 examples), and that is what bdbms supports here:
/// one table, plain column projection (or `*`), optional WHERE.
pub fn select_cells(
    catalog: &Catalog,
    sel: &Select,
) -> Result<(String, Vec<u64>, Vec<usize>)> {
    if sel.from.len() != 1
        || sel.set_op.is_some()
        || !sel.group_by.is_empty()
        || sel.having.is_some()
        || sel.distinct
        || sel.awhere.is_some()
        || sel.ahaving.is_some()
        || sel.filter.is_some()
    {
        return Err(BdbmsError::Invalid(
            "annotation target must be a simple single-table SELECT \
             (no set ops, grouping, DISTINCT, or annotation clauses)"
                .into(),
        ));
    }
    let tref = &sel.from[0];
    let table: &Table = catalog.table(&tref.table)?;
    let qualifier = tref.alias.as_deref().unwrap_or(&tref.table);
    let bindings: Vec<ColBinding> = table
        .schema
        .columns()
        .iter()
        .map(|c| ColBinding::new(Some(qualifier), &c.name))
        .collect();
    // target columns
    let items = expand_projection(&sel.projection, &bindings)?;
    let mut cols = Vec::with_capacity(items.len());
    for item in &items {
        match &item.expr {
            Expr::Column(q, n) => cols.push(resolve_column(&bindings, q.as_deref(), n)?),
            _ => {
                return Err(BdbmsError::Invalid(
                    "annotation target must project plain columns".into(),
                ))
            }
        }
    }
    cols.sort_unstable();
    cols.dedup();
    // target rows
    let mut row_nos = Vec::new();
    for (row_no, values) in table.scan()? {
        let keep = match &sel.where_clause {
            None => true,
            Some(pred) => eval(pred, &bindings, &values)?.is_true(),
        };
        if keep {
            row_nos.push(row_no);
        }
    }
    Ok((table.name.clone(), row_nos, cols))
}
