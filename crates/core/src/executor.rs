//! The annotation-aware query executor (§3.4), built as a **streaming
//! (Volcano-style) pipeline**.
//!
//! ## Operator semantics (the paper's §3.4, all preserved)
//!
//! * **scan** attaches each cell's (non-archived) annotations from the
//!   annotation tables named in `ANNOTATION(…)`, plus a synthetic
//!   `outdated` annotation for cells marked in the Figure 10 bitmap
//!   (§5: *"the database should propagate with those items an annotation
//!   specifying that the query answer may not be correct"*);
//! * **selection** (WHERE/HAVING) passes tuples *with all their
//!   annotations*;
//! * **projection** passes only the annotations of the projected columns;
//!   `PROMOTE` copies annotations from non-projected columns onto a
//!   projected one;
//! * **AWHERE / AHAVING** filter tuples by a predicate over their
//!   annotations (a tuple passes when *some* annotation satisfies it);
//! * **FILTER** keeps every tuple but drops non-matching annotations;
//! * **duplicate elimination, GROUP BY, UNION, INTERSECT, EXCEPT** union
//!   the annotations of the tuples they merge (the paper's `+` operator).
//!
//! ## The pipeline
//!
//! A simple SELECT runs as a chain of lazy iterators:
//!
//! ```text
//! scan(source 0) ──┐
//! scan(source 1) ──┤ hash/cross join ── residual WHERE ── annotation
//!      …           │  (build side         (cross-source     attach ──
//! scan(source n) ──┘   materialized)       conjuncts)      AWHERE ──
//!                                              ── project / aggregate
//! ```
//!
//! Three coordinated optimizations (each independently togglable through
//! [`ExecOptions`], so the naive path stays available as a baseline):
//!
//! * **Predicate pushdown** — the WHERE clause is split into conjuncts
//!   and every conjunct whose columns live in one FROM source is
//!   evaluated *at that source's scan*, before joins and before any
//!   annotation work.  Cross-source conjuncts run after the joins.
//! * **Index-backed scans** — when a pushed conjunct has the shape
//!   `column ⟨=,<,<=,>,>=⟩ constant` and the column carries a secondary
//!   index (`CREATE INDEX … ON t (col)`), the scan probes the B+-tree
//!   for candidate rows instead of walking the heap.  Bounds are widened
//!   to inclusive and the conjunct is re-checked on each candidate (see
//!   [`crate::plan`] for why), so the index can only prune, never lie.
//!   Equality probes are preferred over range probes.
//! * **Lazy annotation attachment** — `AnnOut` snapshots are built only
//!   for tuples that survive all filtering, and only for the columns the
//!   query can propagate annotations from (projected columns plus
//!   `PROMOTE` sources; every column when AWHERE/AHAVING needs the whole
//!   tuple's annotations).  The paper's "selection passes tuples with
//!   all their annotations" semantics is unaffected: selection predicates
//!   never read annotations, so attaching after WHERE is observationally
//!   identical and avoids Rc churn for rejected tuples.

use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};
use std::ops::Bound;
use std::rc::Rc;

use bdbms_common::{BdbmsError, Result, Value};

use crate::annotation::AnnotationSet;
use crate::ast::{AnnExpr, BinaryOp, Expr, Projection, Select, SelectItem, SetOp, TableRef};
use crate::catalog::{Catalog, Table};
use crate::expr::{eval, referenced_columns, resolve_column, ColBinding};
use crate::plan::{self, ConjunctSite, Probe, ProbeChoice};
use crate::result::{AnnOut, AnnRef, AnnRow, QueryResult};
use crate::xml::XmlNode;

/// Category name of the synthetic annotations that flag outdated cells.
pub const OUTDATED_ANN_TABLE: &str = "outdated";

/// Which executor optimizations are active.  The default enables all of
/// them; [`ExecOptions::naive`] reproduces the fully materializing
/// pre-optimization executor (used as the benchmark baseline and by the
/// pushdown-semantics regression tests).
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Evaluate single-source WHERE conjuncts at scan time.
    pub predicate_pushdown: bool,
    /// Route eligible conjuncts through secondary indexes.
    pub index_scans: bool,
    /// Attach annotations only to surviving tuples / referenced columns.
    pub lazy_annotations: bool,
    /// Reorder joins by estimated cardinality (greedy: stream the
    /// largest source, hash-build the rest smallest-connected-first)
    /// instead of taking FROM order.
    pub join_reorder: bool,
    /// Push `LIMIT n` through the pipeline for early termination when no
    /// blocking operator (sort, group, distinct, set op) intervenes.
    pub limit_pushdown: bool,
    /// Run simple SELECTs through the batch-at-a-time operators
    /// ([`crate::batch`], up to [`crate::batch::BATCH_SIZE`] tuples per
    /// operator pull) instead of the row-at-a-time Volcano pipeline.
    /// Results are identical; only per-pull granularity (and therefore
    /// throughput) changes.  See `docs/EXECUTOR.md`.
    pub batch: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            predicate_pushdown: true,
            index_scans: true,
            lazy_annotations: true,
            join_reorder: true,
            limit_pushdown: true,
            batch: true,
        }
    }
}

impl ExecOptions {
    /// The unoptimized baseline: full scans, post-join filtering, eager
    /// annotation attachment, FROM-order joins, LIMIT applied only to
    /// the materialized result, row-at-a-time operators.
    pub fn naive() -> Self {
        ExecOptions {
            predicate_pushdown: false,
            index_scans: false,
            lazy_annotations: false,
            join_reorder: false,
            limit_pushdown: false,
            batch: false,
        }
    }

    /// A builder starting from the all-optimizations default.  Preferred
    /// over struct literals when flipping individual toggles:
    ///
    /// ```
    /// use bdbms_core::executor::ExecOptions;
    /// let row_path = ExecOptions::builder().batch(false).build();
    /// let no_reorder = ExecOptions::builder().join_reorder(false).build();
    /// ```
    pub fn builder() -> ExecOptionsBuilder {
        ExecOptionsBuilder {
            opts: ExecOptions::default(),
        }
    }
}

/// Builder for [`ExecOptions`] — one method per toggle, so adding an
/// optimization never multiplies constructor variants.
#[derive(Debug, Clone)]
pub struct ExecOptionsBuilder {
    opts: ExecOptions,
}

impl ExecOptionsBuilder {
    /// Start from the fully-unoptimized [`ExecOptions::naive`] preset
    /// instead of the default.
    pub fn naive(mut self) -> Self {
        self.opts = ExecOptions::naive();
        self
    }

    /// Toggle WHERE-conjunct pushdown to scans.
    pub fn predicate_pushdown(mut self, on: bool) -> Self {
        self.opts.predicate_pushdown = on;
        self
    }

    /// Toggle secondary-index probes.
    pub fn index_scans(mut self, on: bool) -> Self {
        self.opts.index_scans = on;
        self
    }

    /// Toggle lazy (survivors-only) annotation attachment.
    pub fn lazy_annotations(mut self, on: bool) -> Self {
        self.opts.lazy_annotations = on;
        self
    }

    /// Toggle greedy join reordering.
    pub fn join_reorder(mut self, on: bool) -> Self {
        self.opts.join_reorder = on;
        self
    }

    /// Toggle LIMIT pushdown into the pipeline.
    pub fn limit_pushdown(mut self, on: bool) -> Self {
        self.opts.limit_pushdown = on;
        self
    }

    /// Toggle batch-at-a-time execution (off = row-at-a-time pulls).
    pub fn batch(mut self, on: bool) -> Self {
        self.opts.batch = on;
        self
    }

    /// Finish the build.
    pub fn build(self) -> ExecOptions {
        self.opts
    }
}

/// Counters and plan decisions describing how a query was executed
/// (deterministic, unlike wall-clock time — the regression tests pin
/// speedups and plan shapes on these).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Tuples that entered the pipeline from scans (heap fetches plus
    /// index-only reconstructions).
    pub rows_fetched: u64,
    /// Tuples rejected by pushed-down predicates at scan time.
    pub rows_scan_filtered: u64,
    /// Scans served by a B+-tree probe.
    pub index_probes: u64,
    /// Scans served by a sequence-index (`CONTAINS SEQ`) probe.
    pub seq_index_probes: u64,
    /// Scans that walked the whole heap.
    pub full_scans: u64,
    /// Index probes that never touched the heap (all needed columns
    /// covered by the index key).
    pub index_only_scans: u64,
    /// Annotation references attached to tuples.
    pub anns_attached: u64,
    /// Names of the indexes chosen by [`crate::plan::choose_probe`], in
    /// scan-execution order (across set-operation branches too).
    pub chosen_indexes: Vec<String>,
    /// Join order actually executed, as FROM-clause positions (the first
    /// entry streams; the rest are hash-build sides).  One run of
    /// positions is appended per simple SELECT executed.
    pub join_order: Vec<usize>,
    /// Number of simple SELECTs whose LIMIT was pushed into the
    /// pipeline (scans then stop after the k-th surviving tuple).
    pub limit_pushdowns: u64,
    /// Rows that were fully computed and then discarded by a LIMIT that
    /// could not be pushed (the naive baseline's waste; 0 when the limit
    /// terminated the pipeline instead).
    pub rows_limit_discarded: u64,
    /// Batches emitted by batch-mode scans (0 on the row-at-a-time
    /// path).  `rows_fetched / scan_batches` approximates batch fill.
    pub scan_batches: u64,
    /// Wall time spent parsing the statement text, in nanoseconds
    /// (0 when the statement arrived pre-parsed, e.g. a cached prepared
    /// statement).  Integer nanos keep `ExecStats: Eq`.
    pub parse_ns: u64,
    /// Wall time spent in the planning front-half (conjunct
    /// classification, probe choice, join ordering, pipeline assembly),
    /// in nanoseconds.
    pub plan_ns: u64,
    /// Wall time spent executing the assembled pipeline, in
    /// nanoseconds.  Streaming cursors accumulate this as they drain.
    pub exec_ns: u64,
}

/// Evaluate an annotation predicate against one annotation.
pub fn eval_ann(cond: &AnnExpr, ann: &AnnOut) -> bool {
    match cond {
        AnnExpr::Contains(s) => ann.text().contains(s) || ann.raw.contains(s),
        AnnExpr::FromTable(t) => ann.ann_table.eq_ignore_ascii_case(t),
        AnnExpr::PathEq(path, value) => ann.body.path_text(path) == Some(value.as_str()),
        AnnExpr::Before(t) => ann.created < *t,
        AnnExpr::After(t) => ann.created >= *t,
        AnnExpr::And(a, b) => eval_ann(a, ann) && eval_ann(b, ann),
        AnnExpr::Or(a, b) => eval_ann(a, ann) || eval_ann(b, ann),
        AnnExpr::Not(a) => !eval_ann(a, ann),
    }
}

/// One FROM entry resolved against the catalog.  Everything borrowed
/// here lives as long as the *catalog*, never the SELECT AST — which is
/// what lets the assembled pipeline outlive the statement text as a
/// [`SelectCursor`].
pub(crate) struct Source<'a> {
    table: &'a Table,
    /// The annotation sets named in the FROM entry's `ANNOTATION(…)`,
    /// resolved up front.
    sets: Vec<&'a AnnotationSet>,
    /// First column position of this source in the joined binding list.
    pub(crate) offset: usize,
    pub(crate) arity: usize,
}

/// A tuple flowing through the pipeline before annotation attachment.
pub(crate) struct PipeRow {
    pub(crate) values: Vec<Value>,
    /// Originating row number per source, in FROM order.
    pub(crate) rows: Vec<u64>,
    /// Annotations, already attached in eager mode (`None` while lazy).
    pub(crate) anns: Option<Vec<Vec<AnnRef>>>,
}

/// Attaches one source's annotations (named sets + synthetic `outdated`)
/// to tuples, sharing one `Rc` per distinct annotation via a cache —
/// exactly the old scan-time semantics, applied to whichever columns the
/// plan says are needed.
pub(crate) struct SourceAttach<'a> {
    table: &'a Table,
    sets: Vec<&'a AnnotationSet>,
    /// Source-local columns to attach (sorted).
    cols: Vec<usize>,
    /// Column offset of this source in the joined row.
    offset: usize,
    cache: HashMap<(usize, u64), AnnRef>,
}

impl<'a> SourceAttach<'a> {
    /// `offset` is where this source's columns sit in the rows handed to
    /// [`attach_into`](Self::attach_into) — the joined-row offset for the
    /// post-join stage, `0` when attaching within the source's own scan.
    fn new(src: &Source<'a>, cols: Vec<usize>, offset: usize) -> Self {
        SourceAttach {
            table: src.table,
            sets: src.sets.clone(),
            cols,
            offset,
            cache: HashMap::new(),
        }
    }

    /// Attach annotations of `row_no` into the joined row's slots.
    fn attach_into(&mut self, row_no: u64, out: &mut [Vec<AnnRef>], st: &RefCell<ExecStats>) {
        let attached = self.attach_into_buf(row_no, out);
        if attached > 0 {
            st.borrow_mut().anns_attached += attached;
        }
    }

    /// True when this attacher can never attach anything — no columns to
    /// attach to, or no annotation sets in scope *and* no outdated cells
    /// to surface as §5 annotations.  The batch pipeline skips its attach
    /// stage entirely then, instead of allocating empty annotation slots
    /// for every row.
    pub(crate) fn is_noop(&self) -> bool {
        self.cols.is_empty() || (self.sets.is_empty() && self.table.outdated.count_set() == 0)
    }

    /// [`attach_into`](Self::attach_into) without the stats side effect:
    /// returns how many annotations were attached so batch operators can
    /// bump the counter once per batch instead of once per row.
    pub(crate) fn attach_into_buf(&mut self, row_no: u64, out: &mut [Vec<AnnRef>]) -> u64 {
        let mut attached = 0u64;
        for (set_idx, set) in self.sets.iter().enumerate() {
            for &col in &self.cols {
                let slot = &mut out[self.offset + col];
                for a in set.for_cell(row_no, col) {
                    let snap = self
                        .cache
                        .entry((set_idx, a.id.raw()))
                        .or_insert_with(|| {
                            Rc::new(AnnOut {
                                source_table: self.table.name.clone(),
                                ann_table: set.name.clone(),
                                id: a.id.raw(),
                                raw: a.raw.clone(),
                                body: a.body.clone(),
                                created: a.created,
                            })
                        })
                        .clone();
                    slot.push(snap);
                    attached += 1;
                }
            }
        }
        // outdated flags propagate as annotations (§5)
        for &col in &self.cols {
            if self.table.is_outdated(row_no, col) {
                out[self.offset + col].push(Rc::new(AnnOut {
                    source_table: self.table.name.clone(),
                    ann_table: OUTDATED_ANN_TABLE.to_string(),
                    id: (row_no << 16) | col as u64,
                    raw: "outdated: value pending re-verification".to_string(),
                    body: XmlNode::leaf("Annotation", "outdated: value pending re-verification"),
                    created: 0,
                }));
                attached += 1;
            }
        }
        attached
    }
}

/// One source's scan as a lazy stream of `(row_no, values)`: index probe
/// or heap walk, with pushed conjuncts applied per tuple before anything
/// downstream sees it.
///
/// `value_needed` lists the source-local columns whose *values* any part
/// of the query reads (`None` = unknown, assume all).  When an index
/// probe covers every needed column, the scan is served *index-only*:
/// tuples are reconstructed from the B+-tree keys (all other slots NULL,
/// provably unread) and the heap is never touched.
/// A scan's lazy `(row_no, values)` stream.
pub(crate) type RowValueStream<'a> = Box<dyn Iterator<Item = Result<(u64, Vec<Value>)>> + 'a>;

/// Choose this source's access path and build the raw `(row_no, values)`
/// stream — probe-selection stats are pushed here, at assembly time.
/// Pushed conjuncts are *not* applied; the row pipeline wraps the stream
/// with a per-row filter ([`scan_stream`]) while the batch pipeline
/// re-checks them in per-conjunct tight loops
/// ([`crate::batch::BatchScan`]).
pub(crate) fn scan_base<'a>(
    src: &Source<'a>,
    local_bindings: &[ColBinding],
    pushed: &[Expr],
    use_index: bool,
    value_needed: Option<Vec<usize>>,
    forced: Option<ProbeChoice>,
    st: &RefCell<ExecStats>,
) -> (RowValueStream<'a>, Option<ProbeChoice>) {
    let (probe, choice) = if use_index {
        plan::choose_probe_with(src.table, local_bindings, pushed, forced)
    } else {
        (Probe::FullScan, Some(ProbeChoice::FullScan))
    };
    (probe_stream(src, probe, value_needed, st), choice)
}

/// Batch-path access path: same probe choice (and probe-selection
/// stats) as [`scan_base`], but a full scan is returned as a chunked,
/// column-pruned table handle ([`crate::batch::ScanBase::Chunk`])
/// instead of a row-at-a-time iterator, so [`crate::batch::BatchScan`]
/// decodes whole batches straight out of the buffer pool.
pub(crate) fn scan_base_batch<'a>(
    src: &Source<'a>,
    local_bindings: &[ColBinding],
    pushed: &[Expr],
    use_index: bool,
    value_needed: Option<Vec<usize>>,
    forced: Option<ProbeChoice>,
    st: &RefCell<ExecStats>,
) -> (crate::batch::ScanBase<'a>, Option<ProbeChoice>) {
    let (probe, choice) = if use_index {
        plan::choose_probe_with(src.table, local_bindings, pushed, forced)
    } else {
        (Probe::FullScan, Some(ProbeChoice::FullScan))
    };
    if matches!(probe, Probe::FullScan) {
        st.borrow_mut().full_scans += 1;
        let base = crate::batch::ScanBase::Chunk {
            table: src.table,
            next: 0,
            keep: value_needed,
        };
        return (base, choice);
    }
    let stream = probe_stream(src, probe, value_needed, st);
    (crate::batch::ScanBase::Stream(stream), choice)
}

/// Build the row-at-a-time stream for a chosen probe, recording its
/// access-path stats.
fn probe_stream<'a>(
    src: &Source<'a>,
    probe: Probe,
    value_needed: Option<Vec<usize>>,
    st: &RefCell<ExecStats>,
) -> RowValueStream<'a> {
    let base: RowValueStream<'a> = match probe {
        Probe::Empty => Box::new(std::iter::empty()),
        Probe::Index { column, lo, hi } => {
            let idx = src.table.index_on(column).expect("plan chose an index");
            {
                let mut s = st.borrow_mut();
                s.index_probes += 1;
                s.chosen_indexes.push(idx.name.clone());
            }
            let covered = value_needed
                .as_ref()
                .is_some_and(|cols| cols.iter().all(|&c| c == column));
            if covered {
                st.borrow_mut().index_only_scans += 1;
                let arity = src.arity;
                Box::new(
                    idx.probe_entries(plan::as_ref_bound(&lo), plan::as_ref_bound(&hi))
                        .into_iter()
                        .map(move |(row_no, key)| {
                            let mut values = vec![Value::Null; arity];
                            values[column] = key;
                            Ok((row_no, values))
                        }),
                )
            } else {
                let table = src.table;
                Box::new(
                    idx.probe(plan::as_ref_bound(&lo), plan::as_ref_bound(&hi))
                        .into_iter()
                        .map(move |row_no| table.get(row_no).map(|v| (row_no, v))),
                )
            }
        }
        Probe::SeqIndex { column, pattern } => {
            let sidx = src
                .table
                .seq_index_on(column)
                .expect("plan chose a seq index");
            {
                let mut s = st.borrow_mut();
                s.seq_index_probes += 1;
                s.chosen_indexes.push(sidx.name.clone());
            }
            let table = src.table;
            Box::new(
                sidx.probe(&pattern)
                    .into_iter()
                    .map(move |row_no| table.get(row_no).map(|v| (row_no, v))),
            )
        }
        Probe::FullScan => {
            st.borrow_mut().full_scans += 1;
            Box::new(src.table.iter_rows())
        }
    };
    base
}

fn scan_stream<'a>(
    src: &Source<'a>,
    local_bindings: Rc<Vec<ColBinding>>,
    pushed: Vec<Expr>,
    use_index: bool,
    value_needed: Option<Vec<usize>>,
    forced: Option<ProbeChoice>,
    st: Rc<RefCell<ExecStats>>,
) -> (RowValueStream<'a>, Option<ProbeChoice>) {
    let (base, choice) = scan_base(
        src,
        &local_bindings,
        &pushed,
        use_index,
        value_needed,
        forced,
        &st,
    );
    let stream = Box::new(base.filter_map(move |entry| {
        let (row_no, values) = match entry {
            Ok(x) => x,
            Err(e) => return Some(Err(e)),
        };
        st.borrow_mut().rows_fetched += 1;
        for conjunct in &pushed {
            match eval(conjunct, &local_bindings, &values) {
                Err(e) => return Some(Err(e)),
                Ok(v) if !v.is_true() => {
                    st.borrow_mut().rows_scan_filtered += 1;
                    return None;
                }
                Ok(_) => {}
            }
        }
        Some(Ok((row_no, values)))
    }));
    (stream, choice)
}

/// Find a usable equi-join conjunct between the accumulated sources and
/// the next one: `left_col = right_col` where each side resolves on
/// exactly one of the two inputs.  Returns `(acc position, next-local
/// position)`.
fn find_equi_key(
    conjuncts: &[Expr],
    acc_bindings: &[ColBinding],
    next_bindings: &[ColBinding],
) -> Option<(usize, usize)> {
    for c in conjuncts {
        if let Expr::Binary(a, BinaryOp::Eq, b) = c {
            if let (Expr::Column(qa, ca), Expr::Column(qb, cb)) = (&**a, &**b) {
                for ((q1, c1), (q2, c2)) in [((qa, ca), (qb, cb)), ((qb, cb), (qa, ca))] {
                    let l = resolve_column(acc_bindings, q1.as_deref(), c1);
                    let r = resolve_column(next_bindings, q2.as_deref(), c2);
                    let l_unambiguous = resolve_column(next_bindings, q1.as_deref(), c1).is_err();
                    let r_unambiguous = resolve_column(acc_bindings, q2.as_deref(), c2).is_err();
                    if let (Ok(l), Ok(r)) = (l, r) {
                        if l_unambiguous && r_unambiguous {
                            return Some((l, r));
                        }
                    }
                }
            }
        }
    }
    None
}

pub(crate) fn concat_pipe(left: &PipeRow, right: &PipeRow) -> PipeRow {
    let mut values = left.values.clone();
    values.extend(right.values.iter().cloned());
    let mut rows = left.rows.clone();
    rows.extend(right.rows.iter().copied());
    let anns = match (&left.anns, &right.anns) {
        (Some(a), Some(b)) => {
            let mut merged = a.clone();
            merged.extend(b.iter().cloned());
            Some(merged)
        }
        _ => None,
    };
    PipeRow { values, rows, anns }
}

/// Does the expression tree contain an aggregate?
pub(crate) fn has_aggregate(e: &Expr) -> bool {
    match e {
        Expr::Aggregate(..) => true,
        Expr::Literal(_) | Expr::Column(..) | Expr::Param(_) => false,
        Expr::Unary(_, a)
        | Expr::IsNull(a, _)
        | Expr::Like(a, _, _)
        | Expr::ContainsSeq(a, _, _) => has_aggregate(a),
        Expr::Binary(a, _, b) => has_aggregate(a) || has_aggregate(b),
        Expr::InList(a, items, _) => has_aggregate(a) || items.iter().any(has_aggregate),
        Expr::Call(_, args) => args.iter().any(has_aggregate),
    }
}

/// Evaluate an expression over a *group* of rows: aggregates reduce the
/// group, everything else is evaluated on the group's first row (group-by
/// keys are constant within a group).  Empty groups (global aggregates
/// over empty input) see a row of NULLs.
fn eval_group(e: &Expr, bindings: &[ColBinding], group: &[AnnRow]) -> Result<Value> {
    let nulls: Vec<Value>;
    let first: &[Value] = match group.first() {
        Some(r) => &r.values,
        None => {
            nulls = vec![Value::Null; bindings.len()];
            &nulls
        }
    };
    match e {
        Expr::Aggregate(f, arg) => {
            use crate::ast::AggFunc::*;
            let mut vals: Vec<Value> = Vec::with_capacity(group.len());
            for row in group {
                match arg {
                    None => vals.push(Value::Int(1)),
                    Some(a) => {
                        let v = eval(a, bindings, &row.values)?;
                        if !v.is_null() {
                            vals.push(v);
                        }
                    }
                }
            }
            Ok(match f {
                Count => Value::Int(vals.len() as i64),
                Sum | Avg => {
                    if vals.is_empty() {
                        Value::Null
                    } else {
                        let all_int = vals.iter().all(|v| matches!(v, Value::Int(_)));
                        let total: f64 = vals.iter().filter_map(|v| v.as_float()).sum();
                        match f {
                            Sum if all_int => Value::Int(total as i64),
                            Sum => Value::Float(total),
                            _ => Value::Float(total / vals.len() as f64),
                        }
                    }
                }
                Min => vals.into_iter().min().unwrap_or(Value::Null),
                Max => vals.into_iter().max().unwrap_or(Value::Null),
            })
        }
        Expr::Binary(a, op, b) => {
            // rebuild with pre-evaluated aggregate subtrees
            let ea = Expr::Literal(eval_group(a, bindings, group)?);
            let eb = Expr::Literal(eval_group(b, bindings, group)?);
            eval(
                &Expr::Binary(Box::new(ea), *op, Box::new(eb)),
                bindings,
                first,
            )
        }
        Expr::Unary(op, a) => {
            let ea = Expr::Literal(eval_group(a, bindings, group)?);
            eval(&Expr::Unary(*op, Box::new(ea)), bindings, first)
        }
        other => eval(other, bindings, first),
    }
}

/// Expand a projection into concrete items.
fn expand_projection(projection: &Projection, bindings: &[ColBinding]) -> Result<Vec<SelectItem>> {
    match projection {
        Projection::Items(items) => Ok(items.clone()),
        Projection::Star(alias) => {
            let items: Vec<SelectItem> = bindings
                .iter()
                .filter(|b| match alias {
                    None => true,
                    Some(a) => b.qualifier.as_deref() == Some(a.to_ascii_lowercase().as_str()),
                })
                .map(|b| SelectItem {
                    expr: Expr::Column(b.qualifier.clone(), b.name.clone()),
                    alias: None,
                    promote: Vec::new(),
                })
                .collect();
            if items.is_empty() {
                return Err(BdbmsError::invalid("`*` matched no columns (bad alias?)"));
            }
            Ok(items)
        }
    }
}

fn item_name(item: &SelectItem) -> String {
    if let Some(a) = &item.alias {
        return a.clone();
    }
    match &item.expr {
        Expr::Column(_, n) => n.clone(),
        Expr::Aggregate(f, _) => format!("{f:?}").to_lowercase(),
        _ => "expr".to_string(),
    }
}

/// Annotations that flow into one projected item: the referenced columns'
/// annotations plus any PROMOTE sources (§3.4).
pub(crate) fn item_ann_columns(item: &SelectItem, bindings: &[ColBinding]) -> Result<Vec<usize>> {
    let mut cols = Vec::new();
    referenced_columns(&item.expr, bindings, &mut cols)?;
    for (q, n) in &item.promote {
        cols.push(resolve_column(bindings, q.as_deref(), n)?);
    }
    cols.sort_unstable();
    cols.dedup();
    Ok(cols)
}

/// Merge rows with identical values, unioning annotations (the paper's
/// duplicate-elimination semantics).
fn dedup_union(rows: Vec<AnnRow>) -> Vec<AnnRow> {
    let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut out: Vec<AnnRow> = Vec::new();
    for row in rows {
        match index.get(&row.values) {
            Some(&i) => out[i].union_anns_from(&row),
            None => {
                index.insert(row.values.clone(), out.len());
                out.push(row);
            }
        }
    }
    out
}

/// Execute a (possibly compound) SELECT with default options.
pub fn run_select(catalog: &Catalog, sel: &Select) -> Result<QueryResult> {
    run_select_opts(catalog, sel, &ExecOptions::default())
}

/// Execute with explicit options.
pub fn run_select_opts(catalog: &Catalog, sel: &Select, opts: &ExecOptions) -> Result<QueryResult> {
    let mut stats = ExecStats::default();
    run_select_traced(catalog, sel, opts, &mut stats)
}

/// Execute with explicit options, accumulating execution counters into
/// `stats` (across set-operation branches too).
pub fn run_select_traced(
    catalog: &Catalog,
    sel: &Select,
    opts: &ExecOptions,
    stats: &mut ExecStats,
) -> Result<QueryResult> {
    let mut result = run_simple_select(catalog, sel, opts, stats)?;
    if let Some((op, right)) = &sel.set_op {
        let right_res = run_select_traced(catalog, right, opts, stats)?;
        if right_res.columns.len() != result.columns.len() {
            return Err(BdbmsError::invalid(format!(
                "set operation arity mismatch: {} vs {}",
                result.columns.len(),
                right_res.columns.len()
            )));
        }
        let left_rows = dedup_union(result.rows);
        let right_rows = dedup_union(right_res.rows);
        let right_index: HashMap<Vec<Value>, usize> = right_rows
            .iter()
            .enumerate()
            .map(|(i, r)| (r.values.clone(), i))
            .collect();
        let rows = match op {
            SetOp::Intersect => {
                // tuples in both; annotations unioned from both sides —
                // exactly the paper's DB1_Gene ∩ DB2_Gene example
                let mut out = Vec::new();
                for mut l in left_rows {
                    if let Some(&ri) = right_index.get(&l.values) {
                        l.union_anns_from(&right_rows[ri]);
                        out.push(l);
                    }
                }
                out
            }
            SetOp::Union => {
                let mut all = left_rows;
                all.extend(right_rows);
                dedup_union(all)
            }
            SetOp::Except => left_rows
                .into_iter()
                .filter(|l| !right_index.contains_key(&l.values))
                .collect(),
        };
        result.rows = rows;
    }
    // ORDER BY applies to the final output
    if !sel.order_by.is_empty() {
        let mut keys = Vec::new();
        for ((_, name), desc) in &sel.order_by {
            let idx = result
                .columns
                .iter()
                .position(|c| c.eq_ignore_ascii_case(name))
                .ok_or_else(|| BdbmsError::not_found(format!("ORDER BY column `{name}`")))?;
            keys.push((idx, *desc));
        }
        result.rows.sort_by(|a, b| {
            for (idx, desc) in &keys {
                let ord = a.values[*idx].cmp(&b.values[*idx]);
                let ord = if *desc { ord.reverse() } else { ord };
                if !ord.is_eq() {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    // LIMIT caps the final output; when the pipeline already terminated
    // early (pushed limit) this is a no-op, otherwise the discarded rows
    // were computed for nothing and are counted as such
    if let Some(k) = sel.limit {
        let k = k as usize;
        if result.rows.len() > k {
            stats.rows_limit_discarded += (result.rows.len() - k) as u64;
            result.rows.truncate(k);
        }
    }
    Ok(result)
}

// ---------------------------------------------------------------------------
// EXPLAIN / EXPLAIN ANALYZE
// ---------------------------------------------------------------------------

/// One rendered plan line: indented text plus the profiler label of the
/// operator it describes (`None` for structural lines like `Pushed:`),
/// so `EXPLAIN ANALYZE` can splice actuals back onto the right nodes.
struct PlanLine {
    text: String,
    label: Option<String>,
}

/// Render a nanosecond wall time at a human scale (`1.2ms`, `450ns`).
fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns}ns"),
        10_000..=9_999_999 => format!("{:.1}us", ns as f64 / 1_000.0),
        10_000_000..=9_999_999_999 => format!("{:.1}ms", ns as f64 / 1_000_000.0),
        _ => format!("{:.2}s", ns as f64 / 1_000_000_000.0),
    }
}

/// Render an annotation predicate for plan output.
fn render_ann(a: &AnnExpr) -> String {
    match a {
        AnnExpr::Contains(s) => format!("CONTAINS '{s}'"),
        AnnExpr::FromTable(t) => format!("FROM {t}"),
        AnnExpr::PathEq(p, v) => format!("PATH '{p}' = '{v}'"),
        AnnExpr::Before(t) => format!("BEFORE T{t}"),
        AnnExpr::After(t) => format!("AFTER T{t}"),
        AnnExpr::And(x, y) => format!("({} AND {})", render_ann(x), render_ann(y)),
        AnnExpr::Or(x, y) => format!("({} OR {})", render_ann(x), render_ann(y)),
        AnnExpr::Not(x) => format!("NOT ({})", render_ann(x)),
    }
}

/// Render a conjunct list as ` AND `-joined parenthesized expressions.
fn render_conjuncts(cs: &[Expr]) -> String {
    cs.iter()
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join(" AND ")
}

/// Describe one source's access path (the same [`plan::choose_probe_with`]
/// decision execution will make) with its estimated cardinality.
fn describe_scan(
    src: &Source<'_>,
    local_bindings: &[ColBinding],
    pushed: &[Expr],
    use_index: bool,
    local_value_cols: &Option<Vec<usize>>,
) -> String {
    let table = src.table;
    let n = table.len();
    let est = plan::estimate_scan_rows(table, local_bindings, pushed);
    let (probe, _) = if use_index {
        plan::choose_probe_with(table, local_bindings, pushed, None)
    } else {
        (Probe::FullScan, Some(ProbeChoice::FullScan))
    };
    let col_name = |c: usize| table.schema.columns()[c].name.clone();
    // bound values render like the Expr literals they came from
    let lit = |v: &Value| match v {
        Value::Text(s) => format!("'{s}'"),
        other => other.to_string(),
    };
    let mut text = match probe {
        Probe::FullScan => format!("Seq Scan {}", table.name),
        Probe::Empty => format!("Empty Scan {} (pushed predicate is NULL)", table.name),
        Probe::Index { column, lo, hi } => {
            let idx = table.index_on(column).expect("plan chose an index");
            let col = col_name(column);
            let cond = match (&lo, &hi) {
                (Bound::Included(a), Bound::Included(b)) if a == b => {
                    format!("{col} = {}", lit(a))
                }
                (lo, hi) => {
                    let mut parts = Vec::new();
                    match lo {
                        Bound::Included(v) => parts.push(format!("{col} >= {}", lit(v))),
                        Bound::Excluded(v) => parts.push(format!("{col} > {}", lit(v))),
                        Bound::Unbounded => {}
                    }
                    match hi {
                        Bound::Included(v) => parts.push(format!("{col} <= {}", lit(v))),
                        Bound::Excluded(v) => parts.push(format!("{col} < {}", lit(v))),
                        Bound::Unbounded => {}
                    }
                    parts.join(" AND ")
                }
            };
            let covered = local_value_cols
                .as_ref()
                .is_some_and(|cols| cols.iter().all(|&c| c == column));
            format!(
                "Index Scan {} using {} ({}){}",
                table.name,
                idx.name,
                cond,
                if covered { " (index-only)" } else { "" }
            )
        }
        Probe::SeqIndex { column, pattern } => {
            let sidx = table.seq_index_on(column).expect("plan chose a seq index");
            format!(
                "Seq Index Scan {} using {} ({} CONTAINS SEQ '{}')",
                table.name,
                sidx.name,
                col_name(column),
                pattern
            )
        }
    };
    text.push_str(&format!(" (rows~{est:.1} of {n})"));
    text
}

/// Render one simple-SELECT branch as a root-down tree and, under
/// `EXPLAIN ANALYZE`, execute it through the instrumented batch pipeline
/// and splice per-operator actuals onto the nodes.
///
/// `apply_order_limit` is false for the left branch of a set operation,
/// whose ORDER BY / LIMIT apply to the *combined* output and are
/// rendered by the caller.
fn explain_branch(
    catalog: &Catalog,
    sel: &Select,
    opts: &ExecOptions,
    analyze: bool,
    apply_order_limit: bool,
    indent: usize,
    lines: &mut Vec<PlanLine>,
) -> Result<()> {
    let st = Rc::new(RefCell::new(ExecStats::default()));
    let plan_started = std::time::Instant::now();
    let planned = plan_simple_select(catalog, sel, opts, &st, None)?;
    let plan_ns = plan_started.elapsed().as_nanos() as u64;
    let items = planned.items.clone()?;

    let first = lines.len();
    let mut depth = indent;
    let mut push = |depth: usize, text: String, label: Option<String>| {
        lines.push(PlanLine {
            text: format!("{}{}", "  ".repeat(depth), text),
            label,
        });
    };

    // ---- output-side wrappers, root first ----
    if apply_order_limit {
        if let Some(k) = sel.limit {
            if planned.push_limit.is_none() {
                push(depth, format!("Limit {k}"), None);
                depth += 1;
            }
        }
        if !sel.order_by.is_empty() {
            let keys = sel
                .order_by
                .iter()
                .map(|((q, n), desc)| {
                    let col = match q {
                        Some(q) => format!("{q}.{n}"),
                        None => n.clone(),
                    };
                    if *desc {
                        format!("{col} DESC")
                    } else {
                        col
                    }
                })
                .collect::<Vec<_>>()
                .join(", ");
            push(depth, format!("Sort: {keys}"), None);
            depth += 1;
        }
    }
    if let Some(f) = &sel.filter {
        push(depth, format!("Annotation Filter: {}", render_ann(f)), None);
        depth += 1;
    }
    if sel.distinct {
        push(depth, "Distinct".to_string(), None);
        depth += 1;
    }
    if is_aggregated(sel, &items) {
        let group = if sel.group_by.is_empty() {
            String::new()
        } else {
            let keys = sel
                .group_by
                .iter()
                .map(|(q, n)| match q {
                    Some(q) => format!("{q}.{n}"),
                    None => n.clone(),
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!(" (group by {keys})")
        };
        let cols = items.iter().map(item_name).collect::<Vec<_>>().join(", ");
        push(depth, format!("Aggregate{group}: {cols}"), None);
    } else {
        let cols = items.iter().map(item_name).collect::<Vec<_>>().join(", ");
        push(depth, format!("Project: {cols}"), None);
    }
    depth += 1;

    // ---- pipeline stages, root first (mirrors assemble_batch_pipeline) ----
    if let Some(k) = planned.push_limit {
        push(depth, format!("Limit {k} (pushed)"), Some(format!("Limit {k}")));
        depth += 1;
    }
    if let Some(cond) = &planned.awhere {
        push(
            depth,
            format!("AWhere: {}", render_ann(cond)),
            Some("AWhere".to_string()),
        );
        depth += 1;
    }
    if !planned.eager {
        let any_attach = planned.sources.iter().any(|src| {
            !SourceAttach::new(
                src,
                PlannedSelect::local_needed(&planned.needed_cols, src),
                src.offset,
            )
            .is_noop()
        });
        if any_attach {
            push(
                depth,
                "Attach Annotations".to_string(),
                Some("Attach Annotations".to_string()),
            );
            depth += 1;
        }
    }
    if !planned.residual.is_empty() {
        push(
            depth,
            format!("Filter: {}", render_conjuncts(&planned.residual)),
            Some("Filter".to_string()),
        );
        depth += 1;
    }

    // ---- join chain: the outermost join is the *last* source in
    //      execution order; recurse probe-side down to the first scan ----
    fn render_sources(
        planned: &PlannedSelect<'_>,
        upto: usize,
        depth: usize,
        prefix: &str,
        push: &mut impl FnMut(usize, String, Option<String>),
    ) {
        let src = &planned.sources[upto];
        let local = &planned.bindings[src.offset..src.offset + src.arity];
        let local_value_cols = PlannedSelect::local_value_cols(&planned.value_cols, src);
        if upto == 0 {
            let text = describe_scan(src, local, &planned.pushed[0], planned.use_index, &local_value_cols);
            push(depth, format!("{prefix}{text}"), Some(format!("Scan {}", src.table.name)));
            if !planned.pushed[0].is_empty() {
                push(depth + 1, format!("Pushed: {}", render_conjuncts(&planned.pushed[0])), None);
            }
        } else {
            push(
                depth,
                format!("{prefix}Hash Join {}", src.table.name),
                Some(format!("Hash Join {}", src.table.name)),
            );
            render_sources(planned, upto - 1, depth + 1, "Probe: ", push);
            let text = describe_scan(src, local, &planned.pushed[upto], planned.use_index, &local_value_cols);
            push(
                depth + 1,
                format!("Build: {text}"),
                Some(format!("Scan {} (build)", src.table.name)),
            );
            if !planned.pushed[upto].is_empty() {
                push(depth + 2, format!("Pushed: {}", render_conjuncts(&planned.pushed[upto])), None);
            }
        }
    }
    render_sources(&planned, planned.sources.len() - 1, depth, "", &mut push);

    // ---- ANALYZE: execute through the profiled batch pipeline and
    //      splice actuals onto the nodes rendered above ----
    if analyze {
        let mut prof = crate::batch::PipelineProfile::default();
        let exec_started = std::time::Instant::now();
        let res = run_simple_select_batch(sel, planned, &st, Some(&mut prof))?;
        let exec_ns = exec_started.elapsed().as_nanos() as u64;
        let mut used = vec![false; prof.ops.len()];
        for line in &mut lines[first..] {
            let Some(label) = &line.label else { continue };
            let hit = prof.ops.iter().enumerate().find(|(i, op)| {
                !used[*i] && op.borrow().label == *label
            });
            if let Some((i, op)) = hit {
                used[i] = true;
                let p = op.borrow();
                line.text.push_str(&format!(
                    " (actual: rows={} batches={} time={})",
                    p.rows,
                    p.batches,
                    fmt_ns(p.elapsed_ns)
                ));
            }
        }
        let s = st.borrow();
        lines.push(PlanLine {
            text: format!(
                "{}Actual: output rows={}, plan time={}, exec time={}",
                "  ".repeat(indent),
                res.rows.len(),
                fmt_ns(plan_ns),
                fmt_ns(exec_ns)
            ),
            label: None,
        });
        lines.push(PlanLine {
            text: format!(
                "{}Stats: rows_fetched={} scan_filtered={} index_probes={} \
                 seq_index_probes={} full_scans={} index_only_scans={} \
                 anns_attached={} batches={} limit_pushdowns={}",
                "  ".repeat(indent),
                s.rows_fetched,
                s.rows_scan_filtered,
                s.index_probes,
                s.seq_index_probes,
                s.full_scans,
                s.index_only_scans,
                s.anns_attached,
                s.scan_batches,
                s.limit_pushdowns
            ),
            label: None,
        });
    }
    Ok(())
}

/// Recursive half of [`explain_select`]: a SELECT without a set
/// operation is one branch; with one, the set-op node comes first
/// (root-down) over the left branch and the recursively-rendered right
/// side, and the outermost ORDER BY / LIMIT — which
/// [`run_select_traced`] applies to the *combined* output — wrap the
/// set-op node rather than the left branch.
fn explain_select_tree(
    catalog: &Catalog,
    sel: &Select,
    opts: &ExecOptions,
    analyze: bool,
    depth: usize,
    lines: &mut Vec<PlanLine>,
) -> Result<()> {
    let Some((op, right)) = &sel.set_op else {
        return explain_branch(catalog, sel, opts, analyze, true, depth, lines);
    };
    let mut depth = depth;
    if let Some(k) = sel.limit {
        lines.push(PlanLine {
            text: format!("{}Limit {k}", "  ".repeat(depth)),
            label: None,
        });
        depth += 1;
    }
    if !sel.order_by.is_empty() {
        let keys = sel
            .order_by
            .iter()
            .map(|((q, n), desc)| {
                let col = match q {
                    Some(q) => format!("{q}.{n}"),
                    None => n.clone(),
                };
                if *desc {
                    format!("{col} DESC")
                } else {
                    col
                }
            })
            .collect::<Vec<_>>()
            .join(", ");
        lines.push(PlanLine {
            text: format!("{}Sort: {keys}", "  ".repeat(depth)),
            label: None,
        });
        depth += 1;
    }
    let name = match op {
        SetOp::Union => "Union",
        SetOp::Intersect => "Intersect",
        SetOp::Except => "Except",
    };
    lines.push(PlanLine {
        text: format!("{}{name}", "  ".repeat(depth)),
        label: None,
    });
    explain_branch(catalog, sel, opts, analyze, false, depth + 1, lines)?;
    explain_select_tree(catalog, right, opts, analyze, depth + 1, lines)
}

/// `EXPLAIN [ANALYZE] SELECT …`: render the plan the executor would
/// choose as a one-column (`plan`) result — access paths with estimated
/// cardinalities, join order as a root-down tree, pushed conjuncts, and
/// LIMIT pushdown.  With `analyze` the statement is executed through the
/// instrumented batch pipeline and every operator node carries actual
/// rows / batches / wall time (docs/OBSERVABILITY.md).
pub fn explain_select(
    catalog: &Catalog,
    sel: &Select,
    opts: &ExecOptions,
    analyze: bool,
) -> Result<QueryResult> {
    let mut lines: Vec<PlanLine> = Vec::new();
    explain_select_tree(catalog, sel, opts, analyze, 0, &mut lines)?;
    Ok(QueryResult {
        columns: vec!["plan".to_string()],
        rows: lines
            .into_iter()
            .map(|l| AnnRow {
                values: vec![Value::Text(l.text)],
                anns: vec![Vec::new()],
            })
            .collect(),
        affected: 0,
        message: None,
        stats: None,
    })
}

/// The column bindings one FROM source contributes (alias-qualified).
fn source_bindings(table: &Table, tref: &TableRef) -> Vec<ColBinding> {
    let qualifier = tref.alias.as_deref().unwrap_or(&tref.table);
    table
        .schema
        .columns()
        .iter()
        .map(|c| ColBinding::new(Some(qualifier), &c.name))
        .collect()
}

/// Greedy cost-based join order over the FROM sources, as FROM
/// positions.  The first source streams through the pipeline (it is
/// never materialized), every later source becomes a hash-join build
/// side — so the source with the *largest* estimated post-pushdown
/// cardinality goes first, and the rest follow smallest-estimate-first,
/// preferring sources connected to the accumulated prefix by an
/// equi-join conjunct (to avoid intermediate cross products).  Ties
/// break toward FROM order, so the plan is deterministic given fixed
/// stats.
fn choose_join_order(
    resolved: &[(&Table, &TableRef)],
    pushed_from: &[Vec<Expr>],
    conjuncts: &[Expr],
) -> Vec<usize> {
    let n = resolved.len();
    let locals: Vec<Vec<ColBinding>> = resolved
        .iter()
        .map(|(t, r)| source_bindings(t, r))
        .collect();
    let est: Vec<f64> = (0..n)
        .map(|i| plan::estimate_scan_rows(resolved[i].0, &locals[i], &pushed_from[i]))
        .collect();
    let mut first = 0;
    for i in 1..n {
        if est[i] > est[first] {
            first = i;
        }
    }
    let mut order = vec![first];
    let mut acc: Vec<ColBinding> = locals[first].clone();
    let mut remaining: Vec<usize> = (0..n).filter(|&i| i != first).collect();
    while !remaining.is_empty() {
        let mut best_pos = 0;
        for p in 1..remaining.len() {
            let (a, b) = (remaining[best_pos], remaining[p]);
            let ca = find_equi_key(conjuncts, &acc, &locals[a]).is_some();
            let cb = find_equi_key(conjuncts, &acc, &locals[b]).is_some();
            let better = match (ca, cb) {
                (true, false) => false,
                (false, true) => true,
                // strict `<` keeps the earlier FROM position on ties
                _ => est[b] < est[a],
            };
            if better {
                best_pos = p;
            }
        }
        let next = remaining.remove(best_pos);
        acc.extend(locals[next].iter().cloned());
        order.push(next);
    }
    order
}

/// Global binding positions whose *values* the query reads (conjuncts,
/// projected expressions, grouping keys, HAVING).  `None` when any
/// reference fails to resolve — the caller then assumes every column is
/// needed and index-only scans are disabled.  Annotation propagation is
/// deliberately excluded: annotations are keyed by row number, never by
/// the cell's value.
fn needed_value_columns(
    sel: &Select,
    bindings: &[ColBinding],
    items: Option<&[SelectItem]>,
    conjuncts: &[Expr],
) -> Option<BTreeSet<usize>> {
    let mut out = BTreeSet::new();
    let mut cols = Vec::new();
    let mut add = |e: &Expr, out: &mut BTreeSet<usize>| -> bool {
        cols.clear();
        if referenced_columns(e, bindings, &mut cols).is_err() {
            return false;
        }
        out.extend(cols.iter().copied());
        true
    };
    for c in conjuncts {
        if !add(c, &mut out) {
            return None;
        }
    }
    for item in items? {
        if !add(&item.expr, &mut out) {
            return None;
        }
    }
    for (q, n) in &sel.group_by {
        match resolve_column(bindings, q.as_deref(), n) {
            Ok(i) => out.insert(i),
            Err(_) => return None,
        };
    }
    if let Some(h) = &sel.having {
        if !add(h, &mut out) {
            return None;
        }
    }
    Some(out)
}

/// The value-independent plan of one simple SELECT, stamped with the
/// catalog generation it was derived under.  Prepared statements cache
/// this (see [`crate::session`]) and replay it until DDL or `ANALYZE`
/// moves the generation; key bounds and filter constants are *not* part
/// of the plan, so re-binding parameters never forces a replan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectPlan {
    /// Identity of the catalog the plan was derived against.
    pub catalog: u64,
    /// Catalog generation the plan was derived under.
    pub generation: u64,
    /// Execution order of the FROM sources (the first entry streams, the
    /// rest become hash-build sides).
    pub join_order: Vec<usize>,
    /// Pushdown site of each top-level WHERE conjunct, in conjunct order.
    pub sites: Vec<ConjunctSite>,
    /// Access path of each source, in execution order.
    pub probes: Vec<ProbeChoice>,
}

/// A fully assembled (but not yet pulled) pipeline for one simple
/// SELECT: the lazy joined-filtered-annotated row stream plus everything
/// the projection stage needs.  It borrows only from the *catalog*,
/// never from the SELECT AST, so it can outlive the statement text
/// inside a [`SelectCursor`].
struct BuiltPipeline<'a> {
    /// Joined rows, pre-projection (pushed conjuncts, residual WHERE,
    /// annotation attachment, AWHERE, and any pushed LIMIT applied).
    stream: Box<dyn Iterator<Item = Result<AnnRow>> + 'a>,
    /// Column bindings in execution order.
    bindings: Rc<Vec<ColBinding>>,
    /// Expanded projection items (errors deferred to projection time,
    /// exactly where the naive executor reports them).
    items: std::result::Result<Vec<SelectItem>, BdbmsError>,
    /// The plan this pipeline was assembled with — `None` when a
    /// decision depended on the bound values and must not be cached.
    plan: Option<SelectPlan>,
}

/// Everything the planner decides for one simple SELECT before any
/// operator exists: sources in execution order, conjunct sites, access
/// paths to force, annotation/value column needs, LIMIT pushdown.  This
/// is the shared front half of both executors — [`assemble_row_pipeline`]
/// turns it into the row-at-a-time Volcano chain and
/// [`assemble_batch_pipeline`] into the batch-at-a-time operator tree
/// ([`crate::batch`]), so every plan decision (and its `ExecStats`
/// footprint) is identical across the two.
pub(crate) struct PlannedSelect<'a> {
    /// FROM sources in execution order.
    sources: Vec<Source<'a>>,
    /// Column bindings in execution order.
    bindings: Rc<Vec<ColBinding>>,
    /// Pushed conjuncts per source, in execution order.
    pushed: Vec<Vec<Expr>>,
    /// Cross-source (or unpushable) conjuncts, evaluated after joins.
    residual: Vec<Expr>,
    /// All top-level WHERE conjuncts (for equi-join key discovery).
    all_conjuncts: Vec<Expr>,
    /// Expanded projection (errors deferred to projection time).
    items: std::result::Result<Vec<SelectItem>, BdbmsError>,
    /// Binding positions whose annotations the query can propagate.
    needed_cols: BTreeSet<usize>,
    /// Binding positions whose values are read (index-only planning).
    value_cols: Option<BTreeSet<usize>>,
    /// Eager (attach-at-scan) annotation mode.
    eager: bool,
    /// Secondary-index probes allowed.
    use_index: bool,
    /// LIMIT to push into the pipeline, when eligible.
    push_limit: Option<usize>,
    /// AWHERE condition, if any.
    awhere: Option<AnnExpr>,
    /// Execution order as FROM positions.
    order: Vec<usize>,
    /// Pushdown site per top-level conjunct, in conjunct order.
    plan_sites: Vec<ConjunctSite>,
    /// Probe forced by a replayed plan, per source in execution order.
    forced: Vec<Option<ProbeChoice>>,
    total_arity: usize,
    catalog_id: u64,
    generation: u64,
}

impl PlannedSelect<'_> {
    /// Source-local positions of `needed_cols` within `src`.
    fn local_needed(needed_cols: &BTreeSet<usize>, src: &Source) -> Vec<usize> {
        needed_cols
            .iter()
            .filter(|&&c| c >= src.offset && c < src.offset + src.arity)
            .map(|&c| c - src.offset)
            .collect()
    }

    /// Source-local positions of `value_cols` within `src`.
    fn local_value_cols(value_cols: &Option<BTreeSet<usize>>, src: &Source) -> Option<Vec<usize>> {
        value_cols.as_ref().map(|vc| {
            vc.iter()
                .filter(|&&c| c >= src.offset && c < src.offset + src.arity)
                .map(|&c| c - src.offset)
                .collect()
        })
    }
}

/// Plan one simple SELECT.  `hints` replays a cached [`SelectPlan`] when
/// it is still valid (same catalog generation, same statement shape);
/// otherwise every decision is made live and recorded in the assembled
/// pipeline's plan.
fn plan_simple_select<'a>(
    catalog: &'a Catalog,
    sel: &Select,
    opts: &ExecOptions,
    st: &RefCell<ExecStats>,
    hints: Option<&SelectPlan>,
) -> Result<PlannedSelect<'a>> {
    if sel.from.is_empty() {
        return Err(BdbmsError::invalid("SELECT requires FROM"));
    }

    // ---- source resolution (FROM order) ----
    let mut resolved: Vec<(&Table, &TableRef)> = Vec::new();
    for tref in &sel.from {
        let table = catalog.table(&tref.table)?;
        // validate requested annotation tables up front
        for ann in &tref.annotations {
            if table.ann_set(ann).is_none() {
                return Err(BdbmsError::not_found(format!(
                    "annotation table `{}` on `{}`",
                    ann, table.name
                )));
            }
        }
        resolved.push((table, tref));
    }
    let all_conjuncts: Vec<Expr> = sel
        .where_clause
        .as_ref()
        .map(plan::split_conjuncts)
        .unwrap_or_default();

    // a cached plan replays only while it was derived against *this*
    // catalog at its current generation and the statement shape still
    // matches (paranoid shape checks keep a mismatched cache from ever
    // mis-executing — it just replans)
    let hints = hints.filter(|h| {
        h.catalog == catalog.instance_id()
            && h.generation == catalog.generation()
            && h.join_order.len() == resolved.len()
            && h.probes.len() == resolved.len()
            && h.sites.len() == all_conjuncts.len()
    });

    // a replayed plan skips classification and join ordering, and an
    // explicit projection list never consults the FROM-order bindings —
    // don't build them on the (hot) fully-hinted path
    let from_bindings: Vec<ColBinding> =
        if hints.is_some() && matches!(&sel.projection, Projection::Items(_)) {
            Vec::new()
        } else {
            resolved
                .iter()
                .flat_map(|(t, r)| source_bindings(t, r))
                .collect()
        };

    // the projection expands against FROM-ordered bindings so `SELECT *`
    // column order does not depend on the join order chosen below;
    // expansion errors surface at projection time, exactly where the
    // naive path reports them
    let items_early = expand_projection(&sel.projection, &from_bindings);

    // ---- conjunct classification (pushdown), FROM layout ----
    // classification is permutation-invariant (it resolves by
    // qualifier/name over the same multiset of bindings), so one pass
    // against the FROM layout serves both join-order estimation and the
    // reordered execution below
    let mut offset = 0usize;
    let from_segments: Vec<(usize, usize)> = resolved
        .iter()
        .map(|(t, _)| {
            let seg = (offset, t.schema.arity());
            offset += t.schema.arity();
            seg
        })
        .collect();
    let mut plan_sites: Vec<ConjunctSite> = Vec::new();
    let mut pushed_from: Vec<Vec<Expr>> = vec![Vec::new(); resolved.len()];
    let mut residual: Vec<Expr> = Vec::new();
    if opts.predicate_pushdown {
        for (ci, c) in all_conjuncts.iter().enumerate() {
            let site = match hints {
                Some(h) => h.sites[ci],
                None => plan::classify_conjunct(c, &from_bindings, &from_segments),
            };
            plan_sites.push(site);
            match site {
                ConjunctSite::Source(i) => pushed_from[i].push(c.clone()),
                ConjunctSite::Residual => residual.push(c.clone()),
            }
        }
    } else if let Some(pred) = &sel.where_clause {
        residual.push(pred.clone());
    }

    // ---- join order (greedy, by estimated post-pushdown cardinality) ----
    let order: Vec<usize> = if let Some(h) = hints {
        h.join_order.clone()
    } else if opts.join_reorder && resolved.len() > 1 {
        choose_join_order(&resolved, &pushed_from, &all_conjuncts)
    } else {
        (0..resolved.len()).collect()
    };

    // ---- sources, bindings, pushed conjuncts in execution order ----
    let mut sources: Vec<Source> = Vec::new();
    let mut all_bindings: Vec<ColBinding> = Vec::new();
    for &i in &order {
        let (table, tref) = resolved[i];
        let offset = all_bindings.len();
        all_bindings.extend(source_bindings(table, tref));
        sources.push(Source {
            table,
            sets: tref
                .annotations
                .iter()
                .map(|n| table.ann_set(n).expect("validated above"))
                .collect(),
            offset,
            arity: table.schema.arity(),
        });
    }
    let pushed: Vec<Vec<Expr>> = order
        .iter()
        .map(|&i| std::mem::take(&mut pushed_from[i]))
        .collect();
    let total_arity = all_bindings.len();
    st.borrow_mut().join_order.extend(order.iter().copied());

    // ---- columns whose annotations the query can propagate ----
    let eager = !opts.lazy_annotations;
    let need_all = sel.awhere.is_some() || sel.ahaving.is_some();
    let needed_cols: BTreeSet<usize> = if eager || need_all {
        (0..total_arity).collect()
    } else {
        let mut needed = BTreeSet::new();
        if let Ok(items) = &items_early {
            for item in items {
                // unresolvable items error later, exactly where the
                // naive path would have reported them
                if let Ok(cols) = item_ann_columns(item, &all_bindings) {
                    needed.extend(cols);
                }
            }
        }
        needed
    };

    // ---- columns whose values the query reads (index-only planning) ----
    let value_cols: Option<BTreeSet<usize>> = if opts.index_scans {
        needed_value_columns(
            sel,
            &all_bindings,
            items_early.as_deref().ok(),
            &all_conjuncts,
        )
    } else {
        None
    };

    // ---- LIMIT pushdown eligibility: nothing between the pipeline and
    //      the final output may block or reorder rows ----
    let push_limit: Option<usize> = match sel.limit {
        Some(k)
            if opts.limit_pushdown
                && sel.set_op.is_none()
                && sel.order_by.is_empty()
                && !sel.distinct
                && sel.group_by.is_empty()
                && sel.having.is_none()
                && sel.ahaving.is_none()
                && matches!(&items_early,
                    Ok(items) if !items.iter().any(|i| has_aggregate(&i.expr))) =>
        {
            Some(k as usize)
        }
        _ => None,
    };
    let forced: Vec<Option<ProbeChoice>> = (0..sources.len())
        .map(|i| hints.map(|h| h.probes[i]))
        .collect();
    Ok(PlannedSelect {
        sources,
        bindings: Rc::new(all_bindings),
        pushed,
        residual,
        all_conjuncts,
        items: items_early,
        needed_cols,
        value_cols,
        eager,
        use_index: opts.index_scans,
        push_limit,
        awhere: sel.awhere.clone(),
        order,
        plan_sites,
        forced,
        total_arity,
        catalog_id: catalog.instance_id(),
        generation: catalog.generation(),
    })
}

/// Assemble the row-at-a-time (Volcano) pipeline from a planned SELECT.
fn assemble_row_pipeline<'a>(
    p: PlannedSelect<'a>,
    st: Rc<RefCell<ExecStats>>,
) -> Result<BuiltPipeline<'a>> {
    let PlannedSelect {
        sources,
        bindings,
        mut pushed,
        residual,
        all_conjuncts,
        items,
        needed_cols,
        value_cols,
        eager,
        use_index,
        push_limit,
        awhere,
        order,
        plan_sites,
        forced,
        total_arity,
        catalog_id,
        generation,
    } = p;

    // ---- per-source scans (eager mode attaches here, pre-filter) ----
    let mut plan_probes: Vec<ProbeChoice> = Vec::with_capacity(sources.len());
    // value-dependent probe decisions poison the whole plan for caching
    let mut plan_cacheable = true;
    let mut source_streams: Vec<Box<dyn Iterator<Item = Result<PipeRow>> + 'a>> = Vec::new();
    for (i, src) in sources.iter().enumerate() {
        let local: Rc<Vec<ColBinding>> =
            Rc::new(bindings[src.offset..src.offset + src.arity].to_vec());
        let local_value_cols = PlannedSelect::local_value_cols(&value_cols, src);
        let (scan, choice) = scan_stream(
            src,
            local,
            std::mem::take(&mut pushed[i]),
            use_index,
            local_value_cols,
            forced[i],
            st.clone(),
        );
        match choice {
            Some(c) => plan_probes.push(c),
            None => {
                plan_cacheable = false;
                plan_probes.push(ProbeChoice::FullScan);
            }
        }
        // an eager attacher fills this source's own slots (offset 0
        // within the source stream — joins concatenate them later)
        let mut attacher = if eager {
            Some(SourceAttach::new(src, (0..src.arity).collect(), 0))
        } else {
            None
        };
        let arity = src.arity;
        let st_scan = st.clone();
        source_streams.push(Box::new(scan.map(move |entry| {
            entry.map(|(row_no, values)| {
                let anns = attacher.as_mut().map(|a| {
                    let mut slots = vec![Vec::new(); arity];
                    a.attach_into(row_no, &mut slots, &st_scan);
                    slots
                });
                PipeRow {
                    values,
                    rows: vec![row_no],
                    anns,
                }
            })
        })));
    }

    // ---- joins (hash join on an equi-conjunct, else cross product) ----
    // build sides materialize here, at assembly time; the first source
    // streams lazily all the way to the consumer
    let mut streams = source_streams.into_iter();
    let mut stream: Box<dyn Iterator<Item = Result<PipeRow>> + 'a> =
        streams.next().expect("at least one source");
    for (next_i, right_stream) in streams.enumerate() {
        let src = &sources[next_i + 1];
        let right_rows: Vec<PipeRow> = right_stream.collect::<Result<_>>()?;
        let acc_bindings = &bindings[..src.offset];
        let next_bindings = &bindings[src.offset..src.offset + src.arity];
        let key = find_equi_key(&all_conjuncts, acc_bindings, next_bindings);
        let right = Rc::new(right_rows);
        stream = match key {
            Some((lcol, rcol)) => {
                // hash join (NULL keys never match, per SQL)
                let mut table: HashMap<Value, Vec<usize>> = HashMap::new();
                for (ri, r) in right.iter().enumerate() {
                    if !r.values[rcol].is_null() {
                        table.entry(r.values[rcol].clone()).or_default().push(ri);
                    }
                }
                Box::new(stream.flat_map(move |l| {
                    let out: Vec<Result<PipeRow>> = match l {
                        Err(e) => vec![Err(e)],
                        Ok(l) => {
                            if l.values[lcol].is_null() {
                                Vec::new()
                            } else {
                                table
                                    .get(&l.values[lcol])
                                    .map(|idxs| {
                                        idxs.iter()
                                            .map(|&ri| Ok(concat_pipe(&l, &right[ri])))
                                            .collect()
                                    })
                                    .unwrap_or_default()
                            }
                        }
                    };
                    out.into_iter()
                }))
            }
            None => Box::new(stream.flat_map(move |l| {
                let out: Vec<Result<PipeRow>> = match l {
                    Err(e) => vec![Err(e)],
                    Ok(l) => right.iter().map(|r| Ok(concat_pipe(&l, r))).collect(),
                };
                out.into_iter()
            })),
        };
    }

    // ---- residual WHERE (cross-source conjuncts / naive full pred) ----
    let bindings_resid = bindings.clone();
    let stream = stream.filter_map(move |entry| {
        let row = match entry {
            Ok(r) => r,
            Err(e) => return Some(Err(e)),
        };
        for conjunct in &residual {
            match eval(conjunct, &bindings_resid, &row.values) {
                Err(e) => return Some(Err(e)),
                Ok(v) if !v.is_true() => return None,
                Ok(_) => {}
            }
        }
        Some(Ok(row))
    });

    // ---- annotation attachment (lazy mode: survivors only) ----
    let mut attachers: Vec<SourceAttach> = if eager {
        Vec::new()
    } else {
        sources
            .iter()
            .map(|src| {
                SourceAttach::new(
                    src,
                    PlannedSelect::local_needed(&needed_cols, src),
                    src.offset,
                )
            })
            .collect()
    };
    let st_attach = st.clone();
    let stream = stream.map(move |entry| {
        entry.map(|p| {
            let anns = match p.anns {
                Some(anns) => anns,
                None => {
                    let mut slots = vec![Vec::new(); total_arity];
                    for (si, attacher) in attachers.iter_mut().enumerate() {
                        attacher.attach_into(p.rows[si], &mut slots, &st_attach);
                    }
                    slots
                }
            };
            AnnRow {
                values: p.values,
                anns,
            }
        })
    });

    // ---- AWHERE: annotation-based selection (some annotation satisfies) ----
    let stream: Box<dyn Iterator<Item = Result<AnnRow>> + 'a> = match awhere {
        Some(cond) => Box::new(stream.filter(move |entry| match entry {
            Err(_) => true,
            Ok(row) => row.all_anns().iter().any(|a| eval_ann(&cond, a)),
        })),
        None => Box::new(stream),
    };
    // ---- pushed LIMIT: stop pulling (and therefore scanning) after the
    //      k-th surviving tuple ----
    let stream: Box<dyn Iterator<Item = Result<AnnRow>> + 'a> = match push_limit {
        Some(k) => {
            st.borrow_mut().limit_pushdowns += 1;
            Box::new(stream.take(k))
        }
        None => stream,
    };

    Ok(BuiltPipeline {
        stream,
        bindings,
        items,
        plan: plan_cacheable.then_some(SelectPlan {
            catalog: catalog_id,
            generation,
            join_order: order,
            sites: plan_sites,
            probes: plan_probes,
        }),
    })
}

/// A fully assembled batch pipeline: the operator tree plus everything
/// the projection stage needs (the batch counterpart of
/// [`BuiltPipeline`]).
pub(crate) struct BuiltBatchPipeline<'a> {
    /// Root operator: joined, filtered, annotated, limit-capped batches.
    pub(crate) op: Box<dyn crate::batch::BatchOp<'a> + 'a>,
    /// Column bindings in execution order.
    pub(crate) bindings: Rc<Vec<ColBinding>>,
    /// Expanded projection items (errors deferred to projection time).
    pub(crate) items: std::result::Result<Vec<SelectItem>, BdbmsError>,
    /// The plan this pipeline was assembled with (see [`BuiltPipeline`]).
    pub(crate) plan: Option<SelectPlan>,
}

/// Assemble the batch-at-a-time operator tree from a planned SELECT.
/// Stage order, plan decisions, and assembly-time side effects (probe
/// stats, build-side materialization and its errors, `limit_pushdowns`)
/// mirror [`assemble_row_pipeline`] exactly; only the pull granularity
/// differs.
/// Interpose a profiler stage when `EXPLAIN ANALYZE` asked for one;
/// normal execution (`prof = None`) passes operators through untouched.
fn maybe_profile<'a>(
    prof: &mut Option<&mut crate::batch::PipelineProfile>,
    op: Box<dyn crate::batch::BatchOp<'a> + 'a>,
    label: impl Into<String>,
) -> Box<dyn crate::batch::BatchOp<'a> + 'a> {
    match prof {
        Some(p) => p.wrap(op, label),
        None => op,
    }
}

fn assemble_batch_pipeline<'a>(
    p: PlannedSelect<'a>,
    st: Rc<RefCell<ExecStats>>,
    mut prof: Option<&mut crate::batch::PipelineProfile>,
) -> Result<BuiltBatchPipeline<'a>> {
    use crate::batch::{self, BatchOp};
    let PlannedSelect {
        sources,
        bindings,
        pushed,
        residual,
        all_conjuncts,
        items,
        needed_cols,
        value_cols,
        eager,
        use_index,
        push_limit,
        awhere,
        order,
        plan_sites,
        forced,
        total_arity,
        catalog_id,
        generation,
    } = p;

    // ---- per-source scans; the first streams, the rest are drained
    //      here as hash-join build sides (assembly-time, same error and
    //      stats timing as the row path) ----
    let mut plan_probes: Vec<ProbeChoice> = Vec::with_capacity(sources.len());
    let mut plan_cacheable = true;
    let mut op: Option<Box<dyn BatchOp<'a> + 'a>> = None;
    for (i, src) in sources.iter().enumerate() {
        let local = &bindings[src.offset..src.offset + src.arity];
        let local_value_cols = PlannedSelect::local_value_cols(&value_cols, src);
        let (base, choice) = scan_base_batch(
            src,
            local,
            &pushed[i],
            use_index,
            local_value_cols,
            forced[i],
            &st,
        );
        match choice {
            Some(c) => plan_probes.push(c),
            None => {
                plan_cacheable = false;
                plan_probes.push(ProbeChoice::FullScan);
            }
        }
        let compiled: Vec<crate::expr::CExpr> = pushed[i]
            .iter()
            .map(|c| crate::expr::compile(c, local))
            .collect();
        let attach = eager
            .then(|| SourceAttach::new(src, (0..src.arity).collect(), 0))
            .filter(|a| !a.is_noop());
        let scan = batch::BatchScan::new(base, compiled, attach, src.arity, st.clone());
        op = Some(match op {
            None => maybe_profile(
                &mut prof,
                Box::new(scan),
                format!("Scan {}", src.table.name),
            ),
            Some(left) => {
                let build = match prof.as_deref_mut() {
                    Some(pr) => batch::drain_build(pr.wrap(
                        Box::new(scan),
                        format!("Scan {} (build)", src.table.name),
                    ))?,
                    None => batch::drain_build(scan)?,
                };
                let acc_bindings = &bindings[..src.offset];
                let next_bindings = &bindings[src.offset..src.offset + src.arity];
                let key = find_equi_key(&all_conjuncts, acc_bindings, next_bindings);
                let join: Box<dyn BatchOp<'a> + 'a> =
                    Box::new(batch::BatchJoin::new(left, build, key));
                maybe_profile(&mut prof, join, format!("Hash Join {}", src.table.name))
            }
        });
    }
    let mut op = op.expect("at least one source");

    // ---- residual WHERE (cross-source conjuncts / naive full pred) ----
    if !residual.is_empty() {
        let compiled: Vec<crate::expr::CExpr> = residual
            .iter()
            .map(|c| crate::expr::compile(c, &bindings))
            .collect();
        op = maybe_profile(&mut prof, Box::new(batch::BatchFilter::new(op, compiled)), "Filter");
    }

    // ---- annotation attachment (lazy mode: survivors only).  Skipped
    //      outright when nothing can attach — downstream operators treat
    //      `anns: None` exactly like all-empty slots, so un-annotated
    //      queries never allocate per-row annotation buffers ----
    if !eager {
        let attachers: Vec<SourceAttach> = sources
            .iter()
            .map(|src| {
                SourceAttach::new(
                    src,
                    PlannedSelect::local_needed(&needed_cols, src),
                    src.offset,
                )
            })
            .collect();
        if attachers.iter().any(|a| !a.is_noop()) {
            op = maybe_profile(
                &mut prof,
                Box::new(batch::BatchAttach::new(op, attachers, total_arity, st.clone())),
                "Attach Annotations",
            );
        }
    }

    // ---- AWHERE: annotation-based selection (some annotation satisfies) ----
    if let Some(cond) = awhere {
        op = maybe_profile(&mut prof, Box::new(batch::BatchAWhere::new(op, cond)), "AWhere");
    }

    // ---- pushed LIMIT: demand-driven, so scans stop (and fetch counts
    //      stay exact on filterless scans) after the k-th tuple ----
    if let Some(k) = push_limit {
        st.borrow_mut().limit_pushdowns += 1;
        op = maybe_profile(
            &mut prof,
            Box::new(batch::BatchLimit::new(op, k)),
            format!("Limit {k}"),
        );
    }

    Ok(BuiltBatchPipeline {
        op,
        bindings,
        items,
        plan: plan_cacheable.then_some(SelectPlan {
            catalog: catalog_id,
            generation,
            join_order: order,
            sites: plan_sites,
            probes: plan_probes,
        }),
    })
}

/// Project one joined row through the SELECT items: evaluate each item's
/// expression and merge the annotations of its referenced (plus
/// PROMOTEd) columns — the paper's §3.4 projection semantics, shared by
/// the materializing executor and streaming cursors.
fn project_row(
    items: &[SelectItem],
    item_cols: &[Vec<usize>],
    bindings: &[ColBinding],
    row: &AnnRow,
) -> Result<AnnRow> {
    let mut values = Vec::with_capacity(items.len());
    let mut anns = Vec::with_capacity(items.len());
    for (item, cols) in items.iter().zip(item_cols) {
        values.push(eval(&item.expr, bindings, &row.values)?);
        let mut merged: Vec<AnnRef> = Vec::new();
        for &c in cols {
            for a in &row.anns[c] {
                if !merged.iter().any(|x| x.identity() == a.identity()) {
                    merged.push(a.clone());
                }
            }
        }
        anns.push(merged);
    }
    Ok(AnnRow { values, anns })
}

fn run_simple_select(
    catalog: &Catalog,
    sel: &Select,
    opts: &ExecOptions,
    stats_out: &mut ExecStats,
) -> Result<QueryResult> {
    let st = Rc::new(RefCell::new(std::mem::take(stats_out)));
    let res = run_simple_select_shared(catalog, sel, opts, &st);
    *stats_out = st.borrow().clone();
    res
}

/// Does this SELECT's output stage aggregate?
fn is_aggregated(sel: &Select, items: &[SelectItem]) -> bool {
    !sel.group_by.is_empty()
        || items.iter().any(|i| has_aggregate(&i.expr))
        || sel.having.as_ref().is_some_and(has_aggregate)
}

/// The grouped/aggregated output stage over materialized input rows:
/// GROUP BY, HAVING/AHAVING, per-item [`eval_group`], and the paper's
/// union-of-group-annotations semantics.  Shared by the row path and the
/// batch path's fallback (the batch fast path accumulates instead — see
/// [`crate::batch::BatchAggregator`]).
pub(crate) fn aggregate_rows(
    sel: &Select,
    items: &[SelectItem],
    bindings: &[ColBinding],
    rows: Vec<AnnRow>,
) -> Result<Vec<AnnRow>> {
    // group rows by the GROUP BY key
    let key_idxs: Vec<usize> = sel
        .group_by
        .iter()
        .map(|(q, n)| resolve_column(bindings, q.as_deref(), n))
        .collect::<Result<_>>()?;
    let mut groups: Vec<(Vec<Value>, Vec<AnnRow>)> = Vec::new();
    let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
    for row in rows {
        let key: Vec<Value> = key_idxs.iter().map(|&i| row.values[i].clone()).collect();
        match index.get(&key) {
            Some(&g) => groups[g].1.push(row),
            None => {
                index.insert(key.clone(), groups.len());
                groups.push((key, vec![row]));
            }
        }
    }
    // empty input with no GROUP BY still yields one (empty) group for
    // global aggregates like COUNT(*)
    if groups.is_empty() && sel.group_by.is_empty() {
        groups.push((Vec::new(), Vec::new()));
    }
    let mut out_rows = Vec::with_capacity(groups.len());
    for (_, group) in groups {
        // HAVING (data predicate over the group)
        if let Some(h) = &sel.having {
            if !eval_group(h, bindings, &group)?.is_true() {
                continue;
            }
        }
        // AHAVING: some annotation within the group satisfies
        if let Some(cond) = &sel.ahaving {
            let any = group
                .iter()
                .flat_map(|r| r.all_anns())
                .any(|a| eval_ann(cond, &a));
            if !any {
                continue;
            }
        }
        let mut values = Vec::with_capacity(items.len());
        let mut anns = Vec::with_capacity(items.len());
        for item in items {
            values.push(eval_group(&item.expr, bindings, &group)?);
            // annotations: union across the group of referenced cols
            let cols = item_ann_columns(item, bindings)?;
            let mut merged: Vec<AnnRef> = Vec::new();
            for row in &group {
                for &c in &cols {
                    for a in &row.anns[c] {
                        if !merged.iter().any(|x| x.identity() == a.identity()) {
                            merged.push(a.clone());
                        }
                    }
                }
            }
            anns.push(merged);
        }
        out_rows.push(AnnRow { values, anns });
    }
    Ok(out_rows)
}

/// The shared result tail: DISTINCT dedup-union and FILTER (§3.4), then
/// the materialized [`QueryResult`].
fn finish_select(sel: &Select, columns: Vec<String>, mut out_rows: Vec<AnnRow>) -> QueryResult {
    // DISTINCT: merge duplicates, unioning annotations (§3.4)
    if sel.distinct {
        out_rows = dedup_union(out_rows);
    }
    // FILTER: keep tuples, drop non-matching annotations (§3.4)
    if let Some(cond) = &sel.filter {
        for row in &mut out_rows {
            for col in &mut row.anns {
                col.retain(|a| eval_ann(cond, a));
            }
        }
    }
    QueryResult {
        columns,
        rows: out_rows,
        affected: 0,
        message: None,
        stats: None,
    }
}

/// [`run_simple_select`] over shared stats.  Plan hints apply only to
/// the streaming-cursor path ([`open_select_cursor`]); materialized
/// execution always plans live.
fn run_simple_select_shared(
    catalog: &Catalog,
    sel: &Select,
    opts: &ExecOptions,
    st: &Rc<RefCell<ExecStats>>,
) -> Result<QueryResult> {
    let plan_started = std::time::Instant::now();
    let planned = plan_simple_select(catalog, sel, opts, st, None)?;
    st.borrow_mut().plan_ns += plan_started.elapsed().as_nanos() as u64;
    let exec_started = std::time::Instant::now();
    let res = run_simple_select_planned(catalog, sel, opts, planned, st);
    st.borrow_mut().exec_ns += exec_started.elapsed().as_nanos() as u64;
    res
}

/// Execute an already-planned simple SELECT (the back half of
/// [`run_simple_select_shared`], split out so planning and execution
/// wall time can be attributed separately in [`ExecStats`]).
fn run_simple_select_planned<'a>(
    _catalog: &'a Catalog,
    sel: &Select,
    opts: &ExecOptions,
    planned: PlannedSelect<'a>,
    st: &Rc<RefCell<ExecStats>>,
) -> Result<QueryResult> {
    if opts.batch {
        return run_simple_select_batch(sel, planned, st, None);
    }
    let BuiltPipeline {
        stream,
        bindings,
        items,
        plan: _,
    } = assemble_row_pipeline(planned, st.clone())?;
    // pipeline errors surface before projection errors, exactly as the
    // pre-streaming executor reported them
    let rows = stream.collect::<Result<Vec<AnnRow>>>()?;
    let items = items?;

    // ---- projection / aggregation (identical to the pre-streaming
    //      executor from here on: the paper's §3.4 output semantics) ----
    let out_columns: Vec<String> = items.iter().map(item_name).collect();
    let out_rows = if is_aggregated(sel, &items) {
        aggregate_rows(sel, &items, &bindings, rows)?
    } else {
        if sel.having.is_some() || sel.ahaving.is_some() {
            return Err(BdbmsError::invalid(
                "HAVING/AHAVING require GROUP BY or aggregates",
            ));
        }
        // plain projection: pass only the projected columns' annotations
        let item_cols: Vec<Vec<usize>> = items
            .iter()
            .map(|i| item_ann_columns(i, &bindings))
            .collect::<Result<_>>()?;
        let mut out = Vec::with_capacity(rows.len());
        for row in rows {
            out.push(project_row(&items, &item_cols, &bindings, &row)?);
        }
        out
    };
    Ok(finish_select(sel, out_columns, out_rows))
}

/// The batch-at-a-time counterpart of the materializing executor:
/// batches are drained through the operator tree and projected or
/// aggregated in tight loops.  Error ordering matches the row path —
/// the pipeline is always drained before projection-stage errors
/// surface, and aggregate evaluation errors are deferred to
/// finalization in row-path order.
fn run_simple_select_batch(
    sel: &Select,
    planned: PlannedSelect<'_>,
    st: &Rc<RefCell<ExecStats>>,
    prof: Option<&mut crate::batch::PipelineProfile>,
) -> Result<QueryResult> {
    use crate::batch::{self, BATCH_SIZE};
    let BuiltBatchPipeline {
        mut op,
        bindings,
        items,
        plan: _,
    } = assemble_batch_pipeline(planned, st.clone(), prof)?;
    let total_arity = bindings.len();
    // pipeline errors surface before projection errors (row-path parity):
    // every consumer below drains the operator tree before touching items
    let items = match items {
        Ok(items) => items,
        Err(e) => {
            while op.next_batch(BATCH_SIZE)?.is_some() {}
            return Err(e);
        }
    };
    let out_columns: Vec<String> = items.iter().map(item_name).collect();
    let out_rows = if is_aggregated(sel, &items) {
        match batch::BatchAggregator::try_new(sel, &items, &bindings) {
            Some(mut agg) => {
                // streaming aggregation: accumulators, no per-row AnnRow
                while let Some(b) = op.next_batch(BATCH_SIZE)? {
                    agg.consume(&b);
                }
                agg.finish()?
            }
            None => {
                // HAVING/AHAVING, computed aggregates, or unresolvable
                // keys: materialize and reuse the row path's group stage
                let rows = batch::drain_rows(op.as_mut(), total_arity)?;
                aggregate_rows(sel, &items, &bindings, rows)?
            }
        }
    } else {
        if sel.having.is_some() || sel.ahaving.is_some() {
            while op.next_batch(BATCH_SIZE)?.is_some() {}
            return Err(BdbmsError::invalid(
                "HAVING/AHAVING require GROUP BY or aggregates",
            ));
        }
        // materialize the batches first (pipeline errors before
        // projection errors), then project in compiled tight loops
        let mut batches = Vec::new();
        while let Some(b) = op.next_batch(BATCH_SIZE)? {
            batches.push(b);
        }
        let item_cols: Vec<Vec<usize>> = items
            .iter()
            .map(|i| item_ann_columns(i, &bindings))
            .collect::<Result<_>>()?;
        let compiled: Vec<crate::expr::CExpr> = items
            .iter()
            .map(|i| crate::expr::compile(&i.expr, &bindings))
            .collect();
        let mut out = Vec::with_capacity(batches.iter().map(|b| b.live()).sum());
        for b in &batches {
            batch::project_batch_into(&compiled, &item_cols, b, None, &mut out)?;
        }
        out
    };
    Ok(finish_select(sel, out_columns, out_rows))
}

/// A pull-based cursor over one SELECT's output: rows are produced on
/// demand, directly off the executor pipeline, without materializing the
/// full result (the [`crate::session`] API surfaces this as `RowCursor`).
pub struct SelectCursor<'a> {
    /// Output column names.
    pub columns: Vec<String>,
    /// The projected row stream.
    pub stream: Box<dyn Iterator<Item = Result<AnnRow>> + 'a>,
}

/// O(1) half of the can-this-SELECT-stream check: clauses that force
/// the blocking path regardless of what the projection resolves to.
/// (Set operations, grouping, HAVING/AHAVING, DISTINCT, and ORDER BY
/// all need the full input before the first output row; FILTER and
/// LIMIT are per-row.)
fn has_blocking_clause(sel: &Select) -> bool {
    sel.set_op.is_some()
        || !sel.group_by.is_empty()
        || sel.having.is_some()
        || sel.ahaving.is_some()
        || sel.distinct
        || !sel.order_by.is_empty()
}

/// Resolution half of the can-this-SELECT-stream check: the projection
/// expands against the FROM tables and carries no aggregates.
/// Resolution failures answer `false` so the error surfaces through the
/// materializing path with its usual ordering.
fn projection_streamable(catalog: &Catalog, sel: &Select) -> bool {
    let mut bindings = Vec::new();
    for tref in &sel.from {
        match catalog.table(&tref.table) {
            Ok(t) => bindings.extend(source_bindings(t, tref)),
            Err(_) => return false,
        }
    }
    match expand_projection(&sel.projection, &bindings) {
        Ok(items) => items
            .iter()
            .all(|i| !has_aggregate(&i.expr) && item_ann_columns(i, &bindings).is_ok()),
        Err(_) => false,
    }
}

/// Open a streaming cursor over a (possibly compound) SELECT.
///
/// Streamable simple SELECTs pull rows lazily off the pipeline — the
/// scan advances only as the cursor is consumed, which is what the
/// `ExecStats` row counters pin in the regression tests.  Blocking
/// queries (set ops, grouping, DISTINCT, ORDER BY, aggregates) run to
/// completion first and the cursor walks the materialized result.
///
/// Returns the cursor plus the [`SelectPlan`] used (for prepared-
/// statement caching; `None` when the query took the blocking path).
pub fn open_select_cursor<'a>(
    catalog: &'a Catalog,
    sel: &Select,
    opts: &ExecOptions,
    st: Rc<RefCell<ExecStats>>,
    hints: Option<&SelectPlan>,
) -> Result<(SelectCursor<'a>, Option<SelectPlan>)> {
    // a cached plan is only ever produced by the streamable path, so a
    // generation-valid one stands in for the (allocating) projection-
    // resolution half of the check; the O(1) blocking-clause check still
    // runs, so a hint mismatched to its statement can never force a
    // grouping/ordering query onto the streaming path
    let can_stream = !has_blocking_clause(sel)
        && (hints.is_some_and(|h| {
            h.catalog == catalog.instance_id() && h.generation == catalog.generation()
        }) || projection_streamable(catalog, sel));
    if can_stream {
        let plan_started = std::time::Instant::now();
        let planned = plan_simple_select(catalog, sel, opts, &st, hints)?;
        st.borrow_mut().plan_ns += plan_started.elapsed().as_nanos() as u64;
        if opts.batch {
            // batch streaming: the cursor pulls one batch at a time and
            // hands out its rows, so the scan advances in BATCH_SIZE
            // steps as the consumer pulls (per-batch granularity — the
            // session tests pin that nothing is fetched before the
            // first pull)
            let built = assemble_batch_pipeline(planned, st.clone(), None)?;
            let items = built.items?;
            let columns: Vec<String> = items.iter().map(item_name).collect();
            let item_cols: Vec<Vec<usize>> = items
                .iter()
                .map(|i| item_ann_columns(i, &built.bindings))
                .collect::<Result<_>>()?;
            let compiled: Vec<crate::expr::CExpr> = items
                .iter()
                .map(|i| crate::expr::compile(&i.expr, &built.bindings))
                .collect();
            let mut stream: Box<dyn Iterator<Item = Result<AnnRow>> + 'a> =
                Box::new(crate::batch::BatchCursorStream::new(
                    built.op,
                    compiled,
                    item_cols,
                    sel.filter.clone(),
                ));
            if let Some(k) = sel.limit {
                stream = Box::new(stream.take(k as usize));
            }
            return Ok((SelectCursor { columns, stream }, built.plan));
        }
        let built = assemble_row_pipeline(planned, st.clone())?;
        let items = built.items?;
        let columns: Vec<String> = items.iter().map(item_name).collect();
        let item_cols: Vec<Vec<usize>> = items
            .iter()
            .map(|i| item_ann_columns(i, &built.bindings))
            .collect::<Result<_>>()?;
        let bindings = built.bindings.clone();
        let filter = sel.filter.clone();
        let pre = built.stream;
        let mut stream: Box<dyn Iterator<Item = Result<AnnRow>> + 'a> =
            Box::new(pre.map(move |entry| {
                let row = entry?;
                let mut out = project_row(&items, &item_cols, &bindings, &row)?;
                if let Some(cond) = &filter {
                    for col in &mut out.anns {
                        col.retain(|a| eval_ann(cond, a));
                    }
                }
                Ok(out)
            }));
        if let Some(k) = sel.limit {
            // usually already pushed into the pipeline; this cap also
            // covers runs with limit pushdown disabled
            stream = Box::new(stream.take(k as usize));
        }
        return Ok((SelectCursor { columns, stream }, built.plan));
    }
    // blocking query: run to completion, then stream the buffered rows
    let mut tmp = st.borrow().clone();
    let res = run_select_traced(catalog, sel, opts, &mut tmp);
    *st.borrow_mut() = tmp;
    let qr = res?;
    Ok((
        SelectCursor {
            columns: qr.columns,
            stream: Box::new(qr.rows.into_iter().map(Ok)),
        },
        None,
    ))
}

/// Resolve an annotation-command target (`ADD/ARCHIVE/RESTORE … ON
/// (SELECT …)`) to concrete cells of one table.
///
/// The paper's granularity-selection queries are simple single-table
/// SELECTs (its §3.2 examples), and that is what bdbms supports here:
/// one table, plain column projection (or `*`), optional WHERE.  Row
/// selection goes through the same pushdown/index planning as SELECT
/// scans ([`plan::filter_rows`]), so `ADD ANNOTATION … WHERE key = …`
/// probes the index instead of scanning the heap.
pub fn select_cells(catalog: &Catalog, sel: &Select) -> Result<(String, Vec<u64>, Vec<usize>)> {
    if sel.from.len() != 1
        || sel.set_op.is_some()
        || !sel.group_by.is_empty()
        || sel.having.is_some()
        || sel.distinct
        || sel.awhere.is_some()
        || sel.ahaving.is_some()
        || sel.filter.is_some()
    {
        return Err(BdbmsError::invalid(
            "annotation target must be a simple single-table SELECT \
             (no set ops, grouping, DISTINCT, or annotation clauses)",
        ));
    }
    let tref = &sel.from[0];
    let table: &Table = catalog.table(&tref.table)?;
    let qualifier = tref.alias.as_deref().unwrap_or(&tref.table);
    let bindings: Vec<ColBinding> = table
        .schema
        .columns()
        .iter()
        .map(|c| ColBinding::new(Some(qualifier), &c.name))
        .collect();
    // target columns
    let items = expand_projection(&sel.projection, &bindings)?;
    let mut cols = Vec::with_capacity(items.len());
    for item in &items {
        match &item.expr {
            Expr::Column(q, n) => cols.push(resolve_column(&bindings, q.as_deref(), n)?),
            _ => {
                return Err(BdbmsError::invalid(
                    "annotation target must project plain columns",
                ))
            }
        }
    }
    cols.sort_unstable();
    cols.dedup();
    // target rows (index-accelerated when possible)
    let row_nos = plan::filter_rows(table, qualifier, sel.where_clause.as_ref())?
        .into_iter()
        .map(|(row_no, _)| row_no)
        .collect();
    Ok((table.name.clone(), row_nos, cols))
}
