//! Tiny byte codec shared by the durability layer (snapshot blobs, WAL
//! record payloads) and the structures that serialize themselves
//! ([`crate::annotation::AnnotationSet`]).
//!
//! Everything is little-endian and length-prefixed; decoding is fully
//! bounds-checked and surfaces [`ErrorCode::Corrupt`] — bytes come off
//! disk, so a short or mangled buffer must be an error, never a panic.

use bdbms_common::{BdbmsError, ErrorCode, Result, Value};

pub(crate) fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub(crate) fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

pub(crate) fn put_opt_str(out: &mut Vec<u8>, s: Option<&str>) {
    match s {
        None => put_bool(out, false),
        Some(s) => {
            put_bool(out, true);
            put_str(out, s);
        }
    }
}

pub(crate) fn put_value(out: &mut Vec<u8>, v: &Value) {
    v.encode(out);
}

pub(crate) fn put_values(out: &mut Vec<u8>, vs: &[Value]) {
    put_u32(out, vs.len() as u32);
    for v in vs {
        v.encode(out);
    }
}

pub(crate) fn put_u64s(out: &mut Vec<u8>, vs: &[u64]) {
    put_u32(out, vs.len() as u32);
    for &v in vs {
        put_u64(out, v);
    }
}

pub(crate) fn put_strs(out: &mut Vec<u8>, vs: &[String]) {
    put_u32(out, vs.len() as u32);
    for v in vs {
        put_str(out, v);
    }
}

/// A bounds-checked cursor over encoded bytes.
pub(crate) struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Cur<'a> {
        Cur { buf, pos: 0 }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn short() -> BdbmsError {
        BdbmsError::new(ErrorCode::Corrupt, "truncated encoding")
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let s = self
            .buf
            .get(self.pos..self.pos + n)
            .ok_or_else(Self::short)?;
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn bool(&mut self) -> Result<bool> {
        Ok(self.u8()? != 0)
    }

    pub(crate) fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A length prefix about to drive a `Vec::with_capacity`: sanity-cap
    /// it so corrupt bytes can't trigger an absurd allocation.
    pub(crate) fn len(&mut self) -> Result<usize> {
        let n = self.u32()? as usize;
        if n > self.buf.len().saturating_sub(self.pos).max(1) * 4096 {
            return Err(BdbmsError::corrupt(format!(
                "implausible length prefix {n}"
            )));
        }
        Ok(n)
    }

    pub(crate) fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| BdbmsError::corrupt("invalid utf8 in stored string"))
    }

    pub(crate) fn opt_str(&mut self) -> Result<Option<String>> {
        Ok(if self.bool()? {
            Some(self.str()?)
        } else {
            None
        })
    }

    pub(crate) fn value(&mut self) -> Result<Value> {
        // Value::decode reports Storage on truncation; re-badge as
        // Corrupt — these bytes came from a snapshot or WAL frame.
        let mut pos = self.pos;
        let v = Value::decode(self.buf, &mut pos)
            .map_err(|e| BdbmsError::corrupt(e.message().to_string()))?;
        self.pos = pos;
        Ok(v)
    }

    pub(crate) fn values(&mut self) -> Result<Vec<Value>> {
        let n = self.len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.value()?);
        }
        Ok(out)
    }

    pub(crate) fn u64s(&mut self) -> Result<Vec<u64>> {
        let n = self.len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    pub(crate) fn strs(&mut self) -> Result<Vec<String>> {
        let n = self.len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.str()?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut out = Vec::new();
        put_u8(&mut out, 7);
        put_bool(&mut out, true);
        put_u16(&mut out, 513);
        put_u32(&mut out, 70_000);
        put_u64(&mut out, u64::MAX - 1);
        put_str(&mut out, "géne");
        put_opt_str(&mut out, None);
        put_opt_str(&mut out, Some("x"));
        put_values(&mut out, &[Value::Int(-3), Value::Null]);
        put_u64s(&mut out, &[1, 2, 3]);
        put_strs(&mut out, &["a".into(), "b".into()]);
        let mut c = Cur::new(&out);
        assert_eq!(c.u8().unwrap(), 7);
        assert!(c.bool().unwrap());
        assert_eq!(c.u16().unwrap(), 513);
        assert_eq!(c.u32().unwrap(), 70_000);
        assert_eq!(c.u64().unwrap(), u64::MAX - 1);
        assert_eq!(c.str().unwrap(), "géne");
        assert_eq!(c.opt_str().unwrap(), None);
        assert_eq!(c.opt_str().unwrap(), Some("x".into()));
        assert_eq!(c.values().unwrap(), vec![Value::Int(-3), Value::Null]);
        assert_eq!(c.u64s().unwrap(), vec![1, 2, 3]);
        assert_eq!(c.strs().unwrap(), vec!["a".to_string(), "b".to_string()]);
        assert!(c.is_empty());
    }

    #[test]
    fn truncation_is_corrupt_not_panic() {
        let mut out = Vec::new();
        put_str(&mut out, "hello");
        out.truncate(6);
        let mut c = Cur::new(&out);
        let err = c.str().unwrap_err();
        assert_eq!(err.code(), ErrorCode::Corrupt);
        let mut c = Cur::new(&[1, 0, 0]);
        assert_eq!(c.u64().unwrap_err().code(), ErrorCode::Corrupt);
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Any reader sequence over any bytes: errors, never panics,
        /// and the length sanity cap keeps `with_capacity` bounded.
        #[test]
        fn cursor_never_panics(
            bytes in prop::collection::vec(any::<u8>(), 0..128),
            ops in prop::collection::vec(0u8..10, 1..16),
        ) {
            let mut c = Cur::new(&bytes);
            for op in ops {
                let _ = match op {
                    0 => c.u8().map(|_| ()),
                    1 => c.bool().map(|_| ()),
                    2 => c.u16().map(|_| ()),
                    3 => c.u32().map(|_| ()),
                    4 => c.u64().map(|_| ()),
                    5 => c.str().map(|_| ()),
                    6 => c.opt_str().map(|_| ()),
                    7 => c.values().map(|_| ()),
                    8 => c.u64s().map(|_| ()),
                    _ => c.strs().map(|_| ()),
                };
            }
        }
    }
}
