//! Session-level transactions: the logical undo log.
//!
//! bdbms targets curated biological databases where base data,
//! annotations, provenance, and derived cells must change together or
//! not at all (§3–§5 of the paper).  This module supplies the mechanism:
//! a **logical undo log** that records, for every mutation the engine
//! performs, the inverse operation needed to put the catalog back
//! exactly — row images for DML, moved-out objects for `DROP`s,
//! watermarks for append-only structures (annotation sets, the approval
//! log, the deletion log), and first-touch snapshots for state that has
//! no cheap logical inverse (planner statistics, whose KMV sketch cannot
//! retract observations, the outdated-cell bitmaps, and row-number
//! allocation).
//!
//! ## How rollback works
//!
//! `TxnRuntime` accumulates `UndoOp`s while a transaction (explicit
//! `BEGIN…COMMIT`, or the implicit one wrapped around every standalone
//! statement) is open.  Rollback applies the recorded ops **in reverse
//! order**; snapshots are pushed *before* the first mutation they cover,
//! so in reverse order they apply last and settle the final state.
//!
//! Savepoints and statement boundaries are watermarks into the op list.
//! At every watermark the first-touch sets are reset, so the next
//! mutation of a table re-snapshots it *at the watermark's state* —
//! which is exactly what a partial rollback must restore.  Extra
//! snapshots are harmless (an older snapshot applied after a newer one
//! wins, and both describe the same restore point for the ops between
//! them).
//!
//! ## What is (and is not) transactional
//!
//! DML, table/index DDL, `ANALYZE`, annotation commands (including
//! provenance attachments recorded through the system API), dependency
//! rule DDL, and `VALIDATE` are fully undone by rollback.
//! Authorization and approval-workflow statements (`CREATE USER`,
//! `GRANT`/`REVOKE`, `START/STOP CONTENT APPROVAL`,
//! `APPROVE/DISAPPROVE OPERATION`) are **non-transactional** and are
//! rejected inside an explicit transaction with a
//! [`bdbms_common::ErrorCode::TxnState`] error.
//!
//! Rollback never rewinds the catalog generation: it *bumps* it, so a
//! prepared plan cached against mid-transaction DDL (say a `CREATE
//! INDEX` that was rolled back) can never be replayed against the
//! restored catalog.  See `docs/TRANSACTIONS.md`.

use std::collections::HashSet;

use bdbms_common::bitmap::CellBitmap;
use bdbms_common::ids::OperationId;
use bdbms_common::Value;

use crate::annotation::AnnotationSet;
use crate::approval::{ApprovalManager, OpStatus};
use crate::catalog::{Catalog, Table};
use crate::dependency::{DependencyManager, DependencyRule};
use crate::durability::{fresh_redo_sink, RedoSink, WalRecord};
use crate::stats::TableStats;

/// Observable state of the transaction machinery (see
/// [`crate::Database::transaction_status`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnStatus {
    /// No transaction open; every statement runs in its own implicit one.
    Idle,
    /// An explicit `BEGIN` is open.
    Active {
        /// Number of live savepoints.
        savepoints: usize,
    },
}

/// One recorded inverse operation.  Applied in reverse recording order
/// by rollback; every application is tolerant of objects that earlier
/// undo steps (or the recorded history itself) already removed.
pub(crate) enum UndoOp {
    /// Undo an INSERT: delete the row again.
    UnInsert { table: String, row_no: u64 },
    /// Undo a DELETE: re-insert the old tuple under its old row number
    /// (the deletion-log entry is retired by the table snapshot).
    UnDelete {
        table: String,
        row_no: u64,
        values: Vec<Value>,
    },
    /// Undo an UPDATE (or a dependency-cascade recompute): restore the
    /// old row image.
    UnUpdate {
        table: String,
        row_no: u64,
        old: Vec<Value>,
    },
    /// Undo `CREATE TABLE`.
    UnCreateTable { name: String },
    /// Undo `DROP TABLE`: the dropped table is moved here wholesale and
    /// put back on rollback.
    UnDropTable { table: Box<Table> },
    /// Undo `CREATE INDEX`.
    UnCreateIndex { table: String, index: String },
    /// Undo `DROP INDEX`: recreate and backfill.  Applied when the
    /// table's rows are already back to their drop-time state, so the
    /// backfill reproduces the dropped index exactly.
    UnDropIndex {
        table: String,
        index: String,
        column: String,
    },
    /// Undo `CREATE SEQUENCE INDEX`.
    UnCreateSeqIndex { table: String, index: String },
    /// Undo `DROP SEQUENCE INDEX`: recreate and backfill (same timing
    /// contract as [`UndoOp::UnDropIndex`]).
    UnDropSeqIndex {
        table: String,
        index: String,
        column: String,
        kind: crate::ast::SeqIndexKind,
    },
    /// Undo a `COPY` bulk load: remove every row the load appended
    /// (they all sit at or above `first_row`).  The accompanying
    /// first-touch snapshot restores stats / allocator / bitmap state.
    UnBulkLoad { table: String, first_row: u64 },
    /// Undo `CREATE ANNOTATION TABLE`.
    UnCreateAnnSet { table: String, set: String },
    /// Undo `DROP ANNOTATION TABLE`: the set is moved here and
    /// reinserted at its old position.
    UnDropAnnSet {
        table: String,
        pos: usize,
        set: Box<AnnotationSet>,
    },
    /// Undo `CREATE DEPENDENCY RULE` (restores the id allocator too).
    UnAddRule { name: String, prev_next_id: u64 },
    /// Undo `DROP DEPENDENCY RULE`: reinsert at the old position.
    UnDropRule {
        pos: usize,
        rule: Box<DependencyRule>,
    },
    /// First-touch snapshot of a table's non-row state: planner stats
    /// (the KMV sketch cannot retract), the outdated bitmap, the
    /// row-number allocator, and the deletion-log length.
    RestoreTableState {
        table: String,
        stats: TableStats,
        outdated: CellBitmap,
        next_row: u64,
        deleted_log_len: usize,
    },
    /// First-touch snapshot of an annotation set: the id watermark
    /// (annotations at or past it are truncated, with their scheme
    /// attachments) and the archived flags of the survivors.
    RestoreAnnSet {
        table: String,
        set: String,
        next_id: u64,
        flags: Vec<(u64, bool)>,
    },
    /// First-touch snapshot of the approval log (length + id allocator).
    RestoreApprovalLog { len: usize, next_id: u64 },
    /// Undo an approval decision's status flip (the data changes of the
    /// executed inverse are undone by their own row ops).
    RestoreOpStatus { id: OperationId, status: OpStatus },
}

impl UndoOp {
    /// Apply this inverse against the live engine state.  Missing
    /// objects are skipped: they can only be missing because the
    /// recorded history already accounts for them (e.g. a row op on a
    /// table the same rollback later un-creates).
    pub(crate) fn apply(
        self,
        catalog: &mut Catalog,
        deps: &mut DependencyManager,
        approval: &mut ApprovalManager,
    ) {
        match self {
            UndoOp::UnInsert { table, row_no } => {
                if let Ok(t) = catalog.table_mut(&table) {
                    let _ = t.delete(row_no);
                }
            }
            UndoOp::UnDelete {
                table,
                row_no,
                values,
            } => {
                if let Ok(t) = catalog.table_mut(&table) {
                    let _ = t.insert_with_row_no(row_no, values);
                }
            }
            UndoOp::UnUpdate { table, row_no, old } => {
                if let Ok(t) = catalog.table_mut(&table) {
                    let _ = t.update(row_no, old);
                }
            }
            UndoOp::UnCreateTable { name } => {
                let _ = catalog.drop_table(&name);
            }
            UndoOp::UnDropTable { table } => {
                let _ = catalog.add_table(*table);
            }
            UndoOp::UnCreateIndex { table, index } => {
                if let Ok(t) = catalog.table_mut(&table) {
                    let _ = t.drop_index(&index);
                }
            }
            UndoOp::UnDropIndex {
                table,
                index,
                column,
            } => {
                if let Ok(t) = catalog.table_mut(&table) {
                    let _ = t.create_index(&index, &column);
                }
            }
            UndoOp::UnCreateSeqIndex { table, index } => {
                if let Ok(t) = catalog.table_mut(&table) {
                    let _ = t.drop_seq_index(&index);
                }
            }
            UndoOp::UnDropSeqIndex {
                table,
                index,
                column,
                kind,
            } => {
                if let Ok(t) = catalog.table_mut(&table) {
                    let _ = t.create_seq_index(&index, &column, kind);
                }
            }
            UndoOp::UnBulkLoad { table, first_row } => {
                if let Ok(t) = catalog.table_mut(&table) {
                    let _ = t.truncate_rows_from(first_row);
                }
            }
            UndoOp::UnCreateAnnSet { table, set } => {
                if let Ok(t) = catalog.table_mut(&table) {
                    t.ann_sets.retain(|s| !s.name.eq_ignore_ascii_case(&set));
                }
            }
            UndoOp::UnDropAnnSet { table, pos, set } => {
                if let Ok(t) = catalog.table_mut(&table) {
                    t.ann_sets.insert(pos.min(t.ann_sets.len()), *set);
                }
            }
            UndoOp::UnAddRule { name, prev_next_id } => {
                let _ = deps.drop_rule(&name);
                deps.set_next_rule_id(prev_next_id);
            }
            UndoOp::UnDropRule { pos, rule } => {
                deps.insert_rule_at(pos, *rule);
            }
            UndoOp::RestoreTableState {
                table,
                stats,
                outdated,
                next_row,
                deleted_log_len,
            } => {
                if let Ok(t) = catalog.table_mut(&table) {
                    t.set_stats(stats);
                    t.outdated = outdated;
                    t.set_next_row(next_row);
                    t.deleted_log.truncate(deleted_log_len);
                }
            }
            UndoOp::RestoreAnnSet {
                table,
                set,
                next_id,
                flags,
            } => {
                if let Ok(t) = catalog.table_mut(&table) {
                    if let Some(s) = t.ann_set_mut(&set) {
                        s.rollback_to(next_id, &flags);
                    }
                }
            }
            UndoOp::RestoreApprovalLog { len, next_id } => {
                approval.truncate_log(len, next_id);
            }
            UndoOp::RestoreOpStatus { id, status } => {
                approval.set_status(id, status);
            }
        }
    }
}

/// A watermark into the transaction's two logs: the undo-op list and
/// the redo-record buffer.  Savepoints and statement boundaries record
/// one; partial rollback truncates both logs to it (the undo ops are
/// applied, the redo records simply vanish — they describe work that no
/// longer survives, so the WAL never sees them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TxnMark {
    /// Position in the undo-op list.
    pub(crate) ops: usize,
    /// Position in the redo-record buffer.
    pub(crate) redo: usize,
}

/// Mode of the transaction machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Not recording.
    Idle,
    /// Recording for the implicit transaction around one statement.
    Implicit,
    /// Recording for an explicit `BEGIN`.
    Explicit,
}

/// The per-connection transaction runtime: mode, undo log, savepoint
/// watermarks, and the first-touch bookkeeping that decides when a
/// snapshot op must be pushed.  Owned by [`crate::Database`]; driven by
/// the [`crate::Session`] state machine.
pub(crate) struct TxnRuntime {
    mode: Mode,
    ops: Vec<UndoOp>,
    /// The redo buffer shared with every table and the database (see
    /// `crate::durability`): logical WAL records of the open
    /// transaction, drained at commit, truncated by rollback.
    redo: RedoSink,
    /// Savepoint stack: `(lowercased name, watermark)`.  Names may
    /// shadow; lookups find the most recent.
    savepoints: Vec<(String, TxnMark)>,
    /// Tables snapshotted since the last watermark (lowercased names).
    touched_tables: HashSet<String>,
    /// Annotation sets snapshotted since the last watermark.
    touched_sets: HashSet<(String, String)>,
    /// Approval log snapshotted since the last watermark?
    touched_approval: bool,
    /// Tables with a *retained* snapshot since the last frame boundary
    /// (`BEGIN` / `SAVEPOINT` / `ROLLBACK TO`).  A later statement's
    /// snapshot of such a table only serves that statement's own
    /// rollback — [`statement_succeeded`](Self::statement_succeeded)
    /// prunes it, so a long transaction holds one snapshot per table
    /// per frame instead of one per table per statement.
    frame_tables: HashSet<String>,
    /// Annotation sets with a retained snapshot since the frame boundary.
    frame_sets: HashSet<(String, String)>,
    /// Approval log snapshot retained since the frame boundary?
    frame_approval: bool,
}

impl TxnRuntime {
    pub(crate) fn new() -> TxnRuntime {
        TxnRuntime {
            mode: Mode::Idle,
            ops: Vec::new(),
            redo: fresh_redo_sink(),
            savepoints: Vec::new(),
            touched_tables: HashSet::new(),
            touched_sets: HashSet::new(),
            touched_approval: false,
            frame_tables: HashSet::new(),
            frame_sets: HashSet::new(),
            frame_approval: false,
        }
    }

    /// Is any transaction (implicit or explicit) recording?
    pub(crate) fn recording(&self) -> bool {
        self.mode != Mode::Idle
    }

    /// Is an explicit `BEGIN` open?
    pub(crate) fn explicit(&self) -> bool {
        self.mode == Mode::Explicit
    }

    /// Number of live savepoints.
    pub(crate) fn savepoint_count(&self) -> usize {
        self.savepoints.len()
    }

    /// Record one inverse op (no-op when idle).
    pub(crate) fn push(&mut self, op: UndoOp) {
        if self.recording() {
            self.ops.push(op);
        }
    }

    /// Should the caller push a first-touch table snapshot now?
    /// (Registers the touch.)
    pub(crate) fn table_needs_snapshot(&mut self, table: &str) -> bool {
        self.recording() && self.touched_tables.insert(table.to_ascii_lowercase())
    }

    /// Should the caller push a first-touch annotation-set snapshot now?
    pub(crate) fn ann_set_needs_snapshot(&mut self, table: &str, set: &str) -> bool {
        self.recording()
            && self
                .touched_sets
                .insert((table.to_ascii_lowercase(), set.to_ascii_lowercase()))
    }

    /// Should the caller push a first-touch approval-log snapshot now?
    pub(crate) fn approval_needs_snapshot(&mut self) -> bool {
        if !self.recording() || self.touched_approval {
            return false;
        }
        self.touched_approval = true;
        true
    }

    /// A watermark covering the current point in both logs.  The
    /// first-touch sets are reset so the next mutation re-snapshots at
    /// this point's state (the invariant every partial rollback needs).
    pub(crate) fn watermark(&mut self) -> TxnMark {
        self.reset_touches();
        TxnMark {
            ops: self.ops.len(),
            redo: self.redo.borrow().len(),
        }
    }

    // ---- redo buffer plumbing (see `crate::durability`) ----

    /// The shared redo sink (tables and the database clone this).
    pub(crate) fn redo_sink(&self) -> RedoSink {
        self.redo.clone()
    }

    /// Append a redo record (no-op when redo is disabled or suspended).
    pub(crate) fn redo_push(&self, build: impl FnOnce() -> WalRecord) {
        self.redo.borrow_mut().push(build);
    }

    /// Drain the redo buffer (commit hands the records to the WAL).
    pub(crate) fn redo_take(&mut self) -> Vec<WalRecord> {
        self.redo.borrow_mut().take()
    }

    /// Stop collecting while rollback applies undo ops (their table
    /// mutations must not re-log).
    pub(crate) fn redo_suspend(&self) {
        self.redo.borrow_mut().suspend();
    }

    /// Resume collecting after rollback.
    pub(crate) fn redo_resume(&self) {
        self.redo.borrow_mut().resume();
    }

    fn reset_touches(&mut self) {
        self.touched_tables.clear();
        self.touched_sets.clear();
        self.touched_approval = false;
    }

    fn reset_frames(&mut self) {
        self.frame_tables.clear();
        self.frame_sets.clear();
        self.frame_approval = false;
    }

    /// A statement inside an explicit transaction completed: prune the
    /// snapshot ops it pushed for objects the current frame already
    /// holds a snapshot of.  Those copies could only ever serve the
    /// statement's own rollback (every live mark — `BEGIN` and each
    /// savepoint — is older than the frame's retained snapshot, and
    /// during reverse replay the older snapshot wins), so keeping them
    /// would grow the log by a full stats + bitmap copy per statement.
    pub(crate) fn statement_succeeded(&mut self, mark: TxnMark) {
        if self.mode != Mode::Explicit {
            return;
        }
        let tail = self.ops.split_off(mark.ops.min(self.ops.len()));
        for op in tail {
            let redundant = match &op {
                UndoOp::RestoreTableState { table, .. } => {
                    self.frame_tables.contains(&table.to_ascii_lowercase())
                }
                UndoOp::RestoreAnnSet { table, set, .. } => self
                    .frame_sets
                    .contains(&(table.to_ascii_lowercase(), set.to_ascii_lowercase())),
                UndoOp::RestoreApprovalLog { .. } => self.frame_approval,
                _ => false,
            };
            if !redundant {
                self.ops.push(op);
            }
        }
        self.frame_tables.extend(self.touched_tables.drain());
        self.frame_sets.extend(self.touched_sets.drain());
        self.frame_approval |= self.touched_approval;
        self.touched_approval = false;
    }

    /// Number of recorded undo ops (tests observe snapshot pruning).
    #[cfg(test)]
    fn ops_len(&self) -> usize {
        self.ops.len()
    }

    /// Open the implicit transaction around one statement (idle only).
    pub(crate) fn begin_implicit(&mut self) {
        debug_assert_eq!(self.mode, Mode::Idle);
        self.mode = Mode::Implicit;
        self.reset_touches();
    }

    /// Open an explicit transaction (idle only — nested `BEGIN` is the
    /// caller's `TxnState` error).
    pub(crate) fn begin_explicit(&mut self) {
        debug_assert_eq!(self.mode, Mode::Idle);
        self.mode = Mode::Explicit;
        self.reset_touches();
        self.reset_frames();
    }

    /// Commit: discard the log and return to idle.  (For durable
    /// databases the redo buffer was already drained into the WAL by
    /// `Database::wal_commit`; clearing here is the in-memory no-op.)
    pub(crate) fn commit(&mut self) {
        self.mode = Mode::Idle;
        self.ops.clear();
        self.redo.borrow_mut().clear();
        self.savepoints.clear();
        self.reset_touches();
        self.reset_frames();
    }

    /// Take every recorded op (rollback of the whole transaction) and
    /// return to idle.  The caller applies them in reverse.  The redo
    /// buffer is discarded wholesale: nothing of this transaction may
    /// reach the WAL.
    pub(crate) fn take_all(&mut self) -> Vec<UndoOp> {
        self.mode = Mode::Idle;
        self.savepoints.clear();
        self.reset_touches();
        self.reset_frames();
        self.redo.borrow_mut().clear();
        std::mem::take(&mut self.ops)
    }

    /// Take the ops recorded past `mark` (partial rollback — savepoint
    /// or failed statement).  The transaction stays open; savepoints
    /// created past the mark are dropped and the first-touch sets reset.
    /// Frame bookkeeping resets too: snapshots consumed by this rollback
    /// are no longer retained, so later touches re-snapshot (redundant
    /// copies for objects whose frame snapshot pre-dates the mark are
    /// harmless — the older snapshot wins during reverse replay).
    pub(crate) fn take_after(&mut self, mark: TxnMark) -> Vec<UndoOp> {
        self.savepoints.retain(|(_, m)| m.ops <= mark.ops);
        self.reset_touches();
        self.reset_frames();
        self.redo.borrow_mut().truncate(mark.redo);
        self.ops.split_off(mark.ops.min(self.ops.len()))
    }

    /// Create a savepoint at the current point.  Starts a new snapshot
    /// frame: the savepoint is a fresh restore target, so the next touch
    /// of each object must snapshot (and retain) its state here.
    pub(crate) fn add_savepoint(&mut self, name: &str) {
        let mark = self.watermark();
        self.reset_frames();
        self.savepoints.push((name.to_ascii_lowercase(), mark));
    }

    /// The watermark of the most recent savepoint with this name.
    pub(crate) fn find_savepoint(&self, name: &str) -> Option<TxnMark> {
        let key = name.to_ascii_lowercase();
        self.savepoints
            .iter()
            .rev()
            .find(|(n, _)| *n == key)
            .map(|&(_, m)| m)
    }

    /// Release the most recent savepoint with this name and every
    /// savepoint created after it.  Returns false if unknown.
    pub(crate) fn release_savepoint(&mut self, name: &str) -> bool {
        let key = name.to_ascii_lowercase();
        match self.savepoints.iter().rposition(|(n, _)| *n == key) {
            Some(pos) => {
                self.savepoints.truncate(pos);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermarks_reset_first_touch_sets() {
        let mut txn = TxnRuntime::new();
        txn.begin_explicit();
        assert!(txn.table_needs_snapshot("Gene"));
        assert!(!txn.table_needs_snapshot("GENE"), "case-insensitive");
        assert!(txn.ann_set_needs_snapshot("Gene", "Curation"));
        assert!(!txn.ann_set_needs_snapshot("gene", "curation"));
        assert!(txn.approval_needs_snapshot());
        assert!(!txn.approval_needs_snapshot());
        let _ = txn.watermark();
        assert!(txn.table_needs_snapshot("Gene"), "re-snapshot after mark");
        assert!(txn.ann_set_needs_snapshot("Gene", "Curation"));
        assert!(txn.approval_needs_snapshot());
    }

    fn table_snapshot(table: &str) -> UndoOp {
        UndoOp::RestoreTableState {
            table: table.into(),
            stats: TableStats::new(1),
            outdated: CellBitmap::new(0, 1),
            next_row: 0,
            deleted_log_len: 0,
        }
    }

    #[test]
    fn redundant_statement_snapshots_are_pruned() {
        let mut txn = TxnRuntime::new();
        txn.begin_explicit();
        // statement 1 first-touches t: snapshot retained
        let m = txn.watermark();
        assert!(txn.table_needs_snapshot("t"));
        txn.push(table_snapshot("t"));
        txn.push(UndoOp::UnInsert {
            table: "t".into(),
            row_no: 0,
        });
        txn.statement_succeeded(m);
        assert_eq!(txn.ops_len(), 2);
        // statement 2 re-snapshots for its own rollback; the copy is
        // pruned on success — the log stays one snapshot per frame
        let m = txn.watermark();
        assert!(txn.table_needs_snapshot("t"), "per-statement re-snapshot");
        txn.push(table_snapshot("t"));
        txn.push(UndoOp::UnInsert {
            table: "t".into(),
            row_no: 1,
        });
        txn.statement_succeeded(m);
        assert_eq!(txn.ops_len(), 3, "second snapshot pruned");
        // a savepoint opens a new frame: its first snapshot is retained
        txn.add_savepoint("s");
        let m = txn.watermark();
        assert!(txn.table_needs_snapshot("t"));
        txn.push(table_snapshot("t"));
        txn.statement_succeeded(m);
        assert_eq!(txn.ops_len(), 4, "new frame retains its snapshot");
    }

    #[test]
    fn savepoint_stack_shadows_and_releases() {
        let mut txn = TxnRuntime::new();
        txn.begin_explicit();
        txn.push(UndoOp::UnInsert {
            table: "t".into(),
            row_no: 0,
        });
        txn.add_savepoint("a");
        txn.push(UndoOp::UnInsert {
            table: "t".into(),
            row_no: 1,
        });
        txn.add_savepoint("a"); // shadows
        let ops_of = |m: Option<TxnMark>| m.map(|m| m.ops);
        assert_eq!(ops_of(txn.find_savepoint("A")), Some(2), "most recent wins");
        assert!(txn.release_savepoint("a"));
        assert_eq!(
            ops_of(txn.find_savepoint("a")),
            Some(1),
            "outer `a` survives"
        );
        // rollback past a savepoint drops it
        let ops = txn.take_after(TxnMark { ops: 1, redo: 0 });
        assert_eq!(ops.len(), 1);
        assert_eq!(ops_of(txn.find_savepoint("a")), Some(1));
        let ops = txn.take_after(TxnMark { ops: 0, redo: 0 });
        assert_eq!(ops.len(), 1);
        assert_eq!(txn.find_savepoint("a"), None);
        assert!(!txn.release_savepoint("a"));
        assert!(txn.explicit(), "partial rollback keeps the txn open");
        let _ = txn.take_all();
        assert!(!txn.recording());
    }
}
